"""Offline training of the learned ECN-marking queue.

The intelligent-queue loop closes here: :mod:`repro.aqm_learn.trace` runs
open-loop workloads over an instrumented bottleneck and logs queue
telemetry with :class:`~repro.netsim.telemetry.QueueTelemetryRecorder`;
:mod:`repro.aqm_learn.fit` turns those traces into a supervised dataset —
*will this packet, admitted now, blow the delay target?* — and fits the
:class:`~repro.netsim.ecn_model.EcnPredictor` that
:class:`~repro.netsim.aqm.LearnedECN` evaluates per arrival.

CLI: ``repro aqm trace`` / ``repro aqm learn``.
"""

from repro.aqm_learn.fit import FitReport, fit_ecn_predictor
from repro.aqm_learn.trace import TraceSpec, collect_queue_traces

__all__ = [
    "FitReport",
    "TraceSpec",
    "collect_queue_traces",
    "fit_ecn_predictor",
]
