"""LEDBAT (Rossi et al. — ICCCN 2010; RFC 6817).

Low Extra Delay Background Transport: a scavenger protocol that keeps the
*extra* one-way delay it induces at a fixed ``TARGET`` (100 ms in the RFC;
we use the RFC value). The window moves proportionally to the gap between
the target and the measured queueing delay, and halves on loss. By design
it yields to any loss-based flow — the paper's Set II shows exactly that.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Ledbat(CongestionControl):
    """Delay-target scavenger congestion control."""

    name = "ledbat"

    TARGET = 0.100  # seconds of allowed self-induced queueing delay
    GAIN = 1.0

    def __init__(self) -> None:
        self.base_delay = float("inf")

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt <= 0:
            return
        self.base_delay = min(self.base_delay, rtt)
        queuing = max(rtt - self.base_delay, 0.0)
        off_target = (self.TARGET - queuing) / self.TARGET
        sock.cwnd += self.GAIN * off_target * n_acked / max(sock.cwnd, 1.0)
        sock.cwnd = max(sock.cwnd, self.MIN_CWND)

    def ssthresh(self, sock) -> float:
        return max(sock.cwnd / 2.0, self.MIN_CWND)
