"""repro.pipeline: the supervised, resumable collect->train->eval pipeline.

A :class:`Supervisor` drives an ordered list of :class:`StageSpec` stages
against a crash-safe JSON journal (:class:`PipelineState`); the standard
collect -> verify -> train -> eval sequence for a :class:`PipelineConfig`
comes from :func:`build_supervisor`. Every stage is idempotent and
re-validates its artifacts on resume, so ``kill -9`` at any instant is
recoverable with ``repro pipeline resume``.
"""

from repro.pipeline.stages import (
    PipelineConfig,
    build_pipeline,
    build_supervisor,
)
from repro.pipeline.state import PipelineState, StageState
from repro.pipeline.supervisor import PipelineError, StageSpec, Supervisor

__all__ = [
    "PipelineConfig",
    "PipelineError",
    "PipelineState",
    "StageSpec",
    "StageState",
    "Supervisor",
    "build_pipeline",
    "build_supervisor",
]
