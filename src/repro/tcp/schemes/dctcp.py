"""DCTCP (Alizadeh et al. — SIGCOMM 2010).

Data Center TCP: the switch CE-marks packets past a shallow threshold, the
receiver echoes marks exactly, and the sender cuts its window in proportion
to the *fraction* of marked packets::

    alpha <- (1 - g) alpha + g F         (F = marked fraction per window)
    cwnd  <- cwnd (1 - alpha / 2)        (once per window with any marks)

Cited in the paper's Appendix A as the canonical single-authority
(datacenter) design; here it also exercises the emulator's ECN path. Use
with an ECN-enabled queue, e.g. ``TailDrop(cap, ecn_threshold_bytes=K)``.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Dctcp(CongestionControl):
    """Proportional ECN reaction for low-latency datacenter transport."""

    name = "dctcp"
    ecn_capable = True

    G = 1.0 / 16.0  # alpha gain (kernel default)

    def __init__(self) -> None:
        self.alpha = 1.0  # start conservative, like the kernel
        self._acks_in_window = 0
        self._marks_in_window = 0
        self._window_acks_target = 10.0
        self._cut_pending = False

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        self._acks_in_window += n_acked
        if self._acks_in_window >= max(sock.cwnd, 1.0):
            # one observation window (~ one RTT of ACKs) completed
            frac = self._marks_in_window / max(self._acks_in_window, 1)
            self.alpha = (1.0 - self.G) * self.alpha + self.G * frac
            if self._marks_in_window > 0:
                sock.cwnd = max(
                    sock.cwnd * (1.0 - self.alpha / 2.0), self.MIN_CWND
                )
                sock.ssthresh = sock.cwnd
            self._acks_in_window = 0
            self._marks_in_window = 0
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
        else:
            self.reno_increase(sock, n_acked)

    def on_ecn_ack(self, sock, now: float) -> None:
        # exact per-packet echo; the cut happens at window boundaries
        self._marks_in_window += 1

    def ssthresh(self, sock) -> float:
        # packet loss still halves, as in the kernel implementation
        return max(sock.cwnd / 2.0, self.MIN_CWND)
