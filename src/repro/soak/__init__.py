"""repro.soak — the continuous-chaos soak harness.

Where ``repro.chaos`` plans *individual* faults and the pipeline tests
assert recovery from each, this package runs the whole system under a
continuous stochastic fault schedule for a wall-clock budget and holds it
to recovery SLOs:

- :class:`SoakConfig` / :func:`run_soak` (``harness``) — the round loop:
  collect -> verify -> train -> serve under a fresh per-round
  :class:`~repro.chaos.process.FaultProcess`, with snapshot/restore and
  hot-reload exercises, invariant assertions, and an optional fault-free
  identity twin;
- ``report`` — :class:`FaultObserver` (detection latency and
  time-to-recovery per fired fault), MTTR percentile aggregation, SLO
  evaluation, and the atomic ``BENCH_soak.json`` writer.
"""

from repro.soak.harness import SoakConfig, run_soak
from repro.soak.report import (
    SOAK_SCHEMA_VERSION,
    FaultObserver,
    aggregate_faults,
    evaluate_slos,
    write_soak_report,
)

__all__ = [
    "SOAK_SCHEMA_VERSION",
    "FaultObserver",
    "SoakConfig",
    "aggregate_faults",
    "evaluate_slos",
    "run_soak",
    "write_soak_report",
]
