"""Fig. 22 — the performance frontier in shallow and deep buffers.

All pool heuristics plus Sage in two constant-capacity environments.
Paper shape: the heuristics scatter across the throughput-delay plane
(loss-based: high throughput + high delay in deep buffers; delay-based:
low delay), and the learned policy sits in the high-throughput/low-delay
corner of the cloud.
"""

from conftest import bench_pool_schemes, once

from repro.evalx.dynamics import frontier_experiment
from repro.evalx.leagues import Participant


def test_fig22_performance_frontier(benchmark, sage_agent):
    parts = [Participant.from_scheme(s) for s in bench_pool_schemes()]
    parts.append(Participant.from_agent(sage_agent))

    def run():
        return frontier_experiment(parts, bw_mbps=24.0, min_rtt=0.04, duration=10.0)

    out = once(benchmark, run)
    print("\n=== Fig. 22: throughput (Mbps) / one-way delay (ms) ===")
    for label in ("shallow", "deep"):
        print(f"[{label}]")
        for name, (thr, owd) in sorted(out[label].items()):
            print(f"  {name:>10}: {thr / 1e6:6.2f} Mbps  {owd * 1e3:6.1f} ms")

    deep = out["deep"]
    # Frontier structure: vegas holds the low-delay end, cubic the
    # high-delay end; sage must not be dominated in *both* coordinates by
    # a heuristic that also beats it in the other.
    assert deep["vegas"][1] < deep["cubic"][1]
    sage_thr, sage_owd = deep["sage"]
    dominated = [
        name
        for name, (thr, owd) in deep.items()
        if name != "sage" and thr > sage_thr * 1.05 and owd < sage_owd * 0.95
    ]
    print("schemes dominating sage in deep buffer:", dominated or "none")
    assert sage_thr > 0.2 * 24e6  # sage keeps real utilization
