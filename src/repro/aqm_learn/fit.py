"""Fit the ECN-marking predictor from queue-telemetry traces.

The supervised problem: given the four features a queue sees when a packet
arrives (occupancy, sojourn EWMA, arrival rate, drain rate), predict
whether that packet's realised sojourn time exceeded the congestion
``target``. A marking queue that fires on this prediction signals *the
arrivals that will actually hurt* — one RTT earlier than a drop-based
heuristic can.

Training is plain full-batch gradient descent on the logistic loss, in
numpy, seed-deterministic end to end (seeded init, no shuffling). The tiny
model (4 → H tanh → sigmoid) fits in well under a second on CI-scale
traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.netsim.ecn_model import EcnPredictor, normalize_features
from repro.netsim.telemetry import load_traces

__all__ = ["FitReport", "fit_ecn_predictor"]


@dataclass(frozen=True)
class FitReport:
    """Quality metrics of one fit, on the training trace."""

    n_rows: int
    positive_rate: float
    loss: float
    accuracy: float
    precision: float
    recall: float
    epochs: int

    def to_json(self) -> Dict[str, float]:
        return {
            "n_rows": self.n_rows,
            "positive_rate": round(self.positive_rate, 6),
            "loss": round(self.loss, 6),
            "accuracy": round(self.accuracy, 6),
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "epochs": self.epochs,
        }


def _forward(model: EcnPredictor, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    h = np.tanh(x @ model.w1 + model.b1)
    z = h @ model.w2 + model.b2[0]
    p = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))
    return h, p


def fit_ecn_predictor(
    traces: Sequence,
    target: float = 0.005,
    hidden: int = 8,
    epochs: int = 400,
    lr: float = 0.5,
    l2: float = 1e-4,
    seed: int = 0,
    class_balance: bool = True,
    progress=None,
) -> Tuple[EcnPredictor, FitReport]:
    """Train a predictor on trace shards; returns ``(model, report)``.

    ``traces`` is a path / list of paths to
    :meth:`~repro.netsim.telemetry.QueueTelemetryRecorder.save` shards, or a
    ready ``{"features", "sojourns"}`` dict. ``class_balance`` reweights the
    loss so rare positives (most traces are mostly-uncongested) still shape
    the boundary.
    """
    data = traces if isinstance(traces, dict) else load_traces(traces)
    feats = np.asarray(data["features"], dtype=np.float64)
    sojourns = np.asarray(data["sojourns"], dtype=np.float64)
    n = feats.shape[0]
    if n == 0:
        raise ValueError("telemetry traces are empty; nothing to fit")
    x = normalize_features(feats)
    y = (sojourns > target).astype(np.float64)
    pos_rate = float(y.mean())

    # per-sample weights: balanced classes, normalised to mean 1
    if class_balance and 0.0 < pos_rate < 1.0:
        w = np.where(y > 0.5, 0.5 / pos_rate, 0.5 / (1.0 - pos_rate))
    else:
        w = np.ones(n)
    w = w / w.mean()

    model = EcnPredictor.init(hidden=hidden, seed=seed)
    loss = float("inf")
    for epoch in range(epochs):
        h, p = _forward(model, x)
        eps = 1e-12
        loss = float(
            -np.mean(w * (y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))
        )
        dz = w * (p - y) / n  # (N,)
        dw2 = h.T @ dz + l2 * model.w2
        db2 = dz.sum()
        dh = np.outer(dz, model.w2) * (1.0 - h * h)  # (N, H)
        dw1 = x.T @ dh + l2 * model.w1
        db1 = dh.sum(axis=0)
        model.w2 -= lr * dw2
        model.b2 -= lr * db2
        model.w1 -= lr * dw1
        model.b1 -= lr * db1
        if progress is not None and (epoch + 1) % max(epochs // 10, 1) == 0:
            progress(f"epoch {epoch + 1}/{epochs}: loss {loss:.4f}")

    _, p = _forward(model, x)
    pred = p >= 0.5
    truth = y > 0.5
    tp = int(np.sum(pred & truth))
    fp = int(np.sum(pred & ~truth))
    fn = int(np.sum(~pred & truth))
    report = FitReport(
        n_rows=n,
        positive_rate=pos_rate,
        loss=loss,
        accuracy=float(np.mean(pred == truth)),
        precision=tp / (tp + fp) if tp + fp else 0.0,
        recall=tp / (tp + fn) if tp + fn else 0.0,
        epochs=epochs,
    )
    model.meta.update(
        {
            "target": target,
            "trained_rows": n,
            "positive_rate": pos_rate,
            "loss": loss,
        }
    )
    return model, report
