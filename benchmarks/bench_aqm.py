"""Throughput and signalling profile of the AQM disciplines.

Three sections, written to ``BENCH_aqm.json``:

- **enqueue/dequeue throughput** — packets pushed through each registered
  discipline per wall-clock second with a synthetic multi-flow arrival
  pattern (isolates per-packet AQM cost: FQ-CoDel's DRR machinery and
  LearnedECN's forward pass vs the O(1) heuristics);
- **signal profile** — drops vs CE marks each discipline produces on one
  fixed overload pattern (ECT traffic), a quick sanity read on who drops
  and who marks;
- **learn loop** — wall time for the telemetry-to-predictor loop:
  fit an :class:`~repro.netsim.ecn_model.EcnPredictor` on a synthetic
  trace at CI scale.

Runs two ways:

- standalone: ``PYTHONPATH=src python benchmarks/bench_aqm.py`` (``--tiny``
  for the CI smoke run);
- under pytest-benchmark with the rest of the bench suite:
  ``pytest benchmarks/bench_aqm.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.aqm_learn import fit_ecn_predictor  # noqa: E402
from repro.netsim.aqm import aqm_names, make_aqm  # noqa: E402
from repro.netsim.packet import Packet  # noqa: E402

OUT_PATH = REPO / "BENCH_aqm.json"

BUFFER_BYTES = 180_000


def _arrivals(n: int, n_flows: int = 8, ect: bool = True):
    """A deterministic multi-flow arrival pattern (1500 B MTU packets)."""
    pkts = []
    for i in range(n):
        p = Packet(flow_id=i % n_flows, seq=i, size=1500)
        p.ect = ect
        pkts.append(p)
    return pkts


def _drive(q, pkts, drain_every: int = 2) -> float:
    """Push arrivals through ``q``, dequeuing every ``drain_every`` packets."""
    now = 0.0
    t0 = time.perf_counter()
    for i, p in enumerate(pkts):
        q.current_rate_bps = 48e6
        q.enqueue(p, now)
        if i % drain_every == 0:
            q.dequeue(now + 0.002)
        now += 0.0002
    while q.dequeue(now) is not None:
        now += 0.0002
    return time.perf_counter() - t0


def bench_throughput(tiny: bool) -> dict:
    """Packets/sec through each registered discipline."""
    n = 5_000 if tiny else 50_000
    rows = {}
    for name in aqm_names():
        q = make_aqm(name, BUFFER_BYTES)
        wall = _drive(q, _arrivals(n))
        rows[name] = {
            "n_packets": n,
            "elapsed_s": round(wall, 4),
            "pkts_per_s_wall": round(n / wall, 0),
        }
    return rows


def bench_signal_profile(tiny: bool) -> dict:
    """Drops vs CE marks on one fixed ECT overload pattern."""
    n = 2_000 if tiny else 10_000
    rows = {}
    for name in aqm_names():
        q = make_aqm(name, 60_000)
        _drive(q, _arrivals(n), drain_every=4)  # arrivals outpace service
        rows[name] = {"drops": q.drops, "ecn_marks": q.ecn_marks}
    return rows


def bench_learn_loop(tiny: bool) -> dict:
    """Fit wall-time on a synthetic separable trace at CI scale."""
    n = 2_000 if tiny else 20_000
    rng = np.random.default_rng(0)
    occ = rng.uniform(0.0, 1.0, size=n)
    feats = np.stack(
        [occ, rng.uniform(0, 0.02, n), rng.uniform(0, 96e6, n),
         np.full(n, 48e6)],
        axis=1,
    )
    sojourns = np.where(occ > 0.6, 0.02, 0.001)
    t0 = time.perf_counter()
    _, report = fit_ecn_predictor(
        {"features": feats, "sojourns": sojourns},
        epochs=100 if tiny else 400,
        seed=0,
    )
    wall = time.perf_counter() - t0
    return {
        "n_rows": n,
        "epochs": report.epochs,
        "accuracy": round(report.accuracy, 4),
        "elapsed_s": round(wall, 3),
    }


def run_bench(tiny: bool = False) -> dict:
    return {
        "cpu_count": os.cpu_count() or 1,
        "scale": "tiny" if tiny else "small",
        "throughput": bench_throughput(tiny),
        "signal_profile": bench_signal_profile(tiny),
        "learn_loop": bench_learn_loop(tiny),
    }


def write_report(result: dict, path: Path = OUT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1) + "\n")


def print_report(result: dict) -> None:
    print(f"\n=== AQM bench ({result['scale']}, "
          f"{result['cpu_count']} cores) ===")
    for name, row in result["throughput"].items():
        sig = result["signal_profile"][name]
        print(f"{name:>12}: {row['pkts_per_s_wall']:>12,.0f} pkts/s  "
              f"(overload: {sig['drops']} drops, "
              f"{sig['ecn_marks']} marks)")
    ll = result["learn_loop"]
    print(f"{'learn loop':>12}: {ll['n_rows']} rows x {ll['epochs']} epochs "
          f"in {ll['elapsed_s']:.2f}s (acc {ll['accuracy']:.3f})")


# --------------------------------------------------------------------------
# pytest-benchmark entry point
# --------------------------------------------------------------------------


def test_aqm_throughput(benchmark):
    from conftest import once

    result = once(benchmark, lambda: run_bench(tiny=True))
    print_report(result)
    write_report(result)
    # every discipline sustains well past simulated line rate on any runner
    for name, row in result["throughput"].items():
        assert row["pkts_per_s_wall"] > 10_000, name
    # the intelligent queues actually signal under overload
    assert result["signal_profile"]["fq_codel"]["ecn_marks"] > 0
    assert result["signal_profile"]["learned_ecn"]["ecn_marks"] > 0
    assert result["learn_loop"]["accuracy"] > 0.9


# --------------------------------------------------------------------------
# standalone entry point
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="seconds-scale smoke run (CI)")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    result = run_bench(tiny=args.tiny)
    print_report(result)
    write_report(result, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
