"""Layers: Module base, Linear, LayerNorm, activations, residual blocks.

These are the building blocks of Sage's policy/critic network (Fig. 6):
fully-connected encoders with LeakyReLU/tanh, LayerNorm-stabilized residual
blocks, and a parameter-tree :class:`Module` base that the optimizer and the
checkpointing code walk.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.autograd import Tensor


class Module:
    """Base class: a named tree of parameters.

    Parameters are attributes of type :class:`Tensor` with
    ``requires_grad=True``; submodules are attributes of type
    :class:`Module` (or lists of them).
    """

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        extra = set(state) - set(params)
        if missing or extra:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for name, p in params.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].copy()

    def copy_from(self, other: "Module") -> None:
        """Hard-copy parameters (target-network sync)."""
        self.load_state_dict(other.state_dict())

    def soft_update(self, other: "Module", tau: float) -> None:
        """Polyak averaging toward ``other``: p <- (1-tau) p + tau p_other."""
        mine = dict(self.named_parameters())
        theirs = dict(other.named_parameters())
        for name, p in mine.items():
            p.data = (1.0 - tau) * p.data + tau * theirs[name].data

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W + b`` with Kaiming-uniform init."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("dimensions must be positive")
        bound = np.sqrt(6.0 / in_dim)
        self.W = Tensor(
            rng.uniform(-bound, bound, size=(in_dim, out_dim)), requires_grad=True
        )
        self.b = Tensor(np.zeros(out_dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.W + self.b


class LayerNorm(Module):
    """Layer normalization over the last axis, with learned scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv = (var + self.eps).pow(-0.5)
        return centered * inv * self.gamma + self.beta


class LeakyReLU(Module):
    def __init__(self, alpha: float = 0.01) -> None:
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.alpha)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    def __init__(self, *modules: Module) -> None:
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class ResidualBlock(Module):
    """Pre-norm residual block (He et al. 2016 identity mappings):

    ``x + Linear(LReLU(Linear(LayerNorm(x))))``
    """

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        self.norm = LayerNorm(dim)
        self.fc1 = Linear(dim, dim, rng)
        self.fc2 = Linear(dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        h = self.norm(x)
        h = self.fc1(h).leaky_relu(0.01)
        h = self.fc2(h)
        return x + h
