"""High-throughput CRR training engine (the fused hot path).

The per-timestep :class:`~repro.core.crr.CRRTrainer` builds one autograd
subgraph per ``(t, layer)`` pair; at the default ``(B=16, L=8)`` scale the
Python op dispatch — not the math — dominates the step time. This package
restructures the step around sequence-level kernels:

- :mod:`~repro.train.fastpath` — raw-numpy no-grad kernels (targets,
  advantage filter) over all ``(B, L)`` timesteps at once, with
  preallocated ``out=`` buffers.
- :mod:`~repro.train.sampler` — a thread-based prefetching batch pipeline
  with deterministic per-batch seed streams.
- :mod:`~repro.train.engine` — :class:`FastCRRTrainer`, the drop-in
  trainer combining both with the fused autograd path for the two
  gradient losses, plus ``.npz`` checkpoint/resume and per-phase timing.
- :mod:`~repro.train.parallel` — :class:`DataParallelTrainer`, N gradient
  worker processes over per-(step, grain) seed streams with a canonical
  grain-order all-reduce: bit-identical results for any worker count.
- :mod:`~repro.train.bench` — the fused-vs-legacy training-throughput
  benchmark behind ``python -m repro train-bench`` / ``BENCH_train.json``,
  including the worker-scaling curve.
"""

from repro.train.engine import FastCRRTrainer
from repro.train.parallel import DataParallelTrainer
from repro.train.sampler import SequenceSampler

__all__ = ["DataParallelTrainer", "FastCRRTrainer", "SequenceSampler"]
