"""Winning-rate matrix: CC scheme x topology class.

The Sussex study's headline finding is that learned-vs-heuristic verdicts
flip when the topology changes; this figure makes that visible in one
table. Every participant plays a small representative env set per topology
class (:func:`~repro.collector.environments.topology_class_environments`),
each rollout is scored per scenario-interval with the league's margin
rules, and the matrix reports one winning rate per (participant, class)
cell.

``repro topo matrix`` renders and saves it in a single CLI invocation; CI
uploads the JSON as the ``topo-matrix`` artifact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.collector.environments import topology_class_environments
from repro.evalx.leagues import Participant, _run_matches, run_participant
from repro.evalx.scores import ScoreEntry, interval_scores, winning_rates
from repro.netsim.topo import TOPOLOGY_CLASSES

__all__ = ["TopologyMatrix", "run_topology_matrix", "DEFAULT_MATRIX_SCHEMES"]

MATRIX_SCHEMA_VERSION = 1

#: the default scheme panel: the paper's headline heuristics
DEFAULT_MATRIX_SCHEMES = ("cubic", "newreno", "vegas", "westwood")


@dataclass
class TopologyMatrix:
    """Winning rates per (participant, topology class)."""

    #: class -> participant -> winning rate in [0, 1]
    rates: Dict[str, Dict[str, float]]
    #: class -> raw per-interval scores (for drill-down)
    entries: Dict[str, List[ScoreEntry]] = field(default_factory=dict)

    @property
    def classes(self) -> List[str]:
        return list(self.rates.keys())

    @property
    def participants(self) -> List[str]:
        names: List[str] = []
        for per_class in self.rates.values():
            for name in per_class:
                if name not in names:
                    names.append(name)
        return names

    def format_table(self) -> str:
        """Render the matrix: rows = participants, columns = classes."""
        names = self.participants
        classes = self.classes
        width = max([len(n) for n in names] + [8])
        header = f"{'scheme':>{width}} " + " ".join(
            f"{c:>12}" for c in classes
        )
        lines = [header, "-" * len(header)]
        # rank rows by mean winning rate across classes
        def mean_rate(name: str) -> float:
            vals = [self.rates[c].get(name, 0.0) for c in classes]
            return sum(vals) / len(vals) if vals else 0.0

        for name in sorted(names, key=mean_rate, reverse=True):
            cells = " ".join(
                f"{self.rates[c].get(name, 0.0) * 100:11.2f}%" for c in classes
            )
            lines.append(f"{name:>{width}} {cells}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "schema_version": MATRIX_SCHEMA_VERSION,
            "classes": self.classes,
            "participants": self.participants,
            "rates": {
                c: {n: round(r, 6) for n, r in per.items()}
                for c, per in self.rates.items()
            },
        }

    def save(self, path) -> None:
        """Atomically write the matrix as JSON (the CI artifact)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=1) + "\n")
        os.replace(tmp, path)


def run_topology_matrix(
    participants: Sequence[Participant],
    classes: Sequence[str] = TOPOLOGY_CLASSES,
    duration: float = 12.0,
    margin: float = 0.10,
    alpha: float = 2.0,
    n_intervals: int = 4,
    tick: float = 0.02,
    workers: int = 1,
    progress=None,
) -> TopologyMatrix:
    """Play every participant through every topology class and score it.

    Winning rates are computed *within* each class (an interval is won by
    beating every rival's score by the league margin in that scenario), so
    a column reads as "who masters this shape", directly comparable across
    columns. ``workers`` fans rollouts over processes exactly like
    :func:`~repro.evalx.leagues.run_league`.
    """
    rates: Dict[str, Dict[str, float]] = {}
    entries: Dict[str, List[ScoreEntry]] = {}
    for topo_class in classes:
        envs = topology_class_environments(topo_class, duration=duration)
        class_entries: List[ScoreEntry] = []
        if workers is not None and workers == 1:
            for env in envs:
                for p in participants:
                    result = run_participant(p, env, tick=tick)
                    class_entries.extend(
                        interval_scores(result, alpha=alpha, n_intervals=n_intervals)
                    )
                    if progress is not None:
                        progress(f"{p.name} on {env.env_id}")
        else:
            for result in _run_matches(participants, envs, tick, workers, progress):
                class_entries.extend(
                    interval_scores(result, alpha=alpha, n_intervals=n_intervals)
                )
        key = topo_class.replace("-", "_")
        rates[key] = winning_rates(class_entries, margin=margin)
        entries[key] = class_entries
    return TopologyMatrix(rates=rates, entries=entries)
