"""TCP Vegas (Brakmo, O'Malley, Peterson — SIGCOMM 1994).

The canonical delay-based scheme: once per RTT, compare the expected rate
``cwnd/baseRTT`` to the actual rate ``cwnd/RTT``; keep the backlog
``diff = (expected - actual) * baseRTT`` between ``α`` (2) and ``β`` (4)
packets by adjusting the window by one packet per RTT. Ranks at the top of
the paper's Set I heuristics and at the bottom of Set II (it yields to
Cubic), which is exactly the tension Sage learns to resolve.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Vegas(CongestionControl):
    """Delay-based backlog targeting (alpha=2, beta=4)."""

    name = "vegas"

    ALPHA = 2.0
    BETA = 4.0
    GAMMA = 1.0

    def __init__(self) -> None:
        self.base_rtt = float("inf")
        self.min_rtt_cycle = float("inf")
        self._acks_in_rtt = 0.0
        self._ss_toggle = False

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.base_rtt = min(self.base_rtt, rtt)
            self.min_rtt_cycle = min(self.min_rtt_cycle, rtt)
        self._acks_in_rtt += n_acked
        if self._acks_in_rtt < sock.cwnd:
            return
        self._acks_in_rtt = 0.0
        rtt_cycle = self.min_rtt_cycle
        self.min_rtt_cycle = float("inf")
        if rtt_cycle == float("inf") or self.base_rtt == float("inf"):
            return
        expected = sock.cwnd / self.base_rtt
        actual = sock.cwnd / max(rtt_cycle, 1e-6)
        diff = (expected - actual) * self.base_rtt

        if self.in_slow_start(sock):
            # double every *other* RTT; leave slow start when backlog > gamma
            if diff > self.GAMMA:
                sock.ssthresh = min(sock.ssthresh, sock.cwnd - 1.0)
                sock.cwnd = max(sock.cwnd - (diff - self.GAMMA), self.MIN_CWND)
            else:
                self._ss_toggle = not self._ss_toggle
                if self._ss_toggle:
                    sock.cwnd *= 2.0
            return

        if diff < self.ALPHA:
            sock.cwnd += 1.0
        elif diff > self.BETA:
            sock.cwnd = max(sock.cwnd - 1.0, self.MIN_CWND)
        # else: equilibrium, hold
