"""Tests for the CSV/Markdown reporting helpers."""

import pytest

from repro.evalx.internet import InternetReport
from repro.evalx.leagues import LeagueResult
from repro.evalx.reporting import (
    internet_rows,
    league_rows,
    load_csv,
    markdown_table,
    save_csv,
)


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "r.csv"
        save_csv(path, ["a", "b"], [[1, 2.5], ["x", "y"]])
        rows = load_csv(path)
        assert rows == [{"a": "1", "b": "2.5"}, {"a": "x", "b": "y"}]

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ValueError):
            save_csv(tmp_path / "r.csv", ["a", "b"], [[1]])


class TestMarkdown:
    def test_structure(self):
        md = markdown_table(["scheme", "rate"], [["cubic", 0.123456]])
        lines = md.splitlines()
        assert lines[0] == "| scheme | rate |"
        assert lines[1] == "|---|---|"
        assert "0.1235" in lines[2]

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            markdown_table(["a"], [[1, 2]])


class TestFlatteners:
    def test_league_rows_sorted_by_combined(self):
        res = LeagueResult(
            set1_rates={"a": 0.9, "b": 0.1},
            set2_rates={"a": 0.0, "b": 0.8},
        )
        rows = league_rows(res)
        assert rows[0][0] == "a" or rows[0][0] == "b"
        combined = [r[1] + r[2] for r in rows]
        assert combined == sorted(combined, reverse=True)

    def test_internet_rows(self):
        rep = InternetReport(
            tag="t",
            norm_throughput={"x": 0.5},
            norm_delay={"x": 1.2},
            norm_delay_p95={"x": 2.0},
        )
        rows = internet_rows(rep)
        assert rows == [["x", 0.5, 1.2, 2.0]]
