"""Model compression: the Section-8 overhead-reduction directions, realized.

The paper points at three orthogonal lines of work for cutting the deployed
model's CPU cost — pruning redundant units, quantization, and knowledge
distillation. Each is implemented here against the numpy policy:

- :func:`prune_magnitude` — global magnitude pruning of weight matrices
  (Frankle & Carbin-style one-shot), keeping the top ``1 - sparsity``
  fraction of weights by absolute value.
- :func:`quantize_per_tensor` — symmetric per-tensor int8 simulation: each
  weight matrix is rounded onto a 256-level grid (the dequantized weights
  stay float so the FastPolicy path is unchanged).
- :class:`DistillationTrainer` — trains a smaller student policy to match a
  teacher's action distribution over the pool's states (on-policy moment
  matching on the GMM mode + mixture log-likelihood).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.collector.gr_unit import normalize_state
from repro.collector.pool import PolicyPool
from repro.core.agent import SageAgent
from repro.core.networks import NetworkConfig, SagePolicy, log_action
from repro.nn.autograd import Tensor, no_grad, stack_rows
from repro.nn.layers import Module
from repro.nn.optim import Adam, clip_grad_norm


def prune_magnitude(module: Module, sparsity: float) -> Dict[str, float]:
    """Zero the smallest-magnitude fraction of every weight matrix in place.

    Bias vectors and LayerNorm scales are left untouched (standard
    practice — they are cheap and sensitive). Returns the per-parameter
    achieved sparsity.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    report: Dict[str, float] = {}
    for name, p in module.named_parameters():
        if p.data.ndim < 2:  # skip biases / norms
            continue
        flat = np.abs(p.data).ravel()
        k = int(sparsity * flat.size)
        if k == 0:
            report[name] = 0.0
            continue
        threshold = np.partition(flat, k - 1)[k - 1]
        mask = np.abs(p.data) > threshold
        p.data = p.data * mask
        report[name] = 1.0 - float(mask.mean())
    return report


def quantize_per_tensor(module: Module, n_bits: int = 8) -> Dict[str, float]:
    """Simulate symmetric per-tensor quantization of all weight matrices.

    Each matrix is snapped to ``2^n_bits - 1`` levels spanning
    ``[-max|w|, +max|w|]``. Returns per-parameter max absolute rounding
    error (useful for asserting accuracy bounds).
    """
    if n_bits < 2 or n_bits > 16:
        raise ValueError(f"n_bits must be in [2, 16], got {n_bits}")
    levels = 2 ** (n_bits - 1) - 1
    report: Dict[str, float] = {}
    for name, p in module.named_parameters():
        if p.data.ndim < 2:
            continue
        scale = np.abs(p.data).max() / levels
        if scale == 0:
            report[name] = 0.0
            continue
        quantized = np.round(p.data / scale) * scale
        report[name] = float(np.abs(quantized - p.data).max())
        p.data = quantized
    return report


class DistillationTrainer:
    """Distill a (large) teacher policy into a smaller student.

    The student maximizes the likelihood of the teacher's *deterministic*
    actions over states drawn from the pool — matching what the deployed
    (mode-acting) teacher would do, which is exactly the behaviour worth
    preserving.
    """

    def __init__(
        self,
        teacher: SagePolicy,
        student_config: NetworkConfig,
        pool: PolicyPool,
        batch_size: int = 16,
        seq_len: int = 8,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.teacher = teacher
        self.pool = pool
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.rng = np.random.default_rng(seed)
        self.student = SagePolicy(student_config, self.rng)
        self.opt = Adam(self.student.parameters(), lr=lr)
        self.steps_done = 0

    def train_step(self) -> float:
        batch = self.pool.sample_sequences(
            self.batch_size, self.seq_len, self.rng, normalize=normalize_state
        )
        states = batch["states"]
        with no_grad():
            teacher_feats = self.teacher.features_seq(states)
            targets = np.stack(
                [self.teacher.mode(teacher_feats[t]) for t in range(self.seq_len)],
                axis=1,
            )  # (B, L) ratios
        log_t = log_action(targets)
        feats = self.student.features_seq(states)
        losses = [
            (self.student.log_prob(feats[t], log_t[:, t]) * -1.0).mean()
            for t in range(self.seq_len)
        ]
        loss = stack_rows(losses).mean()
        self.opt.zero_grad()
        loss.backward()
        clip_grad_norm(self.student.parameters(), 10.0)
        self.opt.step()
        self.steps_done += 1
        return float(loss.data)

    def train(self, n_steps: int) -> float:
        loss = float("nan")
        for _ in range(n_steps):
            loss = self.train_step()
        return loss

    def agent(self, name: str = "sage-distilled") -> SageAgent:
        return SageAgent(self.student, name=name)


def param_count(module: Module) -> int:
    """Total number of scalar parameters in a module tree."""
    return sum(p.data.size for p in module.parameters())


def nonzero_count(module: Module) -> int:
    """Number of nonzero parameters (post-pruning footprint)."""
    return int(sum(np.count_nonzero(p.data) for p in module.parameters()))
