"""Row-consistent batched inference primitives.

The serving engine folds N concurrent flows into one ``(N, D)`` forward
pass. For that to be *provably* equivalent to N independent batch=1 passes
(the guarantee `tests/test_serve.py` enforces bit-for-bit), every batched
op must produce, for each row, the exact same floats regardless of how many
other rows share the batch.

``@`` / ``np.matmul`` do not have that property: BLAS gemm picks different
blocking (and therefore different summation order) for different batch
sizes, so row i of a ``(64, D) @ (D, E)`` product can differ in the last
ulp from the same row pushed through a ``(1, D) @ (D, E)`` call. ``einsum``
(without ``optimize=``, which would route back to BLAS) reduces each output
element with a fixed-order loop over ``D``, independent of N — slower than
gemm on large batches, but deterministic across batch composition, which is
what a serving tier that must never change a flow's decision stream needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batched_linear", "batched_layer_norm", "batched_sigmoid"]


def batched_linear(x: np.ndarray, w: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``x @ w + b`` for ``(N, D)`` inputs, bitwise row-consistent in N."""
    return np.einsum("nd,de->ne", x, w) + b


def batched_layer_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """LayerNorm over the last axis; per-row reductions, consistent in N."""
    mu = x.mean(axis=-1, keepdims=True)
    var = ((x - mu) ** 2).mean(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * gamma + beta


def batched_sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))
