"""The General Representation (GR) unit.

The GR unit treats every CC scheme as a black box: it periodically samples
*raw* transport-layer signals (delay-, throughput-, and loss-oriented) from
the sender socket, computes avg/min/max statistics over three observation
windows (Small / Medium / Large), and represents the scheme's output as the
congestion-window ratio ``a_t = cwnd_t / cwnd_{t-1}``.

The resulting 69-element state vector follows Table 1 of the paper exactly;
:data:`STATE_FIELDS` lists the elements in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.netsim.packet import MSS_BYTES
from repro.tcp.socket import TcpSender


@dataclass
class WindowConfig:
    """Observation-window lengths, in GR ticks (Section 7.4).

    The paper's ablation rebuilds pools with a single window of 10 / 200 /
    1000 ticks (Sage-s / Sage-m / Sage-l); default Sage uses all three.
    """

    small: int = 10
    medium: int = 200
    large: int = 1000

    def __post_init__(self) -> None:
        if not (0 < self.small <= self.medium <= self.large):
            raise ValueError(
                f"windows must satisfy 0 < small <= medium <= large, got "
                f"{self.small}/{self.medium}/{self.large}"
            )


def _field_block(prefix: str) -> List[str]:
    return [
        f"{prefix}_{w}.{s}"
        for w in ("s", "m", "l")
        for s in ("avg", "min", "max")
    ]


#: The 69 input statistics, in Table-1 order.
STATE_FIELDS: List[str] = (
    ["srtt", "rttvar", "thr", "ca_state"]
    + _field_block("rtt")
    + _field_block("thr")
    + _field_block("rtt_rate")
    + _field_block("rtt_var")
    + _field_block("inflight")
    + _field_block("lost")
    + [
        "time_delta",
        "rtt_rate",
        "loss_db",
        "acked_rate",
        "dr_ratio",
        "bdp_cwnd",
        "dr",
        "cwnd_unacked_rate",
        "dr_max",
        "dr_max_ratio",
        "pre_act",
    ]
)

STATE_DIM = len(STATE_FIELDS)
assert STATE_DIM == 69, f"Table 1 defines 69 inputs, got {STATE_DIM}"

#: Index ranges used by the Fig. 12 input ablations.
MINMAX_INDICES = [
    i for i, f in enumerate(STATE_FIELDS) if f.endswith(".min") or f.endswith(".max")
]
RTTVAR_RATE_INDICES = [  # "rows 23-40": rtt_rate_* and rtt_var_* blocks
    i
    for i, f in enumerate(STATE_FIELDS)
    if f.startswith("rtt_rate_") or f.startswith("rtt_var_")
]
LOSS_INFLIGHT_INDICES = [  # "rows 41-58": inflight_* and lost_* blocks
    i
    for i, f in enumerate(STATE_FIELDS)
    if f.startswith("inflight_") or f.startswith("lost_")
]


#: the six windowed signals, in Table-1 block order
_N_SIGNALS = 6


class _SignalRing:
    """Fixed-size history of the six windowed signals, no per-tick allocs.

    One ``(6, 2 * capacity)`` array holds every signal's last ``capacity``
    samples twice (the classic mirrored ring): the newest ``k`` samples of
    all six signals are always one contiguous 2-D slice, so window stats
    are three vectorized reductions instead of thousands of Python-loop
    iterations per tick.
    """

    __slots__ = ("buf", "cap", "n", "pos")

    def __init__(self, capacity: int) -> None:
        self.buf = np.zeros((_N_SIGNALS, 2 * capacity))
        self.cap = capacity
        self.n = 0  # samples stored, saturates at cap
        self.pos = 0  # next write column in [0, cap)

    def append(self, values: List[float]) -> None:
        self.buf[:, self.pos] = values
        self.buf[:, self.pos + self.cap] = self.buf[:, self.pos]
        self.pos = (self.pos + 1) % self.cap
        if self.n < self.cap:
            self.n += 1

    def window(self, k: int) -> np.ndarray:
        """The newest ``min(k, n)`` samples of every signal, ``(6, k')``."""
        k = min(k, self.n)
        end = self.pos + self.cap
        return self.buf[:, end - k : end]


class GRUnit:
    """Samples one sender socket into Table-1 state vectors and actions.

    Call :meth:`tick` once per control interval; it returns the current
    69-dim state (raw units) and the action ``cwnd_t / cwnd_{t-1}``.
    """

    __slots__ = (
        "sender",
        "windows",
        "_ring",
        "_sample_buf",
        "_last_tick_time",
        "_last_cwnd",
        "_last_rtt",
        "_last_dr",
        "_last_dr_max",
        "_last_lost_bytes",
        "_last_delivered",
        "_last_action",
    )

    def __init__(self, sender: TcpSender, windows: WindowConfig = None) -> None:
        self.sender = sender
        self.windows = windows if windows is not None else WindowConfig()
        self._ring = _SignalRing(self.windows.large)
        self._sample_buf = [0.0] * _N_SIGNALS  # reused per tick
        self._last_tick_time = None
        self._last_cwnd = max(sender.cwnd, 1.0)
        self._last_rtt = 0.0
        self._last_dr = 0.0
        self._last_dr_max = 0.0
        self._last_lost_bytes = 0
        self._last_delivered = 0
        self._last_action = 1.0

    # ------------------------------------------------------------------
    def tick(self, out: Optional[np.ndarray] = None) -> tuple:
        """Sample the socket; returns ``(state_vector, action)``.

        The action is the cwnd ratio *since the previous tick* — i.e. what
        the underlying scheme did during the last interval, which is exactly
        the paper's generalized output representation.

        ``out``: optional preallocated ``(69,)`` float64 buffer the state is
        written into (and returned) — rollout runners pass rows of one big
        trajectory array so the hot loop allocates nothing per tick.
        """
        s = self.sender
        now = s.loop.now

        srtt = s.srtt_or_min
        rttvar = s.rttvar
        thr = s.delivery_rate
        min_rtt = s.min_rtt if s.min_rtt != float("inf") else srtt

        rtt_rate = srtt / self._last_rtt if self._last_rtt > 0 else 1.0
        new_lost_bytes = s.lost_bytes - self._last_lost_bytes
        new_delivered = s.delivered - self._last_delivered
        time_delta_raw = (
            now - self._last_tick_time if self._last_tick_time is not None else 0.0
        )
        time_delta = time_delta_raw / max(min_rtt, 1e-3)
        loss_db = new_lost_bytes / max(time_delta_raw, 1e-6) if time_delta_raw else 0.0
        acked_rate = (
            new_delivered / max(time_delta_raw, 1e-6) if time_delta_raw else 0.0
        )
        dr = s.delivery_rate
        dr_ratio = dr / self._last_dr if self._last_dr > 0 else 1.0
        dr_max = s.max_delivery_rate
        dr_max_ratio = dr_max / self._last_dr_max if self._last_dr_max > 0 else 1.0
        bdp_pkts = (
            dr * max(min_rtt, 1e-4) / (8.0 * MSS_BYTES) if dr > 0 else 0.0
        )
        bdp_cwnd = bdp_pkts / max(s.cwnd, 1.0)
        cwnd_unacked_rate = s.inflight / max(s.sent_packets, 1)

        # -- push per-tick raw samples into the shared ring --
        sample = self._sample_buf
        sample[0] = srtt
        sample[1] = thr
        sample[2] = rtt_rate
        sample[3] = rttvar
        sample[4] = float(s.inflight_bytes)
        sample[5] = float(new_lost_bytes)
        self._ring.append(sample)

        state = out if out is not None else np.empty(STATE_DIM)
        state[0] = srtt
        state[1] = rttvar
        state[2] = thr
        state[3] = float(s.ca_state)
        # Six 9-element blocks: [avg, min, max] per window per signal. Three
        # vectorized reductions per window cover all six signals at once.
        w = self.windows
        span = _N_SIGNALS * 9
        for wi, k in enumerate((w.small, w.medium, w.large)):
            win = self._ring.window(k)
            base = 4 + 3 * wi  # offset of this window's stats inside a block
            state[base : base + span : 9] = win.mean(axis=1)
            state[base + 1 : base + 1 + span : 9] = win.min(axis=1)
            state[base + 2 : base + 2 + span : 9] = win.max(axis=1)
        state[58] = time_delta
        state[59] = rtt_rate
        state[60] = loss_db
        state[61] = acked_rate
        state[62] = dr_ratio
        state[63] = bdp_cwnd
        state[64] = dr
        state[65] = cwnd_unacked_rate
        state[66] = dr_max
        state[67] = dr_max_ratio
        state[68] = self._last_action

        # -- output representation: cwnd ratio over the last interval --
        cwnd_now = max(s.cwnd, 1.0)
        action = cwnd_now / self._last_cwnd
        if action < 1.0 / 3.0:
            action = 1.0 / 3.0
        elif action > 3.0:
            action = 3.0

        self._last_cwnd = cwnd_now
        self._last_rtt = srtt if srtt > 0 else self._last_rtt
        self._last_dr = dr if dr > 0 else self._last_dr
        self._last_dr_max = dr_max if dr_max > 0 else self._last_dr_max
        self._last_lost_bytes = s.lost_bytes
        self._last_delivered = s.delivered
        self._last_tick_time = now
        self._last_action = action
        return state, action


# --------------------------------------------------------------------------
# Normalization: the network trains on dimensionless inputs. The scales are
# fixed constants (not data statistics) so a deployed model needs no
# dataset-side bookkeeping.
# --------------------------------------------------------------------------
_TIME_SCALE = 0.1  # seconds  -> srtt of 100 ms maps to 1.0
_RATE_SCALE = 48e6  # bits/s  -> 48 Mbps maps to 1.0
_BYTES_SCALE = 48e6 * 0.1 / 8  # one 100 ms BDP at 48 Mbps
_COUNT_RATE_SCALE = 4000.0  # packets/s


def _scales() -> np.ndarray:
    scale = np.ones(STATE_DIM)
    for i, f in enumerate(STATE_FIELDS):
        if f.startswith(("srtt", "rttvar", "rtt_s", "rtt_m", "rtt_l", "rtt_var")):
            scale[i] = _TIME_SCALE
        elif f.startswith(("thr", "dr", "loss_db")) and "ratio" not in f:
            scale[i] = _RATE_SCALE
        elif f.startswith(("inflight", "lost")):
            scale[i] = _BYTES_SCALE
        elif f == "acked_rate":
            scale[i] = _COUNT_RATE_SCALE
        # ratios, ca_state, time_delta, pre_act stay at 1.0
    return scale


_STATE_SCALES = _scales()


def normalize_state(state: np.ndarray) -> np.ndarray:
    """Scale a raw Table-1 state vector (or batch) to O(1) magnitudes."""
    out = np.asarray(state, dtype=np.float64) / _STATE_SCALES
    return np.clip(out, -10.0, 10.0)
