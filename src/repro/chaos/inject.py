"""FaultInjector: fires a :class:`~repro.chaos.plan.FaultPlan` into the system.

One injector instance is threaded through a run — the parallel collector,
the shard writer, the training engine, the serving engine, the topology
runner (``netsim.linkflap`` via
:func:`repro.workload.runner.apply_linkflap`), and the workload generator
(``workload.burst`` inside
:func:`repro.workload.generator.generate_schedule`) each accept an
optional ``chaos`` argument and consult it at their injection points. Every
fault is **one-shot**: once taken for its target occurrence it never fires
again, so a retried task / replayed batch runs clean and the surrounding
recovery machinery (re-dispatch, quarantine + repair, divergence rollback,
heuristic fallback) can fully mask it. ``injector.fired`` is the audit
trail: which faults actually armed/fired, with a human-readable detail.

With ``chaos=None`` (the default everywhere) the hooks cost one ``is None``
check — production paths carry no chaos overhead.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.chaos.plan import FaultPlan, FaultSpec

__all__ = ["FaultInjector", "FiredFault"]


@dataclass
class FiredFault:
    """One fault the injector armed or fired, for the audit trail.

    ``at`` is the ``time.monotonic()`` instant the fault was taken — the
    soak harness subtracts it from the moment recovery completes to get a
    per-fault time-to-recovery.
    """

    site: str
    target: int
    param: float
    detail: str
    at: float = 0.0


class FaultInjector:
    """One-shot dispenser for a plan's faults, with an audit trail."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pending: Dict[Tuple[str, int], FaultSpec] = {
            (f.site, f.target): f for f in plan.faults
        }
        self.fired: List[FiredFault] = []

    # ------------------------------------------------------------------
    def take(self, site: str, target: int, detail: str = "") -> Optional[FaultSpec]:
        """Pop the fault scheduled for ``(site, target)``, if any.

        Returns the spec exactly once per scheduled fault; subsequent calls
        for the same occurrence return ``None`` (recovery replays run
        clean).
        """
        spec = self._pending.pop((site, int(target)), None)
        if spec is not None:
            self.fired.append(
                FiredFault(
                    site=spec.site, target=spec.target, param=spec.param,
                    detail=detail or "fired", at=time.monotonic(),
                )
            )
        return spec

    def pending(self, site: str) -> List[FaultSpec]:
        """Faults at ``site`` that have not fired yet."""
        return sorted(
            (s for (st, _), s in self._pending.items() if st == site),
            key=lambda s: s.target,
        )

    @property
    def exhausted(self) -> bool:
        """True once every scheduled fault has been taken."""
        return not self._pending

    # ------------------------------------------------------------------
    # collector: crash / hang faults are armed up front because they fire
    # inside worker processes (the wrapper data must be picklable)
    # ------------------------------------------------------------------
    def collector_faults(self) -> Optional[Dict]:
        """Arm every pending collector fault for the next dispatch round.

        Returns ``{"crash": [task indices], "hang": {task index: seconds}}``
        — plain picklable data the worker-side chunk runner consults — or
        ``None`` when no collector faults remain. All returned faults are
        consumed (one-shot): retry rounds run clean.
        """
        crash = [
            s.target for s in self.pending("collector.crash")
            if self.take("collector.crash", s.target,
                         "armed: worker running this task will be killed")
        ]
        hang = {
            s.target: s.param for s in self.pending("collector.hang")
            if self.take("collector.hang", s.target,
                         f"armed: task will stall {s.param:g}s")
        }
        if not crash and not hang:
            return None
        return {"crash": sorted(crash), "hang": dict(sorted(hang.items()))}

    # ------------------------------------------------------------------
    # datastore: corrupt a shard's files right after they commit
    # ------------------------------------------------------------------
    def corrupt_shard(self, root, shard_index: int, files: Dict) -> List[str]:
        """Apply scheduled datastore faults to shard ``shard_index``.

        ``files`` maps part name -> ShardFile (as recorded in the
        manifest); corruption happens *after* the manifest recorded the
        good checksums, so ``verify_store`` detects it. Returns a list of
        descriptions of what was corrupted.
        """
        root = Path(root)
        done: List[str] = []
        spec = self.take(
            "datastore.bitflip", shard_index,
            "flipped one byte of the shard's states file",
        )
        if spec is not None:
            path = root / files["states"].file
            offset = self._flip_offset(path, spec)
            with open(path, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ 0xFF]))
            done.append(f"bit-flip at byte {offset} of {path.name}")
        spec = self.take(
            "datastore.truncate", shard_index,
            "truncated the tail of the shard's rewards file",
        )
        if spec is not None:
            path = root / files["rewards"].file
            size = path.stat().st_size
            cut = int(min(max(spec.param, 1.0), max(size - 1, 1)))
            os.truncate(path, size - cut)
            done.append(f"truncated {cut} bytes off {path.name}")
        return done

    def _flip_offset(self, path: Path, spec: FaultSpec) -> int:
        """Deterministic in-file offset, past the ``.npy`` header."""
        size = path.stat().st_size
        header = 128  # .npy v1 header is 128 bytes for these arrays
        if size <= header + 1:
            return max(size - 1, 0)
        span = size - header - 1
        mix = (self.plan.seed * 2654435761 + spec.target * 97) & 0x7FFFFFFF
        return header + (mix % span)

    # ------------------------------------------------------------------
    # train: poison one sampled batch
    # ------------------------------------------------------------------
    def mutate_batch(self, batch_index: int, batch: Dict[str, np.ndarray]) -> None:
        """Apply scheduled training faults to batch ``batch_index`` in place."""
        spec = self.take(
            "train.nan", batch_index, "overwrote the batch's rewards with NaN"
        )
        if spec is not None:
            batch["rewards"][...] = np.nan
        spec = self.take(
            "train.spike", batch_index, "mis-scaled the batch's arrays"
        )
        if spec is not None:
            # a mis-scaled (un-normalized) batch: rewards alone would be
            # clamped by the critic's C51 atom support, so scale the states
            # too — the loss spike must actually reach the guard's metrics
            scale = spec.param or 1e6
            batch["rewards"][...] = batch["rewards"] * scale
            if "states" in batch:
                batch["states"][...] = batch["states"] * scale

    def worker_crash(self, step_index: int) -> Optional[FaultSpec]:
        """The gradient-worker kill scheduled before step ``step_index``.

        Consulted by the data-parallel trainer's parent at the top of each
        step; ``spec.param`` names the victim worker (reduced modulo the
        worker count). One-shot like every site — the respawned worker
        replays the step from the same per-(step, grain) seeds, so
        recovery is bit-identical to a run that never saw the kill.
        """
        return self.take(
            "train.workercrash", step_index,
            "killed a gradient worker before this step",
        )

    # ------------------------------------------------------------------
    # serve: poison or delay one tick's forward pass
    # ------------------------------------------------------------------
    def mutate_serve(
        self,
        tick_index: int,
        ratios: np.ndarray,
        h_next: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Apply scheduled serving faults to tick ``tick_index``.

        Called inside the engine's deadline-timed region, so a ``slow``
        fault shows up as real inference latency.
        """
        spec = self.take(
            "serve.slow", tick_index, "delayed the tick's forward pass"
        )
        if spec is not None:
            time.sleep(spec.param or 0.05)
        spec = self.take(
            "serve.nan", tick_index,
            "replaced the tick's policy outputs with NaN",
        )
        if spec is not None:
            ratios = np.full_like(np.asarray(ratios, dtype=np.float64), np.nan)
            if h_next is not None:
                h_next = np.full_like(h_next, np.nan)
        return ratios, h_next
