"""Dynamics experiments driven by learned agents (the non-scheme paths)."""

import numpy as np
import pytest

from repro.collector.gr_unit import STATE_DIM
from repro.core.agent import SageAgent
from repro.core.networks import NetworkConfig, SagePolicy
from repro.evalx.dynamics import fairness_experiment, friendliness_experiment
from repro.evalx.leagues import Participant

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)


@pytest.fixture()
def agent():
    return SageAgent(SagePolicy(TINY, np.random.default_rng(0)), name="mini")


class TestAgentFairness:
    def test_agent_flows_share_link(self, agent):
        res = fairness_experiment(
            Participant.from_agent(agent), n_flows=2, join_every=2.0,
            bw_mbps=12.0, duration=10.0,
        )
        assert len(res.flow_stats) == 2
        total = sum(s.avg_throughput_bps for s in res.flow_stats)
        # untrained agents are weak but must still move traffic, and can
        # never exceed the link
        assert total > 1e5
        assert total < 12e6 * 1.3

    def test_each_agent_flow_has_independent_state(self, agent):
        res = fairness_experiment(
            Participant.from_agent(agent), n_flows=2, join_every=2.0,
            bw_mbps=12.0, duration=8.0,
        )
        # the late flow existed for less time, so it moved fewer bytes
        early, late = res.flow_stats
        assert early.duration > late.duration


class TestAgentFriendliness:
    def test_agent_vs_cubic_runs(self, agent):
        res = friendliness_experiment(
            Participant.from_agent(agent), n_cubic=1, bw_mbps=12.0,
            duration=8.0,
        )
        assert len(res.flow_stats) == 2
        assert res.flow_stats[1].avg_throughput_bps > 1e6  # cubic progresses

    def test_jain_index_bounds(self, agent):
        res = friendliness_experiment(
            Participant.from_agent(agent), n_cubic=2, bw_mbps=12.0,
            duration=8.0,
        )
        assert 0.0 <= res.jain_index() <= 1.0
