"""A small reverse-mode automatic-differentiation engine on numpy.

Design: every :class:`Tensor` wraps an ``ndarray`` and remembers the
backward closure of the op that produced it. Calling :meth:`Tensor.backward`
topologically sorts the graph and accumulates gradients. Broadcasting is
supported by summing gradients over broadcast axes.

Only the ops Sage's network needs are implemented — enough for Linear,
LayerNorm, GRU, residual blocks, Gaussian-mixture log-likelihoods, and
categorical cross-entropies.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Tuple, Union

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # sum over leading axes added by broadcasting
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum over axes that were size-1 in the original
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None

    # -- construction helpers ------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    # -- graph mechanics -------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (defaults to d(self)/d(self)=1)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        topo: List[Tensor] = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad on non-scalar")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- binary ops -------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
        )

        def _bw(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        out._backward = _bw if out.requires_grad else None
        return out

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
        )

        def _bw(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        out._backward = _bw if out.requires_grad else None
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        return self * as_tensor(other).pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        out = Tensor(
            self.data ** exponent,
            requires_grad=self.requires_grad,
            parents=(self,),
        )

        def _bw(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1.0))

        out._backward = _bw if out.requires_grad else None
        return out

    def matmul(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            parents=(self, other),
        )

        def _bw(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ g)

        out._backward = _bw if out.requires_grad else None
        return out

    __matmul__ = matmul

    # -- unary ops ---------------------------------------------------------
    def _unary(self, value: np.ndarray, dvalue: np.ndarray) -> "Tensor":
        out = Tensor(value, requires_grad=self.requires_grad, parents=(self,))

        def _bw(g: np.ndarray) -> None:
            self._accumulate(g * dvalue)

        out._backward = _bw if out.requires_grad else None
        return out

    def exp(self) -> "Tensor":
        v = np.exp(self.data)
        return self._unary(v, v)

    def log(self) -> "Tensor":
        return self._unary(np.log(self.data), 1.0 / self.data)

    def tanh(self) -> "Tensor":
        v = np.tanh(self.data)
        return self._unary(v, 1.0 - v * v)

    def sigmoid(self) -> "Tensor":
        v = 1.0 / (1.0 + np.exp(-self.data))
        return self._unary(v, v * (1.0 - v))

    def leaky_relu(self, alpha: float = 0.01) -> "Tensor":
        v = np.where(self.data > 0, self.data, alpha * self.data)
        d = np.where(self.data > 0, 1.0, alpha)
        return self._unary(v, d)

    def sqrt(self) -> "Tensor":
        return self.pow(0.5)

    def clip(self, lo: float, hi: float) -> "Tensor":
        v = np.clip(self.data, lo, hi)
        d = ((self.data >= lo) & (self.data <= hi)).astype(np.float64)
        return self._unary(v, d)

    # -- reductions ---------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            requires_grad=self.requires_grad,
            parents=(self,),
        )

        def _bw(g: np.ndarray) -> None:
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.shape).copy())
            else:
                g_exp = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(np.broadcast_to(g_exp, self.shape).copy())

        out._backward = _bw if out.requires_grad else None
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.data.size
        else:
            n = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def max_detached(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Max treated as a constant (for log-sum-exp stabilization)."""
        return Tensor(self.data.max(axis=axis, keepdims=keepdims))

    # -- shape ops -----------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        out = Tensor(
            self.data.reshape(*shape),
            requires_grad=self.requires_grad,
            parents=(self,),
        )

        def _bw(g: np.ndarray) -> None:
            self._accumulate(g.reshape(self.shape))

        out._backward = _bw if out.requires_grad else None
        return out

    def __getitem__(self, key) -> "Tensor":
        out = Tensor(
            self.data[key], requires_grad=self.requires_grad, parents=(self,)
        )

        def _bw(g: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            full[key] = g
            self._accumulate(full)

        out._backward = _bw if out.requires_grad else None
        return out

    # -- composite numerics ----------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        m = self.max_detached(axis=axis, keepdims=True)
        shifted = self - m
        lse = shifted.exp().sum(axis=axis, keepdims=True).log()
        return shifted - lse

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        m = self.max_detached(axis=axis, keepdims=True)
        out = (self - m).exp().sum(axis=axis, keepdims=True).log() + m
        if not keepdims:
            out = out.reshape(
                tuple(s for i, s in enumerate(out.shape) if i != (axis % self.ndim))
            )
        return out


def as_tensor(x) -> Tensor:
    """Wrap anything array-like as a constant Tensor (no-op for Tensors)."""
    return x if isinstance(x, Tensor) else Tensor(x)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, parents=tuple(tensors))

    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _bw(g: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                idx = [slice(None)] * g.ndim
                idx[axis] = slice(lo, hi)
                t._accumulate(g[tuple(idx)])

    out._backward = _bw if out.requires_grad else None
    return out


def stack_rows(tensors: List[Tensor]) -> Tensor:
    """Stack same-shape tensors along a new leading axis."""
    data = np.stack([t.data for t in tensors])
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, parents=tuple(tensors))

    def _bw(g: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(g[i])

    out._backward = _bw if out.requires_grad else None
    return out
