"""Process resource guards: RSS watermark checks for long-lived runs.

The soak layer's answer to slow death by memory: the trainer's shard
cache and the server's metrics sample lists both grow with run length,
and a multi-hour process should shed cache under pressure rather than be
OOM-killed mid-checkpoint. :func:`rss_bytes` reads the process's resident
set (``/proc/self/status`` VmRSS, with a ``getrusage`` fallback off
Linux); :class:`MemoryGuard` polls it every ``check_every`` calls and
fires registered release valves — ``ShardedPool.drop_cache``,
``ServingMetrics.shrink`` — whenever the soft watermark is crossed.

Guards are advisory by design: they free what can be recomputed and
record that they did, but never raise — dying on the guard would defeat
its purpose.
"""

from __future__ import annotations

import resource
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["rss_bytes", "MemoryGuard"]


def rss_bytes() -> int:
    """Current resident set size in bytes (0 if unmeasurable)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; either way it is a
        # peak, so only the fallback path over-reports
        return int(usage.ru_maxrss) * 1024
    except (OSError, ValueError):
        return 0


class MemoryGuard:
    """Soft RSS watermark with registered release valves.

    ``maybe_check()`` is cheap enough for per-tick / per-step call sites:
    it counts calls and only reads RSS every ``check_every``-th one. When
    RSS exceeds ``soft_limit_bytes`` every registered callback fires (in
    registration order) and the event is appended to ``events`` with the
    RSS before and after — the soak report's evidence that the guard ran.
    """

    def __init__(
        self,
        soft_limit_bytes: int,
        check_every: int = 64,
        measure: Callable[[], int] = rss_bytes,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if soft_limit_bytes <= 0:
            raise ValueError("soft_limit_bytes must be > 0")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.soft_limit_bytes = int(soft_limit_bytes)
        self.check_every = int(check_every)
        self.measure = measure
        self.clock = clock
        self._calls = 0
        self._valves: List[Tuple[str, Callable[[], object]]] = []
        self.events: List[Dict] = []

    def add_valve(self, name: str, release: Callable[[], object]) -> None:
        """Register a release valve; its return value is recorded."""
        self._valves.append((str(name), release))

    def maybe_check(self) -> Optional[Dict]:
        """Count one call site visit; poll RSS on every Nth.

        Returns the event dict when the watermark tripped, else ``None``.
        """
        self._calls += 1
        if self._calls % self.check_every:
            return None
        return self.check()

    def check(self) -> Optional[Dict]:
        """Poll RSS now; fire every valve if over the watermark."""
        before = self.measure()
        if before <= self.soft_limit_bytes:
            return None
        released = {}
        for name, release in self._valves:
            try:
                released[name] = release()
            except Exception as exc:  # advisory: never let a valve kill us
                released[name] = f"error: {exc}"
        event = {
            "at": self.clock(),
            "rss_before": int(before),
            "rss_after": int(self.measure()),
            "limit": self.soft_limit_bytes,
            "released": released,
        }
        self.events.append(event)
        return event
