"""Bottleneck capacity processes.

The paper's environments vary four knobs: link capacity, minimum RTT, buffer
size, and competing flows. The capacity side is captured here as a
*rate process*: a callable mapping simulation time to the instantaneous
service rate of the bottleneck in bits per second.

Three families reproduce the paper's scenario classes:

- :class:`FlatRate` — Set I "flat" scenarios (constant capacity).
- :class:`StepRate` — Set I "step" scenarios (capacity multiplied by
  ``m ∈ {0.25, 0.5, 2, 4}`` at a switch time).
- :class:`TraceRate` + :func:`cellular_trace` — the highly-variable cellular
  links of Section 6.1 (our synthetic substitute for the 23 recorded traces).

:func:`internet_path_rate` builds the mildly-variable capacity processes used
by the simulated GENI/AWS Internet paths (Appendix G substitute).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class RateProcess:
    """Base class: instantaneous bottleneck rate as a function of time."""

    def rate_at(self, t: float) -> float:
        """Service rate in bits/second at simulation time ``t``."""
        raise NotImplementedError

    def mean_rate(self, t_end: float, dt: float = 0.05) -> float:
        """Time-average of the rate over ``[0, t_end]`` (used for fair-share
        and reward normalization)."""
        ts = np.arange(0.0, t_end, dt)
        return float(np.mean([self.rate_at(float(t)) for t in ts]))


class FlatRate(RateProcess):
    """Constant-capacity link (the paper's flat scenarios)."""

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.rate_bps = float(rate_bps)

    def rate_at(self, t: float) -> float:
        return self.rate_bps

    def mean_rate(self, t_end: float, dt: float = 0.05) -> float:
        return self.rate_bps

    def __repr__(self) -> str:
        return f"FlatRate({self.rate_bps / 1e6:.1f}Mbps)"


class StepRate(RateProcess):
    """Capacity that switches from ``rate1`` to ``m * rate1`` at ``t_switch``.

    Matches Appendix C.1: the step scenarios start at ``BW1`` and jump to
    ``m × BW1`` with ``m`` drawn from ``(0.25, 0.5, 2, 4)``, capped under
    200 Mbps.
    """

    def __init__(self, rate1_bps: float, m: float, t_switch: float) -> None:
        if rate1_bps <= 0 or m <= 0:
            raise ValueError("rates must be positive")
        if t_switch < 0:
            raise ValueError("switch time must be non-negative")
        self.rate1_bps = float(rate1_bps)
        self.rate2_bps = float(rate1_bps * m)
        self.t_switch = float(t_switch)

    def rate_at(self, t: float) -> float:
        return self.rate1_bps if t < self.t_switch else self.rate2_bps

    def mean_rate(self, t_end: float, dt: float = 0.05) -> float:
        if t_end <= self.t_switch:
            return self.rate1_bps
        frac1 = self.t_switch / t_end
        return frac1 * self.rate1_bps + (1.0 - frac1) * self.rate2_bps

    def __repr__(self) -> str:
        return (
            f"StepRate({self.rate1_bps / 1e6:.1f}->"
            f"{self.rate2_bps / 1e6:.1f}Mbps@{self.t_switch:.0f}s)"
        )


class TraceRate(RateProcess):
    """Piecewise-constant rate from per-slot samples (trace playback).

    ``samples_bps[i]`` is the rate during ``[i*slot, (i+1)*slot)``; the trace
    wraps around, mirroring how Mahimahi replays a finite trace forever.
    """

    def __init__(self, samples_bps: Sequence[float], slot: float = 0.1) -> None:
        arr = np.asarray(samples_bps, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("trace must be a non-empty 1-D sequence")
        if np.any(arr < 0):
            raise ValueError("trace rates must be non-negative")
        if slot <= 0:
            raise ValueError("slot must be positive")
        self.samples_bps = arr
        self.slot = float(slot)

    def rate_at(self, t: float) -> float:
        idx = int(t / self.slot) % self.samples_bps.size
        # Never report a truly zero rate: a zero-rate slot would stall the
        # link-service recursion. Treat outage slots as a crawling 10 kbps.
        return max(float(self.samples_bps[idx]), 1e4)

    def mean_rate(self, t_end: float, dt: float = 0.05) -> float:
        n_slots = max(1, int(round(t_end / self.slot)))
        if n_slots >= self.samples_bps.size:
            return float(np.mean(self.samples_bps))
        return float(np.mean(self.samples_bps[:n_slots]))

    def __repr__(self) -> str:
        return (
            f"TraceRate(n={self.samples_bps.size}, "
            f"mean={np.mean(self.samples_bps) / 1e6:.1f}Mbps)"
        )


def cellular_trace(
    seed: int,
    duration: float = 60.0,
    slot: float = 0.1,
    mean_mbps: float = 8.0,
    burst_mbps: float = 24.0,
) -> TraceRate:
    """Synthesize a highly-variable cellular-like capacity trace.

    Substitute for the 23 recorded LTE traces of [9]: a two-timescale
    Markov-modulated process. A slow AR(1) component models user mobility /
    cell-load drift, a fast lognormal component models per-TTI scheduling
    jitter, and occasional deep fades model outages. Statistics (mean of a
    few Mbps, bursts of tens of Mbps, ms-scale variability, sporadic
    near-outage) match published cellular trace characterizations.
    """
    rng = np.random.default_rng(seed)
    n = int(round(duration / slot))
    # Slow mobility component: AR(1) in log-rate space.
    log_mean = np.log(mean_mbps)
    slow = np.empty(n)
    x = log_mean + 0.3 * rng.standard_normal()
    for i in range(n):
        x = 0.98 * x + 0.02 * log_mean + 0.08 * rng.standard_normal()
        slow[i] = x
    # Fast scheduling jitter.
    fast = 0.35 * rng.standard_normal(n)
    rate_mbps = np.exp(slow + fast)
    # Occasional deep fades lasting a few slots.
    n_fades = rng.poisson(duration / 15.0)
    for _ in range(n_fades):
        start = rng.integers(0, n)
        length = rng.integers(2, 12)
        rate_mbps[start : start + length] *= rng.uniform(0.02, 0.15)
    rate_mbps = np.clip(rate_mbps, 0.05, burst_mbps)
    return TraceRate(rate_mbps * 1e6, slot=slot)


def internet_path_rate(
    seed: int,
    base_mbps: float,
    duration: float = 30.0,
    slot: float = 0.2,
    jitter: float = 0.15,
) -> TraceRate:
    """Mildly-variable capacity for a simulated wide-area Internet path.

    Real WAN paths show slow available-bandwidth fluctuation due to cross
    traffic; we model it as the base rate modulated by a bounded AR(1)
    multiplier with coefficient of variation ``jitter``.
    """
    rng = np.random.default_rng(seed)
    n = int(round(duration / slot))
    mult = np.empty(n)
    x = 1.0
    for i in range(n):
        x = 0.95 * x + 0.05 * 1.0 + jitter * 0.3 * rng.standard_normal()
        mult[i] = np.clip(x, 0.4, 1.4)
    return TraceRate(base_mbps * 1e6 * mult, slot=slot)
