"""Integration tests: paper-level qualitative behaviours, end to end.

These assert the *shape* findings the paper's evaluation rests on — the
same invariants the benchmark harness regenerates at larger scale.
"""

import numpy as np
import pytest

from repro.collector.environments import EnvConfig
from repro.collector.rollout import collect_trajectory, run_policy
from repro.core.crr import CRRConfig
from repro.core.networks import NetworkConfig
from repro.core.training import collect_pool, train_sage_on_pool

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)


def flat_env(bw=24.0, rtt=0.04, buf=1.0, dur=10.0, n_cubic=0, env_id="it"):
    return EnvConfig(
        env_id=env_id, kind="flat", bw_mbps=bw, min_rtt=rtt, buffer_bdp=buf,
        n_competing_cubic=n_cubic, duration=dur,
    )


class TestSingleFlowLandscape:
    """Set-I-style facts: who utilizes, who keeps delay low."""

    @pytest.mark.parametrize("scheme", ["cubic", "vegas", "bbr2", "newreno", "yeah"])
    def test_schemes_utilize_the_link(self, scheme):
        r = collect_trajectory(flat_env(), scheme)
        assert r.stats.avg_throughput_bps > 0.7 * 24e6

    def test_vegas_keeps_delay_near_propagation(self):
        r = collect_trajectory(flat_env(buf=4.0), "vegas")
        # vegas holds only a few packets of backlog
        assert r.stats.avg_rtt < 0.04 * 1.5

    def test_cubic_fills_deep_buffers(self):
        r = collect_trajectory(flat_env(buf=4.0), "cubic")
        assert r.stats.avg_rtt > 0.04 * 1.5  # standing queue

    def test_delay_ranking_vegas_beats_cubic(self):
        rv = collect_trajectory(flat_env(buf=4.0), "vegas")
        rc = collect_trajectory(flat_env(buf=4.0), "cubic")
        assert rv.stats.avg_owd < rc.stats.avg_owd


class TestFriendlinessLandscape:
    """Set-II-style facts: who coexists with Cubic, who starves."""

    def test_vegas_starves_against_cubic(self):
        r = collect_trajectory(flat_env(buf=4.0, dur=20.0, n_cubic=1), "vegas")
        cubic_thr = r.competitor_stats[0].avg_throughput_bps
        assert r.stats.avg_throughput_bps < 0.5 * cubic_thr

    def test_cubic_coexists_with_cubic(self):
        r = collect_trajectory(flat_env(buf=2.0, dur=30.0, n_cubic=1), "cubic")
        mine = r.stats.avg_throughput_bps
        theirs = r.competitor_stats[0].avg_throughput_bps
        assert 0.3 < mine / max(theirs, 1.0) < 3.0

    def test_rankings_invert_between_sets(self):
        # The Fig. 1 headline: Vegas wins Set I, loses Set II; Cubic reverse.
        v1 = collect_trajectory(flat_env(buf=4.0, env_id="s1"), "vegas")
        c1 = collect_trajectory(flat_env(buf=4.0, env_id="s1"), "cubic")
        from repro.evalx.scores import power_score

        sp_vegas = power_score(v1.stats.avg_throughput_bps, v1.stats.avg_rtt)
        sp_cubic = power_score(c1.stats.avg_throughput_bps, c1.stats.avg_rtt)
        assert sp_vegas > sp_cubic  # vegas better in single flow
        v2 = collect_trajectory(flat_env(buf=4.0, dur=20.0, n_cubic=1), "vegas")
        c2 = collect_trajectory(flat_env(buf=4.0, dur=20.0, n_cubic=1), "cubic")
        fair = 12e6
        assert abs(c2.stats.avg_throughput_bps - fair) < abs(
            v2.stats.avg_throughput_bps - fair
        )  # cubic friendlier than vegas


class TestStepScenarios:
    def test_schemes_track_capacity_increase(self):
        env = EnvConfig(
            env_id="step-up", kind="step", bw_mbps=12.0, min_rtt=0.04,
            buffer_bdp=2.0, step_m=2.0, step_at=6.0, duration=12.0,
        )
        r = collect_trajectory(env, "cubic")
        series = np.asarray(r.stats.throughput_series)
        times = np.asarray(r.stats.times)
        before = series[(times > 3.0) & (times < 6.0)].mean()
        after = series[times > 9.0].mean()
        assert after > 1.3 * before

    def test_schemes_back_off_on_capacity_drop(self):
        env = EnvConfig(
            env_id="step-down", kind="step", bw_mbps=24.0, min_rtt=0.04,
            buffer_bdp=2.0, step_m=0.5, step_at=6.0, duration=12.0,
        )
        r = collect_trajectory(env, "cubic")
        series = np.asarray(r.stats.throughput_series)
        times = np.asarray(r.stats.times)
        after = series[times > 9.0].mean()
        assert after < 0.7 * 24e6


class TestOfflinePipeline:
    def test_pool_to_policy_to_deployment(self):
        envs = [flat_env(bw=12.0, dur=4.0, env_id="p1")]
        pool = collect_pool(envs, schemes=["cubic", "vegas", "bbr2"])
        assert pool.n_transitions > 400
        run = train_sage_on_pool(
            pool, n_steps=10, n_checkpoints=2, net_config=TINY,
            crr_config=CRRConfig(batch_size=4, seq_len=4),
        )
        result = run_policy(envs[0], run.agent)
        assert result.stats.avg_throughput_bps > 0
        assert result.length > 100

    def test_pool_save_load_then_train(self, tmp_path):
        envs = [flat_env(bw=12.0, dur=3.0, env_id="p2")]
        pool = collect_pool(envs, schemes=["cubic"])
        pool.save(tmp_path / "pool.npz")
        from repro.collector.pool import PolicyPool

        loaded = PolicyPool.load(tmp_path / "pool.npz")
        run = train_sage_on_pool(
            loaded, n_steps=4, n_checkpoints=2, net_config=TINY,
            crr_config=CRRConfig(batch_size=4, seq_len=4),
        )
        assert run.trainer.steps_done == 4


class TestAQMRobustness:
    @pytest.mark.parametrize("aqm", ["taildrop", "headdrop", "codel", "pie", "bode"])
    def test_transport_survives_every_aqm(self, aqm):
        env = EnvConfig(
            env_id=f"aqm-{aqm}", kind="flat", bw_mbps=12.0, min_rtt=0.02,
            buffer_bdp=4.0, duration=6.0, aqm=aqm,
        )
        r = collect_trajectory(env, "cubic")
        assert r.stats.avg_throughput_bps > 0.4 * 12e6

    def test_codel_cuts_standing_delay(self):
        deep = flat_env(buf=8.0, dur=8.0, env_id="td")
        r_td = collect_trajectory(deep, "cubic")
        env_codel = EnvConfig(
            env_id="cd", kind="flat", bw_mbps=24.0, min_rtt=0.04,
            buffer_bdp=8.0, duration=8.0, aqm="codel",
        )
        r_cd = collect_trajectory(env_codel, "cubic")
        assert r_cd.stats.avg_owd < r_td.stats.avg_owd


class TestCellular:
    def test_variable_link_is_survivable(self):
        env = EnvConfig(
            env_id="cell", kind="cellular", bw_mbps=8.0, min_rtt=0.04,
            buffer_bdp=6.0, duration=10.0, trace_seed=5,
        )
        r = collect_trajectory(env, "cubic")
        assert r.stats.avg_throughput_bps > 1e6

    def test_delay_sensitive_scheme_keeps_delay_lower(self):
        env = EnvConfig(
            env_id="cell2", kind="cellular", bw_mbps=8.0, min_rtt=0.04,
            buffer_bdp=6.0, duration=10.0, trace_seed=6,
        )
        r_cubic = collect_trajectory(env, "cubic")
        r_vegas = collect_trajectory(env, "vegas")
        assert r_vegas.stats.avg_owd < r_cubic.stats.avg_owd * 1.1
