"""Discrete-event single-bottleneck network emulator.

This package is the repo's substitute for the (improved) Mahimahi emulator
used by the paper: a dumbbell network with one bottleneck link whose capacity
may be constant (*flat* scenarios), change once (*step* scenarios), or follow
a trace (*cellular* scenarios), a finite buffer managed by a pluggable AQM,
and symmetric propagation delay setting the minimum RTT.

The public surface:

- :class:`~repro.netsim.engine.EventLoop` — the simulation clock.
- :class:`~repro.netsim.packet.Packet` — what flows through the network.
- :class:`~repro.netsim.link.Link` — the bottleneck: queue + service process.
- :mod:`~repro.netsim.aqm` — TailDrop, HeadDrop, CoDel, PIE, BoDe, plus the
  intelligent queues: FQCoDel and LearnedECN (with
  :mod:`~repro.netsim.ecn_model` holding the marking predictor and
  :mod:`~repro.netsim.telemetry` the queue-trace recorder that trains it).
- :mod:`~repro.netsim.traces` — capacity processes (flat, step, cellular,
  Internet-path).
- :class:`~repro.netsim.network.Network` — wires senders, the bottleneck,
  and receivers together.
- :mod:`~repro.netsim.topo` — the graph engine underneath: multi-node
  topologies (parking lot, incast, proxy split) with per-link rate, delay,
  loss, and AQM; ``Network`` is its dumbbell facade.
"""

from repro.netsim.engine import EventLoop
from repro.netsim.packet import Packet, MSS_BYTES
from repro.netsim.link import Link
from repro.netsim.network import Network, PathConfig, make_network
from repro.netsim.aqm import (
    AQM,
    ECN_CAPABLE_AQMS,
    TailDrop,
    HeadDrop,
    CoDel,
    PIE,
    BoDe,
    FQCoDel,
    LearnedECN,
    aqm_names,
    make_aqm,
)
from repro.netsim.ecn_model import EcnPredictor
from repro.netsim.telemetry import QueueTelemetryRecorder
from repro.netsim.traces import (
    RateProcess,
    FlatRate,
    StepRate,
    TraceRate,
    cellular_trace,
    internet_path_rate,
)
from repro.netsim.topo import (
    TOPOLOGY_CLASSES,
    FlowPath,
    Node,
    PathView,
    TopoLink,
    Topology,
    describe_topology,
    dumbbell_topology,
    incast_topology,
    make_topology,
    parking_lot_topology,
    proxy_split_topology,
)

__all__ = [
    "EventLoop",
    "Packet",
    "MSS_BYTES",
    "Link",
    "Network",
    "PathConfig",
    "make_network",
    "AQM",
    "TailDrop",
    "HeadDrop",
    "CoDel",
    "PIE",
    "BoDe",
    "FQCoDel",
    "LearnedECN",
    "ECN_CAPABLE_AQMS",
    "EcnPredictor",
    "QueueTelemetryRecorder",
    "aqm_names",
    "make_aqm",
    "RateProcess",
    "FlatRate",
    "StepRate",
    "TraceRate",
    "cellular_trace",
    "internet_path_rate",
    "TOPOLOGY_CLASSES",
    "FlowPath",
    "Node",
    "PathView",
    "TopoLink",
    "Topology",
    "describe_topology",
    "dumbbell_topology",
    "incast_topology",
    "make_topology",
    "parking_lot_topology",
    "proxy_split_topology",
]
