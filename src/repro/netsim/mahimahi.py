"""Mahimahi trace-file interoperability.

The paper's emulator (an improved Mahimahi) drives the bottleneck from
trace files where **each line is a millisecond timestamp at which one
1500-byte packet may be delivered** (timestamps may repeat for multi-packet
slots; the trace loops forever). This module converts between that format
and :class:`~repro.netsim.traces.TraceRate`, so recorded cellular traces —
including the originals used by the paper — plug straight into this
simulator.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence

import numpy as np

from repro.netsim.packet import MSS_BYTES
from repro.netsim.traces import TraceRate


def parse_mahimahi_lines(lines: Sequence[str]) -> List[int]:
    """Parse trace lines into a sorted list of millisecond timestamps."""
    stamps: List[int] = []
    for i, raw in enumerate(lines):
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        try:
            value = int(text)
        except ValueError as exc:
            raise ValueError(f"line {i + 1}: not a millisecond integer: {text!r}") from exc
        if value < 0:
            raise ValueError(f"line {i + 1}: negative timestamp {value}")
        stamps.append(value)
    if not stamps:
        raise ValueError("trace contains no delivery opportunities")
    if stamps != sorted(stamps):
        raise ValueError("trace timestamps must be non-decreasing")
    return stamps


def trace_from_mahimahi(
    source, slot: float = 0.1, packet_bytes: int = MSS_BYTES
) -> TraceRate:
    """Build a :class:`TraceRate` from a Mahimahi trace (path or lines).

    The per-slot rate is ``opportunities_in_slot * packet_bytes * 8 / slot``.
    """
    if isinstance(source, (str, Path)):
        lines = Path(source).read_text().splitlines()
    else:
        lines = list(source)
    stamps = parse_mahimahi_lines(lines)
    duration_ms = stamps[-1] + 1
    slot_ms = max(int(round(slot * 1000)), 1)
    n_slots = (duration_ms + slot_ms - 1) // slot_ms
    counts = np.zeros(n_slots)
    for t in stamps:
        counts[t // slot_ms] += 1
    rates = counts * packet_bytes * 8.0 / (slot_ms / 1000.0)
    return TraceRate(rates, slot=slot_ms / 1000.0)


def mahimahi_from_rate(
    rate_bps_per_slot: Sequence[float],
    slot: float = 0.1,
    packet_bytes: int = MSS_BYTES,
) -> List[str]:
    """Render per-slot rates as Mahimahi trace lines (inverse conversion).

    Opportunities are spread evenly inside each slot; fractional packets
    accumulate across slots so long-run rate is preserved.
    """
    lines: List[str] = []
    slot_ms = max(int(round(slot * 1000)), 1)
    carry = 0.0
    for i, rate in enumerate(rate_bps_per_slot):
        if rate < 0:
            raise ValueError(f"slot {i}: negative rate")
        pkts = rate * (slot_ms / 1000.0) / (packet_bytes * 8.0) + carry
        n = int(pkts)
        carry = pkts - n
        base = i * slot_ms
        for k in range(n):
            lines.append(str(base + (k * slot_ms) // max(n, 1)))
    if not lines:
        raise ValueError("rate sequence produced an empty trace")
    return lines


def write_mahimahi(path, rate_bps_per_slot: Sequence[float], slot: float = 0.1) -> None:
    """Write per-slot rates to a Mahimahi trace file."""
    lines = mahimahi_from_rate(rate_bps_per_slot, slot=slot)
    Path(path).write_text("\n".join(lines) + "\n")
