"""Orca-like hybrid baseline (Abbasloo et al., SIGCOMM 2020) and variants.

Orca keeps a classic kernel scheme (Cubic) in charge at fine timescales and
lets an RL agent apply a coarse multiplicative correction to the window.
Here the hybrid agent wraps Cubic: the underlying scheme updates cwnd as
usual between control epochs; every ``epoch`` ticks the learned policy
multiplies the result.

- ``orca``   — trained online (off-policy) with the single-flow reward only
  (as the original paper did).
- ``orcav2`` — retrained with Sage's dual rewards over Set I + Set II
  (the paper's control experiment showing "more training ≠ better").
- ``deepcc`` — the DeepCC-like plug-in: same hybrid, but the agent's action
  is clamped to only ever *shrink* the window toward a delay target
  (DeepCC's goal is bounding delay on variable links).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.collector.environments import EnvConfig, training_environments
from repro.collector.rollout import run_policy
from repro.baselines.online_rl import OnlineRLTrainer
from repro.core.agent import SageAgent
from repro.core.networks import NetworkConfig


class OrcaAgent:
    """Hybrid wrapper: a learned coarse correction on top of heuristic cwnd.

    The rollout driver calls :meth:`act` every GR tick; between epochs the
    agent returns ratio 1.0 relative to what the underlying scheme would do.
    We emulate the underlying Cubic by tracking a virtual AIMD-ish window
    from the observed state (the rollout runner drives a real socket whose
    own CC is disabled, so the hybrid reconstructs the heuristic's behaviour
    from its recorded trajectory statistics).
    """

    def __init__(
        self,
        inner: SageAgent,
        epoch: int = 10,
        delay_bound_only: bool = False,
        name: str = "orca",
    ) -> None:
        self.inner = inner
        self.epoch = epoch
        self.delay_bound_only = delay_bound_only
        self.name = name
        self._tick = 0

    def reset(self) -> None:
        self.inner.reset()
        self._tick = 0
        self._cubic_growth = 1.0

    #: Table-1 index of loss_db (rate of newly lost bytes).
    _LOSS_DB_IDX = 60

    def act(self, state: np.ndarray) -> float:
        self._tick += 1
        # Heuristic component: gentle AIMD-flavoured growth per tick, with
        # the classic multiplicative backoff when the state reports fresh
        # loss. (The real Orca keeps kernel Cubic running; this virtual
        # heuristic reproduces its role at the trajectory level.)
        fresh_loss = state[self._LOSS_DB_IDX] > 0
        heuristic = 0.75 if fresh_loss else 1.015
        if self._tick % self.epoch:
            return float(np.clip(heuristic, 1.0 / 3.0, 3.0))
        learned = self.inner.act(state)
        if self.delay_bound_only:
            learned = min(learned, 1.0)  # DeepCC only ever shrinks
        return float(np.clip(heuristic * learned, 1.0 / 3.0, 3.0))


def train_orca(
    environments: Optional[Sequence[EnvConfig]] = None,
    dual_reward: bool = False,
    deepcc: bool = False,
    n_iterations: int = 6,
    steps_per_iter: int = 8,
    net_config: Optional[NetworkConfig] = None,
    seed: int = 0,
) -> OrcaAgent:
    """Train an Orca-like hybrid.

    ``dual_reward=False`` reproduces original Orca (single-flow envs and
    reward only); ``dual_reward=True`` is Orcav2 (Sage's rewards over
    Set I + Set II). ``deepcc=True`` switches to the delay-bounding plug-in.
    """
    envs = (
        list(environments)
        if environments is not None
        else training_environments("mini")
    )
    if not dual_reward:
        envs = [e for e in envs if not e.is_multi_flow] or envs
    trainer = OnlineRLTrainer(environments=envs, net_config=net_config, seed=seed)
    trainer.train(n_iterations=n_iterations, steps_per_iter=steps_per_iter)
    name = "deepcc" if deepcc else ("orcav2" if dual_reward else "orca")
    inner = trainer.agent(name=f"{name}-inner")
    return OrcaAgent(inner, delay_bound_only=deepcc, name=name)
