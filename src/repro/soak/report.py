"""Soak-run accounting: MTTR aggregation, SLO evaluation, BENCH output.

The harness hands this module its raw observations — one record per fired
fault (with detection latency and time-to-recovery), the invariant
violations, the per-round journal — and gets back the ``BENCH_soak.json``
payload: per-site fault counts, MTTR p50/p99, and a pass/fail verdict per
SLO. Times are **conservative upper bounds**: recovery is credited at the
granularity of the boundary that masked the fault (stage completion,
verify-repair completion, the next serving tick), never earlier.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "SOAK_SCHEMA_VERSION",
    "FaultObserver",
    "aggregate_faults",
    "evaluate_slos",
    "write_soak_report",
]

SOAK_SCHEMA_VERSION = 1


class FaultObserver:
    """Turns an injector's audit trail into timed fault records.

    The harness calls :meth:`observe` at every recovery boundary; faults
    fired since the previous call are stamped with detection latency and
    time-to-recovery relative to that boundary. Sites listed in ``defer``
    stay *open* — their corruption is only found by a later audit (e.g.
    ``datastore.*`` damage surfaces in the verify stage) — and are closed
    by :meth:`resolve` at that audit's boundary.
    """

    def __init__(self, clock=None) -> None:
        import time

        self.clock = clock if clock is not None else time.monotonic
        self.records: List[Dict] = []
        self._cursor: Dict[int, int] = {}  # id(injector) -> fired seen
        self._open: List[Dict] = []

    def observe(self, injector, boundary: str, defer=()) -> None:
        """Stamp faults fired since the last call at this boundary."""
        if injector is None:
            return
        now = self.clock()
        seen = self._cursor.get(id(injector), 0)
        new = injector.fired[seen:]
        self._cursor[id(injector)] = len(injector.fired)
        for fault in new:
            record = {
                "site": fault.site,
                "target": fault.target,
                "detail": fault.detail,
                "recovery_boundary": boundary,
                "detected_s": max(now - fault.at, 0.0),
                "ttr_s": max(now - fault.at, 0.0),
                "fired_at": fault.at,
            }
            if any(fault.site.startswith(prefix) for prefix in defer):
                record["recovery_boundary"] = None
                record["detected_s"] = None
                record["ttr_s"] = None
                self._open.append(record)
            self.records.append(record)

    def resolve(self, prefix: str, boundary: str) -> None:
        """Close every open fault under ``prefix`` at this boundary."""
        now = self.clock()
        still_open = []
        for record in self._open:
            if record["site"].startswith(prefix):
                record["recovery_boundary"] = boundary
                record["detected_s"] = max(now - record["fired_at"], 0.0)
                record["ttr_s"] = max(now - record["fired_at"], 0.0)
            else:
                still_open.append(record)
        self._open = still_open


def _percentiles(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"p50_s": 0.0, "p99_s": 0.0, "max_s": 0.0, "n": 0}
    arr = np.asarray(values, dtype=np.float64)
    return {
        "p50_s": round(float(np.percentile(arr, 50.0)), 6),
        "p99_s": round(float(np.percentile(arr, 99.0)), 6),
        "max_s": round(float(arr.max()), 6),
        "n": int(arr.size),
    }


def aggregate_faults(records: List[Dict]) -> Dict:
    """Per-site counts plus MTTR / detection percentiles."""
    by_site: Dict[str, int] = {}
    for record in records:
        by_site[record["site"]] = by_site.get(record["site"], 0) + 1
    ttrs = [r["ttr_s"] for r in records if r.get("ttr_s") is not None]
    dets = [r["detected_s"] for r in records if r.get("detected_s") is not None]
    return {
        "total": len(records),
        "by_site": dict(sorted(by_site.items())),
        "sites_exercised": len(by_site),
        "mttr": _percentiles(ttrs),
        "detection": _percentiles(dets),
    }


def evaluate_slos(
    faults: Dict,
    violations: List[Dict],
    mttr_p50_limit_s: float,
    mttr_p99_limit_s: float,
    min_sites: int = 0,
) -> Dict:
    """Per-SLO ``{"limit", "actual", "pass"}`` verdicts plus the overall."""
    mttr = faults["mttr"]
    slos = {
        "mttr_p50_s": {
            "limit": mttr_p50_limit_s,
            "actual": mttr["p50_s"],
            "pass": mttr["p50_s"] <= mttr_p50_limit_s,
        },
        "mttr_p99_s": {
            "limit": mttr_p99_limit_s,
            "actual": mttr["p99_s"],
            "pass": mttr["p99_s"] <= mttr_p99_limit_s,
        },
        "invariant_violations": {
            "limit": 0,
            "actual": len(violations),
            "pass": not violations,
        },
        "sites_exercised": {
            "limit": min_sites,
            "actual": faults["sites_exercised"],
            "pass": faults["sites_exercised"] >= min_sites,
        },
    }
    slos["passed"] = all(
        v["pass"] for k, v in slos.items() if isinstance(v, dict)
    )
    return slos


def write_soak_report(report: Dict, path) -> None:
    """Atomically write ``BENCH_soak.json``."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(report, indent=1, sort_keys=False) + "\n")
    os.replace(tmp, path)


def format_soak_report(report: Dict) -> str:
    """Human-readable soak summary (CLI output)."""
    faults = report["faults"]
    lines = [
        f"soak: {report['rounds']} round(s) in {report['wall_s']:.1f}s, "
        f"{faults['total']} fault(s) across "
        f"{faults['sites_exercised']} site(s)"
    ]
    for site, count in faults["by_site"].items():
        lines.append(f"  {site:20s} x{count}")
    mttr = faults["mttr"]
    lines.append(
        f"MTTR p50={mttr['p50_s']:.3f}s p99={mttr['p99_s']:.3f}s "
        f"max={mttr['max_s']:.3f}s (n={mttr['n']})"
    )
    inv = report["invariants"]
    lines.append(
        f"invariants: {len(inv['checked'])} checked, "
        f"{len(inv['violations'])} violation(s)"
    )
    for violation in inv["violations"]:
        lines.append(f"  VIOLATION [{violation['invariant']}] "
                     f"{violation['detail']}")
    identity = report.get("identity")
    if identity and identity.get("checked"):
        lines.append(
            "artifacts vs fault-free twin: "
            + ", ".join(
                f"{k}={'identical' if v else 'DIVERGED'}"
                for k, v in identity.items()
                if k != "checked"
            )
        )
    for name, slo in report["slos"].items():
        if not isinstance(slo, dict):
            continue
        verdict = "PASS" if slo["pass"] else "FAIL"
        lines.append(
            f"SLO {name:22s} actual={slo['actual']} "
            f"limit={slo['limit']} {verdict}"
        )
    lines.append("soak PASSED" if report["passed"] else "soak FAILED")
    return "\n".join(lines)
