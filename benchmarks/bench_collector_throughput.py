"""Throughput of the parallel Policy-Collector engine.

Measures rollouts/sec collecting a fixed ``(env, scheme)`` batch serially
(``workers=1``) and across a curve of worker counts, verifies the parallel
pools are bit-identical to the serial one, and writes the result table to
``BENCH_collector.json``.

Runs two ways:

- standalone: ``PYTHONPATH=src python benchmarks/bench_collector_throughput.py``
  (``--tiny`` for a seconds-scale CI smoke run);
- under pytest-benchmark with the rest of the bench suite:
  ``pytest benchmarks/bench_collector_throughput.py``.

On a single-core machine the curve degenerates to ~1x; the speedup
assertion only applies from 4 cores up (the ISSUE target: >=2.5x at 4
workers on a 4+-core machine).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.collector.environments import EnvConfig  # noqa: E402
from repro.collector.parallel import (  # noqa: E402
    _auto_chunksize,
    collect_pool_parallel,
    run_tasks,
)

OUT_PATH = REPO / "BENCH_collector.json"


def _trivial_task(x: int) -> int:
    """Near-zero work: what's left is dispatch (submit/pickle/IPC) cost."""
    return x * x


def bench_dispatch_overhead(n_tasks: int = 64, workers: int = 2) -> dict:
    """Per-task dispatch overhead: chunksize=1 vs the auto heuristic.

    Trivial tasks make compute negligible, so elapsed time is dominated by
    the driver-side submit/pickle round trips the chunking heuristic is
    meant to amortize — measurable even on a single-core machine, where
    the worker-scaling curve itself degenerates.
    """
    tasks = list(range(n_tasks))
    auto = _auto_chunksize(n_tasks, workers)
    out = {"n_tasks": n_tasks, "workers": workers, "auto_chunksize": auto}
    for label, size in (("chunksize_1", 1), ("chunksize_auto", auto)):
        t0 = time.perf_counter()
        results, report = run_tasks(
            tasks, fn=_trivial_task, workers=workers, chunksize=size
        )
        elapsed = time.perf_counter() - t0
        assert not report.failures and results[-1] == (n_tasks - 1) ** 2
        out[label] = {
            "elapsed_s": round(elapsed, 3),
            "per_task_ms": round(elapsed / n_tasks * 1e3, 3),
        }
    out["dispatch_speedup"] = round(
        out["chunksize_1"]["elapsed_s"] / out["chunksize_auto"]["elapsed_s"], 3
    )
    return out


def bench_environments(tiny: bool):
    n, duration = (4, 3.0) if tiny else (8, 6.0)
    return [
        EnvConfig(
            env_id=f"bench-{i}", kind="flat",
            bw_mbps=(12.0, 24.0, 48.0)[i % 3],
            min_rtt=(0.02, 0.04)[i % 2], buffer_bdp=2.0, duration=duration,
        )
        for i in range(n)
    ]


def _pools_identical(a, b) -> bool:
    if len(a) != len(b):
        return False
    return all(
        ta.scheme == tb.scheme
        and ta.env_id == tb.env_id
        and np.array_equal(ta.states, tb.states)
        and np.array_equal(ta.actions, tb.actions)
        and np.array_equal(ta.rewards, tb.rewards)
        for ta, tb in zip(a.trajectories, b.trajectories)
    )


def run_bench(tiny: bool = False, worker_counts=None) -> dict:
    envs = bench_environments(tiny)
    schemes = ["cubic", "vegas"] if tiny else ["cubic", "vegas", "bbr2"]
    n_tasks = len(envs) * len(schemes)
    cpus = os.cpu_count() or 1
    if worker_counts is None:
        worker_counts = sorted({w for w in (1, 2, 4, 8) if w <= max(cpus, 2)})

    result = {
        "n_tasks": n_tasks,
        "n_envs": len(envs),
        "schemes": schemes,
        "cpu_count": cpus,
        "scale": "tiny" if tiny else "small",
        "workers": {},
    }

    t0 = time.perf_counter()
    serial_pool = collect_pool_parallel(envs, schemes, workers=1)
    serial_s = time.perf_counter() - t0
    result["workers"]["1"] = {
        "elapsed_s": round(serial_s, 3),
        "rollouts_per_s": round(n_tasks / serial_s, 3),
        "speedup": 1.0,
    }

    identical = True
    for w in worker_counts:
        if w == 1:
            continue
        t0 = time.perf_counter()
        pool = collect_pool_parallel(envs, schemes, workers=w)
        elapsed = time.perf_counter() - t0
        identical = identical and _pools_identical(serial_pool, pool)
        result["workers"][str(w)] = {
            "elapsed_s": round(elapsed, 3),
            "rollouts_per_s": round(n_tasks / elapsed, 3),
            "speedup": round(serial_s / elapsed, 3),
        }
    result["bit_identical"] = identical
    result["dispatch_overhead"] = bench_dispatch_overhead(workers=2)
    return result


def write_report(result: dict, path: Path = OUT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1) + "\n")


def print_report(result: dict) -> None:
    print("\n=== Policy-Collector throughput "
          f"({result['n_tasks']} rollouts, {result['cpu_count']} cores) ===")
    print(f"{'workers':>8} {'elapsed_s':>10} {'rollouts/s':>11} {'speedup':>8}")
    for w in sorted(result["workers"], key=int):
        row = result["workers"][w]
        print(f"{w:>8} {row['elapsed_s']:>10.2f} "
              f"{row['rollouts_per_s']:>11.2f} {row['speedup']:>8.2f}")
    print(f"parallel pools bit-identical to serial: "
          f"{result['bit_identical']}")
    if "dispatch_overhead" in result:
        d = result["dispatch_overhead"]
        print(
            f"dispatch overhead ({d['n_tasks']} trivial tasks, "
            f"{d['workers']} workers): "
            f"{d['chunksize_1']['per_task_ms']:.2f} ms/task at chunksize 1 "
            f"-> {d['chunksize_auto']['per_task_ms']:.2f} ms/task at "
            f"auto chunksize {d['auto_chunksize']} "
            f"({d['dispatch_speedup']:.2f}x)"
        )


# --------------------------------------------------------------------------
# pytest-benchmark entry point
# --------------------------------------------------------------------------


def test_collector_throughput(benchmark):
    from conftest import once

    result = once(benchmark, lambda: run_bench(tiny=True))
    print_report(result)
    write_report(result)
    assert result["bit_identical"], "parallel pool diverged from serial"
    if result["cpu_count"] >= 4 and "4" in result["workers"]:
        assert result["workers"]["4"]["speedup"] >= 2.5, (
            "expected >=2.5x speedup at 4 workers on a 4+-core machine"
        )
    elif result["cpu_count"] >= 2 and "2" in result["workers"]:
        # weaker guard for 2-3-core runners: parallel must not lose
        assert result["workers"]["2"]["speedup"] >= 0.8


# --------------------------------------------------------------------------
# standalone entry point
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="seconds-scale smoke run (CI)")
    parser.add_argument("--workers", type=int, nargs="*", default=None,
                        help="worker counts to sweep (default: 1 2 4 8 "
                             "capped at the core count)")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    result = run_bench(tiny=args.tiny, worker_counts=args.workers)
    print_report(result)
    write_report(result, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
