"""Discrete-event simulation engine.

A minimal, fast event loop: events are ``(time, sequence, callback)`` triples
kept in a binary heap. The ``sequence`` counter breaks ties deterministically
so that two events scheduled for the same instant fire in scheduling order,
which keeps every simulation fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class Cancelled(Exception):
    """Raised internally when a cancelled event is popped (never escapes)."""


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule`; allows cancellation.

    Cancellation is lazy: the heap entry stays in place but is skipped when
    popped. This is the standard O(1)-cancel trick and matters for the many
    retransmission timers TCP re-arms on every ACK.
    """

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the loop skips it."""
        self.cancelled = True


class EventLoop:
    """The simulation clock and event queue.

    Typical usage::

        loop = EventLoop()
        loop.call_at(1.0, lambda: print("one second"))
        loop.run_until(10.0)
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()
        self.now: float = 0.0

    def call_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.now:.6f}, when={when:.6f}"
            )
        handle = EventHandle(when, callback)
        heapq.heappush(self._heap, (when, next(self._seq), handle))
        return handle

    def call_later(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, callback)

    def run_until(self, t_end: float) -> None:
        """Run events with time <= ``t_end``; leaves ``now`` at ``t_end``."""
        heap = self._heap
        while heap and heap[0][0] <= t_end:
            when, _, handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = when
            handle.callback()
        self.now = max(self.now, t_end)

    def run_all(self, hard_limit: float = 1e9) -> None:
        """Drain every pending event (bounded by ``hard_limit`` sim seconds)."""
        heap = self._heap
        while heap:
            when, _, handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            if when > hard_limit:
                break
            self.now = when
            handle.callback()

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None
