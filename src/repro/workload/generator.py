"""Deterministic open-loop workload schedules.

A schedule is pure data: session arrival times (Poisson), request sizes
(heavy-tailed Pareto or log-normal — a few huge elephants dominate the
bytes while mice dominate the count, the canonical web traffic shape), and
per-session request/response chains with think times.

Determinism contract: every random draw comes from a stream seeded with
:func:`~repro.collector.parallel.derive_seed` (SplitMix64) keyed by the
workload seed and the arrival index — never from shared mutable RNG state.
The same config therefore yields byte-identical schedules across runs,
worker counts, and generation order, and :func:`schedule_digest` gives a
stable fingerprint to assert it.
"""

from __future__ import annotations

import hashlib
import math
import random as _random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.collector.parallel import derive_seed

__all__ = [
    "SIZE_DISTS",
    "WorkloadConfig",
    "Request",
    "FlowArrival",
    "generate_schedule",
    "schedule_digest",
]

SIZE_DISTS = ("pareto", "lognormal", "fixed")

# stream labels keyed into derive_seed so each purpose gets its own stream
_ARRIVAL_STREAM = 0x0A11
_DETAIL_STREAM_BASE = 0x10000
_BURST_STREAM_BASE = 0x20000


@dataclass(frozen=True)
class WorkloadConfig:
    """One open-loop traffic mix.

    ``arrival_rate`` is sessions/second (Poisson). With
    ``requests_per_session`` > 1, each arrival is a request/response web
    session: request ``k+1`` starts an exponential think time after request
    ``k`` completes. ``requests_per_session`` is the geometric mean; 1
    makes every arrival a single flow.
    """

    arrival_rate: float = 100.0  # sessions per second
    duration: float = 10.0  # arrival window, seconds
    size_dist: str = "pareto"
    mean_size_bytes: float = 50_000.0
    pareto_alpha: float = 1.5
    lognormal_sigma: float = 1.0
    max_size_bytes: int = 10_000_000
    #: geometric mean of requests per session (1 = plain flows, no sessions)
    requests_per_session: float = 1.0
    #: mean exponential think time between a response and the next request
    think_time: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be > 0, got {self.arrival_rate}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.size_dist not in SIZE_DISTS:
            raise ValueError(
                f"unknown size_dist {self.size_dist!r}; use {SIZE_DISTS}"
            )
        if self.mean_size_bytes < 64:
            raise ValueError("mean_size_bytes must be >= 64")
        if self.pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must be > 1 (finite mean)")
        if self.requests_per_session < 1.0:
            raise ValueError("requests_per_session must be >= 1")
        if self.think_time < 0:
            raise ValueError("think_time must be >= 0")


@dataclass(frozen=True)
class Request:
    """One transfer within a session."""

    size_bytes: int
    #: delay after the previous request completes before this one starts
    #: (0 for the first request of a session)
    think_time: float = 0.0


@dataclass(frozen=True)
class FlowArrival:
    """One scheduled session: when it starts and what it transfers."""

    arrival_index: int
    time: float
    requests: Tuple[Request, ...]
    #: True when injected by the chaos ``workload.burst`` site
    burst: bool = False

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.requests)


def _draw_size(cfg: WorkloadConfig, rng: _random.Random) -> int:
    if cfg.size_dist == "fixed":
        size = cfg.mean_size_bytes
    elif cfg.size_dist == "pareto":
        # paretovariate(a) >= 1 with mean a/(a-1); rescale to the target mean
        a = cfg.pareto_alpha
        size = cfg.mean_size_bytes * (a - 1.0) / a * rng.paretovariate(a)
    else:  # lognormal
        sigma = cfg.lognormal_sigma
        mu = math.log(cfg.mean_size_bytes) - 0.5 * sigma * sigma
        size = rng.lognormvariate(mu, sigma)
    return max(min(int(size), cfg.max_size_bytes), 64)


def _draw_requests(cfg: WorkloadConfig, rng: _random.Random) -> Tuple[Request, ...]:
    if cfg.requests_per_session <= 1.0:
        n = 1
    else:
        # geometric with the configured mean (success prob 1/mean)
        p = 1.0 / cfg.requests_per_session
        u = rng.random()
        n = min(int(math.log(max(u, 1e-12)) / math.log(1.0 - p)) + 1, 64)
    reqs = []
    for k in range(n):
        think = 0.0 if k == 0 else rng.expovariate(1.0 / max(cfg.think_time, 1e-9))
        reqs.append(Request(size_bytes=_draw_size(cfg, rng), think_time=think))
    return tuple(reqs)


def generate_schedule(
    cfg: WorkloadConfig, chaos: Optional[object] = None
) -> List[FlowArrival]:
    """All session arrivals in ``[0, duration)``, deterministically.

    ``chaos`` is an optional :class:`~repro.chaos.inject.FaultInjector`;
    an armed ``workload.burst`` fault targeting arrival index ``i`` injects
    ``param`` extra simultaneous sessions at that arrival (a synchronized
    burst — the incast trigger). Faults are one-shot, so a retry after a
    crash replays the clean schedule.
    """
    arrival_rng = _random.Random(derive_seed(cfg.seed, _ARRIVAL_STREAM))
    out: List[FlowArrival] = []
    t = 0.0
    i = 0
    while True:
        t += arrival_rng.expovariate(cfg.arrival_rate)
        if t >= cfg.duration:
            break
        detail_rng = _random.Random(derive_seed(cfg.seed, _DETAIL_STREAM_BASE + i))
        out.append(
            FlowArrival(
                arrival_index=i, time=t, requests=_draw_requests(cfg, detail_rng)
            )
        )
        burst = None
        if chaos is not None:
            burst = chaos.take(
                "workload.burst", i, detail=f"burst at arrival {i} t={t:.3f}"
            )
        if burst is not None:
            extra = max(int(burst.param), 1)
            for j in range(extra):
                clone_rng = _random.Random(
                    derive_seed(cfg.seed, _BURST_STREAM_BASE + i * 256 + j)
                )
                out.append(
                    FlowArrival(
                        arrival_index=i,
                        time=t,
                        requests=_draw_requests(cfg, clone_rng),
                        burst=True,
                    )
                )
        i += 1
    return out


def schedule_digest(schedule: List[FlowArrival]) -> str:
    """Stable fingerprint of a schedule (determinism assertions)."""
    h = hashlib.sha256()
    for a in schedule:
        h.update(f"{a.arrival_index}:{a.time!r}:{int(a.burst)}".encode())
        for r in a.requests:
            h.update(f"|{r.size_bytes}:{r.think_time!r}".encode())
        h.update(b";")
    return h.hexdigest()[:16]
