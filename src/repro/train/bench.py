"""Training-throughput benchmark core (shared by CLI and benchmarks/).

Times the legacy per-timestep :class:`~repro.core.crr.CRRTrainer` against
the fused :class:`~repro.train.engine.FastCRRTrainer` on the same pool at
the same configuration, and runs a short same-seed equivalence check
(``prefetch=0``) so every report carries its own correctness evidence:
the fused engine only counts as faster if its loss trajectory still
tracks the legacy one within the pinned tolerance.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.collector.pool import PolicyPool
from repro.core.crr import CRRConfig, CRRTrainer
from repro.core.networks import NetworkConfig
from repro.train.engine import FastCRRTrainer

#: Max per-step relative difference allowed between the engines' metric
#: trajectories (same seed, prefetch=0). Float drift is summation-order
#: rounding only, so even accumulated over tens of steps it stays orders
#: of magnitude below this. tests/test_train_engine.py pins the same bar.
EQUIVALENCE_RTOL = 1e-6

_METRICS = ("critic_loss", "policy_loss", "mean_f")


def _mini_pool(
    schemes: Optional[Sequence[str]] = None, workers: int = 1
) -> PolicyPool:
    from repro.collector.environments import training_environments
    from repro.core.training import collect_pool

    return collect_pool(
        training_environments("mini"), schemes=schemes, workers=workers
    )


def _time_engine(trainer, steps: int, warmup: int) -> dict:
    trainer.train(warmup)
    t0 = time.perf_counter()
    trainer.train(steps)
    elapsed = time.perf_counter() - t0
    return {
        "elapsed_s": round(elapsed, 4),
        "steps_per_s": round(steps / elapsed, 2),
        "ms_per_step": round(elapsed / steps * 1e3, 3),
    }


def _param_digest(trainer) -> str:
    import hashlib

    h = hashlib.sha256()
    for net in (
        trainer.policy, trainer.critic,
        trainer.target_policy, trainer.target_critic,
    ):
        for _, p in sorted(net.named_parameters()):
            h.update(np.ascontiguousarray(p.data).tobytes())
    return h.hexdigest()


def run_scaling_bench(
    pool: PolicyPool,
    steps: int = 12,
    seed: int = 0,
    net_config: Optional[NetworkConfig] = None,
    crr_config: Optional[CRRConfig] = None,
    worker_counts: Sequence[int] = (1, 2, 4),
) -> dict:
    """Worker-scaling curve for the data-parallel trainer.

    Runs :class:`~repro.train.parallel.DataParallelTrainer` for ``steps``
    steps at each worker count and records steps/sec, the per-phase second
    totals, and the gradient-communication seconds per step. The run also
    checks the determinism contract directly: the loss history and a
    SHA-256 digest over every network's parameters must be identical
    across all worker counts, and the report records whether they were.
    """
    import os

    from repro.train.parallel import DEFAULT_GRAINS, DataParallelTrainer

    net = net_config if net_config is not None else NetworkConfig()
    cfg = crr_config if crr_config is not None else CRRConfig()
    rows = {}
    digests = []
    histories = []
    for n in worker_counts:
        trainer = DataParallelTrainer(
            pool, net_config=net, config=cfg, seed=seed, grad_workers=n
        )
        try:
            t0 = time.perf_counter()
            trainer.train(steps)
            elapsed = time.perf_counter() - t0
            grad_comm = trainer.phase_seconds.get("grad_comm", 0.0)
            rows[str(n)] = {
                "elapsed_s": round(elapsed, 4),
                "steps_per_s": round(steps / elapsed, 2),
                "ms_per_step": round(elapsed / steps * 1e3, 3),
                "grad_comm_s_per_step": round(grad_comm / steps, 4),
                "phase_seconds": {
                    k: round(v, 4) for k, v in trainer.phase_seconds.items()
                },
            }
            digests.append(_param_digest(trainer))
            histories.append(
                {k: list(v) for k, v in trainer.history.items()}
            )
        finally:
            trainer.close()
    bit_identical = (
        all(d == digests[0] for d in digests)
        and all(h == histories[0] for h in histories)
    )
    return {
        "steps": steps,
        "grains": DEFAULT_GRAINS,
        "cpu_count": os.cpu_count(),
        "workers": rows,
        "bit_identical": bool(bit_identical),
        "param_digest": digests[0] if digests else None,
        "note": (
            "single-CPU container: this curve is a correctness baseline "
            "(bit-identity across worker counts), not a speedup "
            "measurement; re-measure on multi-core hardware"
        ) if (os.cpu_count() or 1) < max(worker_counts, default=1) else None,
    }


def run_train_bench(
    pool: Optional[PolicyPool] = None,
    steps: int = 30,
    warmup: int = 3,
    eq_steps: int = 10,
    seed: int = 0,
    net_config: Optional[NetworkConfig] = None,
    crr_config: Optional[CRRConfig] = None,
    prefetch: int = 2,
    sampler_workers: int = 2,
    schemes: Optional[Sequence[str]] = None,
    collect_workers: int = 1,
    scaling_workers: Optional[Sequence[int]] = (1, 2, 4),
    scaling_steps: int = 12,
) -> dict:
    """Benchmark fused vs legacy CRR training; returns a report dict.

    ``pool=None`` collects the mini-scale pool first (the acceptance
    configuration); pass a loaded pool to skip collection.

    ``scaling_workers`` adds a ``worker_scaling`` section measuring the
    data-parallel trainer at each worker count (see
    :func:`run_scaling_bench`); pass ``None`` or empty to skip it.
    """
    if pool is None:
        pool = _mini_pool(schemes=schemes, workers=collect_workers)
    net = net_config if net_config is not None else NetworkConfig()
    cfg = crr_config if crr_config is not None else CRRConfig()

    # -- equivalence check: same seed, synchronous sampling --------------
    legacy_eq = CRRTrainer(pool, net_config=net, config=cfg, seed=seed)
    fused_eq = FastCRRTrainer(pool, net_config=net, config=cfg, seed=seed)
    max_rel = {k: 0.0 for k in _METRICS}
    for _ in range(eq_steps):
        m0 = legacy_eq.train_step()
        m1 = fused_eq.train_step()
        for k in _METRICS:
            rel = abs(m0[k] - m1[k]) / (abs(m0[k]) + 1e-12)
            max_rel[k] = max(max_rel[k], rel)
    rng_in_lockstep = (
        legacy_eq.rng.bit_generator.state == fused_eq.rng.bit_generator.state
    )
    within = all(v <= EQUIVALENCE_RTOL for v in max_rel.values())

    # -- throughput -------------------------------------------------------
    legacy = CRRTrainer(pool, net_config=net, config=cfg, seed=seed)
    legacy_row = _time_engine(legacy, steps, warmup)
    fused = FastCRRTrainer(
        pool,
        net_config=net,
        config=cfg,
        seed=seed,
        prefetch=prefetch,
        sampler_workers=sampler_workers,
    )
    fused_row = _time_engine(fused, steps, warmup)
    timing = fused.timing_summary()
    fused.close()
    fused_row.update(
        {
            "prefetch": prefetch,
            "sampler_workers": sampler_workers,
            "phase_seconds": {
                k: round(v, 4)
                for k, v in timing.items()
                if k not in ("total_s", "steps_per_s")
            },
        }
    )

    scaling = None
    if scaling_workers:
        scaling = run_scaling_bench(
            pool,
            steps=scaling_steps,
            seed=seed,
            net_config=net,
            crr_config=cfg,
            worker_counts=tuple(scaling_workers),
        )

    return {
        "steps": steps,
        "batch_size": cfg.batch_size,
        "seq_len": cfg.seq_len,
        "m_samples": cfg.m_samples,
        "gru_dim": net.gru_dim,
        "enc_dim": net.enc_dim,
        "pool_transitions": pool.n_transitions,
        "legacy": legacy_row,
        "fused": fused_row,
        "speedup": round(
            legacy_row["elapsed_s"] / fused_row["elapsed_s"], 3
        ),
        "equivalence": {
            "steps": eq_steps,
            "tolerance_rtol": EQUIVALENCE_RTOL,
            "max_rel_diff": {k: float(v) for k, v in max_rel.items()},
            "within_tolerance": bool(within),
            "rng_streams_identical": bool(rng_in_lockstep),
        },
        "worker_scaling": scaling,
    }


def format_report(result: dict) -> str:
    lines = [
        f"=== train-bench: {result['steps']} steps, "
        f"batch {result['batch_size']} x seq {result['seq_len']} "
        f"(gru_dim={result['gru_dim']}, "
        f"{result['pool_transitions']} pool transitions) ===",
        f"{'engine':>8} {'elapsed_s':>10} {'steps/s':>9} {'ms/step':>9}",
    ]
    for name in ("legacy", "fused"):
        row = result[name]
        lines.append(
            f"{name:>8} {row['elapsed_s']:>10.3f} "
            f"{row['steps_per_s']:>9.2f} {row['ms_per_step']:>9.2f}"
        )
    eq = result["equivalence"]
    worst = max(eq["max_rel_diff"].values())
    lines.append(
        f"speedup: {result['speedup']:.2f}x   "
        f"equivalence over {eq['steps']} steps: "
        f"max rel diff {worst:.2e} "
        f"(tol {eq['tolerance_rtol']:.0e}, "
        f"ok={eq['within_tolerance']}, "
        f"rng lockstep={eq['rng_streams_identical']})"
    )
    ph = result["fused"].get("phase_seconds", {})
    if ph:
        lines.append(
            "fused phases (s): "
            + "  ".join(f"{k}={v:.3f}" for k, v in ph.items())
        )
    scaling = result.get("worker_scaling")
    if scaling:
        lines.append(
            f"--- worker scaling ({scaling['steps']} steps, "
            f"grains={scaling['grains']}, "
            f"cpu_count={scaling['cpu_count']}) ---"
        )
        lines.append(
            f"{'workers':>8} {'elapsed_s':>10} {'steps/s':>9} "
            f"{'grad_comm s/step':>17}"
        )
        for n, row in scaling["workers"].items():
            lines.append(
                f"{n:>8} {row['elapsed_s']:>10.3f} "
                f"{row['steps_per_s']:>9.2f} "
                f"{row['grad_comm_s_per_step']:>17.4f}"
            )
        lines.append(
            f"bit-identical across worker counts: "
            f"{scaling['bit_identical']}"
        )
        if scaling.get("note"):
            lines.append(f"note: {scaling['note']}")
    return "\n".join(lines)


def write_report(result: dict, path) -> None:
    Path(path).write_text(json.dumps(result, indent=1) + "\n")
