"""Winning-rate matrix: CC scheme x queue discipline (AQM).

The ROADMAP's co-evolution question in one table: the paper's pool was
collected under droptail queues — do the learned policy and the heuristics
keep their ranking when the *queue* gets intelligent? Every participant
plays a representative dumbbell env set per AQM
(:func:`~repro.collector.environments.aqm_environments`), from classic
taildrop through CoDel/PIE to FQ-CoDel's per-flow fairness and the
:class:`~repro.netsim.aqm.LearnedECN` marking queue; each rollout is scored
per scenario-interval with the league's margin rules, and the matrix
reports one winning rate per (participant, AQM) cell.

``repro aqm matrix`` renders and saves it in one CLI invocation; CI uploads
the JSON as the ``aqm-matrix`` artifact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from repro.collector.environments import aqm_environments
from repro.evalx.leagues import Participant, _run_matches, run_participant
from repro.evalx.scores import ScoreEntry, interval_scores, winning_rates

__all__ = ["AqmMatrix", "run_aqm_matrix", "DEFAULT_MATRIX_AQMS"]

MATRIX_SCHEMA_VERSION = 1

#: the default queue panel: the droptail baseline, two delay-controlling
#: heuristics, per-flow fairness, and the learned marking queue
DEFAULT_MATRIX_AQMS = ("taildrop", "codel", "pie", "fq_codel", "learned_ecn")


def _aqm_key(aqm: str) -> str:
    """Column label: registry name without any @checkpoint suffix."""
    return aqm.partition("@")[0].lower()


@dataclass
class AqmMatrix:
    """Winning rates per (participant, queue discipline)."""

    #: aqm -> participant -> winning rate in [0, 1]
    rates: Dict[str, Dict[str, float]]
    #: aqm -> raw per-interval scores (for drill-down)
    entries: Dict[str, List[ScoreEntry]] = field(default_factory=dict)
    #: aqm -> total CE marks applied across that column's rollouts
    ecn_marks: Dict[str, int] = field(default_factory=dict)

    @property
    def aqms(self) -> List[str]:
        return list(self.rates.keys())

    @property
    def participants(self) -> List[str]:
        names: List[str] = []
        for per_aqm in self.rates.values():
            for name in per_aqm:
                if name not in names:
                    names.append(name)
        return names

    def format_table(self) -> str:
        """Render the matrix: rows = participants, columns = AQMs."""
        names = self.participants
        aqms = self.aqms
        width = max([len(n) for n in names] + [8])
        header = f"{'scheme':>{width}} " + " ".join(f"{a:>12}" for a in aqms)
        lines = [header, "-" * len(header)]

        def mean_rate(name: str) -> float:
            vals = [self.rates[a].get(name, 0.0) for a in aqms]
            return sum(vals) / len(vals) if vals else 0.0

        for name in sorted(names, key=mean_rate, reverse=True):
            cells = " ".join(
                f"{self.rates[a].get(name, 0.0) * 100:11.2f}%" for a in aqms
            )
            lines.append(f"{name:>{width}} {cells}")
        if self.ecn_marks:
            marks = " ".join(
                f"{self.ecn_marks.get(a, 0):>12}" for a in aqms
            )
            lines.append("-" * len(header))
            lines.append(f"{'ce marks':>{width}} {marks}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "schema_version": MATRIX_SCHEMA_VERSION,
            "aqms": self.aqms,
            "participants": self.participants,
            "rates": {
                a: {n: round(r, 6) for n, r in per.items()}
                for a, per in self.rates.items()
            },
            "ecn_marks": dict(self.ecn_marks),
        }

    def save(self, path) -> None:
        """Atomically write the matrix as JSON (the CI artifact)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=1) + "\n")
        os.replace(tmp, path)


def run_aqm_matrix(
    participants: Sequence[Participant],
    aqms: Sequence[str] = DEFAULT_MATRIX_AQMS,
    duration: float = 12.0,
    margin: float = 0.10,
    alpha: float = 2.0,
    n_intervals: int = 4,
    tick: float = 0.02,
    workers: int = 1,
    ecn_threshold_bdp: float = 0.0,
    progress=None,
) -> AqmMatrix:
    """Play every participant under every queue discipline and score it.

    Winning rates are computed *within* each AQM column (an interval is won
    by beating every rival's score by the league margin in that scenario),
    so a column reads as "who masters this queue" and the droptail column
    is the transfer baseline. ``ecn_threshold_bdp`` arms DCTCP-style step
    marking on disciplines that take a threshold (taildrop); natively
    marking AQMs signal regardless. ``workers`` fans rollouts over
    processes exactly like :func:`~repro.evalx.leagues.run_league`.
    """
    if not aqms:
        raise ValueError("need at least one AQM column")
    rates: Dict[str, Dict[str, float]] = {}
    entries: Dict[str, List[ScoreEntry]] = {}
    marks: Dict[str, int] = {}
    for aqm in aqms:
        envs = aqm_environments(
            aqm, duration=duration, ecn_threshold_bdp=ecn_threshold_bdp
        )
        col_entries: List[ScoreEntry] = []
        col_marks = 0
        if workers is not None and workers == 1:
            for env in envs:
                for p in participants:
                    result = run_participant(p, env, tick=tick)
                    col_entries.extend(
                        interval_scores(result, alpha=alpha, n_intervals=n_intervals)
                    )
                    col_marks += getattr(result, "ecn_marks", 0) or 0
                    if progress is not None:
                        progress(f"{p.name} on {env.env_id}")
        else:
            for result in _run_matches(participants, envs, tick, workers, progress):
                col_entries.extend(
                    interval_scores(result, alpha=alpha, n_intervals=n_intervals)
                )
                col_marks += getattr(result, "ecn_marks", 0) or 0
        key = _aqm_key(aqm)
        rates[key] = winning_rates(col_entries, margin=margin)
        entries[key] = col_entries
        marks[key] = col_marks
    return AqmMatrix(rates=rates, entries=entries, ecn_marks=marks)
