"""Fig. 9 — the league of ML-based schemes.

Sage vs BC variants, OnlineRL, Aurora, Genet, Indigo(+v2), Orca(+v2),
DeepCC, Vivace. Paper shape: Sage ranks first overall; BC variants land at
the bottom of the single-flow league; OnlineRL tops Set II while failing
Set I (the unbalanced-convergence finding).
"""

from conftest import (
    BENCH_CRR,
    BENCH_NET,
    SCALE,
    bench_set1,
    bench_set2,
    once,
)

from repro.baselines.aurora import AuroraTrainer
from repro.baselines.bc import train_bc_variant
from repro.baselines.indigo import train_indigo
from repro.baselines.online_rl import OnlineRLTrainer
from repro.baselines.orca import train_orca
from repro.evalx.leagues import Participant, run_league

BC_STEPS = {"tiny": 80, "small": 200, "full": 1000}[SCALE]
RL_ITERS = {"tiny": 3, "small": 8, "full": 30}[SCALE]


def test_fig09_ml_league(benchmark, policy_pool, sage_agent):
    set1, set2 = bench_set1(), bench_set2()
    train_envs = (set1 + set2)[:6]

    def build_and_run():
        participants = [Participant.from_agent(sage_agent)]
        for variant in ("bc", "bc-top", "bc-top3", "bcv2"):
            agent = train_bc_variant(
                policy_pool, variant, n_steps=BC_STEPS, net_config=BENCH_NET
            )
            participants.append(Participant.from_agent(agent))
        online = OnlineRLTrainer(
            environments=train_envs, net_config=BENCH_NET, crr_config=BENCH_CRR
        ).train(n_iterations=RL_ITERS, steps_per_iter=10)
        participants.append(Participant.from_agent(online.agent("online-rl")))
        aurora = AuroraTrainer(environments=train_envs, net_config=BENCH_NET)
        aurora.train(RL_ITERS)
        participants.append(Participant.from_agent(aurora.agent()))
        genet = AuroraTrainer(
            environments=train_envs, net_config=BENCH_NET, curriculum=True
        )
        genet.train(RL_ITERS)
        participants.append(Participant.from_agent(genet.agent()))
        participants.append(
            Participant.from_agent(
                train_indigo(train_envs, multi_flow=False, n_steps=BC_STEPS,
                             net_config=BENCH_NET)
            )
        )
        participants.append(
            Participant.from_agent(
                train_indigo(train_envs, multi_flow=True, n_steps=BC_STEPS,
                             net_config=BENCH_NET)
            )
        )
        participants.append(
            Participant.from_agent(
                train_orca(train_envs, n_iterations=RL_ITERS, net_config=BENCH_NET)
            )
        )
        participants.append(
            Participant.from_agent(
                train_orca(train_envs, dual_reward=True, n_iterations=RL_ITERS,
                           net_config=BENCH_NET)
            )
        )
        participants.append(
            Participant.from_agent(
                train_orca(train_envs, deepcc=True, n_iterations=RL_ITERS,
                           net_config=BENCH_NET)
            )
        )
        participants.append(Participant.from_scheme("vivace"))
        return run_league(participants, set1=set1[:3], set2=set2[:2])

    result = once(benchmark, build_and_run)
    print("\n=== Fig. 9: ML-based league ===")
    print(result.format_table())
    names = set(result.set1_rates)
    assert {"sage", "bc", "online-rl", "aurora", "indigo", "orca", "vivace"} <= names
    # The paper's core claim is balance: Sage is the only model strong in
    # BOTH sets. Its combined rate must beat full-pool BC's, and no BC
    # variant may match it on TCP-friendliness.
    combined = lambda n: (result.set1_rates[n] + result.set2_rates[n]) / 2.0
    assert combined("sage") >= combined("bc")
    for variant in ("bc", "bc-top3", "bcv2"):
        assert result.set2_rates["sage"] >= result.set2_rates[variant]
