"""End-to-end training pipeline (Section 5).

Three phases, mirroring Fig. 3:

1. :func:`collect_pool` — run every pool scheme through every environment
   *once*; after this the environments are "unplugged".
2. :func:`train_sage_on_pool` — fully-offline CRR training, with periodic
   checkpoints standing in for the paper's per-day snapshots (Fig. 7).
3. Deployment — the returned :class:`~repro.core.agent.SageAgent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.collector.environments import EnvConfig, training_environments
from repro.collector.gr_unit import WindowConfig
from repro.collector.pool import PolicyPool
from repro.core.agent import SageAgent
from repro.core.crr import CRRConfig, CRRTrainer
from repro.core.networks import NetworkConfig
from repro.tcp.cc_base import POOL_SCHEMES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datastore.reader import ShardedPool

#: both pool flavors expose the same sampling API (see repro.datastore)
AnyPool = Union[PolicyPool, "ShardedPool"]


@dataclass
class TrainingRun:
    """Everything a training session produces."""

    agent: SageAgent
    trainer: CRRTrainer
    checkpoints: List[Dict[str, np.ndarray]] = field(default_factory=list)
    #: training-step index at which each checkpoint was taken
    checkpoint_steps: List[int] = field(default_factory=list)

    def agent_at(self, checkpoint: int, deterministic: bool = False) -> SageAgent:
        """Rebuild the agent as of checkpoint ``checkpoint`` ("day k")."""
        from repro.core.networks import SagePolicy

        policy = SagePolicy(self.trainer.net_cfg, np.random.default_rng(0))
        policy.load_state_dict(self.checkpoints[checkpoint])
        return SageAgent(
            policy, deterministic=deterministic, name=f"sage-ckpt{checkpoint}"
        )


def collect_pool(
    environments: Optional[Sequence[EnvConfig]] = None,
    schemes: Optional[Sequence[str]] = None,
    windows: Optional[WindowConfig] = None,
    tick: float = 0.02,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
    chunksize: Optional[int] = None,
    store=None,
    shard_bytes: Optional[int] = None,
    max_task_seconds: Optional[float] = None,
    max_rounds: int = 2,
    retry_backoff_s: float = 0.0,
    chaos=None,
    report_sink: Optional[Callable] = None,
) -> AnyPool:
    """Phase 1: build the pool of policies (collection happens once).

    ``workers`` fans the ``(env, scheme)`` rollouts across processes via
    :mod:`repro.collector.parallel`; the resulting pool is bit-identical to
    the serial one (``workers=1``, the default) for the same environments
    and schemes. ``workers=None`` uses one process per CPU.

    With ``store`` set (a directory path), rollouts are streamed straight
    into a sharded on-disk store instead of accumulating in memory, and the
    returned pool is an out-of-core
    :class:`~repro.datastore.reader.ShardedPool` over it — same sampling
    API, same bits for the same seed. ``shard_bytes`` tunes the per-shard
    byte budget.

    ``max_task_seconds`` arms the collector watchdog (hung rollouts are
    re-dispatched), ``max_rounds`` / ``retry_backoff_s`` tune the retry
    policy, ``chaos`` threads a
    :class:`~repro.chaos.inject.FaultInjector` through collection, and
    ``report_sink`` receives the final
    :class:`~repro.collector.parallel.CollectionReport`.
    """
    from repro.collector.parallel import collect_pool_parallel, collect_pool_to_store

    envs = list(environments) if environments is not None else training_environments("mini")
    schemes = list(schemes) if schemes is not None else list(POOL_SCHEMES)
    progress_cb = (
        None if progress is None else (lambda ev: progress(f"collected {ev.label}"))
    )
    if store is not None:
        return collect_pool_to_store(
            envs,
            schemes,
            store,
            windows=windows,
            tick=tick,
            workers=workers,
            chunksize=chunksize,
            progress=progress_cb,
            shard_bytes=shard_bytes,
            max_task_seconds=max_task_seconds,
            max_rounds=max_rounds,
            retry_backoff_s=retry_backoff_s,
            chaos=chaos,
            report_sink=report_sink,
        )
    return collect_pool_parallel(
        envs,
        schemes,
        windows=windows,
        tick=tick,
        workers=workers,
        chunksize=chunksize,
        progress=progress_cb,
        max_task_seconds=max_task_seconds,
        max_rounds=max_rounds,
        retry_backoff_s=retry_backoff_s,
        chaos=chaos,
        report_sink=report_sink,
    )


def train_sage_on_pool(
    pool: AnyPool,
    n_steps: int = 300,
    n_checkpoints: int = 7,
    net_config: Optional[NetworkConfig] = None,
    crr_config: Optional[CRRConfig] = None,
    seed: int = 0,
    log_every: int = 0,
    engine: str = "fast",
    prefetch: int = 0,
    sampler_workers: int = 1,
    grad_workers: int = 0,
    chaos=None,
    guard=None,
) -> TrainingRun:
    """Phase 2: offline CRR training with per-"day" checkpoints.

    ``n_checkpoints`` evenly-spaced snapshots stand in for the paper's seven
    daily checkpoints in Fig. 7.

    ``engine`` picks the trainer: ``"fast"`` (default) is the fused
    :class:`~repro.train.engine.FastCRRTrainer`; ``"legacy"`` is the
    per-timestep :class:`CRRTrainer`. With the default ``prefetch=0`` the
    fast engine consumes the *same RNG stream* as the legacy one, so a
    run's sampled batches and drawn actions are identical either way and
    the learning curves agree to float rounding. ``prefetch>0`` overlaps
    batch assembly with the optimizer on ``sampler_workers`` threads
    (deterministic, but a different — still seed-reproducible — batch
    order; see :mod:`repro.train.sampler`).

    ``grad_workers > 0`` (fast engine only) trains through N data-parallel
    gradient processes — the
    :class:`~repro.train.parallel.DataParallelTrainer`. Results are
    bit-identical for any worker count dividing the grain width, but on a
    *different* (per-(step, grain)) seed stream than ``grad_workers=0``.
    """
    if n_steps < n_checkpoints:
        raise ValueError("need at least one step per checkpoint")
    if grad_workers > 0 and engine != "fast":
        raise ValueError("grad_workers needs the fast engine")
    if grad_workers > 0 and prefetch:
        raise ValueError(
            "grad_workers and prefetch are mutually exclusive: the "
            "data-parallel engine samples inside its worker processes"
        )
    if engine == "fast" and grad_workers > 0:
        from repro.train.parallel import DataParallelTrainer

        trainer: CRRTrainer = DataParallelTrainer(
            pool,
            net_config=net_config,
            config=crr_config,
            seed=seed,
            grad_workers=grad_workers,
            chaos=chaos,
        )
    elif engine == "fast":
        from repro.train.engine import FastCRRTrainer

        trainer = FastCRRTrainer(
            pool,
            net_config=net_config,
            config=crr_config,
            seed=seed,
            prefetch=prefetch,
            sampler_workers=sampler_workers,
            chaos=chaos,
        )
    elif engine == "legacy":
        if chaos is not None or guard is not None:
            raise ValueError(
                "chaos / guard need the fast engine; the legacy trainer "
                "has no fault hooks"
            )
        trainer = CRRTrainer(
            pool, net_config=net_config, config=crr_config, seed=seed
        )
    else:
        raise ValueError(f"engine must be fast/legacy, got {engine!r}")
    run = TrainingRun(
        agent=SageAgent(trainer.policy, name="sage"),
        trainer=trainer,
    )
    per_ckpt = n_steps // n_checkpoints
    for day in range(n_checkpoints):
        if engine == "fast":
            trainer.train(per_ckpt, log_every=log_every, guard=guard)
        else:
            trainer.train(per_ckpt, log_every=log_every)
        run.checkpoints.append(trainer.policy.state_dict())
        run.checkpoint_steps.append(trainer.steps_done)
    # stop gradient-worker processes, then release the pool's concat cache
    # (a second full copy of every trajectory for an in-memory pool, open
    # shard handles for a sharded one) rather than pinning either for the
    # process lifetime
    if hasattr(trainer, "close"):
        trainer.close()
    if hasattr(pool, "drop_cache"):
        pool.drop_cache()
    return run


def train_sage(
    scale: str = "mini",
    n_steps: int = 300,
    schemes: Optional[Sequence[str]] = None,
    net_config: Optional[NetworkConfig] = None,
    crr_config: Optional[CRRConfig] = None,
    seed: int = 0,
    workers: int = 1,
) -> TrainingRun:
    """Convenience wrapper: collect a pool at ``scale`` and train on it."""
    pool = collect_pool(training_environments(scale), schemes=schemes, workers=workers)
    return train_sage_on_pool(
        pool,
        n_steps=n_steps,
        net_config=net_config,
        crr_config=crr_config,
        seed=seed,
    )
