"""TCP-like reliable transport with pluggable congestion control.

This package replaces the Linux kernel datapath the paper builds on. It
provides:

- :class:`~repro.tcp.socket.TcpSender` / :class:`~repro.tcp.socket.TcpReceiver`
  — a seq/ack byte-stream with RFC 6298 RTT estimation, dupACK fast
  retransmit, RTO recovery, and optional pacing.
- :class:`~repro.tcp.cc_base.CongestionControl` — the hook interface
  mirroring the kernel's ``tcp_congestion_ops`` that every scheme implements.
- :mod:`~repro.tcp.schemes` — 17 re-implemented CC schemes: the 13 kernel
  heuristics forming Sage's pool plus the delay-based league (Copa, LEDBAT,
  C2TCP, Sprout).
- :class:`~repro.tcp.flow.Flow` — sender+receiver bound to a
  :class:`~repro.netsim.network.Network`, with throughput/delay monitors.
"""

from repro.tcp.cc_base import CongestionControl, register_scheme, make_scheme, scheme_names
from repro.tcp.socket import TcpSender, TcpReceiver, CA_OPEN, CA_RECOVERY, CA_LOSS
from repro.tcp.flow import Flow, FlowStats

# Importing the schemes package populates the registry.
import repro.tcp.schemes  # noqa: F401  (side-effect import)

__all__ = [
    "CongestionControl",
    "register_scheme",
    "make_scheme",
    "scheme_names",
    "TcpSender",
    "TcpReceiver",
    "CA_OPEN",
    "CA_RECOVERY",
    "CA_LOSS",
    "Flow",
    "FlowStats",
]
