"""The parallel Policy-Collector engine: determinism, recovery, reporting.

The contract under test:

- a pool collected with ``workers=N`` is element-wise identical to
  ``workers=1`` (same trajectories, same order);
- a task whose worker process *dies* is retried once and recovered;
- a task that fails twice is reported in ``CollectionReport.failures``,
  never silently dropped.
"""

import functools
import os

import numpy as np
import pytest

from repro.collector.environments import EnvConfig
from repro.collector.parallel import (
    CollectionError,
    CollectionReport,
    ProgressEvent,
    collect_pool_parallel,
    collect_rollouts,
    derive_seed,
    make_rollout_tasks,
    run_tasks,
)


def _mini_envs(n=4):
    return [
        EnvConfig(
            env_id=f"par-{i}", kind="flat", bw_mbps=12.0 + 4.0 * i,
            min_rtt=0.02 + 0.01 * i, buffer_bdp=2.0, duration=2.0,
        )
        for i in range(n)
    ]


# --------------------------------------------------------------------------
# module-level task functions (must pickle into worker processes)
# --------------------------------------------------------------------------


def _square(task):
    return task * task


def _crash_once(task, marker_dir=None):
    """Kill the worker process the first time task 2 is seen.

    The marker file makes the crash happen exactly once across processes:
    the retry (in a fresh worker) finds the marker and succeeds.
    """
    if task == 2:
        marker = os.path.join(marker_dir, "crashed")
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            os._exit(1)  # simulate a hard worker death, not an exception
    return task * 10


def _always_fails(task):
    if task == 1:
        raise ValueError(f"task {task} is broken")
    return task


# --------------------------------------------------------------------------
# determinism
# --------------------------------------------------------------------------


class TestDeterminism:
    def test_derive_seed_is_pure_and_spread(self):
        seeds = [derive_seed(42, i) for i in range(100)]
        assert seeds == [derive_seed(42, i) for i in range(100)]
        assert len(set(seeds)) == 100  # no collisions on a small range
        assert all(0 <= s < 2**32 for s in seeds)
        assert derive_seed(0, 0) != derive_seed(1, 0)

    def test_task_order_matches_serial_nested_loop(self):
        envs = _mini_envs(2)
        tasks = make_rollout_tasks(envs, ["cubic", "vegas"])
        labels = [t.label for t in tasks]
        assert labels == [
            "cubic on par-0", "vegas on par-0",
            "cubic on par-1", "vegas on par-1",
        ]
        assert [t.index for t in tasks] == [0, 1, 2, 3]

    def test_parallel_pool_identical_to_serial(self):
        envs = _mini_envs(3)
        schemes = ["cubic", "vegas"]
        serial = collect_pool_parallel(envs, schemes, workers=1)
        parallel = collect_pool_parallel(envs, schemes, workers=2, chunksize=1)

        assert len(serial) == len(parallel) == len(envs) * len(schemes)
        for ts, tp in zip(serial.trajectories, parallel.trajectories):
            assert ts.scheme == tp.scheme
            assert ts.env_id == tp.env_id
            np.testing.assert_array_equal(ts.states, tp.states)
            np.testing.assert_array_equal(ts.actions, tp.actions)
            np.testing.assert_array_equal(ts.rewards, tp.rewards)

    def test_chunking_does_not_change_results(self):
        tasks = list(range(11))
        for chunksize in (1, 3, 8):
            results, report = run_tasks(
                tasks, fn=_square, workers=2, chunksize=chunksize
            )
            assert results == [t * t for t in tasks]
            assert report.completed == len(tasks)
            assert not report.failures


# --------------------------------------------------------------------------
# crash recovery and failure reporting
# --------------------------------------------------------------------------


class TestRecovery:
    def test_worker_crash_is_retried_and_recovered(self, tmp_path):
        fn = functools.partial(_crash_once, marker_dir=str(tmp_path))
        tasks = list(range(5))
        results, report = run_tasks(tasks, fn=fn, workers=2, chunksize=1)

        assert results == [t * 10 for t in tasks]  # nothing lost
        assert not report.failures
        assert report.n_retried >= 1  # the crashed task went through round 2
        assert (tmp_path / "crashed").exists()

    def test_permanent_failure_is_reported_not_dropped(self):
        tasks = [0, 1, 2]
        results, report = run_tasks(tasks, fn=_always_fails, workers=2)

        assert results[0] == 0 and results[2] == 2
        assert results[1] is None
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.index == 1
        assert failure.attempts == 2
        assert "ValueError" in failure.error
        assert report.completed == 2

    def test_serial_path_has_same_failure_contract(self):
        results, report = run_tasks([0, 1, 2], fn=_always_fails, workers=1)
        assert results == [0, None, 2]
        assert len(report.failures) == 1
        assert report.failures[0].attempts == 2

    def test_strict_collection_raises_with_labels(self):
        envs = _mini_envs(1)
        tasks = make_rollout_tasks(envs, ["cubic", "no-such-scheme"])
        with pytest.raises(CollectionError, match="no-such-scheme on par-0"):
            collect_rollouts(tasks, workers=1)

    def test_non_strict_collection_reports_and_continues(self):
        envs = _mini_envs(1)
        tasks = make_rollout_tasks(envs, ["cubic", "no-such-scheme"])
        results, report = collect_rollouts(tasks, workers=1, strict=False)
        assert results[0] is not None and results[1] is None
        assert len(report.failures) == 1


# --------------------------------------------------------------------------
# progress reporting
# --------------------------------------------------------------------------


class TestProgress:
    def test_progress_events_cover_every_task(self):
        events = []
        tasks = list(range(6))
        run_tasks(tasks, fn=_square, workers=2, progress=events.append)

        assert len(events) == len(tasks)
        assert all(isinstance(ev, ProgressEvent) for ev in events)
        assert [ev.done for ev in events] == list(range(1, 7))
        assert all(ev.total == 6 for ev in events)
        assert all(ev.throughput > 0 for ev in events)

    def test_report_throughput_and_elapsed(self):
        _, report = run_tasks(list(range(4)), fn=_square, workers=1)
        assert isinstance(report, CollectionReport)
        assert report.elapsed > 0
        assert report.throughput > 0
        assert report.workers == 1

    def test_empty_task_list(self):
        results, report = run_tasks([], fn=_square, workers=4)
        assert results == []
        assert report.total == 0 and not report.failures
