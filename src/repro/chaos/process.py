"""FaultProcess: a continuous, seed-deterministic stream of faults.

A :class:`~repro.chaos.plan.FaultPlan` is a *finite* schedule — the right
tool for acceptance tests that fire four known faults. A soak run needs
the opposite: faults that keep arriving for as long as the system runs,
at controlled per-site rates, without ever sacrificing determinism. A
:class:`FaultProcess` is that generator: each site gets an independent
Poisson arrival stream (exponential inter-arrival gaps, measured in that
site's occurrence slots — task index, shard index, batch index, tick
index), drawn from its own seeded RNG stream.

Three properties make soak runs debuggable rather than flaky:

- **Deterministic.** The same ``(seed, rates)`` always produces the same
  arrivals; a failing soak reproduces from its seed alone.
- **Disjoint streams.** Each site's RNG stream is keyed by
  ``(seed, crc32(site))``, so changing one site's rate (or adding a site)
  never shifts another site's schedule.
- **Prefix-stable.** Extending the horizon only *appends* arrivals;
  ``arrivals(site, 100)`` is a prefix of ``arrivals(site, 1000)``.

Materialize a window with :meth:`plan` / :meth:`injector`: the result is
an ordinary :class:`FaultPlan` / :class:`FaultInjector`, so every firing
inherits the one-shot replay-clean guarantee — a retried task or replayed
batch runs clean and recovery can fully mask the fault.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.chaos.inject import FaultInjector
from repro.chaos.plan import (
    DEFAULT_PARAMS,
    DEFAULT_UNIVERSES,
    SITES,
    FaultPlan,
    FaultSpec,
)

__all__ = ["FaultProcess", "DEFAULT_RATES", "PROCESS_SCHEMA_VERSION"]

PROCESS_SCHEMA_VERSION = 1

#: default expected faults *per occurrence slot* when a site is enabled
#: without an explicit rate; chosen so a mini-scale soak round sees a
#: handful of firings per site, not a storm
DEFAULT_RATES: Dict[str, float] = {
    "collector.crash": 0.10,
    "collector.hang": 0.05,
    "datastore.bitflip": 0.15,
    "datastore.truncate": 0.10,
    "train.nan": 0.03,
    "train.spike": 0.02,
    "train.workercrash": 0.02,
    "serve.nan": 0.02,
    "serve.slow": 0.02,
    "netsim.linkflap": 0.10,
    "netsim.aqmstall": 0.10,
    "workload.burst": 0.02,
}


class FaultProcess:
    """Seeded Poisson fault streams, one per site, materializable to plans.

    ``rates[site]`` is the expected number of faults per occurrence slot
    at that site (so ``rate * horizon`` faults are expected over a
    ``horizon``-slot window). At most one fault fires per slot per site —
    arrivals landing in an occupied slot are dropped, matching the
    one-shot :class:`FaultInjector` contract.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Dict[str, float]] = None,
        params: Optional[Dict[str, float]] = None,
    ) -> None:
        self.seed = int(seed)
        self.rates: Dict[str, float] = {}
        for site, rate in (rates if rates is not None else DEFAULT_RATES).items():
            if site not in SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; known: {sorted(SITES)}"
                )
            rate = float(rate)
            if not np.isfinite(rate) or rate < 0.0:
                raise ValueError(
                    f"rates[{site!r}] must be a finite rate >= 0, got {rate}"
                )
            self.rates[site] = rate
        self.params: Dict[str, float] = {**DEFAULT_PARAMS, **(params or {})}

    # ------------------------------------------------------------------
    def _stream(self, site: str) -> np.random.Generator:
        """The site's private RNG stream: disjoint across sites, stable
        under changes to any *other* site's rate."""
        return np.random.default_rng(
            [self.seed & 0xFFFFFFFF, zlib.crc32(site.encode("utf-8"))]
        )

    def arrivals(self, site: str, horizon: int) -> List[int]:
        """Occurrence slots in ``[0, horizon)`` where ``site`` fires.

        Poisson arrivals: exponential gaps accumulated in continuous slot
        time, floored to integer slots, deduplicated (one-shot per slot).
        Prefix-stable in ``horizon``.
        """
        if site not in SITES:
            raise ValueError(
                f"unknown fault site {site!r}; known: {sorted(SITES)}"
            )
        horizon = int(horizon)
        rate = self.rates.get(site, 0.0)
        if horizon <= 0 or rate <= 0.0:
            return []
        rng = self._stream(site)
        slots: List[int] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= horizon:
                break
            slot = int(t)
            if not slots or slots[-1] != slot:
                slots.append(slot)
        return slots

    # ------------------------------------------------------------------
    def plan(self, horizons: Optional[Dict[str, int]] = None) -> FaultPlan:
        """Materialize one window of the process as a :class:`FaultPlan`.

        ``horizons`` maps a site (``"serve.nan"``) or a whole group
        (``"serve"``) to its slot count for this window; unlisted groups
        fall back to :data:`DEFAULT_UNIVERSES`. A site mapped to 0 slots
        is silent this window.
        """
        horizons = dict(horizons or {})
        faults: List[FaultSpec] = []
        for site in sorted(self.rates):
            group = site.split(".", 1)[0]
            horizon = horizons.get(
                site, horizons.get(group, DEFAULT_UNIVERSES.get(group, 0))
            )
            param = float(self.params.get(site, 0.0))
            for slot in self.arrivals(site, horizon):
                faults.append(FaultSpec(site=site, target=slot, param=param))
        return FaultPlan(seed=self.seed, faults=faults)

    def injector(self, horizons: Optional[Dict[str, int]] = None) -> FaultInjector:
        """One-shot injector for one window (see :meth:`plan`)."""
        return FaultInjector(self.plan(horizons))

    # ------------------------------------------------------------------
    def describe(self, horizons: Optional[Dict[str, int]] = None) -> str:
        """Human-readable summary (CLI ``chaos process`` output)."""
        plan = self.plan(horizons)
        counts: Dict[str, int] = {}
        for f in plan.faults:
            counts[f.site] = counts.get(f.site, 0) + 1
        lines = [
            f"FaultProcess seed={self.seed}: {len(self.rates)} site(s), "
            f"{len(plan.faults)} fault(s) this window"
        ]
        for site in sorted(self.rates):
            lines.append(
                f"  {site:20s} rate={self.rates[site]:<8g} "
                f"fired={counts.get(site, 0)}"
            )
        return "\n".join(lines)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FaultProcess)
            and self.seed == other.seed
            and self.rates == other.rates
            and self.params == other.params
        )

    def __repr__(self) -> str:
        return f"FaultProcess(seed={self.seed}, rates={self.rates!r})"

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        return {
            "schema_version": PROCESS_SCHEMA_VERSION,
            "seed": self.seed,
            "rates": dict(sorted(self.rates.items())),
            "params": {
                site: self.params[site]
                for site in sorted(self.rates)
                if site in self.params
            },
        }

    @classmethod
    def from_json(cls, d: Dict) -> "FaultProcess":
        version = d.get("schema_version")
        if version != PROCESS_SCHEMA_VERSION:
            raise ValueError(
                f"fault process has schema version {version!r}; this build "
                f"reads version {PROCESS_SCHEMA_VERSION}"
            )
        return cls(
            seed=int(d.get("seed", 0)),
            rates={str(k): float(v) for k, v in d.get("rates", {}).items()},
            params={str(k): float(v) for k, v in d.get("params", {}).items()},
        )

    def save(self, path) -> None:
        """Atomically write the process spec as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=1) + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> "FaultProcess":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt fault process {path}: {exc}") from exc
        return cls.from_json(data)
