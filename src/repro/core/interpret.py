"""Interpretability: which Table-1 signals drive the learned policy?

Section 8 ("Analysing Learning-based CCs") calls for tools that explain a
CC DNN's decisions. This module provides gradient saliency: the derivative
of the policy's action (the mean of its most likely mixture component) with
respect to each of the 69 input statistics, aggregated over a batch of
states. Large-magnitude entries are the signals the policy is actually
reading — the learned analogue of a heuristic's "congestion signal".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.collector.gr_unit import STATE_FIELDS, normalize_state
from repro.core.networks import SagePolicy
from repro.nn.autograd import Tensor


def action_gradient(policy: SagePolicy, state: np.ndarray) -> np.ndarray:
    """d(action mean) / d(normalized input) for one raw 69-dim state."""
    x = Tensor(normalize_state(state)[None, :], requires_grad=True)
    pre = policy.trunk.pre(x)
    g, _ = policy.trunk.recurrent(pre, policy.trunk.initial_state(1))
    feat = policy.trunk.post(g)
    logits, means, _ = policy.head._split(feat)
    comp = int(np.argmax(logits.data[0]))
    means[:, comp].sum().backward()
    return x.grad[0].copy()


def input_saliency(
    policy: SagePolicy, states: np.ndarray
) -> Dict[str, float]:
    """Mean absolute action gradient per Table-1 field over many states."""
    states = np.atleast_2d(states)
    total = np.zeros(len(STATE_FIELDS))
    for s in states:
        total += np.abs(action_gradient(policy, s))
    total /= len(states)
    return dict(zip(STATE_FIELDS, total))


def top_signals(
    saliency: Dict[str, float], k: int = 10
) -> List[Tuple[str, float]]:
    """The ``k`` most influential input statistics, most salient first."""
    if k < 1:
        raise ValueError("k must be positive")
    return sorted(saliency.items(), key=lambda kv: -kv[1])[:k]


def group_saliency(saliency: Dict[str, float]) -> Dict[str, float]:
    """Aggregate saliency into the paper's signal categories.

    Groups: delay (rtt*), throughput (thr/dr*), loss (lost/loss*),
    inflight, and control (actions/ratios/state).
    """
    groups = {"delay": 0.0, "throughput": 0.0, "loss": 0.0, "inflight": 0.0,
              "control": 0.0}
    for field, value in saliency.items():
        if field.startswith(("srtt", "rttvar", "rtt")):
            groups["delay"] += value
        elif field.startswith(("thr", "dr", "acked_rate")):
            groups["throughput"] += value
        elif field.startswith(("lost", "loss")):
            groups["loss"] += value
        elif field.startswith("inflight"):
            groups["inflight"] += value
        else:
            groups["control"] += value
    return groups
