"""TCP Cubic (Ha, Rhee, Xu — SIGOPS OSR 2008; the Linux default).

The window grows as a cubic function of time since the last loss,
``W(t) = C (t - K)^3 + W_max``, concave up to the previous saturation point
``W_max`` and convex beyond it. A TCP-friendliness estimate keeps Cubic at
least as aggressive as Reno at small BDPs. Cubic plays a special role in the
paper: it is the "default scheme" whose flows populate Set II, and the
TCP-friendliness reward measures fairness against it.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Cubic(CongestionControl):
    """CUBIC with fast convergence and the Reno-friendly region."""

    name = "cubic"

    #: cubic scaling constant (packets/sec^3), kernel default.
    C = 0.4
    #: multiplicative decrease factor: cwnd <- 0.7 cwnd on loss.
    BETA = 0.7

    def __init__(self) -> None:
        self.w_max = 0.0
        self.k = 0.0
        self.epoch_start = -1.0
        self.w_est_acked = 0.0

    def on_init(self, sock) -> None:
        self._reset_epoch()

    def _reset_epoch(self) -> None:
        self.epoch_start = -1.0
        self.w_est_acked = 0.0

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            return
        if self.epoch_start < 0:
            self.epoch_start = now
            if sock.cwnd < self.w_max:
                self.k = ((self.w_max - sock.cwnd) / self.C) ** (1.0 / 3.0)
            else:
                self.k = 0.0
                self.w_max = sock.cwnd
            self.w_est_acked = sock.cwnd
        t = now - self.epoch_start
        target = self.C * (t - self.k) ** 3 + self.w_max

        # Reno-friendly estimate: what a Reno flow would have by now.
        rtt_s = max(sock.srtt_or_min, 1e-3)
        self.w_est_acked += n_acked * (
            3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)
        ) / max(sock.cwnd, 1.0)
        target = max(target, self.w_est_acked)

        if target > sock.cwnd:
            # Approach the cubic target over roughly one RTT.
            sock.cwnd += (target - sock.cwnd) / max(sock.cwnd, 1.0) * n_acked
        else:
            sock.cwnd += 0.01 * n_acked / max(sock.cwnd, 1.0)
        # unused but kept for parity with the kernel's per-RTT clock
        del rtt_s

    def ssthresh(self, sock) -> float:
        # fast convergence: release bandwidth faster when W_max shrinks
        if sock.cwnd < self.w_max:
            self.w_max = sock.cwnd * (1.0 + self.BETA) / 2.0
        else:
            self.w_max = sock.cwnd
        self._reset_epoch()
        return max(sock.cwnd * self.BETA, self.MIN_CWND)

    def on_rto(self, sock, now: float) -> None:
        super().on_rto(sock, now)
        self.w_max = 0.0
        self._reset_epoch()
