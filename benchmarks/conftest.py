"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures at a reduced,
laptop-scale configuration (the *shape* of each result — who wins, by
roughly what factor — is the reproduction target, not absolute numbers).

Set ``REPRO_BENCH_SCALE=small`` (or ``full``) to enlarge the grids; the
default ``tiny`` keeps the whole suite in the minutes range.

Session-scoped fixtures build the expensive shared artifacts once: the pool
of policies and a trained Sage agent.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.collector.environments import EnvConfig, set1_environments, set2_environments
from repro.core.crr import CRRConfig
from repro.core.networks import NetworkConfig
from repro.core.training import collect_pool, train_sage_on_pool

SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")

#: rollout worker processes for pool collection; collection is bit-identical
#: for any worker count, so parallel is safe to default on.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", os.cpu_count() or 1))

#: network size used by every learned model in the benches
BENCH_NET = NetworkConfig(enc_dim=24, gru_dim=24, n_components=2, n_atoms=11)
BENCH_CRR = CRRConfig(batch_size=8, seq_len=6, lr_policy=1e-3, lr_critic=1e-3)

#: pool schemes used at tiny scale (a diverse subset of the 13)
TINY_POOL_SCHEMES = ["cubic", "vegas", "bbr2", "newreno", "yeah", "westwood"]


def bench_set1(duration=None):
    if SCALE == "tiny":
        return set1_environments(
            bws=(24.0,), rtts=(0.04,), buffers=(1.0, 4.0),
            step_ms=(0.5, 2.0), duration=duration or 10.0,
        )
    if SCALE == "small":
        return set1_environments(
            bws=(24.0, 48.0), rtts=(0.02, 0.06), buffers=(1.0, 4.0),
            step_ms=(0.5, 2.0), duration=duration or 12.0,
        )
    return set1_environments(duration=duration or 20.0)


def bench_set2(duration=None):
    if SCALE == "tiny":
        return set2_environments(
            bws=(24.0,), rtts=(0.04,), buffers=(2.0, 8.0),
            duration=duration or 14.0,
        )
    if SCALE == "small":
        return set2_environments(
            bws=(24.0, 48.0), rtts=(0.02, 0.06), buffers=(2.0, 8.0),
            duration=duration or 16.0,
        )
    return set2_environments(duration=duration or 30.0)


def bench_pool_schemes():
    if SCALE == "tiny":
        return list(TINY_POOL_SCHEMES)
    from repro.tcp.cc_base import POOL_SCHEMES

    return list(POOL_SCHEMES)


_TRAIN_STEPS = {"tiny": 350, "small": 800, "full": 3000}[SCALE]


@pytest.fixture(scope="session")
def policy_pool():
    """The pool of policies, collected once per bench session."""
    envs = bench_set1() + bench_set2()
    return collect_pool(envs, schemes=bench_pool_schemes(), workers=WORKERS)


@pytest.fixture(scope="session")
def sage_run(policy_pool):
    """A trained Sage (with per-"day" checkpoints)."""
    return train_sage_on_pool(
        policy_pool,
        n_steps=_TRAIN_STEPS,
        n_checkpoints=7,
        net_config=BENCH_NET,
        crr_config=BENCH_CRR,
        seed=7,
    )


@pytest.fixture(scope="session")
def sage_agent(sage_run):
    agent = sage_run.agent
    agent.name = "sage"
    return agent


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
