"""The deterministic fault-injection layer (repro.chaos) and its defenses.

The contract under test, subsystem by subsystem:

- **Plans** are pure functions of their seed (same seed -> same faults)
  and round-trip through JSON;
- the **injector** dispenses each fault exactly once, so retries replay
  clean;
- the **collector** recovers injected worker crashes and hangs, and its
  retries re-seed so recovered results are bit-identical to fault-free;
- the **datastore** audit catches injected bit-flips / truncations;
- the **training guard** detects non-finite metrics, loss spikes, and
  step failures, rolls back bit-exactly, and caps the restart budget;
- the **serving engine** never lets a non-finite policy output reach a
  sender (heuristic fallback + invalid-action accounting).
"""

import numpy as np
import pytest

from repro.chaos import (
    DEFAULT_PARAMS,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.collector.gr_unit import STATE_DIM
from repro.collector.parallel import run_tasks
from repro.collector.pool import PolicyPool, Trajectory
from repro.core.crr import CRRConfig
from repro.core.networks import NetworkConfig, SagePolicy
from repro.datastore.manifest import verify_store
from repro.datastore.writer import ShardWriter
from repro.serve.engine import PolicyServer, ServeConfig
from repro.train.engine import FastCRRTrainer
from repro.train.guard import (
    DivergenceGuard,
    GuardConfig,
    TrainingDiverged,
)

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)


# ---------------------------------------------------------------------------
# FaultPlan: determinism + serialization
# ---------------------------------------------------------------------------


class TestFaultPlan:
    COUNTS = {
        "collector.crash": 1,
        "collector.hang": 1,
        "datastore.bitflip": 1,
        "train.nan": 2,
    }

    def test_same_seed_same_faults(self):
        a = FaultPlan.generate(seed=11, counts=self.COUNTS)
        b = FaultPlan.generate(seed=11, counts=self.COUNTS)
        assert a == b
        assert [f.to_json() for f in a.faults] == [
            f.to_json() for f in b.faults
        ]

    def test_different_seed_different_plan(self):
        plans = {
            tuple(
                (f.site, f.target)
                for f in FaultPlan.generate(seed=s, counts=self.COUNTS).faults
            )
            for s in range(8)
        }
        assert len(plans) > 1

    def test_targets_distinct_within_subsystem(self):
        plan = FaultPlan.generate(
            seed=5,
            counts={"collector.crash": 3, "collector.hang": 3},
            universes={"collector": 6},
        )
        targets = [f.target for f in plan.faults]
        assert sorted(set(targets)) == sorted(targets)
        assert all(0 <= t < 6 for t in targets)

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan.generate(seed=9, counts=self.COUNTS)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.generate(seed=0, counts={"collector.meteor": 1})
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nope.nope", target=0)

    def test_universe_overflow_rejected(self):
        with pytest.raises(ValueError, match="universe"):
            FaultPlan.generate(
                seed=0,
                counts={"collector.crash": 5},
                universes={"collector": 4},
            )

    def test_default_params_applied(self):
        plan = FaultPlan.generate(seed=1, counts={"collector.hang": 1})
        assert plan.faults[0].param == DEFAULT_PARAMS["collector.hang"]

    def test_every_site_documented(self):
        plan = FaultPlan.generate(seed=2, counts={s: 1 for s in SITES})
        assert {f.site for f in plan.faults} == set(SITES)


class TestFaultInjector:
    def test_one_shot(self):
        plan = FaultPlan(seed=0, faults=[FaultSpec("train.nan", target=3)])
        inj = FaultInjector(plan)
        assert not inj.exhausted
        spec = inj.take("train.nan", 3, detail="batch 3")
        assert spec is not None and spec.target == 3
        assert inj.take("train.nan", 3) is None  # replay runs clean
        assert inj.exhausted
        assert [f.site for f in inj.fired] == ["train.nan"]

    def test_wrong_target_does_not_fire(self):
        inj = FaultInjector(
            FaultPlan(seed=0, faults=[FaultSpec("serve.nan", target=5)])
        )
        assert inj.take("serve.nan", 4) is None
        assert inj.pending("serve.nan")


# ---------------------------------------------------------------------------
# Collector: crash / hang recovery + retry determinism
# ---------------------------------------------------------------------------


class _SeededTask:
    """Minimal task: run_tasks only needs a ``seed`` attribute."""

    def __init__(self, seed):
        self.seed = seed


def _draw(task):
    # consumes the global generator: only correct if every attempt re-seeds
    return float(np.random.random())


class TestCollectorChaos:
    def _plan(self, **counts):
        return FaultInjector(
            FaultPlan.generate(
                seed=4, counts=counts, universes={"collector": 6}
            )
        )

    def test_serial_crash_recovered_and_bit_identical(self):
        tasks = [_SeededTask(100 + i) for i in range(6)]
        clean, r0 = run_tasks(tasks, _draw, workers=1)
        chaos = self._plan(**{"collector.crash": 1})
        faulty, report = run_tasks(tasks, _draw, workers=1, chaos=chaos)
        assert faulty == clean
        assert not report.failures
        assert report.n_crashes == 1
        assert any(e["kind"] == "crash" for e in report.events)
        assert chaos.exhausted

    def test_serial_hang_skipped_but_logged(self):
        tasks = [_SeededTask(i) for i in range(6)]
        chaos = self._plan(**{"collector.hang": 1})
        results, report = run_tasks(tasks, _draw, workers=1, chaos=chaos)
        assert len(results) == 6
        assert any(e["kind"] == "hang" for e in report.events)

    def test_pool_crash_and_hang_recovered(self):
        tasks = [_SeededTask(7 + i) for i in range(6)]
        clean, _ = run_tasks(tasks, _draw, workers=1)
        chaos = FaultInjector(
            FaultPlan(
                seed=0,
                faults=[
                    FaultSpec("collector.crash", target=1),
                    FaultSpec("collector.hang", target=4, param=30.0),
                ],
            )
        )
        faulty, report = run_tasks(
            tasks,
            _draw,
            workers=2,
            chunksize=1,
            max_task_seconds=1.0,
            max_rounds=3,
            chaos=chaos,
        )
        assert faulty == clean
        assert not report.failures
        assert report.n_crashes >= 1
        # the crash breaks the whole pool round, so the hung task is
        # re-dispatched with everything else — both faults are masked
        assert any(e["kind"] == "crash" for e in report.events)

    def test_pool_hang_tripped_by_watchdog(self):
        tasks = [_SeededTask(50 + i) for i in range(4)]
        clean, _ = run_tasks(tasks, _draw, workers=1)
        chaos = FaultInjector(
            FaultPlan(
                seed=0,
                faults=[FaultSpec("collector.hang", target=2, param=30.0)],
            )
        )
        faulty, report = run_tasks(
            tasks,
            _draw,
            workers=2,
            chunksize=1,
            max_task_seconds=0.8,
            max_rounds=3,
            chaos=chaos,
        )
        assert faulty == clean
        assert not report.failures
        assert report.n_timeouts >= 1
        assert any(e["kind"] == "timeout" for e in report.events)


# ---------------------------------------------------------------------------
# Datastore: injected corruption is exactly what the audit catches
# ---------------------------------------------------------------------------


def _tiny_traj(i, length=8):
    rng = np.random.default_rng(i)
    return Trajectory(
        scheme="cubic",
        env_id=f"env-{i}",
        multi_flow=False,
        states=rng.standard_normal((length, 4)),
        actions=rng.uniform(0.5, 2.0, size=length),
        rewards=rng.standard_normal(length),
    )


class TestDatastoreChaos:
    def _write(self, root, chaos):
        with ShardWriter(root, shard_bytes=1, chaos=chaos) as w:
            for i in range(3):  # shard_bytes=1 -> one shard per trajectory
                w.add(_tiny_traj(i))

    def test_bitflip_caught_and_quarantined(self, tmp_path):
        chaos = FaultInjector(
            FaultPlan(seed=0, faults=[FaultSpec("datastore.bitflip", 1)])
        )
        self._write(tmp_path / "store", chaos)
        assert chaos.exhausted
        report = verify_store(tmp_path / "store", quarantine=True)
        assert report.quarantined == ["shard-00001"]
        assert report.dropped_trajectories == 1
        assert verify_store(tmp_path / "store", quarantine=False).clean

    def test_truncation_caught(self, tmp_path):
        chaos = FaultInjector(
            FaultPlan(
                seed=0,
                faults=[FaultSpec("datastore.truncate", 0, param=16.0)],
            )
        )
        self._write(tmp_path / "store", chaos)
        report = verify_store(tmp_path / "store", quarantine=True)
        assert report.quarantined == ["shard-00000"]

    def test_no_chaos_store_is_clean(self, tmp_path):
        self._write(tmp_path / "store", None)
        assert verify_store(tmp_path / "store", quarantine=False).clean


# ---------------------------------------------------------------------------
# DivergenceGuard: detection, budget, bit-exact rollback
# ---------------------------------------------------------------------------


class TestDivergenceGuard:
    def test_non_finite_detected(self):
        guard = DivergenceGuard(GuardConfig())
        ev = guard.check(0, {"critic_loss": float("nan"), "policy_loss": 0.1})
        assert ev is not None and ev.reason == "non-finite"
        assert guard.rollbacks_used == 1

    def test_spike_detected_after_warmup(self):
        guard = DivergenceGuard(GuardConfig(spike_factor=10.0, warmup_steps=3))
        for step in range(4):
            assert guard.check(
                step, {"critic_loss": 1.0, "policy_loss": 1.0}
            ) is None
        ev = guard.check(4, {"critic_loss": 100.0, "policy_loss": 1.0})
        assert ev is not None and ev.reason == "loss-spike"

    def test_spike_unarmed_during_warmup(self):
        guard = DivergenceGuard(GuardConfig(spike_factor=10.0, warmup_steps=5))
        guard.check(0, {"critic_loss": 1.0, "policy_loss": 1.0})
        assert guard.check(
            1, {"critic_loss": 100.0, "policy_loss": 1.0}
        ) is None

    def test_budget_exhaustion_raises(self):
        guard = DivergenceGuard(GuardConfig(max_rollbacks=2))
        bad = {"critic_loss": float("inf"), "policy_loss": 0.0}
        guard.check(0, bad)
        guard.check(1, bad)
        with pytest.raises(TrainingDiverged) as err:
            guard.check(2, bad)
        assert len(err.value.events) == 3

    def test_step_failure_spends_same_budget(self):
        guard = DivergenceGuard(GuardConfig(max_rollbacks=1))
        ev = guard.record_failure(3, "ValueError: NaN in projection")
        assert ev.reason == "step-failure"
        with pytest.raises(TrainingDiverged):
            guard.record_failure(3, "again")


def _synthetic_pool(seed=0, n_traj=6, length=24):
    rng = np.random.default_rng(seed)
    trajs = []
    for i in range(n_traj):
        actions = rng.uniform(0.6, 1.8, size=length)
        trajs.append(
            Trajectory(
                scheme=f"s{i}", env_id=f"e{i}", multi_flow=False,
                states=rng.standard_normal((length, STATE_DIM)) * 0.1,
                actions=actions,
                rewards=np.exp(-10.0 * (actions - 1.1) ** 2),
            )
        )
    return PolicyPool(trajs)


class TestTrainChaos:
    CFG = CRRConfig(batch_size=4, seq_len=4, m_samples=2)

    def _trainer(self, chaos=None):
        return FastCRRTrainer(
            _synthetic_pool(), net_config=TINY, config=self.CFG, seed=3,
            chaos=chaos,
        )

    def test_nan_batch_rolled_back_bit_identical(self):
        clean = self._trainer()
        clean.train(8)
        chaos = FaultInjector(
            FaultPlan(seed=0, faults=[FaultSpec("train.nan", target=4)])
        )
        guard = DivergenceGuard(GuardConfig())
        faulty = self._trainer(chaos=chaos)
        with np.errstate(invalid="ignore"):
            faulty.train(8, guard=guard)
        assert chaos.exhausted
        assert guard.rollbacks_used == 1
        assert guard.events[0].reason in ("step-failure", "non-finite")
        a, b = clean._state_payload(), faulty._state_payload()
        assert set(a) == set(b)
        for key in a:
            assert a[key].tobytes() == b[key].tobytes(), key

    def test_spike_batch_absorbed_without_divergence(self):
        # Every batch input is sanitized on entry (log_action clips ratios,
        # the C51 projection clamps rewards to the atom support, LayerNorm
        # absorbs state scaling), so a *finite* mis-scaled batch is
        # gracefully absorbed: training completes, metrics stay finite, and
        # the guard never needs to spend budget.
        chaos = FaultInjector(
            FaultPlan(
                seed=0, faults=[FaultSpec("train.spike", target=7, param=1e6)]
            )
        )
        guard = DivergenceGuard(GuardConfig())
        trainer = self._trainer(chaos=chaos)
        with np.errstate(invalid="ignore", over="ignore"):
            metrics = trainer.train(10, guard=guard)
        assert chaos.exhausted
        assert guard.rollbacks_used == 0
        assert all(np.isfinite(v) for v in metrics.values())

    def test_loss_spike_metric_rolled_back_bit_identical(self):
        # The metric-level rollback path: a step whose *reported* loss
        # spikes is undone bit-exactly, independent of what poisoned it.
        clean = self._trainer()
        clean.train(8)
        guard = DivergenceGuard(GuardConfig(spike_factor=50.0, warmup_steps=2))
        faulty = self._trainer()
        real_step = faulty.train_step
        calls = [0]

        def spiky_step():
            metrics = real_step()
            if calls[0] == 4:
                metrics = dict(
                    metrics, critic_loss=metrics["critic_loss"] * 1e6
                )
            calls[0] += 1
            return metrics

        faulty.train_step = spiky_step
        faulty.train(8, guard=guard)
        assert guard.rollbacks_used == 1
        assert guard.events[0].reason == "loss-spike"
        a, b = clean._state_payload(), faulty._state_payload()
        for key in a:
            assert a[key].tobytes() == b[key].tobytes(), key

    def test_checkpoint_crc_rejects_corruption(self, tmp_path):
        trainer = self._trainer()
        trainer.train(2)
        path = tmp_path / "ckpt.npz"
        trainer.save_checkpoint(path)
        fresh = self._trainer()
        fresh.load_checkpoint(path)  # valid round-trip
        assert fresh.steps_done == 2
        raw = bytearray(path.read_bytes())
        raw[100] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="integrity"):
            self._trainer().load_checkpoint(path)


# ---------------------------------------------------------------------------
# Serving: non-finite outputs never reach a sender
# ---------------------------------------------------------------------------


class TestServeChaos:
    def _server(self, chaos):
        policy = SagePolicy(TINY, np.random.default_rng(0))
        cfg = ServeConfig(deterministic=True, tick_budget=None)
        return PolicyServer(policy, cfg, chaos=chaos)

    def test_nan_tick_served_by_fallback(self):
        chaos = FaultInjector(
            FaultPlan(seed=0, faults=[FaultSpec("serve.nan", target=1)])
        )
        server = self._server(chaos)
        server.connect(0)
        state = np.zeros(STATE_DIM)
        first = server.serve_one(0, state, cwnd=10.0)
        assert first.source == "policy"
        hidden_before = server._table[server._sessions[0].row].copy()
        poisoned = server.serve_one(0, state, cwnd=10.0)
        assert poisoned.source == "heuristic"
        assert np.isfinite(poisoned.ratio)
        assert server.metrics.invalid_actions == 1
        # the poisoned hidden state must not contaminate recurrent memory
        np.testing.assert_array_equal(
            server._table[server._sessions[0].row], hidden_before
        )
        recovered = server.serve_one(0, state, cwnd=10.0)
        assert recovered.source == "policy"

    def test_slow_tick_counts_deadline_miss(self):
        chaos = FaultInjector(
            FaultPlan(
                seed=0, faults=[FaultSpec("serve.slow", target=0, param=0.03)]
            )
        )
        policy = SagePolicy(TINY, np.random.default_rng(0))
        server = PolicyServer(
            policy,
            ServeConfig(deterministic=True, tick_budget=0.010),
            chaos=chaos,
        )
        server.connect(0)
        decision = server.serve_one(0, np.zeros(STATE_DIM))
        assert decision.source == "stale"  # first miss: hold previous ratio
        assert server.metrics.deadline_misses == 1
        assert chaos.exhausted
