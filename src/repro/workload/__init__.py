"""Open-loop traffic generation: short-lived flows through any topology.

The collector's world is a handful of long-lived flows; real serving is
thousands of short ones. This package generates open-loop workloads —
Poisson flow arrivals, heavy-tailed (Pareto / log-normal) flow sizes, and
request/response web sessions with think times — from deterministic
SplitMix64-derived seed streams, drives them through any
:class:`~repro.netsim.topo.Topology`, and reports flow-completion-time
(FCT) statistics alongside the existing throughput/delay metrics.

- :mod:`~repro.workload.generator` — the schedule: arrivals, sizes,
  sessions (pure data, fully deterministic per seed).
- :mod:`~repro.workload.fct` — FCT records and summary statistics
  (percentiles, slowdown, size buckets).
- :mod:`~repro.workload.runner` — executes a schedule over a topology.
"""

from repro.workload.generator import (
    FlowArrival,
    Request,
    WorkloadConfig,
    generate_schedule,
    schedule_digest,
)
from repro.workload.fct import FctRecord, FctSummary
from repro.workload.runner import WorkloadResult, run_workload

__all__ = [
    "FlowArrival",
    "Request",
    "WorkloadConfig",
    "generate_schedule",
    "schedule_digest",
    "FctRecord",
    "FctSummary",
    "WorkloadResult",
    "run_workload",
]
