"""Greedy CART regression trees in pure numpy.

The distilled symbolic controller is a single regression tree over
(GR-state, hidden-summary) features predicting the policy's log cwnd
ratio. A tree answers in a handful of float comparisons — microseconds
for a whole serving batch — which is what lets the tiered router keep the
batched GRU forward off the common path.

Fitting is classic greedy CART with two twists sized for this repo:

- **best-first growth** under an explicit leaf budget: candidate splits
  live in a max-heap keyed by SSE reduction, so a ``max_leaves`` cap keeps
  the *most useful* splits rather than whatever a depth-first sweep reached
  first;
- **prefix-sum split search**: per (node, feature) the targets are sorted
  by feature value once and every admissible cut point is scored from
  cumulative sums — O(N log N) per feature, no per-threshold rescan.

Every leaf stores the training-set standard deviation of its targets;
:meth:`RegressionTree.predict` returns it as a per-row *confidence*
``1 / (1 + std)`` — the uncertainty gate the serving router thresholds on.

The fitted tree is frozen into flat arrays (feature index, threshold,
child indices, leaf value/confidence), so batched prediction is a short
``depth``-step gather loop over the whole batch at once.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class TreeConfig:
    """Fitting budgets for the distilled controller."""

    max_depth: int = 12
    max_leaves: int = 256
    min_leaf: int = 16  # no leaf may hold fewer training samples
    min_gain: float = 1e-9  # SSE reduction below this is noise, not signal

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.max_leaves < 2:
            raise ValueError("max_leaves must be >= 2")
        if self.min_leaf < 1:
            raise ValueError("min_leaf must be >= 1")


def _best_split(
    x: np.ndarray, y: np.ndarray, min_leaf: int
) -> Tuple[float, int, float]:
    """The best (gain, feature, threshold) for one node's sample set.

    Gain is the SSE reduction of the split vs the unsplit node. Returns
    ``(-inf, -1, 0.0)`` when no admissible split exists (constant features
    or the ``min_leaf`` floor).
    """
    n, n_features = x.shape
    best_gain, best_f, best_thr = -np.inf, -1, 0.0
    if n < 2 * min_leaf:
        return best_gain, best_f, best_thr
    sse_parent = float(np.sum((y - y.mean()) ** 2))
    for f in range(n_features):
        xs = x[:, f]
        order = np.argsort(xs, kind="stable")
        xs_sorted = xs[order]
        ys = y[order]
        # admissible cut points: between distinct feature values, with at
        # least min_leaf samples on each side
        cum = np.cumsum(ys)
        cum2 = np.cumsum(ys * ys)
        total, total2 = cum[-1], cum2[-1]
        k = np.arange(1, n)  # left side takes the first k samples
        valid = (k >= min_leaf) & (k <= n - min_leaf)
        valid &= xs_sorted[1:] > xs_sorted[:-1]
        if not np.any(valid):
            continue
        kl = k[valid].astype(np.float64)
        sum_l, sum2_l = cum[:-1][valid], cum2[:-1][valid]
        sse_l = sum2_l - sum_l * sum_l / kl
        kr = n - kl
        sum_r, sum2_r = total - sum_l, total2 - sum2_l
        sse_r = sum2_r - sum_r * sum_r / kr
        gains = sse_parent - (sse_l + sse_r)
        i = int(np.argmax(gains))
        if gains[i] > best_gain:
            best_gain = float(gains[i])
            best_f = f
            # midpoint threshold: robust to unseen values between the two
            idx = k[valid][i]
            best_thr = float(
                (xs_sorted[idx - 1] + xs_sorted[idx]) / 2.0
            )
    return best_gain, best_f, best_thr


class RegressionTree:
    """A fitted CART regression tree, frozen into flat arrays.

    ``feature[i] == -1`` marks node ``i`` as a leaf; internal nodes route
    ``x[feature] <= threshold`` left. Leaves carry ``value`` (mean training
    target) and ``conf`` (``1 / (1 + std)`` of training targets).
    """

    __slots__ = ("feature", "threshold", "left", "right", "value", "conf",
                 "n_features", "depth")

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        conf: np.ndarray,
        n_features: int,
        depth: int,
    ) -> None:
        self.feature = np.asarray(feature, dtype=np.int32)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.left = np.asarray(left, dtype=np.int32)
        self.right = np.asarray(right, dtype=np.int32)
        self.value = np.asarray(value, dtype=np.float64)
        self.conf = np.asarray(conf, dtype=np.float64)
        self.n_features = int(n_features)
        self.depth = int(depth)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature < 0))

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        config: Optional[TreeConfig] = None,
    ) -> "RegressionTree":
        """Fit a tree to ``(N, F)`` features and ``(N,)`` targets."""
        cfg = config if config is not None else TreeConfig()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or len(x) != len(y):
            raise ValueError(
                f"need (N, F) features and (N,) targets, got {x.shape} / {y.shape}"
            )
        if len(x) == 0:
            raise ValueError("cannot fit a tree to an empty dataset")

        # growable node storage; children appended as splits are committed
        feature: List[int] = [-1]
        threshold: List[float] = [0.0]
        left: List[int] = [-1]
        right: List[int] = [-1]
        value: List[float] = [float(y.mean())]
        conf: List[float] = [1.0 / (1.0 + float(y.std()))]
        depths: List[int] = [0]
        samples = {0: np.arange(len(x))}

        # best-first frontier: (-gain, tiebreak, node_id, feature, thr)
        heap: List[Tuple[float, int, int, int, float]] = []
        counter = 0

        def _propose(node_id: int) -> None:
            nonlocal counter
            if depths[node_id] >= cfg.max_depth:
                return
            idx = samples[node_id]
            gain, f, thr = _best_split(x[idx], y[idx], cfg.min_leaf)
            if f >= 0 and gain > cfg.min_gain:
                heapq.heappush(heap, (-gain, counter, node_id, f, thr))
                counter += 1

        _propose(0)
        n_leaves = 1
        max_depth_seen = 0
        while heap and n_leaves < cfg.max_leaves:
            _neg_gain, _c, node_id, f, thr = heapq.heappop(heap)
            idx = samples.pop(node_id)
            go_left = x[idx, f] <= thr
            for side, child_idx in ((True, idx[go_left]), (False, idx[~go_left])):
                child_id = len(feature)
                yc = y[child_idx]
                feature.append(-1)
                threshold.append(0.0)
                left.append(-1)
                right.append(-1)
                value.append(float(yc.mean()))
                conf.append(1.0 / (1.0 + float(yc.std())))
                depths.append(depths[node_id] + 1)
                samples[child_id] = child_idx
                if side:
                    left[node_id] = child_id
                else:
                    right[node_id] = child_id
            feature[node_id] = f
            threshold[node_id] = thr
            max_depth_seen = max(max_depth_seen, depths[node_id] + 1)
            n_leaves += 1  # one leaf became two
            _propose(left[node_id])
            _propose(right[node_id])

        return cls(
            feature=np.array(feature, dtype=np.int32),
            threshold=np.array(threshold, dtype=np.float64),
            left=np.array(left, dtype=np.int32),
            right=np.array(right, dtype=np.int32),
            value=np.array(value, dtype=np.float64),
            conf=np.array(conf, dtype=np.float64),
            n_features=x.shape[1],
            depth=max_depth_seen,
        )

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Route a ``(N, F)`` batch to leaves: ``(values, confidences)``.

        A vectorized gather loop: every row advances one tree level per
        iteration, so the whole batch costs ``depth`` masked indexing
        passes regardless of N.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"tree expects {self.n_features} features, got {x.shape[1]}"
            )
        node = np.zeros(len(x), dtype=np.int32)
        for _ in range(self.depth):
            f = self.feature[node]
            active = f >= 0
            if not np.any(active):
                break
            rows = np.nonzero(active)[0]
            xf = x[rows, f[rows]]
            go_left = xf <= self.threshold[node[rows]]
            node[rows] = np.where(
                go_left, self.left[node[rows]], self.right[node[rows]]
            )
        return self.value[node], self.conf[node]

    def predict_one(self, x: np.ndarray) -> Tuple[float, float]:
        """Scalar reference walk (tests pin :meth:`predict` against this)."""
        x = np.asarray(x, dtype=np.float64)
        node = 0
        while self.feature[node] >= 0:
            if x[self.feature[node]] <= self.threshold[node]:
                node = self.left[node]
            else:
                node = self.right[node]
        return float(self.value[node]), float(self.conf[node])

    # ------------------------------------------------------------------
    def rules(
        self, feature_names: Optional[List[str]] = None, max_rules: int = 0
    ) -> List[str]:
        """Render the tree as human-readable if-then rules (one per leaf)."""
        names = feature_names or [f"x{i}" for i in range(self.n_features)]
        out: List[str] = []
        stack: List[Tuple[int, List[str]]] = [(0, [])]
        while stack:
            node, path = stack.pop()
            if self.feature[node] < 0:
                cond = " and ".join(path) if path else "always"
                out.append(
                    f"if {cond}: value={self.value[node]:+.4f} "
                    f"(conf={self.conf[node]:.3f})"
                )
                if max_rules and len(out) >= max_rules:
                    break
                continue
            name = names[self.feature[node]]
            thr = self.threshold[node]
            stack.append((self.right[node], path + [f"{name} > {thr:.4g}"]))
            stack.append((self.left[node], path + [f"{name} <= {thr:.4g}"]))
        return out
