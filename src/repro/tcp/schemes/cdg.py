"""CAIA Delay-Gradient TCP (Hayes & Armitage — Networking 2011).

Backs off probabilistically when the *gradient* of the RTT envelope is
positive: ``P[backoff] = 1 - exp(-g / G)``. A shadow window remembers what
Reno would have done, so losses that are *not* delay-congestion-related do
not crater the rate.
"""

from __future__ import annotations

import math

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Cdg(CongestionControl):
    """Delay-gradient congestion control."""

    name = "cdg"

    G = 3.0  # gradient scale (in milliseconds of RTT change per RTT)
    BETA = 0.7  # multiplicative backoff factor
    SMOOTH = 8.0  # moving-average window for gradients

    def __init__(self) -> None:
        self.rtt_min_prev = float("inf")
        self.rtt_max_prev = 0.0
        self.rtt_min_cycle = float("inf")
        self.rtt_max_cycle = 0.0
        self.g_min_avg = 0.0
        self.g_max_avg = 0.0
        self.shadow_wnd = 0.0
        self._acks_in_rtt = 0.0
        self._rng_state = 0x9E3779B9

    def _rand(self) -> float:
        self._rng_state = (1103515245 * self._rng_state + 12345) & 0x7FFFFFFF
        return self._rng_state / 0x7FFFFFFF

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.rtt_min_cycle = min(self.rtt_min_cycle, rtt)
            self.rtt_max_cycle = max(self.rtt_max_cycle, rtt)
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            self.shadow_wnd = max(self.shadow_wnd, sock.cwnd)
            return
        self._acks_in_rtt += n_acked
        if self._acks_in_rtt >= sock.cwnd:
            self._per_rtt(sock)
            self._acks_in_rtt = 0.0
        self.reno_increase(sock, n_acked)
        self.shadow_wnd += n_acked / max(self.shadow_wnd, 1.0)

    def _per_rtt(self, sock) -> None:
        if self.rtt_min_cycle == float("inf"):
            return
        if self.rtt_min_prev != float("inf"):
            g_min = (self.rtt_min_cycle - self.rtt_min_prev) * 1000.0  # ms
            g_max = (self.rtt_max_cycle - self.rtt_max_prev) * 1000.0
            self.g_min_avg += (g_min - self.g_min_avg) / self.SMOOTH
            self.g_max_avg += (g_max - self.g_max_avg) / self.SMOOTH
            g = max(self.g_min_avg, self.g_max_avg)
            if g > 0:
                p_backoff = 1.0 - math.exp(-g / self.G)
                if self._rand() < p_backoff:
                    self.shadow_wnd = max(self.shadow_wnd, sock.cwnd)
                    sock.cwnd = max(sock.cwnd * self.BETA, self.MIN_CWND)
                    sock.ssthresh = sock.cwnd
                    self.g_min_avg = 0.0
                    self.g_max_avg = 0.0
        self.rtt_min_prev = self.rtt_min_cycle
        self.rtt_max_prev = self.rtt_max_cycle
        self.rtt_min_cycle = float("inf")
        self.rtt_max_cycle = 0.0

    def ssthresh(self, sock) -> float:
        # Loss: fall back to the shadow window if delay gradients were benign,
        # so random losses don't starve the flow.
        target = max(self.shadow_wnd, sock.cwnd) * 0.5
        self.shadow_wnd = target
        return max(target, self.MIN_CWND)
