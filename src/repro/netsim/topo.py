"""Graph-topology network engine: nodes, directed links, multi-segment paths.

The dumbbell of :mod:`repro.netsim.network` is one point in a much larger
scenario space. Here a :class:`Topology` is a directed graph of
:class:`Node`\\ s (hosts, routers, an optional proxy) joined by
:class:`TopoLink`\\ s, each with its *own* rate process, propagation delay,
random loss, and AQM buffer. A flow's path is a node sequence; data packets
chain through every link's queue + serializer on the shared
:class:`~repro.netsim.engine.EventLoop`, so a three-segment "parking lot"
really has three independent bottlenecks with cross-traffic competing at
each one.

Design invariants:

- **One event per hop.** A packet finishing serialization on link ``i`` is
  scheduled to *arrive* at the downstream node after the link's propagation
  delay; arrival either delivers (last node) or injects into the next
  link's queue synchronously. A single-link path therefore produces exactly
  the event stream the historical dumbbell produced — which is what makes
  :class:`~repro.netsim.network.Network` a bit-identical facade over this
  engine.
- **ACKs return uncongested.** As in the paper's emulation model (and the
  dumbbell), acknowledgments do not queue: one event after the flow's
  reverse-path propagation delay.
- **Per-flow access delay.** Endpoint propagation that is not attributable
  to a shared link (the flow's "access segment") rides on the *last* hop:
  ``extra_fwd_delay`` plus optional per-flow jitter, drawn from the
  topology's seeded RNG in delivery order.

The :meth:`Topology.view` adapter exposes the historical ``Network`` duck
type (``attach_flow`` / ``send_data`` / ``send_ack`` / ``min_rtt`` /
``queue_delay``) for one node path, so :class:`~repro.tcp.flow.Flow` and
every scheme run unmodified over arbitrary graphs.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.netsim.aqm import AQM, ECN_CAPABLE_AQMS, make_aqm
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.traces import FlatRate, RateProcess

__all__ = [
    "Node",
    "TopoLink",
    "FlowPath",
    "Topology",
    "PathView",
    "dumbbell_topology",
    "parking_lot_topology",
    "incast_topology",
    "proxy_split_topology",
    "make_topology",
    "describe_topology",
    "TOPOLOGY_CLASSES",
]

NODE_KINDS = ("host", "router", "proxy")

#: the topology families the league matrix and the CLI enumerate
TOPOLOGY_CLASSES = ("dumbbell", "parking_lot", "incast", "proxy_split")


@dataclass(frozen=True)
class Node:
    """One vertex of the graph: a traffic endpoint or a forwarding element."""

    name: str
    kind: str = "router"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if self.kind not in NODE_KINDS:
            raise ValueError(f"unknown node kind {self.kind!r}; use {NODE_KINDS}")


class TopoLink:
    """One directed edge: AQM buffer + work-conserving serializer + propagation.

    Wraps the battle-tested :class:`~repro.netsim.link.Link` for the queue
    and service process, and adds what a graph needs on top: propagation to
    the downstream node, optional uniform random loss, optional per-link
    delay jitter, and an up/down switch (the chaos ``netsim.linkflap``
    site).
    """

    __slots__ = (
        "topology", "src", "dst", "name", "prop_delay", "loss", "jitter",
        "inner", "up", "drops_loss", "drops_down", "index",
    )

    def __init__(
        self,
        topology: "Topology",
        src: str,
        dst: str,
        rate: RateProcess,
        aqm: AQM,
        prop_delay: float = 0.0,
        loss: float = 0.0,
        jitter: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if prop_delay < 0:
            raise ValueError(f"prop_delay must be >= 0, got {prop_delay}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.topology = topology
        self.src = src
        self.dst = dst
        self.name = name if name is not None else f"{src}->{dst}"
        self.prop_delay = prop_delay
        self.loss = loss
        self.jitter = jitter
        self.inner = Link(topology.loop, rate, aqm, self._on_serialized)
        self.up = True
        self.drops_loss = 0  # random-loss drops (not AQM drops)
        self.drops_down = 0  # packets offered while the link was down
        self.index = -1  # insertion order, set by Topology.add_link

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Offer a packet to this link; False if dropped (AQM, loss, down)."""
        if not self.up:
            self.drops_down += 1
            return False
        if self.loss > 0.0 and self.topology._loss_rng.random() < self.loss:
            self.drops_loss += 1
            return False
        return self.inner.send(pkt)

    def _on_serialized(self, pkt: Packet) -> None:
        self.topology._on_hop_serialized(self, pkt)

    # -- chaos: one-shot link flap --------------------------------------
    def schedule_flap(self, at: float, down_for: float) -> None:
        """Take the link down at ``at`` for ``down_for`` simulated seconds."""
        if down_for <= 0:
            raise ValueError(f"down_for must be positive, got {down_for}")
        loop = self.topology.loop
        loop.call_at(max(at, loop.now), self._go_down)
        loop.call_at(max(at, loop.now) + down_for, self._go_up)

    def _go_down(self) -> None:
        self.up = False

    def _go_up(self) -> None:
        self.up = True

    # -- chaos: one-shot AQM dequeue stall -------------------------------
    def schedule_stall(self, at: float, stall_for: float) -> None:
        """Freeze this link's dequeue side for ``stall_for`` seconds at ``at``."""
        if stall_for <= 0:
            raise ValueError(f"stall_for must be positive, got {stall_for}")
        self.inner.schedule_stall(at, stall_for)

    # -- introspection ----------------------------------------------------
    @property
    def queue_bytes(self) -> int:
        return self.inner.queue_bytes

    @property
    def drops(self) -> int:
        """Total drops on this link: AQM + random loss + down time."""
        return self.inner.drops + self.drops_loss + self.drops_down

    @property
    def ecn_marks(self) -> int:
        """CE marks applied by this link's AQM."""
        return self.inner.aqm.ecn_marks

    def queue_delay(self) -> float:
        return self.inner.queue_delay()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TopoLink {self.name} prop={self.prop_delay:g}s>"


@dataclass(frozen=True)
class FlowPath:
    """One flow's route: the node sequence plus its access-segment delays.

    ``extra_fwd_delay`` (and per-flow ``jitter``) apply on the final hop —
    the endpoint propagation not attributable to any shared link.
    ``rev_delay`` is the full, uncongested return-path delay for ACKs.
    """

    nodes: Tuple[str, ...]
    extra_fwd_delay: float = 0.0
    rev_delay: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ValueError(f"a path needs >= 2 nodes, got {self.nodes!r}")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"path must be loop-free, got {self.nodes!r}")
        if self.extra_fwd_delay < 0 or self.rev_delay < 0 or self.jitter < 0:
            raise ValueError("path delays must be non-negative")


class _FlowRoute:
    """Resolved per-flow routing state (internal)."""

    __slots__ = ("path", "links", "next_hop", "data_sink", "ack_sink")

    def __init__(
        self,
        path: FlowPath,
        links: List[TopoLink],
        data_sink: Callable[[Packet], None],
        ack_sink: Callable[[Packet], None],
    ) -> None:
        self.path = path
        self.links = links
        #: link id -> following link (None on the last hop)
        self.next_hop: Dict[int, Optional[TopoLink]] = {
            id(l): (links[i + 1] if i + 1 < len(links) else None)
            for i, l in enumerate(links)
        }
        self.data_sink = data_sink
        self.ack_sink = ack_sink


class Topology:
    """A graph of nodes and directed links shared by any number of flows.

    Flows attach with a :class:`FlowPath`; data packets traverse the path's
    links in order (queueing at each), ACKs return after the flow's
    reverse-path delay. Per-flow delivered/dropped counters match the
    dumbbell's contract.
    """

    def __init__(self, loop: Optional[EventLoop] = None, seed: int = 0) -> None:
        self.loop = loop if loop is not None else EventLoop()
        self.seed = seed
        self.nodes: Dict[str, Node] = {}
        self.links: List[TopoLink] = []
        self._links_by_edge: Dict[Tuple[str, str], TopoLink] = {}
        self._routes: Dict[int, _FlowRoute] = {}
        self.dropped_by_flow: Dict[int, int] = {}
        self.delivered_by_flow: Dict[int, int] = {}
        #: packets that arrived for an already-detached flow (short-flow churn)
        self.orphaned = 0
        # Seeded exactly like the historical dumbbell's jitter RNG so the
        # facade draws an identical jitter stream; loss gets its own stream.
        self._jitter_rng = _random.Random(seed)
        self._loss_rng = _random.Random((seed << 1) ^ 0x9E3779B9)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, kind: str = "router") -> Node:
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        node = Node(name, kind)
        self.nodes[name] = node
        return node

    def add_link(
        self,
        src: str,
        dst: str,
        rate: RateProcess,
        aqm: AQM,
        prop_delay: float = 0.0,
        loss: float = 0.0,
        jitter: float = 0.0,
        name: Optional[str] = None,
    ) -> TopoLink:
        for n in (src, dst):
            if n not in self.nodes:
                raise ValueError(f"unknown node {n!r}; add_node it first")
        if src == dst:
            raise ValueError("a link cannot loop back to its source")
        if (src, dst) in self._links_by_edge:
            raise ValueError(f"link {src!r}->{dst!r} already exists")
        link = TopoLink(
            self, src, dst, rate, aqm,
            prop_delay=prop_delay, loss=loss, jitter=jitter, name=name,
        )
        link.index = len(self.links)
        self.links.append(link)
        self._links_by_edge[(src, dst)] = link
        return link

    def link_between(self, src: str, dst: str) -> TopoLink:
        try:
            return self._links_by_edge[(src, dst)]
        except KeyError:
            raise ValueError(f"no link {src!r}->{dst!r} in the topology") from None

    # ------------------------------------------------------------------
    # flow registration
    # ------------------------------------------------------------------
    def attach_flow(
        self,
        flow_id: int,
        path: FlowPath,
        data_sink: Callable[[Packet], None],
        ack_sink: Callable[[Packet], None],
    ) -> None:
        """Register a flow's route and its delivery callbacks."""
        if flow_id in self._routes:
            raise ValueError(f"flow {flow_id} already attached")
        links = [
            self.link_between(u, v)
            for u, v in zip(path.nodes, path.nodes[1:])
        ]
        self._routes[flow_id] = _FlowRoute(path, links, data_sink, ack_sink)
        self.dropped_by_flow[flow_id] = 0
        self.delivered_by_flow[flow_id] = 0

    def detach_flow(self, flow_id: int) -> None:
        """Forget a flow (short-lived workload churn). In-flight packets of
        a detached flow are counted as ``orphaned`` and discarded."""
        if self._routes.pop(flow_id, None) is None:
            raise ValueError(f"flow {flow_id} is not attached")

    def is_attached(self, flow_id: int) -> bool:
        return flow_id in self._routes

    @property
    def n_flows(self) -> int:
        return len(self._routes)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send_data(self, pkt: Packet) -> bool:
        """Inject a data packet at its flow's first hop."""
        route = self._routes.get(pkt.flow_id)
        if route is None:
            raise ValueError(
                f"flow {pkt.flow_id} is not attached to this topology; "
                f"attach_flow() it before sending data"
            )
        accepted = route.links[0].send(pkt)
        if not accepted:
            self.dropped_by_flow[pkt.flow_id] += 1
        return accepted

    def _on_hop_serialized(self, link: TopoLink, pkt: Packet) -> None:
        """A packet finished serialization on ``link``: propagate it."""
        route = self._routes.get(pkt.flow_id)
        if route is None:
            self.orphaned += 1
            return
        next_link = route.next_hop.get(id(link))
        if next_link is None and id(link) not in route.next_hop:
            # stale packet from a path this flow no longer uses
            self.orphaned += 1
            return
        delay = link.prop_delay
        if next_link is None:
            # Final hop: add the flow's access propagation (+ jitter). The
            # delivered counter means "committed for delivery" — it ticks
            # here, when the packet leaves the last queue, matching the
            # historical dumbbell's accounting exactly.
            delay += route.path.extra_fwd_delay
            jitter = route.path.jitter + link.jitter
            if jitter > 0:
                delay += self._jitter_rng.random() * jitter
            self.delivered_by_flow[pkt.flow_id] += 1
            sink = route.data_sink
            self.loop.call_later(delay, lambda p=pkt: self._deliver(sink, p))
        else:
            if link.jitter > 0:
                delay += self._jitter_rng.random() * link.jitter
            self.loop.call_later(delay, lambda p=pkt, l=next_link: self._forward(l, p))

    def _deliver(self, sink: Callable[[Packet], None], pkt: Packet) -> None:
        if pkt.flow_id not in self._routes:
            self.orphaned += 1
            return
        sink(pkt)

    def _forward(self, link: TopoLink, pkt: Packet) -> None:
        """Arrival at an intermediate node: inject into the next link."""
        if pkt.flow_id not in self._routes:
            self.orphaned += 1
            return
        if not link.send(pkt):
            self.dropped_by_flow[pkt.flow_id] += 1

    # ------------------------------------------------------------------
    # ack path
    # ------------------------------------------------------------------
    def send_ack(self, ack: Packet) -> None:
        """Return an ACK over the flow's uncongested reverse path."""
        route = self._routes.get(ack.flow_id)
        if route is None:
            raise ValueError(
                f"flow {ack.flow_id} is not attached to this topology; "
                f"attach_flow() it before sending ACKs"
            )
        sink = route.ack_sink
        self.loop.call_later(
            route.path.rev_delay, lambda p=ack: self._deliver_ack(sink, p)
        )

    def _deliver_ack(self, sink: Callable[[Packet], None], ack: Packet) -> None:
        if ack.flow_id not in self._routes:
            self.orphaned += 1
            return
        sink(ack)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def path_prop_delay(self, flow_id: int) -> float:
        """Sum of link propagation delays on the flow's forward path."""
        route = self._require(flow_id)
        return sum(l.prop_delay for l in route.links)

    def min_rtt(self, flow_id: int) -> float:
        """Propagation round trip of the flow's path (no queueing)."""
        route = self._require(flow_id)
        fwd = self.path_prop_delay(flow_id) + route.path.extra_fwd_delay
        return fwd + route.path.rev_delay

    def flow_links(self, flow_id: int) -> List[TopoLink]:
        return list(self._require(flow_id).links)

    def queue_delay_on_path(self, flow_id: int) -> float:
        """Current total standing queueing delay along the flow's path."""
        return sum(l.queue_delay() for l in self._require(flow_id).links)

    def _require(self, flow_id: int) -> _FlowRoute:
        route = self._routes.get(flow_id)
        if route is None:
            raise ValueError(f"flow {flow_id} is not attached to this topology")
        return route

    def describe(self) -> str:
        """Human-readable node/link inventory (CLI ``topo describe``)."""
        lines = [f"Topology: {len(self.nodes)} nodes, {len(self.links)} links,"
                 f" {self.n_flows} attached flow(s)"]
        for name in self.nodes:
            node = self.nodes[name]
            lines.append(f"  node {node.name:12s} [{node.kind}]")
        for link in self.links:
            rate = link.inner.rate.rate_at(self.loop.now)
            aqm = link.inner.aqm
            kw = ", ".join(
                f"{k}={v}" for k, v in sorted(aqm.params().items())
                if v is not None
            )
            lines.append(
                f"  link {link.name:16s} {rate / 1e6:8.1f} Mbps  "
                f"prop {link.prop_delay * 1e3:6.2f} ms  "
                f"{type(aqm).__name__}({aqm.capacity_bytes} B"
                + (f", {kw}" if kw else "")
                + ")"
                + (f"  loss {link.loss:.2%}" if link.loss else "")
            )
        return "\n".join(lines)

    def link_stats(self) -> List[dict]:
        """Per-link observability: drops (by cause), ECN marks, backlog."""
        stats = []
        for link in self.links:
            aqm = link.inner.aqm
            stats.append({
                "name": link.name,
                "aqm": type(aqm).__name__,
                "drops": link.drops,
                "drops_aqm": aqm.drops,
                "drops_loss": link.drops_loss,
                "drops_down": link.drops_down,
                "ecn_marks": aqm.ecn_marks,
                "enqueues": aqm.enqueues,
                "delivered_packets": link.inner.delivered_packets,
                "queue_bytes": link.queue_bytes,
                "stalls": link.inner.stalls,
            })
        return stats

    # ------------------------------------------------------------------
    def view(self, nodes: Sequence[str]) -> "PathView":
        """A Network-compatible adapter binding flows to one node path."""
        return PathView(self, tuple(nodes))


class PathView:
    """Network duck-type over one node path of a :class:`Topology`.

    :class:`~repro.tcp.flow.Flow` (and anything else written against the
    dumbbell's ``Network``) attaches with a per-flow
    :class:`~repro.netsim.network.PathConfig`; the view translates its
    ``min_rtt`` into access-segment delays on top of the path's link
    propagation: forward extra = ``max(min_rtt/2 - sum(link props), 0)``,
    reverse delay = ``min_rtt/2``.
    """

    __slots__ = ("topology", "nodes", "_prop_sum")

    def __init__(self, topology: Topology, nodes: Tuple[str, ...]) -> None:
        self.topology = topology
        self.nodes = nodes
        self._prop_sum = sum(
            topology.link_between(u, v).prop_delay
            for u, v in zip(nodes, nodes[1:])
        )

    @property
    def loop(self) -> EventLoop:
        return self.topology.loop

    def attach_flow(self, flow_id, path, data_sink, ack_sink) -> None:
        extra_fwd = max(path.fwd_delay - self._prop_sum, 0.0)
        self.topology.attach_flow(
            flow_id,
            FlowPath(
                nodes=self.nodes,
                extra_fwd_delay=extra_fwd,
                rev_delay=path.rev_delay,
                jitter=path.jitter,
            ),
            data_sink=data_sink,
            ack_sink=ack_sink,
        )

    def detach_flow(self, flow_id: int) -> None:
        self.topology.detach_flow(flow_id)

    def send_data(self, pkt: Packet) -> None:
        self.topology.send_data(pkt)

    def send_ack(self, ack: Packet) -> None:
        self.topology.send_ack(ack)

    def min_rtt(self, flow_id: int) -> float:
        return self.topology.min_rtt(flow_id)

    @property
    def queue_delay(self) -> float:
        """Standing queueing delay along this view's path."""
        return sum(
            self.topology.link_between(u, v).queue_delay()
            for u, v in zip(self.nodes, self.nodes[1:])
        )

    @property
    def dropped_by_flow(self) -> Dict[int, int]:
        return self.topology.dropped_by_flow

    @property
    def delivered_by_flow(self) -> Dict[int, int]:
        return self.topology.delivered_by_flow


# --------------------------------------------------------------------------
# topology factories
# --------------------------------------------------------------------------

def _aqm_for(aqm: str, buffer_bytes: int, **kw) -> AQM:
    return make_aqm(aqm, buffer_bytes, **kw)


def dumbbell_topology(
    rate: RateProcess,
    aqm: AQM,
    loop: Optional[EventLoop] = None,
    seed: int = 0,
) -> Topology:
    """The historical single-bottleneck graph: ``snd -> rcv``, one link.

    Propagation lives entirely in the per-flow access segments (exactly the
    dumbbell's model), so this graph reproduces the old ``Network`` event
    stream bit for bit.
    """
    topo = Topology(loop=loop, seed=seed)
    topo.add_node("snd", kind="host")
    topo.add_node("rcv", kind="host")
    topo.add_link("snd", "rcv", rate, aqm, prop_delay=0.0, name="bottleneck")
    return topo


def parking_lot_topology(
    n_segments: int = 3,
    bw_mbps: float = 24.0,
    min_rtt: float = 0.04,
    buffer_bytes: int = 120_000,
    aqm: str = "taildrop",
    bw_per_segment: Optional[Sequence[float]] = None,
    loop: Optional[EventLoop] = None,
    seed: int = 0,
) -> Topology:
    """The classic multi-bottleneck chain: routers ``r0 -> r1 -> ... -> rN``.

    An end-to-end flow traverses every segment; cross traffic on segment
    ``i`` uses only ``r_i -> r_{i+1}``. ``bw_per_segment`` overrides the
    uniform ``bw_mbps`` (e.g. ``(48, 12, 48)`` makes the middle segment the
    strict bottleneck). Link propagation splits ``min_rtt/2`` evenly.
    """
    if n_segments < 2:
        raise ValueError(f"a parking lot needs >= 2 segments, got {n_segments}")
    bws = (tuple(bw_per_segment) if bw_per_segment is not None
           else (bw_mbps,) * n_segments)
    if len(bws) != n_segments:
        raise ValueError(
            f"bw_per_segment has {len(bws)} entries for {n_segments} segments"
        )
    topo = Topology(loop=loop, seed=seed)
    prop = min_rtt / 2.0 / n_segments
    for i in range(n_segments + 1):
        kind = "host" if i in (0, n_segments) else "router"
        topo.add_node(f"r{i}", kind=kind)
    for i, bw in enumerate(bws):
        topo.add_link(
            f"r{i}", f"r{i + 1}", FlatRate(bw * 1e6),
            _aqm_for(aqm, buffer_bytes), prop_delay=prop,
            name=f"seg{i}",
        )
    return topo


def incast_topology(
    n_senders: int = 8,
    bw_mbps: float = 48.0,
    min_rtt: float = 0.01,
    buffer_bytes: int = 45_000,
    aqm: str = "taildrop",
    access_factor: float = 4.0,
    ecn_threshold_bytes: int = 0,
    loop: Optional[EventLoop] = None,
    seed: int = 0,
) -> Topology:
    """Fan-in: ``s0..s{N-1} -> sw -> rcv`` with a shallow shared egress.

    The datacenter incast shape: N synchronized senders share one
    switch-to-receiver link whose buffer is deliberately shallow; access
    links run ``access_factor`` times faster so congestion concentrates at
    the fan-in point. ``ecn_threshold_bytes`` turns on DCTCP-style step
    marking on the egress queue.
    """
    if n_senders < 1:
        raise ValueError(f"need >= 1 sender, got {n_senders}")
    topo = Topology(loop=loop, seed=seed)
    topo.add_node("sw", kind="router")
    topo.add_node("rcv", kind="host")
    prop = min_rtt / 4.0  # half the one-way delay on each of the two hops
    egress_kw = {}
    if ecn_threshold_bytes > 0:
        key = aqm.partition("@")[0].lower()
        if key in ("taildrop", "tdrop"):
            egress_kw["ecn_threshold_bytes"] = ecn_threshold_bytes
        elif key not in ECN_CAPABLE_AQMS:
            raise ValueError(
                f"AQM {aqm!r} cannot honour ecn_threshold_bytes: it neither "
                f"takes a step-marking threshold (taildrop) nor marks "
                f"natively ({sorted(ECN_CAPABLE_AQMS)})"
            )
    topo.add_link(
        "sw", "rcv", FlatRate(bw_mbps * 1e6),
        _aqm_for(aqm, buffer_bytes, **egress_kw),
        prop_delay=prop, name="egress",
    )
    access_buf = max(buffer_bytes * 4, 64 * 1500)
    for i in range(n_senders):
        topo.add_node(f"s{i}", kind="host")
        topo.add_link(
            f"s{i}", "sw", FlatRate(access_factor * bw_mbps * 1e6),
            _aqm_for("taildrop", access_buf), prop_delay=prop,
            name=f"access{i}",
        )
    return topo


def proxy_split_topology(
    wan_bw_mbps: float = 24.0,
    lan_bw_mbps: float = 96.0,
    wan_rtt: float = 0.08,
    lan_rtt: float = 0.01,
    wan_buffer_bytes: int = 120_000,
    lan_buffer_bytes: int = 240_000,
    aqm: str = "taildrop",
    wan_loss: float = 0.0,
    loop: Optional[EventLoop] = None,
    seed: int = 0,
) -> Topology:
    """Two heterogeneous segments through a proxy: ``snd -> proxy -> rcv``.

    The connection-splitting shape: a slow, long-delay (optionally lossy)
    WAN segment in front of a fast LAN segment, each with its own queue —
    the substrate for split-connection and PEP-style experiments.
    """
    topo = Topology(loop=loop, seed=seed)
    topo.add_node("snd", kind="host")
    topo.add_node("proxy", kind="proxy")
    topo.add_node("rcv", kind="host")
    topo.add_link(
        "snd", "proxy", FlatRate(wan_bw_mbps * 1e6),
        _aqm_for(aqm, wan_buffer_bytes), prop_delay=wan_rtt / 2.0,
        loss=wan_loss, name="wan",
    )
    topo.add_link(
        "proxy", "rcv", FlatRate(lan_bw_mbps * 1e6),
        _aqm_for(aqm, lan_buffer_bytes), prop_delay=lan_rtt / 2.0,
        name="lan",
    )
    return topo


def make_topology(topo_class: str, **kwargs) -> Topology:
    """Factory dispatch over :data:`TOPOLOGY_CLASSES` (accepts ``-`` or ``_``)."""
    name = topo_class.replace("-", "_")
    if name == "dumbbell":
        bw = kwargs.pop("bw_mbps", 24.0)
        buf = kwargs.pop("buffer_bytes", 120_000)
        aqm = kwargs.pop("aqm", "taildrop")
        kwargs.pop("min_rtt", None)  # dumbbell delay is per-flow
        return dumbbell_topology(
            FlatRate(bw * 1e6), _aqm_for(aqm, buf), **kwargs
        )
    if name == "parking_lot":
        return parking_lot_topology(**kwargs)
    if name == "incast":
        return incast_topology(**kwargs)
    if name == "proxy_split":
        # translate the generic knobs into WAN/LAN terms (the WAN is the
        # bottleneck: the LAN leg is 4x faster, 2x buffered, 4x closer)
        if "bw_mbps" in kwargs:
            bw = kwargs.pop("bw_mbps")
            kwargs.setdefault("wan_bw_mbps", bw)
            kwargs.setdefault("lan_bw_mbps", 4.0 * bw)
        if "min_rtt" in kwargs:
            rtt = kwargs.pop("min_rtt")
            kwargs.setdefault("wan_rtt", 0.8 * rtt)
            kwargs.setdefault("lan_rtt", 0.2 * rtt)
        if "buffer_bytes" in kwargs:
            buf = kwargs.pop("buffer_bytes")
            kwargs.setdefault("wan_buffer_bytes", buf)
            kwargs.setdefault("lan_buffer_bytes", 2 * buf)
        return proxy_split_topology(**kwargs)
    raise ValueError(
        f"unknown topology class {topo_class!r}; known: {TOPOLOGY_CLASSES}"
    )


def describe_topology(topo_class: str, **kwargs) -> str:
    """Build a throwaway instance and render its inventory + example path."""
    topo = make_topology(topo_class, **kwargs)
    name = topo_class.replace("-", "_")
    example = {
        "dumbbell": "snd -> rcv",
        "parking_lot": " -> ".join(n for n in topo.nodes),
        "incast": "s0 -> sw -> rcv (x N senders)",
        "proxy_split": "snd -> proxy -> rcv",
    }[name]
    return topo.describe() + f"\n  main path: {example}"
