"""Throughput of the batched policy-serving engine.

Measures flows/sec of the Execution block serving N concurrent flows two
ways — N independent batch=1 ``SageAgent`` instances vs one
:class:`PolicyServer` doing a single ``(N, 69)`` forward per tick — and
writes the result to ``BENCH_serve.json``.

Runs two ways:

- standalone: ``PYTHONPATH=src python benchmarks/bench_serve_throughput.py``
  (``--tiny`` for a seconds-scale CI smoke run);
- under pytest-benchmark with the rest of the bench suite:
  ``pytest benchmarks/bench_serve_throughput.py``.

The ISSUE target — batched >=3x flows/sec at 64 flows — is asserted only at
full scale; the tiny run just guards that batching never loses to serial.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.serve.bench import format_report, run_serve_bench, write_report  # noqa: E402

OUT_PATH = REPO / "BENCH_serve.json"


def run_bench(tiny: bool = False) -> dict:
    if tiny:
        from repro.core.networks import NetworkConfig

        return run_serve_bench(
            flows=8, ticks=50,
            net_config=NetworkConfig(enc_dim=32, gru_dim=32, n_atoms=11),
            harness_duration=2.0,
        )
    return run_serve_bench(flows=64, ticks=200)


# --------------------------------------------------------------------------
# pytest-benchmark entry point
# --------------------------------------------------------------------------


def test_serve_throughput(benchmark):
    from conftest import once

    result = once(benchmark, lambda: run_bench(tiny=True))
    print(format_report(result))
    write_report(result, OUT_PATH)
    assert result["serial_batched_allclose"], (
        "batched decisions diverged from the batch=1 agents"
    )
    # tiny scale on a shared runner: batching must at least not lose
    assert result["speedup"] >= 1.0
    assert result["harness"]["fallback_rate"] == 0.0


# --------------------------------------------------------------------------
# standalone entry point
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="seconds-scale smoke run (CI)")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    result = run_bench(tiny=args.tiny)
    print(format_report(result))
    write_report(result, args.out)
    print(f"wrote {args.out}")
    if not args.tiny and result["speedup"] < 3.0:
        print("WARNING: below the 3x target at 64 flows", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
