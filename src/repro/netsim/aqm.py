"""Bottleneck buffers and Active Queue Management disciplines.

Figure 23 of the paper evaluates Sage under five queue disciplines: tail
drop (TDrop), head drop (HDrop), CoDel, PIE, and BoDe. Each discipline here
owns the FIFO buffer so that head-dropping variants can reach inside it.

The :class:`~repro.netsim.link.Link` drives the interface: it calls
:meth:`AQM.enqueue` on packet arrival and :meth:`AQM.dequeue` when the
serializer frees up, and it keeps :attr:`AQM.current_rate_bps` up to date so
delay-estimating disciplines (PIE, BoDe) can convert backlog to latency.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

from repro.netsim.packet import Packet


class AQM:
    """Base buffer: unbounded FIFO bookkeeping plus drop statistics."""

    name = "base"

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self.buffer: deque = deque()
        self.bytes_queued = 0
        self.drops = 0
        self.enqueues = 0
        #: Updated by the Link before every enqueue/dequeue; lets the AQM
        #: estimate queueing delay as backlog / service rate.
        self.current_rate_bps = 1e6

    # -- interface -----------------------------------------------------
    def enqueue(self, pkt: Packet, now: float) -> bool:
        """Try to admit ``pkt``; return True if accepted."""
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        """Pop the next packet to serve, or None if empty."""
        if not self.buffer:
            return None
        pkt = self.buffer.popleft()
        self.bytes_queued -= pkt.size
        return pkt

    # -- helpers -------------------------------------------------------
    def _admit(self, pkt: Packet, now: float) -> None:
        pkt.enqueue_time = now
        self.buffer.append(pkt)
        self.bytes_queued += pkt.size
        self.enqueues += 1

    def queue_delay_estimate(self) -> float:
        """Backlog converted to seconds at the current service rate."""
        return self.bytes_queued * 8.0 / max(self.current_rate_bps, 1e3)

    def __len__(self) -> int:
        return len(self.buffer)


class TailDrop(AQM):
    """Classic drop-tail: reject arrivals that would overflow the buffer.

    Optionally ECN-capable: with ``ecn_threshold_bytes`` set, arrivals from
    ECT senders are CE-marked (not dropped) once the backlog exceeds the
    threshold — the simple step-marking DCTCP expects from its switches.
    """

    name = "taildrop"

    def __init__(
        self, capacity_bytes: int, ecn_threshold_bytes: Optional[int] = None
    ) -> None:
        super().__init__(capacity_bytes)
        if ecn_threshold_bytes is not None and ecn_threshold_bytes <= 0:
            raise ValueError("ECN threshold must be positive")
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.ce_marks = 0

    def enqueue(self, pkt: Packet, now: float) -> bool:
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        if (
            self.ecn_threshold_bytes is not None
            and pkt.ect
            and self.bytes_queued >= self.ecn_threshold_bytes
        ):
            pkt.ce = True
            self.ce_marks += 1
        self._admit(pkt, now)
        return True


class HeadDrop(AQM):
    """Drop-from-front: on overflow, evict the *oldest* packet(s).

    Head drop signals congestion to the sender one queue-drain earlier than
    tail drop, which is why Mahimahi-style cellular evaluations often use it.
    """

    name = "headdrop"

    def enqueue(self, pkt: Packet, now: float) -> bool:
        while self.buffer and self.bytes_queued + pkt.size > self.capacity_bytes:
            victim = self.buffer.popleft()
            self.bytes_queued -= victim.size
            self.drops += 1
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        self._admit(pkt, now)
        return True


class CoDel(AQM):
    """Controlled Delay AQM (Nichols & Jacobson, CACM 2012).

    Tail-drops on hard overflow, and additionally drops at *dequeue* when the
    per-packet sojourn time has stayed above ``target`` for at least
    ``interval``, with the drop spacing shrinking as ``interval/sqrt(count)``.
    """

    name = "codel"

    def __init__(
        self,
        capacity_bytes: int,
        target: float = 0.005,
        interval: float = 0.100,
    ) -> None:
        super().__init__(capacity_bytes)
        self.target = target
        self.interval = interval
        self._first_above_time = 0.0
        self._drop_next = 0.0
        self._count = 0
        self._dropping = False

    def enqueue(self, pkt: Packet, now: float) -> bool:
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        self._admit(pkt, now)
        return True

    def _should_drop(self, pkt: Packet, now: float) -> bool:
        sojourn = now - pkt.enqueue_time
        if sojourn < self.target or self.bytes_queued < 2 * 1500:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def dequeue(self, now: float) -> Optional[Packet]:
        while self.buffer:
            pkt = self.buffer.popleft()
            self.bytes_queued -= pkt.size
            if self._dropping:
                if not self._should_drop(pkt, now):
                    self._dropping = False
                    return pkt
                if now >= self._drop_next:
                    self.drops += 1
                    self._count += 1
                    self._drop_next = now + self.interval / math.sqrt(self._count)
                    continue
                return pkt
            if self._should_drop(pkt, now):
                self.drops += 1
                self._dropping = True
                self._count = max(1, self._count // 2)
                self._drop_next = now + self.interval / math.sqrt(self._count)
                continue
            return pkt
        return None


class PIE(AQM):
    """Proportional Integral controller Enhanced (Pan et al., HPSR 2013).

    Probabilistically drops at enqueue; the drop probability is updated every
    ``t_update`` from the estimated queueing delay and its trend.
    """

    name = "pie"

    def __init__(
        self,
        capacity_bytes: int,
        target: float = 0.015,
        t_update: float = 0.030,
        alpha: float = 0.125,
        beta: float = 1.25,
        seed: int = 7,
    ) -> None:
        super().__init__(capacity_bytes)
        self.target = target
        self.t_update = t_update
        self.alpha = alpha
        self.beta = beta
        self._p = 0.0
        self._qdelay_old = 0.0
        self._last_update = 0.0
        # A tiny deterministic LCG keeps the discipline reproducible without
        # threading a numpy Generator through the hot path.
        self._rng_state = (seed * 2654435761) & 0xFFFFFFFF

    def _rand(self) -> float:
        self._rng_state = (1103515245 * self._rng_state + 12345) & 0x7FFFFFFF
        return self._rng_state / 0x7FFFFFFF

    def _maybe_update(self, now: float) -> None:
        if now - self._last_update < self.t_update:
            return
        self._last_update = now
        qdelay = self.queue_delay_estimate()
        p = self._p
        p += self.alpha * (qdelay - self.target) + self.beta * (qdelay - self._qdelay_old)
        self._qdelay_old = qdelay
        self._p = min(max(p, 0.0), 1.0)

    def enqueue(self, pkt: Packet, now: float) -> bool:
        self._maybe_update(now)
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        # PIE never drops when the queue is nearly empty (burst allowance).
        if self.bytes_queued > 3 * 1500 and self._rand() < self._p:
            self.drops += 1
            return False
        self._admit(pkt, now)
        return True


class BoDe(AQM):
    """Bounded-Delay queue (Abbasloo & Chao, 2019).

    Bounds the queueing delay: an arriving packet whose projected sojourn
    time exceeds ``delay_bound`` is rejected, regardless of byte backlog.
    """

    name = "bode"

    def __init__(self, capacity_bytes: int, delay_bound: float = 0.020) -> None:
        super().__init__(capacity_bytes)
        self.delay_bound = delay_bound

    def enqueue(self, pkt: Packet, now: float) -> bool:
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        projected = (self.bytes_queued + pkt.size) * 8.0 / max(
            self.current_rate_bps, 1e3
        )
        if projected > self.delay_bound:
            self.drops += 1
            return False
        self._admit(pkt, now)
        return True


_AQM_REGISTRY = {
    "taildrop": TailDrop,
    "tdrop": TailDrop,
    "headdrop": HeadDrop,
    "hdrop": HeadDrop,
    "codel": CoDel,
    "pie": PIE,
    "bode": BoDe,
}


def make_aqm(name: str, capacity_bytes: int, **kwargs) -> AQM:
    """Build an AQM by name (``taildrop``/``headdrop``/``codel``/``pie``/``bode``)."""
    key = name.lower()
    if key not in _AQM_REGISTRY:
        raise ValueError(f"unknown AQM {name!r}; choose from {sorted(set(_AQM_REGISTRY))}")
    return _AQM_REGISTRY[key](capacity_bytes, **kwargs)
