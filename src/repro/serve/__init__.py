"""`repro.serve` — the batched multi-flow policy-serving engine.

The production face of the paper's Execution block: one frozen policy
serving N concurrent flows through a shared hidden-state table and one
``(N, 69)`` batched GRU forward per control tick, with a deadline/fallback
path (stale ratio, then built-in heuristic) for inference brown-outs and
serving metrics throughout.

- :mod:`~repro.serve.engine` — :class:`PolicyServer`: hidden-state table,
  tick scheduler, deadline machinery.
- :mod:`~repro.serve.fallback` — ratio-space CUBIC / AIMD degraded modes.
- :mod:`~repro.serve.client` — :class:`ServedAgent`, a PolicyAgent that
  routes through a server (leagues/run_policy plug in directly).
- :mod:`~repro.serve.harness` — N served senders over one bottleneck, plus
  the open-loop workload mode (Poisson arrivals of short served flows over
  any :mod:`~repro.netsim.topo` class, FCT percentiles in the metrics).
- :mod:`~repro.serve.metrics` — latency percentiles, batch histogram,
  fallback rate.
- :mod:`~repro.serve.bench` — batched-vs-batch=1 throughput measurement
  (``BENCH_serve.json``).
"""

from repro.serve.client import ServedAgent
from repro.serve.engine import PolicyServer, ServeConfig, ServeDecision
from repro.serve.fallback import AimdFallback, CubicFallback, make_fallback
from repro.serve.harness import (
    MultiFlowConfig,
    MultiFlowResult,
    WorkloadServeConfig,
    WorkloadServeResult,
    jain_index,
    run_served_flows,
    run_served_workload,
)
from repro.serve.metrics import ServingMetrics

__all__ = [
    "PolicyServer",
    "ServeConfig",
    "ServeDecision",
    "ServedAgent",
    "ServingMetrics",
    "MultiFlowConfig",
    "MultiFlowResult",
    "WorkloadServeConfig",
    "WorkloadServeResult",
    "run_served_flows",
    "run_served_workload",
    "jain_index",
    "CubicFallback",
    "AimdFallback",
    "make_fallback",
]
