"""Tests for the Remy-like computer-generated CC baseline."""

import numpy as np
import pytest

from repro.baselines.remy import (
    ACTION_CHOICES,
    RemyAgent,
    RemyOptimizer,
    RemyTable,
    state_to_rule_index,
)
from repro.collector.environments import EnvConfig
from repro.collector.gr_unit import STATE_DIM, STATE_FIELDS
from repro.collector.rollout import run_policy


def design_env(bw=12.0, duration=4.0, env_id="remy-design"):
    return EnvConfig(
        env_id=env_id, kind="flat", bw_mbps=bw, min_rtt=0.04,
        buffer_bdp=2.0, duration=duration,
    )


class TestRuleIndexing:
    def test_index_range(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            s = rng.uniform(0.0, 3.0, size=STATE_DIM)
            assert 0 <= state_to_rule_index(s) < 27

    def test_features_drive_distinct_cells(self):
        s = np.ones(STATE_DIM)
        base = state_to_rule_index(s)
        s2 = s.copy()
        s2[STATE_FIELDS.index("rtt_rate")] = 2.0
        assert state_to_rule_index(s2) != base
        s3 = s.copy()
        s3[STATE_FIELDS.index("bdp_cwnd")] = 3.0
        assert state_to_rule_index(s3) != base


class TestTable:
    def test_default_is_mild_probing(self):
        t = RemyTable()
        assert np.all(t.actions == 1.02)

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            RemyTable(np.ones(5))

    def test_mutation_changes_cells_from_choices(self):
        rng = np.random.default_rng(1)
        t = RemyTable()
        m = t.mutated(rng, n_cells=5)
        changed = np.sum(m.actions != t.actions)
        assert 0 < changed <= 5
        assert all(a in ACTION_CHOICES or a == 1.02 for a in m.actions)

    def test_lookup_uses_cell(self):
        t = RemyTable()
        s = np.ones(STATE_DIM)
        idx = state_to_rule_index(s)
        t.actions[idx] = 1.4
        assert t.lookup(s) == 1.4


class TestOptimizer:
    def test_score_is_mean_reward(self):
        opt = RemyOptimizer([design_env()], seed=0)
        score = opt.score(RemyTable())
        assert 0.0 <= score <= 1.5

    def test_optimize_never_degrades(self):
        opt = RemyOptimizer([design_env(duration=3.0)], seed=2)
        agent = opt.optimize(n_iterations=3)
        assert isinstance(agent, RemyAgent)
        assert opt.history == sorted(opt.history) or max(
            opt.history
        ) == opt.history[-1]  # hill climbing is monotone in the incumbent

    def test_requires_design_envs(self):
        with pytest.raises(ValueError):
            RemyOptimizer([])

    def test_deployed_table_moves_traffic(self):
        opt = RemyOptimizer([design_env(duration=3.0)], seed=3)
        agent = opt.optimize(n_iterations=2)
        result = run_policy(design_env(duration=4.0, env_id="remy-eval"), agent)
        assert result.stats.avg_throughput_bps > 1e6

    def test_design_range_sensitivity(self):
        # Appendix A's Remy critique: a table tuned to one design range
        # transfers imperfectly to a very different network. We verify the
        # machinery measures this (the reward in the off-design env differs
        # from the design score).
        opt = RemyOptimizer([design_env(bw=12.0, duration=3.0)], seed=4)
        agent = opt.optimize(n_iterations=3)
        on_design = opt.score(agent.table)
        off = run_policy(
            EnvConfig(env_id="off", kind="flat", bw_mbps=96.0, min_rtt=0.01,
                      buffer_bdp=0.5, duration=3.0),
            agent,
        )
        off_design = float(np.mean(off.rewards))
        assert on_design != pytest.approx(off_design, abs=1e-6)
