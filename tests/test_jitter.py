"""Tests for path jitter / packet reordering."""

import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network, PathConfig
from repro.netsim.packet import Packet
from repro.netsim.traces import FlatRate
from repro.tcp.flow import Flow
from repro.tcp.socket import TcpReceiver, TcpSender
from repro.tcp.cc_base import make_scheme


def jittered_flow(jitter, scheme="cubic", bw=12e6, rtt=0.04, dur=5.0):
    loop = EventLoop()
    net = Network(loop, FlatRate(bw), TailDrop(120_000), seed=1)
    cc = make_scheme(scheme)
    receiver = TcpReceiver(0, net)
    sender = TcpSender(0, net, cc)
    net.attach_flow(
        0, PathConfig(min_rtt=rtt, jitter=jitter),
        data_sink=receiver.on_data, ack_sink=sender.on_ack,
    )
    sender.start()
    loop.run_until(dur)
    sender.stop()
    return sender, receiver


class TestPathConfig:
    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            PathConfig(min_rtt=0.04, jitter=-0.01)

    def test_default_no_jitter(self):
        assert PathConfig(min_rtt=0.04).jitter == 0.0


class TestReordering:
    def test_jitter_causes_out_of_order_arrivals(self):
        loop = EventLoop()
        net = Network(loop, FlatRate(100e6), TailDrop(1_000_000), seed=2)
        arrivals = []
        net.attach_flow(
            0, PathConfig(min_rtt=0.02, jitter=0.005),
            data_sink=lambda p: arrivals.append(p.seq),
            ack_sink=lambda p: None,
        )
        for i in range(100):
            net.send_data(Packet(flow_id=0, seq=i))
        loop.run_until(1.0)
        assert sorted(arrivals) == list(range(100))
        assert arrivals != sorted(arrivals)  # genuinely reordered

    def test_transport_survives_mild_reordering(self):
        sender, receiver = jittered_flow(jitter=0.002)
        assert receiver.rcv_next > 300
        assert receiver.total_packets == receiver.rcv_next + len(receiver._received)

    def test_transport_survives_heavy_reordering(self):
        sender, receiver = jittered_flow(jitter=0.010)
        # heavy jitter triggers spurious fast retransmits but must not
        # wedge the stream
        assert receiver.rcv_next > 100
        assert receiver.total_packets == receiver.rcv_next + len(receiver._received)

    def test_throughput_degrades_gracefully(self):
        _, clean = jittered_flow(jitter=0.0)
        _, jittered = jittered_flow(jitter=0.004)
        assert jittered.total_bytes > 0.2 * clean.total_bytes

    def test_deterministic_given_network_seed(self):
        _, a = jittered_flow(jitter=0.003)
        _, b = jittered_flow(jitter=0.003)
        assert a.total_packets == b.total_packets
