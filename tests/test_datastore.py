"""Tests for repro.datastore: sharded ingest, out-of-core sampling, audit."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.collector.environments import EnvConfig
from repro.collector.parallel import OrderedConsumer, collect_pool_to_store
from repro.collector.pool import PolicyPool, Trajectory, parse_meta
from repro.core.networks import NetworkConfig
from repro.core.training import collect_pool, train_sage_on_pool
from repro.datastore import (
    Manifest,
    ShardWriter,
    ShardedPool,
    merge_stores,
    open_pool,
    pack_pool,
    store_stats,
    verify,
)

STATE_DIM = 69


def make_traj(rng, i, length=40, scheme=None, env_id=None):
    return Trajectory(
        scheme=scheme or f"s{i % 3}",
        env_id=env_id or f"env-{i}",
        multi_flow=bool(i % 2),
        states=rng.standard_normal((length, STATE_DIM)),
        actions=rng.uniform(0.5, 2.0, size=length),
        rewards=rng.uniform(0.0, 1.0, size=length),
    )


def make_pool(n_traj=9, base_length=40, seed=0):
    rng = np.random.default_rng(seed)
    return PolicyPool([make_traj(rng, i, base_length + i) for i in range(n_traj)])


#: budget small enough that a default pool spans several shards
TINY_SHARD = 2 * 40 * STATE_DIM * 8


# --------------------------------------------------------------------------
# ShardWriter
# --------------------------------------------------------------------------


class TestShardWriter:
    def test_streaming_ingest_cuts_shards(self, tmp_path):
        pool = make_pool()
        with ShardWriter(tmp_path / "st", shard_bytes=TINY_SHARD) as w:
            for t in pool.trajectories:
                w.add(t)
            assert w.n_trajectories == len(pool)
        sp = ShardedPool.open(tmp_path / "st")
        assert len(sp.manifest.shards) > 1
        assert sp.n_transitions == pool.n_transitions
        # no stray tmp files after atomic commits
        assert not list((tmp_path / "st").glob("*.tmp"))

    def test_rejects_zero_length(self, tmp_path):
        t = make_traj(np.random.default_rng(0), 0, length=0)
        with ShardWriter(tmp_path / "st") as w:
            with pytest.raises(ValueError, match="zero-length"):
                w.add(t)

    def test_rejects_state_dim_mismatch(self, tmp_path):
        rng = np.random.default_rng(0)
        bad = Trajectory(
            scheme="s", env_id="e", multi_flow=False,
            states=rng.standard_normal((10, STATE_DIM + 1)),
            actions=rng.uniform(0.5, 2.0, 10), rewards=rng.uniform(0, 1, 10),
        )
        with ShardWriter(tmp_path / "st") as w:
            w.add(make_traj(rng, 1, length=10))
            with pytest.raises(ValueError, match="state_dim"):
                w.add(bad)

    def test_existing_store_needs_append(self, tmp_path):
        with ShardWriter(tmp_path / "st") as w:
            w.add(make_traj(np.random.default_rng(0), 1, length=10))
        with pytest.raises(FileExistsError):
            ShardWriter(tmp_path / "st")
        with ShardWriter(tmp_path / "st", append=True) as w:
            w.add(make_traj(np.random.default_rng(1), 2, length=12))
        assert len(ShardedPool.open(tmp_path / "st")) == 2

    def test_empty_store_round_trip(self, tmp_path):
        with ShardWriter(tmp_path / "st"):
            pass
        sp = ShardedPool.open(tmp_path / "st")
        assert len(sp) == 0 and sp.n_transitions == 0
        with pytest.raises(ValueError, match="no trajectory"):
            sp.sample_sequences(4, 8, np.random.default_rng(0))

    def test_manifest_survives_midstream(self, tmp_path):
        """Every flush leaves a loadable store — crash-safe prefix."""
        w = ShardWriter(tmp_path / "st", shard_bytes=1)  # flush every add
        w.add(make_traj(np.random.default_rng(0), 1, length=10))
        w.add(make_traj(np.random.default_rng(1), 2, length=10))
        # no close(): simulate a killed collector
        sp = ShardedPool.open(tmp_path / "st")
        assert len(sp) == 2


# --------------------------------------------------------------------------
# ShardedPool: API parity + bit-identical sampling
# --------------------------------------------------------------------------


class TestShardedPool:
    def test_inventory_parity(self, tmp_path):
        pool = make_pool()
        sp = pack_pool(pool, tmp_path / "st", shard_bytes=TINY_SHARD)
        assert len(sp) == len(pool)
        assert sp.n_transitions == pool.n_transitions
        assert sp.schemes() == pool.schemes()
        assert sp.env_ids() == pool.env_ids()
        # per-scheme summary lines are identical; only the header differs
        assert sp.summary().splitlines()[1:] == pool.summary().splitlines()[1:]

    def test_sampling_bit_identical(self, tmp_path):
        pool = make_pool()
        sp = pack_pool(pool, tmp_path / "st", shard_bytes=TINY_SHARD)
        r1, r2 = np.random.default_rng(7), np.random.default_rng(7)
        for _ in range(8):
            a = pool.sample_sequences(16, 8, r1)
            b = sp.sample_sequences(16, 8, r2)
            for key in ("states", "actions", "rewards", "next_states"):
                assert np.array_equal(a[key], b[key]), key

    def test_sampling_bit_identical_with_normalize(self, tmp_path):
        pool = make_pool()
        sp = pack_pool(pool, tmp_path / "st", shard_bytes=TINY_SHARD)
        norm = lambda s: np.tanh(s)  # noqa: E731
        a = pool.sample_sequences(8, 6, np.random.default_rng(3), normalize=norm)
        b = sp.sample_sequences(8, 6, np.random.default_rng(3), normalize=norm)
        assert np.array_equal(a["states"], b["states"])
        assert np.array_equal(a["next_states"], b["next_states"])

    def test_filtered_views_bit_identical(self, tmp_path):
        pool = make_pool()
        sp = pack_pool(pool, tmp_path / "st", shard_bytes=TINY_SHARD)
        fa = pool.filter_schemes(["s0", "s2"])
        fb = sp.filter_schemes(["s0", "s2"])
        assert fb.schemes() == fa.schemes()
        a = fa.sample_sequences(8, 6, np.random.default_rng(11))
        b = fb.sample_sequences(8, 6, np.random.default_rng(11))
        assert np.array_equal(a["states"], b["states"])

        ea = pool.filter_env(lambda e: e.endswith(("2", "4")))
        eb = sp.filter_env(lambda e: e.endswith(("2", "4")))
        assert eb.env_ids() == ea.env_ids()
        a = ea.sample_sequences(4, 6, np.random.default_rng(12))
        b = eb.sample_sequences(4, 6, np.random.default_rng(12))
        assert np.array_equal(a["states"], b["states"])

    def test_trajectory_materialization(self, tmp_path):
        pool = make_pool(n_traj=4)
        sp = pack_pool(pool, tmp_path / "st", shard_bytes=TINY_SHARD)
        for orig, got in zip(pool.trajectories, sp.iter_trajectories()):
            assert got.scheme == orig.scheme
            assert got.env_id == orig.env_id
            assert got.multi_flow == orig.multi_flow
            assert np.array_equal(got.states, orig.states)
            assert np.array_equal(got.actions, orig.actions)
            assert np.array_equal(got.rewards, orig.rewards)

    def test_lru_cache_bounded(self, tmp_path):
        pool = make_pool()
        sp = pack_pool(pool, tmp_path / "st", shard_bytes=TINY_SHARD)
        sp = ShardedPool(sp.root, sp.manifest, max_open_shards=1)
        assert len(sp.manifest.shards) > 2
        r1, r2 = np.random.default_rng(5), np.random.default_rng(5)
        a = pool.sample_sequences(32, 8, r1)
        b = sp.sample_sequences(32, 8, r2)
        assert np.array_equal(a["states"], b["states"])
        assert len(sp.cache._open) == 1
        assert sp.cache.misses >= len(sp.manifest.shards) - 1

    def test_no_concat_cache(self, tmp_path):
        sp = pack_pool(make_pool(), tmp_path / "st")
        sp.sample_sequences(8, 6, np.random.default_rng(0))
        assert not hasattr(sp, "_concat")
        sp.drop_cache()
        assert len(sp.cache._open) == 0
        # sampling transparently reopens shards after drop_cache
        sp.sample_sequences(8, 6, np.random.default_rng(1))

    def test_open_pool_dispatches_on_path(self, tmp_path):
        pool = make_pool(n_traj=3)
        pool.save(tmp_path / "p.npz")
        pack_pool(pool, tmp_path / "st")
        assert isinstance(open_pool(tmp_path / "p.npz"), PolicyPool)
        assert isinstance(open_pool(tmp_path / "st"), ShardedPool)


# --------------------------------------------------------------------------
# Persistence edge cases (legacy .npz)
# --------------------------------------------------------------------------


class TestPersistenceEdgeCases:
    def test_empty_pool_round_trip(self, tmp_path):
        PolicyPool().save(tmp_path / "p.npz")
        pool = PolicyPool.load(tmp_path / "p.npz")
        assert len(pool) == 0 and pool.n_transitions == 0

    def test_save_rejects_zero_length(self, tmp_path):
        pool = PolicyPool([make_traj(np.random.default_rng(0), 0, length=0)])
        with pytest.raises(ValueError, match="zero-length"):
            pool.save(tmp_path / "p.npz")

    def test_truncated_npz_raises_clear_error(self, tmp_path):
        path = tmp_path / "p.npz"
        make_pool(n_traj=3).save(path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            PolicyPool.load(path)

    def test_garbage_file_raises_clear_error(self, tmp_path):
        path = tmp_path / "p.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(ValueError, match="corrupt or truncated"):
            PolicyPool.load(path)

    def test_pipe_in_env_id_round_trips(self, tmp_path):
        """Regression: env_id containing '|' used to shear the meta line."""
        rng = np.random.default_rng(0)
        pool = PolicyPool([
            make_traj(rng, 0, env_id="bw=24|rtt=0.04|aqm=codel"),
            make_traj(rng, 1, env_id="back\\slash|and|pipes"),
            make_traj(rng, 2, scheme="odd|scheme"),
        ])
        pool.save(tmp_path / "p.npz")
        got = PolicyPool.load(tmp_path / "p.npz")
        assert [t.env_id for t in got.trajectories] == [
            t.env_id for t in pool.trajectories
        ]
        assert [t.scheme for t in got.trajectories] == [
            t.scheme for t in pool.trajectories
        ]
        assert [t.multi_flow for t in got.trajectories] == [
            t.multi_flow for t in pool.trajectories
        ]

    def test_malformed_meta_raises(self, tmp_path):
        path = tmp_path / "p.npz"
        make_pool(n_traj=1).save(path)
        # rewrite the meta entry into nonsense
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["meta"] = np.array(["only-one-field"])
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="malformed pool meta"):
            PolicyPool.load(path)

    def test_parse_meta_rejects_bad_flag(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_meta("cubic|env|2")
        with pytest.raises(ValueError, match="dangling escape"):
            parse_meta("cubic|env|1\\")


# --------------------------------------------------------------------------
# Integrity audit + quarantine
# --------------------------------------------------------------------------


def corrupt_file(path, offset=200):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestVerifyQuarantine:
    def test_corrupt_shard_is_quarantined_not_fatal(self, tmp_path):
        pool = make_pool()
        sp = pack_pool(pool, tmp_path / "st", shard_bytes=TINY_SHARD)
        n_shards = len(sp.manifest.shards)
        victim = sp.manifest.shards[1]
        corrupt_file(tmp_path / "st" / victim.files["states"].file)

        report = verify(tmp_path / "st")
        assert not report.clean
        assert report.quarantined == [victim.name]
        assert report.dropped_trajectories == victim.n_trajectories
        # quarantined files moved, not deleted
        qdir = tmp_path / "st" / "quarantine"
        assert (qdir / victim.files["states"].file).exists()

        survivor = ShardedPool.open(tmp_path / "st")
        assert len(survivor.manifest.shards) == n_shards - 1
        assert len(survivor) == len(pool) - victim.n_trajectories
        survivor.sample_sequences(8, 6, np.random.default_rng(0))

    def test_missing_shard_file_is_quarantined(self, tmp_path):
        sp = pack_pool(make_pool(), tmp_path / "st", shard_bytes=TINY_SHARD)
        victim = sp.manifest.shards[0]
        (tmp_path / "st" / victim.files["rewards"].file).unlink()
        report = verify(tmp_path / "st")
        assert report.quarantined == [victim.name]

    def test_no_quarantine_leaves_store_untouched(self, tmp_path):
        sp = pack_pool(make_pool(), tmp_path / "st", shard_bytes=TINY_SHARD)
        victim = sp.manifest.shards[0]
        corrupt_file(tmp_path / "st" / victim.files["states"].file)
        report = verify(tmp_path / "st", quarantine=False)
        assert not report.clean and not report.quarantined
        assert (tmp_path / "st" / victim.files["states"].file).exists()
        assert len(ShardedPool.open(tmp_path / "st").manifest.shards) == len(
            sp.manifest.shards
        )

    def test_clean_store_verifies(self, tmp_path):
        pack_pool(make_pool(), tmp_path / "st")
        report = verify(tmp_path / "st")
        assert report.clean and "OK" in report.format()

    def test_schema_version_mismatch(self, tmp_path):
        pack_pool(make_pool(n_traj=2), tmp_path / "st")
        mpath = tmp_path / "st" / "manifest.json"
        data = json.loads(mpath.read_text())
        data["schema_version"] = 99
        mpath.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema version"):
            ShardedPool.open(tmp_path / "st")

    def test_not_a_store(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a trajectory store"):
            Manifest.load(tmp_path)


# --------------------------------------------------------------------------
# Streaming collection + ordered commit
# --------------------------------------------------------------------------


def tiny_envs(n=2):
    return [
        EnvConfig(
            env_id=f"t{i}", kind="flat", bw_mbps=12.0 + 12.0 * i,
            min_rtt=0.04, buffer_bdp=2.0, duration=2.0,
        )
        for i in range(n)
    ]


class TestStreamingCollect:
    def test_ordered_consumer_reserializes(self):
        seen = []
        consumer = OrderedConsumer(seen.append)
        for index in (2, 0, 3, 1, 4):
            consumer(index, f"r{index}")
        assert seen == ["r0", "r1", "r2", "r3", "r4"]
        assert consumer.held == 0

    def test_ordered_consumer_finish_skips_gaps(self):
        seen = []
        consumer = OrderedConsumer(seen.append)
        consumer(0, "r0")
        consumer(2, "r2")  # index 1 failed permanently
        consumer.finish()
        assert seen == ["r0", "r2"]

    def test_streamed_store_matches_in_memory_pool(self, tmp_path):
        envs, schemes = tiny_envs(), ["cubic", "vegas"]
        mem = collect_pool(envs, schemes=schemes, workers=1)
        sharded = collect_pool(
            envs, schemes=schemes, workers=2,
            store=tmp_path / "st", shard_bytes=1 << 16,
        )
        assert isinstance(sharded, ShardedPool)
        assert sharded.n_transitions == mem.n_transitions
        a = mem.sample_sequences(8, 6, np.random.default_rng(1))
        b = sharded.sample_sequences(8, 6, np.random.default_rng(1))
        for key in a:
            assert np.array_equal(a[key], b[key]), key

    def test_collect_pool_to_store_into_open_writer(self, tmp_path):
        writer = ShardWriter(tmp_path / "st")
        sp = collect_pool_to_store(
            tiny_envs(1), ["cubic"], writer, workers=1
        )
        assert len(sp) == 1
        # the writer was left open for further appends
        writer.add(make_traj(np.random.default_rng(0), 5, length=20))
        writer.close()
        assert len(ShardedPool.open(tmp_path / "st")) == 2


# --------------------------------------------------------------------------
# Merge + stats + training end-to-end
# --------------------------------------------------------------------------


class TestMergeStatsTrain:
    def test_merge_stores(self, tmp_path):
        p1, p2 = make_pool(n_traj=3, seed=1), make_pool(n_traj=4, seed=2)
        pack_pool(p1, tmp_path / "a")
        pack_pool(p2, tmp_path / "b")
        merged = merge_stores(
            [tmp_path / "a", tmp_path / "b"], tmp_path / "out",
            shard_bytes=TINY_SHARD,
        )
        assert len(merged) == 7
        assert merged.n_transitions == p1.n_transitions + p2.n_transitions
        both = PolicyPool(p1.trajectories + p2.trajectories)
        a = both.sample_sequences(8, 6, np.random.default_rng(9))
        b = merged.sample_sequences(8, 6, np.random.default_rng(9))
        assert np.array_equal(a["states"], b["states"])

    def test_stats_reports_schemes_and_checksums(self, tmp_path):
        pool = make_pool()
        pack_pool(pool, tmp_path / "st", shard_bytes=TINY_SHARD)
        text = store_stats(tmp_path / "st")
        # summary() parity: the same per-scheme lines PolicyPool prints
        for line in pool.summary().splitlines()[1:]:
            assert line in text
        assert "crc32" in text and "shard-00000" in text

    def test_training_identical_on_either_pool(self, tmp_path):
        pool = make_pool(n_traj=6, base_length=30, seed=4)
        sp = pack_pool(pool, tmp_path / "st", shard_bytes=TINY_SHARD)
        net = NetworkConfig(enc_dim=8, gru_dim=8, n_components=2, n_atoms=5)
        run_mem = train_sage_on_pool(
            pool, n_steps=4, n_checkpoints=2, net_config=net, seed=3
        )
        run_shard = train_sage_on_pool(
            sp, n_steps=4, n_checkpoints=2, net_config=net, seed=3
        )
        sd_mem = run_mem.agent.policy.state_dict()
        sd_shard = run_shard.agent.policy.state_dict()
        assert sd_mem.keys() == sd_shard.keys()
        for key in sd_mem:
            assert np.array_equal(sd_mem[key], sd_shard[key]), key
        # drop_cache ran after the epochs: the concat copy is released
        assert pool._concat is None


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


class TestPoolCLI:
    def test_pack_verify_stats_merge(self, tmp_path, capsys):
        pool = make_pool()
        npz = tmp_path / "pool.npz"
        pool.save(npz)

        assert main(["pool", "pack", str(npz), str(tmp_path / "st"),
                     "--shard-mb", "1"]) == 0
        out = capsys.readouterr().out
        assert "packed" in out and "ShardedPool" in out

        assert main(["pool", "verify", str(tmp_path / "st")]) == 0
        assert "all shard checksums OK" in capsys.readouterr().out

        assert main(["pool", "stats", str(tmp_path / "st")]) == 0
        out = capsys.readouterr().out
        for line in pool.summary().splitlines()[1:]:
            assert line in out

        assert main(["pool", "merge", str(tmp_path / "st"), str(npz),
                     "-o", str(tmp_path / "merged")]) == 0
        assert len(ShardedPool.open(tmp_path / "merged")) == 2 * len(pool)

    def test_verify_quarantines_via_cli(self, tmp_path, capsys):
        sp = pack_pool(make_pool(), tmp_path / "st", shard_bytes=TINY_SHARD)
        victim = sp.manifest.shards[0]
        corrupt_file(tmp_path / "st" / victim.files["states"].file)
        # default: quarantine and keep going (exit 0)
        assert main(["pool", "verify", str(tmp_path / "st")]) == 0
        assert "quarantined 1 shard" in capsys.readouterr().out
        # the survivor store is clean now; --strict passes
        assert main(["pool", "verify", str(tmp_path / "st"), "--strict"]) == 0

    def test_verify_strict_fails_on_corruption(self, tmp_path, capsys):
        sp = pack_pool(make_pool(), tmp_path / "st", shard_bytes=TINY_SHARD)
        victim = sp.manifest.shards[0]
        corrupt_file(tmp_path / "st" / victim.files["actions"].file)
        assert main(["pool", "verify", str(tmp_path / "st"), "--strict",
                     "--no-quarantine"]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_train_on_store_via_cli(self, tmp_path):
        pack_pool(make_pool(), tmp_path / "st")
        assert main([
            "train", "--pool", str(tmp_path / "st"), "--steps", "2",
            "--checkpoints", "1", "--out", str(tmp_path / "sage.npz"),
            "--enc-dim", "8", "--gru-dim", "8",
            "--components", "2", "--atoms", "5",
        ]) == 0
        assert (tmp_path / "sage.npz").exists()
