"""Fig. 16 — t-SNE of the last hidden layer over Set II environments.

The paper embeds the policy's last hidden features for seven Set II
environments; Sage-l's features separate the environments cleanly. Here we
embed the trained agent's features and verify the embedding keeps
same-environment points closer together than cross-environment points.
"""

import numpy as np

from conftest import SCALE, once

from repro.collector.environments import set2_environments
from repro.collector.rollout import run_policy
from repro.evalx.tsne import tsne

N_ENVS = {"tiny": 3, "small": 5, "full": 7}[SCALE]
POINTS_PER_ENV = 40


def test_fig16_tsne_hidden_features(benchmark, sage_agent):
    envs = set2_environments(
        bws=(12.0, 24.0, 48.0), rtts=(0.02, 0.06), buffers=(2.0, 8.0),
        duration=8.0,
    )[:N_ENVS]

    def run():
        feats, labels = [], []
        for li, env in enumerate(envs):
            rollout = run_policy(env, sage_agent)
            sage_agent.reset()
            states = rollout.states[-POINTS_PER_ENV:]
            for s in states:
                feats.append(sage_agent.hidden_features(s))
                labels.append(li)
        return tsne(np.asarray(feats), n_iter=200, perplexity=12.0), np.asarray(labels)

    embedding, labels = once(benchmark, run)
    print("\n=== Fig. 16: t-SNE cluster centroids ===")
    centroids = []
    for li in range(N_ENVS):
        c = embedding[labels == li].mean(axis=0)
        centroids.append(c)
        print(f"env {li}: centroid=({c[0]:7.2f}, {c[1]:7.2f})")
    assert embedding.shape == (N_ENVS * POINTS_PER_ENV, 2)
    assert np.all(np.isfinite(embedding))
