"""Table 1 — the 69-element GR input vector.

Regenerates the table's structure from the implementation and times the
cost of one GR tick (the per-20 ms observation path).
"""

import numpy as np

from repro.collector.gr_unit import GRUnit, STATE_DIM, STATE_FIELDS
from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate
from repro.tcp.flow import Flow


def test_table1_state_vector(benchmark):
    loop = EventLoop()
    net = Network(loop, FlatRate(24e6), TailDrop(240_000))
    flow = Flow(net, 0, "cubic", min_rtt=0.04)
    flow.start()
    loop.run_until(2.0)
    gr = GRUnit(flow.sender)

    t = [2.0]

    def tick():
        t[0] += 0.02
        loop.run_until(t[0])
        return gr.tick()

    state, action = benchmark(tick)
    print(f"\n=== Table 1: {STATE_DIM} input statistics ===")
    for i in range(0, STATE_DIM, 3):
        row = "   ".join(
            f"{j + 1:>2} {STATE_FIELDS[j]:<18}" for j in range(i, min(i + 3, STATE_DIM))
        )
        print(row)
    assert state.shape == (69,)
    assert np.all(np.isfinite(state))
    assert 1 / 3 <= action <= 3
