"""Property tests for the similarity/distance metrics on synthetic data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.evalx.similarity import _normalize_rows, min_cosine_distances

_NONZERO = st.one_of(
    st.floats(0.01, 5.0, width=64), st.floats(-5.0, -0.01, width=64)
)
MAT = arrays(np.float64, (6, 8), elements=_NONZERO)


class TestCosineProperties:
    @given(a=MAT, b=MAT)
    @settings(max_examples=20, deadline=None)
    def test_distances_in_range(self, a, b):
        d = min_cosine_distances(a, b)
        assert np.all(d >= -1e-9)
        assert np.all(d <= 2.0 + 1e-9)

    @given(a=MAT)
    @settings(max_examples=20, deadline=None)
    def test_self_distance_zero(self, a):
        d = min_cosine_distances(a, a)
        np.testing.assert_allclose(d, 0.0, atol=1e-9)

    @given(a=MAT, scale=st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_scale_invariance(self, a, scale):
        b = a * scale
        d = min_cosine_distances(a, b)
        np.testing.assert_allclose(d, 0.0, atol=1e-9)

    @given(a=MAT, b=MAT)
    @settings(max_examples=15, deadline=None)
    def test_adding_reference_rows_never_increases_distance(self, a, b):
        d_small = min_cosine_distances(a, b[:3])
        d_big = min_cosine_distances(a, b)
        assert np.all(d_big <= d_small + 1e-9)

    def test_opposite_vectors_max_distance(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[-1.0, 0.0]])
        assert min_cosine_distances(a, b)[0] == pytest.approx(2.0)

    @given(a=MAT)
    @settings(max_examples=10, deadline=None)
    def test_normalize_rows_unit_norm(self, a):
        n = _normalize_rows(a)
        np.testing.assert_allclose(np.linalg.norm(n, axis=1), 1.0, atol=1e-9)

    def test_blocked_computation_matches_direct(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((20, 5)), rng.standard_normal((30, 5))
        d1 = min_cosine_distances(a, b, block=4)
        d2 = min_cosine_distances(a, b, block=1000)
        np.testing.assert_allclose(d1, d2)
