"""Crash-tolerant serving state: snapshot / restore for :class:`PolicyServer`.

The serving plane is the one long-lived *stateful* process in the system:
per-flow GRU hidden rows, session RNG streams, fallback-controller state,
and the tier router's bookkeeping all live in the server. Losing them on a
crash means every flow restarts cold — exactly the failure mode a learned
policy handles worst. A snapshot captures the **complete** decision-
relevant state, so a server killed mid-workload and restored from its last
snapshot emits a decision stream bitwise identical to one that never died.

File format: one ``.npz`` (tmp-then-``os.replace``) with a CRC32 sidecar —
the same atomicity/integrity contract as train checkpoints and distilled
controllers. Numeric columns are stored as arrays; sessions, RNG states,
pending submissions' metadata, and metrics ride in an embedded JSON blob
(Python's ``json`` round-trips floats exactly, so nothing is lossy).

What is *not* captured: the policy weights. A snapshot pairs with the
checkpoint the server was built from; restoring into a server holding
different weights is caught by the hidden-dimension check only when the
shapes differ, so keep checkpoints and snapshots together.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import Dict, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.engine import PolicyServer

from repro.serve.fallback import make_fallback
from repro.serve.metrics import ServingMetrics

__all__ = ["SNAPSHOT_SCHEMA_VERSION", "save_snapshot", "load_snapshot"]

SNAPSHOT_SCHEMA_VERSION = 1

_COLUMNS = ("last_ratio", "cwnd_est", "miss_streak", "degraded", "nn_age")


def _write_npz_atomic(path: Path, payload: Dict[str, np.ndarray]) -> None:
    """tmp-then-replace ``.npz`` write plus a CRC32 sidecar."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **payload)
    os.replace(tmp, path)
    crc = 0
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            crc = zlib.crc32(block, crc)
    sidecar = path.with_name(path.name + ".crc32")
    tmp = sidecar.with_name(sidecar.name + ".tmp")
    tmp.write_text(
        json.dumps({"crc32": crc & 0xFFFFFFFF, "bytes": path.stat().st_size})
        + "\n"
    )
    os.replace(tmp, sidecar)


def _verify_sidecar(path: Path) -> None:
    sidecar = path.with_name(path.name + ".crc32")
    if not sidecar.exists():
        return
    expected = json.loads(sidecar.read_text())
    crc = 0
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            crc = zlib.crc32(block, crc)
    if (
        (crc & 0xFFFFFFFF) != int(expected["crc32"])
        or path.stat().st_size != int(expected["bytes"])
    ):
        raise ValueError(
            f"server snapshot {path} fails its integrity check (crc/size "
            f"mismatch vs {sidecar.name}); refusing to load"
        )


# ---------------------------------------------------------------------------
def save_snapshot(server: "PolicyServer", path) -> None:
    """Atomically persist the server's complete per-flow serving state."""
    path = Path(path)
    sessions = []
    for flow_id, sess in server._sessions.items():
        entry: Dict = {
            "flow_id": int(flow_id),
            "row": int(sess.row),
            "rng": sess.rng.bit_generator.state,
            "fallback": None,
        }
        if sess.fallback is not None:
            entry["fallback"] = {
                "name": sess.fallback.name,
                "state": sess.fallback.state_dict(),
            }
        sessions.append(entry)
    pending_ids = list(server._pending)
    if pending_ids:
        pending_states = np.stack(
            [server._pending[f][0] for f in pending_ids]
        )
        pending_cwnd = np.array(
            [np.nan if server._pending[f][1] is None
             else float(server._pending[f][1])
             for f in pending_ids]
        )
    else:
        pending_states = np.zeros((0, 0))
        pending_cwnd = np.zeros(0)
    meta = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "hdim": server._hdim,
        "capacity": server.capacity,
        "tick_index": server._tick_index,
        "free": [int(r) for r in server._free],
        "sessions": sessions,
        "pending_ids": [int(f) for f in pending_ids],
        "metrics": server.metrics.to_state(),
    }
    payload = {
        "meta/json": np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        "cols/table": server._table,
        "cols/last_ratio": server._last_ratio,
        "cols/cwnd_est": server._cwnd_est,
        "cols/miss_streak": server._miss_streak,
        "cols/degraded": server._degraded,
        "cols/nn_age": server._nn_age,
        "pending/states": pending_states,
        "pending/cwnd": pending_cwnd,
    }
    _write_npz_atomic(path, payload)


def load_snapshot(server: "PolicyServer", path) -> None:
    """Restore :func:`save_snapshot` state into ``server`` in place.

    ``server`` must hold the same policy (hidden dimension) the snapshot
    was taken with. Its existing sessions and pending queue are replaced
    wholesale.
    """
    from repro.serve.engine import _FlowSession  # local: import cycle

    path = Path(path)
    _verify_sidecar(path)
    try:
        data = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise ValueError(
            f"server snapshot {path} is not a valid .npz archive: {exc}"
        ) from exc
    with data:
        if "meta/json" not in data.files:
            raise ValueError(
                f"server snapshot {path} is missing meta/json; not a "
                f"snapshot file"
            )
        meta = json.loads(bytes(data["meta/json"]).decode("utf-8"))
        version = int(meta.get("schema_version", -1))
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                f"server snapshot {path} has schema version {version}; "
                f"this build reads version {SNAPSHOT_SCHEMA_VERSION}"
            )
        if int(meta["hdim"]) != server._hdim:
            raise ValueError(
                f"server snapshot {path} was taken with hidden dim "
                f"{meta['hdim']}; this server's policy has {server._hdim} "
                f"— snapshot and checkpoint do not pair"
            )
        table = np.asarray(data["cols/table"], dtype=np.float64)
        cols = {
            name: np.asarray(data[f"cols/{name}"]) for name in _COLUMNS
        }
        pending_states = np.asarray(data["pending/states"])
        pending_cwnd = np.asarray(data["pending/cwnd"])

    server._table = table.reshape(int(meta["capacity"]), server._hdim)
    server._last_ratio = cols["last_ratio"].astype(np.float64)
    server._cwnd_est = cols["cwnd_est"].astype(np.float64)
    server._miss_streak = cols["miss_streak"].astype(np.int64)
    server._degraded = cols["degraded"].astype(bool)
    server._nn_age = cols["nn_age"].astype(np.int64)
    server._free = [int(r) for r in meta["free"]]
    server._tick_index = int(meta["tick_index"])
    server.metrics = ServingMetrics.from_state(meta["metrics"])

    server._sessions = {}
    for entry in meta["sessions"]:
        rng = np.random.default_rng()
        rng.bit_generator.state = entry["rng"]
        sess = _FlowSession(int(entry["row"]), rng)
        fb = entry.get("fallback")
        if fb is not None:
            sess.fallback = make_fallback(fb["name"])
            sess.fallback.load_state(fb.get("state", {}))
        server._sessions[int(entry["flow_id"])] = sess

    server._pending = {}
    for i, flow_id in enumerate(meta.get("pending_ids", [])):
        cwnd = float(pending_cwnd[i])
        server._pending[int(flow_id)] = (
            np.asarray(pending_states[i], dtype=np.float64),
            None if np.isnan(cwnd) else cwnd,
        )
