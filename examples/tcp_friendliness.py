#!/usr/bin/env python
"""TCP-friendliness: share a bottleneck with competing Cubic flows.

The Fig.-19 experiment: one flow of the scheme under test joins a link
already carrying N Cubic flows (48 Mbps, 40 ms, BDP buffer). A friendly
scheme takes roughly the fair share — neither starving (Vegas/LEDBAT) nor
bullying.

Run:  python examples/tcp_friendliness.py [--cubics 3]
"""

import argparse

from repro.evalx.dynamics import friendliness_experiment
from repro.evalx.leagues import Participant

SCHEMES = ["cubic", "newreno", "vegas", "bbr2", "ledbat", "yeah"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cubics", type=int, default=3)
    parser.add_argument("--duration", type=float, default=30.0)
    args = parser.parse_args()

    fair = 48.0 / (args.cubics + 1)
    print(f"one test flow vs {args.cubics} Cubic flows on 48 Mbps / 40 ms "
          f"(ideal fair share = {fair:.2f} Mbps)\n")
    print(f"{'scheme':>9} {'mine (Mbps)':>12} {'cubic avg':>10} {'fair dev':>9}")
    for scheme in SCHEMES:
        res = friendliness_experiment(
            Participant.from_scheme(scheme), n_cubic=args.cubics,
            bw_mbps=48.0, min_rtt=0.040, duration=args.duration,
        )
        mine = res.flow_stats[0].avg_throughput_bps / 1e6
        cubics = [s.avg_throughput_bps / 1e6 for s in res.flow_stats[1:]]
        avg_cubic = sum(cubics) / len(cubics)
        print(f"{scheme:>9} {mine:12.2f} {avg_cubic:10.2f} "
              f"{abs(mine - fair):9.2f}")


if __name__ == "__main__":
    main()
