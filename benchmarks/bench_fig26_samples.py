"""Fig. 26 — per-path samples of the Internet/cellular experiments.

Three inter-continental, three intra-continental, and three cellular
paths, each reporting per-scheme average one-way delay and throughput
(the detailed version of Fig. 8, including the oracle reference point the
paper labels "NATCP (Optimal)").
"""

from conftest import once

from repro.baselines.indigo import OracleAgent
from repro.collector.rollout import run_policy
from repro.evalx.internet import (
    cellular_envs,
    inter_continental_envs,
    intra_continental_envs,
)
from repro.evalx.leagues import Participant, run_participant

SCHEMES = ["cubic", "vegas", "bbr2"]


def test_fig26_per_path_samples(benchmark, sage_agent):
    paths = (
        inter_continental_envs(duration=8.0, n_paths=3)
        + intra_continental_envs(duration=8.0, n_paths=3)
        + cellular_envs(n_traces=3, duration=8.0)
    )

    def run():
        rows = []
        for env in paths:
            per = {}
            for s in SCHEMES:
                r = run_participant(Participant.from_scheme(s), env)
                per[s] = (r.stats.avg_throughput_bps, r.stats.avg_owd)
            r = run_participant(Participant.from_agent(sage_agent), env)
            per["sage"] = (r.stats.avg_throughput_bps, r.stats.avg_owd)
            oracle = OracleAgent(env, name="natcp-optimal")
            r = run_policy(env, oracle)
            per["natcp-optimal"] = (r.stats.avg_throughput_bps, r.stats.avg_owd)
            rows.append((env.env_id, per))
        return rows

    rows = once(benchmark, run)
    print("\n=== Fig. 26: per-path throughput (Mbps) / owd (ms) ===")
    for env_id, per in rows:
        cells = "  ".join(
            f"{n}:{t / 1e6:5.2f}/{d * 1e3:5.1f}" for n, (t, d) in per.items()
        )
        print(f"{env_id:>16}  {cells}")

    for env_id, per in rows:
        assert per["sage"][0] > 0
        # the oracle reference keeps near-propagation delay
        assert per["natcp-optimal"][1] < per["cubic"][1] * 1.5
