"""PCC Vivace (Dong et al., NSDI 2018) — online-learning rate control.

Vivace is not a trained model: it performs *online* no-regret gradient
ascent on a utility function of the measured sending rate::

    U(x) = x^0.9 - b * x * L - c * x * max(0, d(RTT)/dt)

by running paired rate probes (x(1+eps), x(1-eps)) each "monitor interval"
and stepping toward the better-scoring direction. Registered as a regular
CC scheme so it can enter any league.
"""

from __future__ import annotations

from repro.netsim.packet import MSS_BYTES
from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Vivace(CongestionControl):
    """Online utility-gradient rate control."""

    name = "vivace"

    EPS = 0.05  # probe amplitude
    B_LOSS = 10.0  # loss penalty coefficient
    C_LAT = 5.0  # latency-gradient penalty coefficient
    STEP0 = 0.05  # initial gradient step (fraction of rate)

    def __init__(self) -> None:
        self.rate_bps = 2e6
        self.phase = 0  # 0: probe up, 1: probe down, 2: move
        self._phase_start = 0.0
        self._phase_metrics = []
        self._delivered0 = 0
        self._lost0 = 0
        self._rtt0 = 0.0
        self._utilities = [0.0, 0.0]
        self._step = self.STEP0
        self._last_direction = 0

    def _phase_rate(self) -> float:
        if self.phase == 0:
            return self.rate_bps * (1.0 + self.EPS)
        if self.phase == 1:
            return self.rate_bps * (1.0 - self.EPS)
        return self.rate_bps

    def _utility(self, sock, interval: float) -> float:
        delivered = (sock.delivered - self._delivered0) * MSS_BYTES * 8.0 / interval
        lost = (sock.lost - self._lost0) * MSS_BYTES * 8.0 / interval
        x = delivered / 1e6  # Mbps
        loss_rate = lost / max(delivered + lost, 1e3)
        rtt_grad = (sock.srtt_or_min - self._rtt0) / interval if self._rtt0 > 0 else 0.0
        return (
            max(x, 1e-6) ** 0.9
            - self.B_LOSS * x * loss_rate
            - self.C_LAT * x * max(rtt_grad, 0.0)
        )

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        mi = max(sock.srtt_or_min, 0.02)  # one monitor interval ~ RTT
        if self._phase_start == 0.0:
            self._phase_start = now
            self._snapshot(sock)
            return
        if now - self._phase_start < mi:
            return
        interval = now - self._phase_start
        if self.phase in (0, 1):
            self._utilities[self.phase] = self._utility(sock, interval)
            self.phase += 1
        else:
            # move phase done: compute gradient step for the next round
            up, down = self._utilities
            grad = (up - down) / (2.0 * self.EPS * max(self.rate_bps / 1e6, 1e-3))
            direction = 1 if grad > 0 else -1
            if direction == self._last_direction:
                self._step = min(self._step * 1.5, 0.3)  # confidence amplification
            else:
                self._step = self.STEP0
            self._last_direction = direction
            self.rate_bps *= 1.0 + direction * self._step
            self.rate_bps = min(max(self.rate_bps, 1e5), 1e9)
            self.phase = 0
        self._phase_start = now
        self._snapshot(sock)

    def _snapshot(self, sock) -> None:
        self._delivered0 = sock.delivered
        self._lost0 = sock.lost
        self._rtt0 = sock.srtt_or_min

    def pacing_rate(self, sock):
        return self._phase_rate()

    def on_loss_event(self, sock, now: float) -> None:
        # Vivace reacts to loss only through the utility; keep cwnd generous
        # so pacing stays the binding control.
        sock.ssthresh = max(sock.cwnd * 0.9, self.MIN_CWND)
        sock.cwnd = max(sock.cwnd * 0.9, self.MIN_CWND)

    def on_rto(self, sock, now: float) -> None:
        self.rate_bps = max(self.rate_bps * 0.5, 1e5)
        sock.cwnd = max(sock.cwnd * 0.5, self.MIN_CWND)

    def on_init(self, sock) -> None:
        # window stays slack; the pacing rate is the real controller
        sock.cwnd = 100.0
