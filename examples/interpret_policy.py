#!/usr/bin/env python
"""Peek inside a trained policy: which congestion signals does it read?

Section 8 of the paper asks how to analyse learned CC models. This example
trains a small Sage, then uses gradient saliency to rank the 69 Table-1
input statistics by their influence on the chosen action — the learned
counterpart of asking "is this scheme loss-based or delay-based?".

Run:  python examples/interpret_policy.py
"""

import numpy as np

from repro.collector.environments import EnvConfig
from repro.core.crr import CRRConfig
from repro.core.interpret import group_saliency, input_saliency, top_signals
from repro.core.networks import NetworkConfig
from repro.core.training import collect_pool, train_sage_on_pool


def main() -> None:
    envs = [
        EnvConfig(env_id="i1", kind="flat", bw_mbps=24.0, min_rtt=0.04,
                  buffer_bdp=2.0, duration=8.0),
        EnvConfig(env_id="i2", kind="flat", bw_mbps=24.0, min_rtt=0.04,
                  buffer_bdp=4.0, n_competing_cubic=1, duration=10.0),
    ]
    pool = collect_pool(envs, schemes=["cubic", "vegas", "bbr2"])
    run = train_sage_on_pool(
        pool, n_steps=120, n_checkpoints=1,
        net_config=NetworkConfig(enc_dim=24, gru_dim=24, n_components=2,
                                 n_atoms=11),
        crr_config=CRRConfig(batch_size=8, seq_len=6, lr_policy=1e-3,
                             lr_critic=1e-3),
    )

    # probe saliency on states the pool actually visited
    states = np.concatenate([t.states[::10] for t in pool.trajectories])[:64]
    saliency = input_saliency(run.trainer.policy, states)

    print("top-10 most influential input statistics:")
    for field, value in top_signals(saliency, k=10):
        print(f"  {field:<20} {value:8.4f}")

    print("\nsaliency by signal category:")
    for group, value in sorted(group_saliency(saliency).items(),
                               key=lambda kv: -kv[1]):
        print(f"  {group:<11} {value:8.4f}")


if __name__ == "__main__":
    main()
