#!/usr/bin/env python
"""Visualize how schemes react to a capacity step (Fig.-17 style).

Runs two schemes through a 24 -> 48 Mbps step and renders their throughput
and RTT waveforms as terminal charts.

Run:  python examples/step_response.py [--schemes cubic,vegas]
"""

import argparse

from repro.collector.environments import EnvConfig
from repro.collector.rollout import collect_trajectory
from repro.evalx.plotting import ascii_timeseries


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schemes", default="cubic,vegas")
    parser.add_argument("--duration", type=float, default=20.0)
    args = parser.parse_args()
    schemes = [s for s in args.schemes.split(",") if s]

    env = EnvConfig(
        env_id="step-demo", kind="step", bw_mbps=24.0, min_rtt=0.02,
        buffer_bdp=4.0, step_m=2.0, step_at=args.duration / 2,
        duration=args.duration,
    )
    thr_series = {}
    rtt_series = {}
    for scheme in schemes:
        r = collect_trajectory(env, scheme)
        s = r.stats
        thr_series[scheme] = (s.times, [v / 1e6 for v in s.throughput_series])
        rtt_series[scheme] = (s.times, [v * 1e3 for v in s.rtt_series])

    print(ascii_timeseries(
        thr_series, title=f"throughput (capacity steps 24->48 Mbps at "
        f"t={args.duration / 2:.0f}s)", y_label="Mbps",
    ))
    print()
    print(ascii_timeseries(rtt_series, title="RTT", y_label="ms"))


if __name__ == "__main__":
    main()
