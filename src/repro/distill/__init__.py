"""Symbolic distillation of the learned policy (`repro.distill`).

Compresses the GRU policy's deterministic serving path into a branchy
CART controller (per *Symbolic Distillation for Learned TCP Congestion
Control*) that answers in microseconds. The serving engine mounts it as
tier 0 of the tiered router; flows whose leaf confidence clears the
calibrated gate never pay the batched NN forward.
"""

from repro.distill.dataset import (
    FEATURE_DIM,
    HIDDEN_SUMMARY_DIM,
    HIDDEN_SUMMARY_FIELDS,
    build_distill_dataset,
    feature_names,
    hidden_summary,
)
from repro.distill.model import (
    SCHEMA_VERSION,
    DistillConfig,
    DistilledPolicy,
    evaluate_distilled,
    fit_distilled,
)
from repro.distill.tree import RegressionTree, TreeConfig

__all__ = [
    "FEATURE_DIM",
    "HIDDEN_SUMMARY_DIM",
    "HIDDEN_SUMMARY_FIELDS",
    "SCHEMA_VERSION",
    "DistillConfig",
    "DistilledPolicy",
    "RegressionTree",
    "TreeConfig",
    "build_distill_dataset",
    "evaluate_distilled",
    "feature_names",
    "fit_distilled",
    "hidden_summary",
]
