#!/usr/bin/env python
"""Extending the library: write a CC scheme, enter it in a league, and add
its trajectories to a Sage training pool.

This is the downstream-user story the paper's Section 8 invites: any scheme
exposing the kernel-style hook API can be observed by the Policy Collector
and become part of the pool Sage learns from.

Run:  python examples/custom_scheme.py
"""

from repro.collector.environments import EnvConfig
from repro.collector.rollout import collect_trajectory
from repro.core.training import collect_pool
from repro.evalx.leagues import Participant, run_league
from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class AimdHalf(CongestionControl):
    """A toy AIMD variant: additive increase 2/RTT, decrease to 2/3."""

    name = "aimd-half"

    def on_ack(self, sock, n_acked, rtt, now):
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
        else:
            sock.cwnd += 2.0 * n_acked / max(sock.cwnd, 1.0)

    def ssthresh(self, sock):
        return max(sock.cwnd * 2.0 / 3.0, self.MIN_CWND)


def main() -> None:
    # 1. It immediately works as a league participant.
    set1 = [
        EnvConfig(env_id="c1", kind="flat", bw_mbps=24.0, min_rtt=0.04,
                  buffer_bdp=2.0, duration=8.0)
    ]
    set2 = [
        EnvConfig(env_id="c2", kind="flat", bw_mbps=24.0, min_rtt=0.04,
                  buffer_bdp=4.0, n_competing_cubic=1, duration=10.0)
    ]
    parts = [Participant.from_scheme(s) for s in ("cubic", "vegas", "aimd-half")]
    result = run_league(parts, set1=set1, set2=set2)
    print(result.format_table())

    # 2. The Policy Collector records it like any kernel scheme ...
    rollout = collect_trajectory(set1[0], "aimd-half")
    print(f"\ncollected {rollout.length} transitions from aimd-half "
          f"(thr={rollout.stats.avg_throughput_bps / 1e6:.2f} Mbps)")

    # 3. ... so it can join a Sage training pool.
    pool = collect_pool(set1 + set2, schemes=["cubic", "vegas", "aimd-half"])
    print(pool.summary())


if __name__ == "__main__":
    main()
