"""C2TCP (Abbasloo, Li, Xu, Chao — IFIP Networking 2018 / JSAC 2019).

Cellular Controlled-delay TCP: wraps a loss-based scheme (Cubic here, as in
the paper) with an RTT *setpoint* ``target = k × minRTT``. While the
smoothed condition signal stays under the setpoint the underlying scheme
runs untouched; when delay exceeds it, the window is cut toward the
delay-feasible operating point, bounding latency on highly-variable links.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme
from repro.tcp.schemes.cubic import Cubic


@register_scheme
class C2Tcp(CongestionControl):
    """Delay-setpoint wrapper around Cubic."""

    name = "c2tcp"

    K_TARGET = 1.6  # setpoint multiplier over minRTT
    ALPHA = 0.5  # window cut factor when over the setpoint

    def __init__(self) -> None:
        self.inner = Cubic()
        self.min_rtt = float("inf")
        self._last_cut = 0.0

    def on_init(self, sock) -> None:
        self.inner.on_init(sock)

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.min_rtt = min(self.min_rtt, rtt)
        target = self.K_TARGET * self.min_rtt
        if (
            rtt > 0
            and self.min_rtt < float("inf")
            and rtt > target
            and now - self._last_cut > max(sock.srtt_or_min, 0.01)
        ):
            # Condition violated: cut toward the delay-feasible window.
            feasible = sock.cwnd * self.min_rtt / rtt
            sock.cwnd = max(
                min(sock.cwnd * self.ALPHA + feasible * (1 - self.ALPHA), sock.cwnd),
                self.MIN_CWND,
            )
            sock.ssthresh = sock.cwnd
            self.inner.ssthresh(sock)  # re-anchor cubic's epoch
            self._last_cut = now
            return
        self.inner.on_ack(sock, n_acked, rtt, now)

    def ssthresh(self, sock) -> float:
        return self.inner.ssthresh(sock)

    def on_rto(self, sock, now: float) -> None:
        self.inner.on_rto(sock, now)
