"""Distillation dataset: replay pool trajectories through the frozen policy.

The symbolic controller is trained to imitate what the serving engine's
tier-1 forward *would* answer. Each pool trajectory's raw Table-1 states
are replayed through :class:`~repro.core.networks.FastPolicy` in
deterministic mode — exactly the batched einsum path the server runs — and
every step contributes one ``(features, log-ratio)`` pair:

- **features** are the normalized 69-dim GR state (the same
  ``normalize_state`` + optional mask transform the server applies) plus an
  8-number *hidden summary* of the GRU state the flow carried into the
  tick. The raw hidden vector (64-1024 dims) would blow up tree fitting
  and, worse, tie the tree to one checkpoint's basis; cheap permutation-
  invariant statistics carry the "how saturated / how excited is the
  memory" signal the branchy rules actually need.
- **target** is the log of the deterministic (mode) cwnd ratio the NN
  produced.

Replay is batched across trajectories: all trajectories advance together,
one ``(n_active, 69)`` forward per timestep, so dataset generation costs
the same as serving the pool once.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.collector.gr_unit import STATE_FIELDS, normalize_state
from repro.core.networks import FastPolicy

#: names of the hidden-summary features, appended after the 69 GR fields
HIDDEN_SUMMARY_FIELDS: List[str] = [
    "h_mean", "h_std", "h_min", "h_max",
    "h_absmean", "h_rms", "h_posfrac", "h_absmax",
]

HIDDEN_SUMMARY_DIM = len(HIDDEN_SUMMARY_FIELDS)

#: total distillation feature dimension: Table-1 state + hidden summary
FEATURE_DIM = len(STATE_FIELDS) + HIDDEN_SUMMARY_DIM


def feature_names() -> List[str]:
    """Feature labels, in column order (for rule rendering / debugging)."""
    return list(STATE_FIELDS) + list(HIDDEN_SUMMARY_FIELDS)


def hidden_summary(h: Optional[np.ndarray], n: int) -> np.ndarray:
    """Summarize ``(N, H)`` hidden rows to ``(N, 8)`` statistics.

    ``None`` (the no-GRU ablation) yields zeros — the tree then learns a
    purely state-driven controller.
    """
    if h is None:
        return np.zeros((n, HIDDEN_SUMMARY_DIM))
    h = np.asarray(h, dtype=np.float64)
    if h.ndim == 1:
        h = h[None, :]
    out = np.empty((len(h), HIDDEN_SUMMARY_DIM))
    out[:, 0] = h.mean(axis=1)
    out[:, 1] = h.std(axis=1)
    out[:, 2] = h.min(axis=1)
    out[:, 3] = h.max(axis=1)
    ab = np.abs(h)
    out[:, 4] = ab.mean(axis=1)
    out[:, 5] = np.sqrt((h * h).mean(axis=1))
    out[:, 6] = (h > 0).mean(axis=1)
    out[:, 7] = ab.max(axis=1)
    return out


def _iter_trajectories(pool) -> Iterable:
    """Uniform trajectory iteration over PolicyPool / ShardedPool."""
    it = getattr(pool, "iter_trajectories", None)
    if it is not None:
        return it()
    return iter(pool.trajectories)


def build_distill_dataset(
    fast: FastPolicy,
    pool,
    state_mask: Optional[np.ndarray] = None,
    max_samples: Optional[int] = None,
    max_trajectories: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Replay ``pool`` through ``fast``; return ``(X (N, 77), y (N,))``.

    ``y`` is the log of the deterministic cwnd ratio. ``max_samples``
    subsamples the finished dataset with an even deterministic stride;
    ``max_trajectories`` truncates the replay set first (cheaper).
    """
    states_list: List[np.ndarray] = []
    for k, traj in enumerate(_iter_trajectories(pool)):
        if max_trajectories is not None and k >= max_trajectories:
            break
        raw = np.asarray(traj.states, dtype=np.float64)
        if len(raw):
            states_list.append(raw)
    if not states_list:
        raise ValueError("pool holds no trajectories to distill from")

    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    # advance all trajectories together: one (n_active, 69) forward per t
    lengths = np.array([len(s) for s in states_list])
    order = np.argsort(-lengths, kind="stable")  # longest first
    states_list = [states_list[i] for i in order]
    lengths = lengths[order]
    n = len(states_list)
    h = fast.initial_state_batch(n)
    for t in range(int(lengths.max())):
        n_active = int(np.searchsorted(-lengths, -t, side="left"))
        if n_active == 0:
            break
        raw_t = np.stack([states_list[i][t] for i in range(n_active)])
        x = normalize_state(raw_t)
        if state_mask is not None:
            x = x * state_mask
        h_active = None if h is None else h[:n_active]
        xs.append(np.concatenate([x, hidden_summary(h_active, n_active)], axis=1))
        ratios, h_next = fast.step_batch(x, h_active)
        ys.append(np.log(ratios))
        if h is not None:
            h[:n_active] = h_next

    x_all = np.concatenate(xs, axis=0)
    y_all = np.concatenate(ys, axis=0)
    if max_samples is not None and len(x_all) > max_samples:
        idx = np.linspace(0, len(x_all) - 1, max_samples).astype(np.int64)
        x_all, y_all = x_all[idx], y_all[idx]
    return x_all, y_all
