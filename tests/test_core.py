"""Tests for the core learning block: networks, CRR, agent, training."""

import numpy as np
import pytest

from repro.collector.gr_unit import STATE_DIM
from repro.collector.pool import PolicyPool, Trajectory
from repro.core.agent import SageAgent
from repro.core.crr import CRRConfig, CRRTrainer
from repro.core.networks import (
    FastPolicy,
    NetworkConfig,
    SageCritic,
    SagePolicy,
    log_action,
)
from repro.nn.autograd import Tensor, no_grad

RNG = np.random.default_rng(0)
TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)


def synthetic_pool(rng, n_traj=6, length=24, good_action=1.1):
    """A bandit-ish pool: reward is high when action ~ good_action."""
    trajs = []
    for i in range(n_traj):
        states = rng.standard_normal((length, STATE_DIM)) * 0.1
        actions = rng.uniform(0.6, 1.8, size=length)
        rewards = np.exp(-10.0 * (actions - good_action) ** 2)
        trajs.append(
            Trajectory(
                scheme=f"s{i}", env_id=f"e{i}", multi_flow=False,
                states=states, actions=actions, rewards=rewards,
            )
        )
    return PolicyPool(trajs)


class TestNetworks:
    def test_policy_sequence_shapes(self):
        pol = SagePolicy(TINY, RNG)
        feats = pol.features_seq(np.zeros((3, 5, STATE_DIM)))
        assert len(feats) == 5
        assert feats[0].shape == (3, TINY.enc_dim)

    def test_policy_log_prob_finite(self):
        pol = SagePolicy(TINY, RNG)
        feats = pol.features_seq(np.zeros((4, 2, STATE_DIM)))
        lp = pol.log_prob(feats[0], np.zeros(4))
        assert np.all(np.isfinite(lp.data))

    def test_critic_q_shapes(self):
        critic = SageCritic(TINY, RNG)
        rec = critic.recurrent_seq(np.zeros((3, 4, STATE_DIM)))
        q = critic.q_value(rec[0], np.zeros(3))
        assert q.shape == (3,)
        logits = critic.q_logits(rec[0], np.zeros(3))
        assert logits.shape == (3, TINY.n_atoms)

    def test_q_depends_on_action(self):
        critic = SageCritic(TINY, RNG)
        rec = critic.recurrent_seq(np.ones((2, 1, STATE_DIM)))
        q1 = critic.q_value(rec[0], np.full(2, -0.5)).data
        q2 = critic.q_value(rec[0], np.full(2, 0.5)).data
        assert not np.allclose(q1, q2)

    @pytest.mark.parametrize(
        "flag", ["use_gru", "use_post_encoder", "use_gmm"]
    )
    def test_ablation_configs_run(self, flag):
        from dataclasses import replace

        cfg = replace(TINY, **{flag: False})
        pol = SagePolicy(cfg, np.random.default_rng(1))
        feats = pol.features_seq(np.zeros((2, 3, STATE_DIM)))
        ratios = pol.mode(feats[-1])
        assert ratios.shape == (2,)

    def test_no_gmm_has_single_component(self):
        from dataclasses import replace

        pol = SagePolicy(replace(TINY, use_gmm=False), RNG)
        assert pol.head.n_components == 1

    def test_paper_scale_config(self):
        cfg = NetworkConfig().paper_scale()
        assert cfg.gru_dim == 1024 and cfg.enc_dim == 256 and cfg.n_atoms == 51

    def test_log_action_clips(self):
        out = log_action(np.array([0.0, 1.0, 1e9]))
        assert np.isfinite(out).all()


class TestFastPolicy:
    def test_matches_slow_path_over_sequence(self):
        pol = SagePolicy(TINY, np.random.default_rng(2))
        fast = FastPolicy(pol)
        h_f = fast.initial_state()
        h_s = pol.initial_state(1)
        rng = np.random.default_rng(3)
        for _ in range(10):
            s = rng.standard_normal(STATE_DIM)
            r_fast, h_f = fast.step(s, h_f)
            with no_grad():
                feat, h_s = pol.step(s, h_s)
                r_slow = float(pol.mode(feat)[0])
            assert r_fast == pytest.approx(r_slow, abs=1e-12)

    def test_matches_without_gru(self):
        from dataclasses import replace

        pol = SagePolicy(replace(TINY, use_gru=False), np.random.default_rng(4))
        fast = FastPolicy(pol)
        s = np.random.default_rng(5).standard_normal(STATE_DIM)
        r_fast, _ = fast.step(s, fast.initial_state())
        with no_grad():
            feat, _ = pol.step(s, None)
            r_slow = float(pol.mode(feat)[0])
        assert r_fast == pytest.approx(r_slow, abs=1e-12)

    def test_ratio_in_bounds(self):
        pol = SagePolicy(TINY, RNG)
        fast = FastPolicy(pol)
        r, _ = fast.step(np.zeros(STATE_DIM), fast.initial_state())
        assert 1 / 3 <= r <= 3


class TestCRR:
    def _trainer(self, seed=0):
        pool = synthetic_pool(np.random.default_rng(seed))
        cfg = CRRConfig(batch_size=4, seq_len=4)
        return CRRTrainer(pool, net_config=TINY, config=cfg, seed=seed)

    def test_train_step_returns_finite_metrics(self):
        t = self._trainer()
        m = t.train_step()
        assert np.isfinite(m["critic_loss"])
        assert np.isfinite(m["policy_loss"])
        assert m["mean_f"] > 0

    def test_weights_change(self):
        t = self._trainer()
        before = t.policy.state_dict()
        t.train(3)
        after = t.policy.state_dict()
        changed = any(
            not np.allclose(before[k], after[k]) for k in before
        )
        assert changed

    def test_target_networks_lag(self):
        t = self._trainer()
        t.train(3)
        pol = t.policy.state_dict()
        tgt = t.target_policy.state_dict()
        assert any(not np.allclose(pol[k], tgt[k]) for k in pol)

    def test_learns_the_good_action(self):
        # The pool rewards action ~1.1; CRR's advantage filter should make
        # the policy prefer it over a bad-but-in-distribution action (1.8).
        pool = synthetic_pool(np.random.default_rng(1))
        cfg = CRRConfig(batch_size=8, seq_len=4, lr_policy=1e-3, lr_critic=1e-3)
        t = CRRTrainer(pool, net_config=TINY, config=cfg, seed=1)
        t.train(150)
        feats = t.policy.features_seq(np.zeros((8, 3, STATE_DIM)))
        lp_good = t.policy.log_prob(feats[-1], log_action(np.full(8, 1.1))).data
        lp_bad = t.policy.log_prob(feats[-1], log_action(np.full(8, 1.8))).data
        assert lp_good.mean() > lp_bad.mean()
        modes = t.policy.mode(feats[-1])
        assert 0.7 < float(np.mean(modes)) < 1.6  # in the rewarding region

    def test_history_recorded(self):
        t = self._trainer()
        t.train(3)
        assert len(t.history["critic_loss"]) == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CRRConfig(gamma=1.5)
        with pytest.raises(ValueError):
            CRRConfig(gamma=0.0)
        with pytest.raises(ValueError):
            CRRConfig(batch_size=0)
        with pytest.raises(ValueError):
            CRRConfig(seq_len=0)
        with pytest.raises(ValueError):
            CRRConfig(m_samples=0)
        with pytest.raises(ValueError):
            CRRConfig(filter_type="softmax")
        with pytest.raises(ValueError):
            CRRConfig(history_limit=0)
        assert CRRConfig(history_limit=None).history_limit is None

    def test_policy_features_computed_once_per_step(self):
        # The train step reuses one features_seq pass for both the
        # advantage filter and the improvement loss.
        t = self._trainer()
        calls = {"n": 0}
        orig = t.policy.features_seq

        def counting(states):
            calls["n"] += 1
            return orig(states)

        t.policy.features_seq = counting
        t.train_step()
        assert calls["n"] == 1

    def test_history_limit_bounds_metrics(self):
        pool = synthetic_pool(np.random.default_rng(3))
        cfg = CRRConfig(batch_size=4, seq_len=4, history_limit=3)
        t = CRRTrainer(pool, net_config=TINY, config=cfg, seed=3)
        t.train(5)
        assert all(len(h) == 3 for h in t.history.values())

    def test_metrics_callback_replaces_print(self, capsys):
        t = self._trainer()
        seen = []
        t.train(4, log_every=2, metrics_callback=lambda s, m: seen.append(s))
        assert seen == [2, 4]
        assert capsys.readouterr().out == ""
        # log_every=0 with a callback fires every step
        seen.clear()
        t.train(2, metrics_callback=lambda s, m: seen.append(s))
        assert len(seen) == 2

    def test_binary_filter_trains(self):
        pool = synthetic_pool(np.random.default_rng(4))
        cfg = CRRConfig(batch_size=4, seq_len=4, filter_type="binary")
        t = CRRTrainer(pool, net_config=TINY, config=cfg, seed=4)
        m = t.train_step()
        assert np.isfinite(m["policy_loss"])
        # the binary filter is an indicator: mean weight within [0, 1]
        assert 0.0 <= m["mean_f"] <= 1.0


class TestAgent:
    def test_act_returns_bounded_ratio(self):
        agent = SageAgent(SagePolicy(TINY, RNG))
        agent.reset()
        r = agent.act(np.zeros(STATE_DIM))
        assert 1 / 3 <= r <= 3

    def test_deterministic_repeatable(self):
        agent = SageAgent(SagePolicy(TINY, np.random.default_rng(6)), deterministic=True)
        agent.reset()
        a1 = [agent.act(np.ones(STATE_DIM)) for _ in range(5)]
        agent.reset()
        a2 = [agent.act(np.ones(STATE_DIM)) for _ in range(5)]
        assert a1 == a2

    def test_stochastic_varies(self):
        agent = SageAgent(
            SagePolicy(TINY, np.random.default_rng(7)), deterministic=False
        )
        agent.reset()
        acts = {round(agent.act(np.ones(STATE_DIM)), 6) for _ in range(20)}
        assert len(acts) > 1

    def test_save_load_roundtrip(self, tmp_path):
        pol = SagePolicy(TINY, np.random.default_rng(8))
        agent = SageAgent(pol, name="sage")
        agent.save(tmp_path / "sage.npz")
        loaded = SageAgent.load(tmp_path / "sage.npz", net_config=TINY)
        agent.reset()
        loaded.reset()
        s = np.ones(STATE_DIM)
        assert agent.act(s) == pytest.approx(loaded.act(s))

    def test_hidden_features_shape(self):
        agent = SageAgent(SagePolicy(TINY, RNG))
        agent.reset()
        feat = agent.hidden_features(np.zeros(STATE_DIM))
        assert feat.shape == (TINY.enc_dim,)


class TestTrainingPipeline:
    def test_collect_and_train_mini(self):
        from repro.collector.environments import EnvConfig
        from repro.core.training import collect_pool, train_sage_on_pool

        envs = [
            EnvConfig(env_id="t1", kind="flat", bw_mbps=12.0, min_rtt=0.04,
                      buffer_bdp=2.0, duration=3.0)
        ]
        pool = collect_pool(envs, schemes=["cubic", "vegas"])
        assert len(pool) == 2
        run = train_sage_on_pool(
            pool, n_steps=4, n_checkpoints=2, net_config=TINY,
            crr_config=CRRConfig(batch_size=4, seq_len=4),
        )
        assert len(run.checkpoints) == 2
        assert run.checkpoint_steps == [2, 4]
        ckpt_agent = run.agent_at(0)
        ckpt_agent.reset()
        assert 1 / 3 <= ckpt_agent.act(np.zeros(STATE_DIM)) <= 3

    def test_checkpoint_validation(self):
        from repro.core.training import train_sage_on_pool

        pool = synthetic_pool(np.random.default_rng(9))
        with pytest.raises(ValueError):
            train_sage_on_pool(pool, n_steps=2, n_checkpoints=5)

    def test_agent_at_reconstruction_deterministic(self):
        # agent_at must rebuild each "day" exactly: two reconstructions of
        # the same checkpoint make identical decisions, and a later
        # checkpoint (more training) decides differently.
        from repro.core.training import train_sage_on_pool

        pool = synthetic_pool(np.random.default_rng(10))
        run = train_sage_on_pool(
            pool, n_steps=6, n_checkpoints=3, net_config=TINY,
            crr_config=CRRConfig(batch_size=4, seq_len=4), seed=10,
        )
        rng = np.random.default_rng(11)
        states = rng.standard_normal((10, STATE_DIM))

        def decisions(agent):
            agent.reset()
            return [agent.act(s) for s in states]

        d0a = decisions(run.agent_at(0, deterministic=True))
        d0b = decisions(run.agent_at(0, deterministic=True))
        assert d0a == d0b
        d2 = decisions(run.agent_at(2, deterministic=True))
        assert d0a != d2
        # final checkpoint matches the live policy's weights
        last = run.checkpoints[-1]
        live = run.trainer.policy.state_dict()
        for k in last:
            np.testing.assert_array_equal(last[k], live[k])
