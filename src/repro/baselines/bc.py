"""Behavioral Cloning baselines (Section 6.2, "Compared to BC").

BC trains the *same* policy network as Sage by maximizing the
log-likelihood of the pool's state-action pairs — no critic, no advantage
filter, no reward. The paper builds four variants by filtering the pool:

- ``bc``      — all 13 schemes (maximum contradiction between policies);
- ``bc-top``  — only the top scheme of Set I and of Set II (Vegas, Cubic);
- ``bc-top3`` — the top three of each set;
- ``bcv2``    — only each scenario's *winner* trajectories.

All of them inherit BC's two failure modes the paper highlights: no
mechanism to out-perform the demonstrators, and averaging over
contradictory strategies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.collector.gr_unit import normalize_state
from repro.collector.pool import PolicyPool
from repro.core.agent import SageAgent
from repro.core.networks import NetworkConfig, SagePolicy, log_action
from repro.nn.autograd import Tensor, stack_rows
from repro.nn.optim import Adam, clip_grad_norm

#: The pool filters defining each BC variant (paper Section 6.2).
BC_VARIANTS: Dict[str, Optional[List[str]]] = {
    "bc": None,  # all schemes
    "bc-top": ["vegas", "cubic"],
    "bc-top3": ["vegas", "bbr2", "yeah", "cubic", "htcp", "bic"],
    "bcv2": "winners",  # special: per-scenario winner trajectories
}


class BCTrainer:
    """Maximum-likelihood cloning of the pool's state-action mapping."""

    def __init__(
        self,
        pool: PolicyPool,
        net_config: Optional[NetworkConfig] = None,
        batch_size: int = 16,
        seq_len: int = 8,
        lr: float = 3e-4,
        grad_clip: float = 10.0,
        seed: int = 0,
    ) -> None:
        self.pool = pool
        self.net_cfg = net_config if net_config is not None else NetworkConfig()
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.grad_clip = grad_clip
        self.rng = np.random.default_rng(seed)
        self.policy = SagePolicy(self.net_cfg, self.rng)
        self.opt = Adam(self.policy.parameters(), lr=lr)
        self.steps_done = 0
        self.history: List[float] = []

    def train_step(self) -> float:
        batch = self.pool.sample_sequences(
            self.batch_size, self.seq_len, self.rng, normalize=normalize_state
        )
        states = batch["states"]
        log_a = log_action(batch["actions"])
        feats = self.policy.features_seq(states)
        losses = []
        for t in range(self.seq_len):
            logp = self.policy.log_prob(feats[t], log_a[:, t])
            losses.append((logp * -1.0).mean())
        loss = stack_rows(losses).mean()
        self.opt.zero_grad()
        loss.backward()
        clip_grad_norm(self.policy.parameters(), self.grad_clip)
        self.opt.step()
        self.steps_done += 1
        value = float(loss.data)
        self.history.append(value)
        return value

    def train(self, n_steps: int) -> float:
        loss = float("nan")
        for _ in range(n_steps):
            loss = self.train_step()
        return loss

    def agent(self, name: str = "bc") -> SageAgent:
        return SageAgent(self.policy, name=name)


def _winner_pool(pool: PolicyPool) -> PolicyPool:
    """BCv2's filter: keep only each environment's best-reward trajectory."""
    best: Dict[str, object] = {}
    for traj in pool.trajectories:
        mean_r = float(np.mean(traj.rewards)) if traj.length else -np.inf
        cur = best.get(traj.env_id)
        if cur is None or mean_r > cur[0]:
            best[traj.env_id] = (mean_r, traj)
    return PolicyPool([t for _, t in best.values()])


def train_bc_variant(
    pool: PolicyPool,
    variant: str,
    n_steps: int = 200,
    net_config: Optional[NetworkConfig] = None,
    seed: int = 0,
) -> SageAgent:
    """Train one of the paper's four BC variants and return its agent."""
    if variant not in BC_VARIANTS:
        raise ValueError(f"unknown BC variant {variant!r}; choose from {sorted(BC_VARIANTS)}")
    selector = BC_VARIANTS[variant]
    if selector is None:
        sub = pool
    elif selector == "winners":
        sub = _winner_pool(pool)
    else:
        sub = pool.filter_schemes(selector)
    trainer = BCTrainer(sub, net_config=net_config, seed=seed)
    trainer.train(n_steps)
    return trainer.agent(name=variant)
