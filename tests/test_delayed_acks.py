"""Tests for RFC 1122 delayed acknowledgments."""

import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network, PathConfig
from repro.netsim.traces import FlatRate
from repro.tcp.cc_base import make_scheme
from repro.tcp.socket import TcpReceiver, TcpSender


def wire(delayed, bw=12e6, rtt=0.04, buf=120_000):
    loop = EventLoop()
    net = Network(loop, FlatRate(bw), TailDrop(buf))
    receiver = TcpReceiver(0, net, delayed_acks=delayed)
    sender = TcpSender(0, net, make_scheme("cubic"))
    net.attach_flow(0, PathConfig(min_rtt=rtt),
                    data_sink=receiver.on_data, ack_sink=sender.on_ack)
    return loop, sender, receiver


class TestDelayedAcks:
    def test_roughly_halves_ack_count(self):
        loop, s1, r1 = wire(delayed=False)
        s1.start()
        loop.run_until(4.0)
        s1.stop()
        loop2, s2, r2 = wire(delayed=True)
        s2.start()
        loop2.run_until(4.0)
        s2.stop()
        ratio = r2.acks_sent / max(r2.total_packets, 1)
        assert ratio < 0.7  # ~0.5 in steady state
        assert r1.acks_sent == r1.total_packets

    def test_transfer_still_completes(self):
        loop, sender, receiver = wire(delayed=True)
        sender.start()
        loop.run_until(4.0)
        thr = receiver.total_bytes * 8 / 4.0
        assert thr > 0.7 * 12e6

    def test_timeout_flushes_lone_segment(self):
        loop, sender, receiver = wire(delayed=True)
        sender.cwnd = 1.0  # one segment per RTT: every ack waits for delack
        sender.external_cwnd_control = True
        sender.start()
        loop.run_until(1.0)
        # sender keeps making (slow) progress: acks arrive via the 40 ms timer
        assert sender.snd_una >= 3
        assert receiver.acks_sent >= 3

    def test_loss_recovery_unimpaired(self):
        # out-of-order data must elicit immediate dupACKs despite delacks
        loop, sender, receiver = wire(delayed=True, bw=4e6, buf=9000)
        sender.start()
        loop.run_until(5.0)
        assert sender.retransmits > 0
        assert receiver.rcv_next > 300  # stream advanced through losses

    def test_rtt_inflation_bounded(self):
        loop, sender, receiver = wire(delayed=True)
        sender.start()
        loop.run_until(4.0)
        # delack adds at most its 40 ms timeout to a sample
        assert sender.srtt < 0.04 + 0.04 + 0.05
