"""End-to-end tests for the multi-flow serving harness and its clients."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.collector.environments import EnvConfig
from repro.collector.rollout import run_policy
from repro.core.agent import SageAgent
from repro.core.networks import FastPolicy, NetworkConfig, SagePolicy
from repro.evalx.leagues import Participant, run_league
from repro.serve.client import ServedAgent
from repro.serve.engine import PolicyServer, ServeConfig
from repro.serve.harness import MultiFlowConfig, jain_index, run_served_flows

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=3, n_atoms=7)


@pytest.fixture()
def policy():
    return SagePolicy(TINY, np.random.default_rng(0))


def _tiny_env(duration=2.0):
    return EnvConfig(
        env_id="serve-test", kind="flat", bw_mbps=24.0, min_rtt=0.04,
        buffer_bdp=2.0, duration=duration,
    )


class TestJainIndex:
    def test_even_shares(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty(self):
        assert jain_index([]) == 0.0


class TestMultiFlowHarness:
    def test_served_flows_share_the_bottleneck(self, policy):
        cfg = MultiFlowConfig(n_flows=4, bw_mbps=48.0, duration=2.0)
        result = run_served_flows(policy, cfg)
        assert len(result.stats) == 4
        # the four flows together move real traffic through the link
        assert 0.0 < result.aggregate_throughput_bps < 48e6 * 1.05
        assert 0.0 < result.jain_fairness <= 1.0
        # every decision came from the live policy (no budget pressure)
        assert result.sources.get("heuristic", 0) == 0
        # all ticks with every flow started ran one (4, 69) forward
        assert result.metrics["batch_hist"].get("4", 0) > 0

    def test_staggered_starts_shrink_early_batches(self, policy):
        cfg = MultiFlowConfig(
            n_flows=3, bw_mbps=48.0, duration=1.5, start_stagger=0.5
        )
        result = run_served_flows(policy, cfg)
        hist = result.metrics["batch_hist"]
        assert all(k in {"1", "2", "3"} for k in hist)
        assert hist.get("1", 0) > 0 and hist.get("3", 0) > 0

    def test_degraded_run_still_moves_traffic(self, policy):
        """With an impossible budget, flows fall back and still progress."""
        server = PolicyServer(
            policy, ServeConfig(tick_budget=1e-9, max_misses=2)
        )
        cfg = MultiFlowConfig(n_flows=2, bw_mbps=24.0, duration=2.0)
        result = run_served_flows(policy, cfg, server=server)
        assert result.sources.get("heuristic", 0) > 0
        assert result.metrics["fallback_rate"] > 0.5
        assert result.aggregate_throughput_bps > 0.0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            MultiFlowConfig(n_flows=0)


class TestServedAgent:
    def test_matches_sage_agent_deterministic(self, policy):
        env = _tiny_env()
        base = run_policy(env, SageAgent(policy, deterministic=True))
        served = run_policy(env, ServedAgent(policy, deterministic=True))
        assert np.array_equal(base.actions, served.actions)

    def test_matches_sage_agent_stochastic(self, policy):
        env = _tiny_env()
        base = run_policy(env, SageAgent(policy, seed=7))
        served = run_policy(env, ServedAgent(policy, seed=7))
        assert np.array_equal(base.actions, served.actions)

    def test_act_before_reset_raises(self, policy):
        with pytest.raises(RuntimeError, match="before reset"):
            ServedAgent(policy).act(np.zeros(69))

    def test_metrics_snapshot_after_rollout(self, policy):
        agent = ServedAgent(policy, deterministic=True)
        assert agent.metrics_snapshot() == {}
        run_policy(_tiny_env(duration=1.0), agent)
        snap = agent.metrics_snapshot()
        assert snap["decisions"] > 0 and snap["fallback_rate"] == 0.0

    def test_reset_reopens_session(self, policy):
        agent = ServedAgent(policy, deterministic=True)
        agent.reset()
        first = agent.act(np.zeros(69))
        agent.act(np.zeros(69))
        agent.reset()  # fresh hidden state
        assert agent.act(np.zeros(69)) == first


class TestServedLeague:
    def test_from_served_participates(self, policy):
        envs = [_tiny_env(duration=1.5)]
        result = run_league(
            [
                Participant.from_scheme("cubic"),
                Participant.from_served(policy, deterministic=True),
            ],
            set1=envs,
            set2=envs,
            n_intervals=2,
        )
        assert set(result.set1_rates) == {"cubic", "sage-served"}

    def test_served_league_matches_agent_league(self, policy):
        envs = [_tiny_env(duration=1.5)]
        kwargs = dict(set1=envs, set2=envs, n_intervals=2)
        via_agent = run_league(
            [Participant.from_agent(SageAgent(policy, deterministic=True))],
            **kwargs,
        )
        via_serve = run_league(
            [Participant.from_served(policy, deterministic=True, name="sage")],
            **kwargs,
        )
        assert via_agent.set1_rates == via_serve.set1_rates


class TestServeBenchCli:
    def test_smoke_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        rc = cli_main([
            "serve-bench", "--flows", "4", "--ticks", "8",
            "--enc-dim", "16", "--gru-dim", "16", "--atoms", "7",
            "--no-harness", "--out", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["flows"] == 4 and report["ticks"] == 8
        assert report["serial_batched_allclose"] is True
        assert "speedup" in report
        assert "serve-bench" in capsys.readouterr().out

    def test_smoke_with_harness(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = cli_main([
            "serve-bench", "--flows", "2", "--ticks", "4",
            "--enc-dim", "16", "--gru-dim", "16", "--atoms", "7",
            "--out", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["harness"]["n_flows"] == 2
        assert report["harness"]["fallback_rate"] == 0.0
