"""Tests for the ML-baseline implementations."""

import numpy as np
import pytest

from repro.baselines.aurora import AuroraTrainer, _returns
from repro.baselines.bc import BCTrainer, BC_VARIANTS, _winner_pool, train_bc_variant
from repro.baselines.indigo import OracleAgent, collect_oracle_pool, train_indigo
from repro.baselines.online_rl import OnlineRLTrainer
from repro.baselines.orca import OrcaAgent, train_orca
from repro.collector.environments import EnvConfig
from repro.collector.gr_unit import STATE_DIM
from repro.collector.pool import PolicyPool, Trajectory
from repro.core.networks import NetworkConfig

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)


def mini_envs(duration=3.0):
    return [
        EnvConfig(env_id="b1", kind="flat", bw_mbps=12.0, min_rtt=0.04,
                  buffer_bdp=2.0, duration=duration),
        EnvConfig(env_id="b2", kind="flat", bw_mbps=12.0, min_rtt=0.04,
                  buffer_bdp=2.0, n_competing_cubic=1, duration=duration),
    ]


def toy_pool(rng, schemes=("vegas", "cubic", "bbr2"), length=20):
    trajs = []
    for i, s in enumerate(schemes):
        for e in range(2):
            trajs.append(
                Trajectory(
                    scheme=s, env_id=f"env{e}", multi_flow=bool(e),
                    states=rng.standard_normal((length, STATE_DIM)) * 0.1,
                    actions=rng.uniform(0.7, 1.4, size=length),
                    rewards=rng.uniform(0, 1, size=length) + i * 0.1,
                )
            )
    return PolicyPool(trajs)


class TestBC:
    def test_loss_decreases(self):
        pool = toy_pool(np.random.default_rng(0))
        t = BCTrainer(pool, net_config=TINY, batch_size=4, seq_len=4, seed=0)
        first = np.mean([t.train_step() for _ in range(5)])
        for _ in range(40):
            t.train_step()
        last = np.mean([t.train_step() for _ in range(5)])
        assert last < first

    def test_agent_usable(self):
        pool = toy_pool(np.random.default_rng(1))
        t = BCTrainer(pool, net_config=TINY, batch_size=4, seq_len=4)
        t.train(3)
        agent = t.agent("bc")
        agent.reset()
        assert 1 / 3 <= agent.act(np.zeros(STATE_DIM)) <= 3

    def test_variant_filters(self):
        pool = toy_pool(np.random.default_rng(2))
        top = pool.filter_schemes(BC_VARIANTS["bc-top"])
        assert set(top.schemes()) == {"vegas", "cubic"}

    def test_winner_pool_keeps_one_per_env(self):
        pool = toy_pool(np.random.default_rng(3))
        winners = _winner_pool(pool)
        assert len(winners) == 2  # one per env
        env_ids = [t.env_id for t in winners.trajectories]
        assert len(env_ids) == len(set(env_ids))

    @pytest.mark.parametrize("variant", sorted(BC_VARIANTS))
    def test_all_variants_train(self, variant):
        pool = toy_pool(np.random.default_rng(4))
        agent = train_bc_variant(pool, variant, n_steps=3, net_config=TINY)
        assert agent.name == variant

    def test_unknown_variant_rejected(self):
        pool = toy_pool(np.random.default_rng(5))
        with pytest.raises(ValueError):
            train_bc_variant(pool, "bc-top99", n_steps=1, net_config=TINY)


class TestOnlineRL:
    def test_collect_fills_replay(self):
        t = OnlineRLTrainer(environments=mini_envs(), net_config=TINY, seed=0)
        t.collect(2)
        assert len(t.replay) == 2
        assert t.rollouts_done == 2

    def test_train_interleaves(self):
        t = OnlineRLTrainer(environments=mini_envs(), net_config=TINY, seed=1)
        t.train(n_iterations=2, rollouts_per_iter=1, steps_per_iter=2)
        assert t.steps_done == 4
        agent = t.agent()
        agent.reset()
        assert 1 / 3 <= agent.act(np.zeros(STATE_DIM)) <= 3

    def test_replay_capacity_enforced(self):
        t = OnlineRLTrainer(
            environments=mini_envs(duration=2.0), net_config=TINY,
            replay_capacity=2, seed=2,
        )
        t.collect(4)
        assert len(t.replay) == 2


class TestAurora:
    def test_returns_discounting(self):
        r = _returns(np.array([1.0, 1.0, 1.0]), gamma=0.5)
        np.testing.assert_allclose(r, [1.75, 1.5, 1.0])

    def test_memoryless_policy(self):
        t = AuroraTrainer(environments=mini_envs(), net_config=TINY, seed=0)
        assert not t.net_cfg.use_gru

    def test_trains_only_single_flow(self):
        t = AuroraTrainer(environments=mini_envs(), net_config=TINY, seed=1)
        assert all(not e.is_multi_flow for e in t.envs)

    def test_iteration_runs(self):
        t = AuroraTrainer(environments=mini_envs(duration=2.0), net_config=TINY, seed=2)
        loss = t.train_iteration()
        assert np.isfinite(loss)

    def test_genet_orders_curriculum(self):
        envs = [
            EnvConfig(env_id="hard", kind="step", bw_mbps=24.0, min_rtt=0.04,
                      buffer_bdp=0.5, step_m=2.0, step_at=1.0, duration=2.0),
            EnvConfig(env_id="easy", kind="flat", bw_mbps=24.0, min_rtt=0.04,
                      buffer_bdp=8.0, duration=2.0),
        ]
        t = AuroraTrainer(environments=envs, net_config=TINY, curriculum=True)
        assert t.envs[0].env_id == "easy"
        assert t.agent().name == "genet"


class TestIndigo:
    def test_oracle_targets_bdp(self):
        env = EnvConfig(env_id="o", kind="flat", bw_mbps=12.0, min_rtt=0.04,
                        buffer_bdp=2.0, duration=2.0)
        oracle = OracleAgent(env, margin=1.0)
        # 12 Mbps * 40 ms / (8 * 1500 B) = 40 packets
        assert oracle.target_cwnd() == pytest.approx(40.0, rel=0.01)

    def test_oracle_fair_share_when_multi(self):
        env = EnvConfig(env_id="o", kind="flat", bw_mbps=12.0, min_rtt=0.04,
                        buffer_bdp=2.0, n_competing_cubic=1, duration=2.0)
        oracle = OracleAgent(env, margin=1.0)
        assert oracle.target_cwnd() == pytest.approx(20.0, rel=0.01)

    def test_oracle_converges_to_target(self):
        env = EnvConfig(env_id="o", kind="flat", bw_mbps=12.0, min_rtt=0.04,
                        buffer_bdp=2.0, duration=2.0)
        oracle = OracleAgent(env, margin=1.0)
        oracle.reset()
        for _ in range(100):
            oracle.act(np.zeros(STATE_DIM))
        assert oracle._cwnd == pytest.approx(oracle.target_cwnd(), rel=0.05)

    def test_indigo_skips_multi_flow_by_default(self):
        pool = collect_oracle_pool(mini_envs(duration=2.0), include_multi_flow=False)
        assert len(pool) == 1

    def test_indigov2_includes_multi_flow(self):
        pool = collect_oracle_pool(mini_envs(duration=2.0), include_multi_flow=True)
        assert len(pool) == 2

    def test_train_indigo_names(self):
        agent = train_indigo(mini_envs(duration=2.0), multi_flow=False,
                             n_steps=2, net_config=TINY)
        assert agent.name == "indigo"
        agent2 = train_indigo(mini_envs(duration=2.0), multi_flow=True,
                              n_steps=2, net_config=TINY)
        assert agent2.name == "indigov2"


class TestOrca:
    def test_hybrid_epoch_gating(self):
        t = OnlineRLTrainer(environments=mini_envs(duration=2.0), net_config=TINY)
        inner = t.agent("inner")
        orca = OrcaAgent(inner, epoch=5)
        orca.reset()
        state = np.zeros(STATE_DIM)
        ratios = [orca.act(state) for _ in range(5)]
        # ticks 1-4 are pure heuristic growth; tick 5 includes the agent
        assert all(r == pytest.approx(1.015) for r in ratios[:4])

    def test_heuristic_backoff_on_loss(self):
        t = OnlineRLTrainer(environments=mini_envs(duration=2.0), net_config=TINY)
        orca = OrcaAgent(t.agent("inner"), epoch=10)
        orca.reset()
        state = np.zeros(STATE_DIM)
        state[OrcaAgent._LOSS_DB_IDX] = 1e6
        assert orca.act(state) == pytest.approx(0.75)

    def test_deepcc_only_shrinks_at_epochs(self):
        t = OnlineRLTrainer(environments=mini_envs(duration=2.0), net_config=TINY)
        orca = OrcaAgent(t.agent("inner"), epoch=1, delay_bound_only=True)
        orca.reset()
        for _ in range(10):
            r = orca.act(np.zeros(STATE_DIM))
            assert r <= 1.015 + 1e-9

    def test_train_orca_names(self):
        a = train_orca(mini_envs(duration=2.0), n_iterations=1, steps_per_iter=1,
                       net_config=TINY)
        assert a.name == "orca"
        b = train_orca(mini_envs(duration=2.0), dual_reward=True, n_iterations=1,
                       steps_per_iter=1, net_config=TINY)
        assert b.name == "orcav2"
        c = train_orca(mini_envs(duration=2.0), deepcc=True, n_iterations=1,
                       steps_per_iter=1, net_config=TINY)
        assert c.name == "deepcc"
        assert c.delay_bound_only
