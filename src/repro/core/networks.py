"""Sage's neural architecture (Fig. 6), with the Fig. 12 ablation switches.

Bottom-up, the trunk is::

    input state
      -> Encoder (FC, LReLU, FC)
      -> GRU
      -> LayerNorm -> LReLU
      -> Encoder (FC, tanh)
      -> FC -> LReLU
      -> ResidualBlock x2

The policy attaches a :class:`~repro.nn.heads.GMMHead`; the critic appends
the action after the recurrent stage and attaches a
:class:`~repro.nn.heads.DistributionalHead` (C51).

Sizes are constructor parameters: the paper uses GRU 1024 / FC 256; the
defaults here are scaled for CPU-only training and are the *only* deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.collector.gr_unit import STATE_DIM
from repro.nn.autograd import Tensor, concat
from repro.nn.batched import batched_layer_norm, batched_linear, batched_sigmoid
from repro.nn.gru import GRU
from repro.nn.heads import (
    LOG_ACTION_HI,
    LOG_ACTION_LO,
    DistributionalHead,
    GMMHead,
)
from repro.nn.layers import LayerNorm, Linear, Module, ResidualBlock


@dataclass(frozen=True)
class NetworkConfig:
    """Architecture hyper-parameters and the Fig. 12 ablation switches."""

    state_dim: int = STATE_DIM
    enc_dim: int = 64  # paper: 256
    gru_dim: int = 64  # paper: 1024
    n_components: int = 3  # GMM mixture components
    n_atoms: int = 21  # paper-style C51 would use 51
    v_min: float = 0.0
    v_max: float = 50.0
    use_gru: bool = True  # "no GRU" ablation
    use_post_encoder: bool = True  # "no Encoder" ablation
    use_gmm: bool = True  # "no GMM" ablation -> single Gaussian

    def paper_scale(self) -> "NetworkConfig":
        """The full-size configuration reported in the paper."""
        return replace(self, enc_dim=256, gru_dim=1024, n_atoms=51)


class _Trunk(Module):
    """Shared feature trunk of policy and critic."""

    def __init__(self, cfg: NetworkConfig, rng: np.random.Generator) -> None:
        self.cfg = cfg
        e = cfg.enc_dim
        self.enc1a = Linear(cfg.state_dim, e, rng)
        self.enc1b = Linear(e, e, rng)
        if cfg.use_gru:
            self.gru = GRU(e, cfg.gru_dim, rng)
            post_in = cfg.gru_dim
        else:
            self.gru = None
            post_in = e
        self.post_norm = LayerNorm(post_in)
        if cfg.use_post_encoder:
            self.enc2 = Linear(post_in, e, rng)
            fc_in = e
        else:
            self.enc2 = None
            fc_in = post_in
        self.fc = Linear(fc_in, e, rng)
        self.res1 = ResidualBlock(e, rng)
        self.res2 = ResidualBlock(e, rng)

    # -- stages ----------------------------------------------------------
    def pre(self, x: Tensor) -> Tensor:
        """Input encoder, before the recurrent stage: (B, D) -> (B, E)."""
        h = self.enc1a(x).leaky_relu(0.01)
        return self.enc1b(h)

    def initial_state(self, batch: int) -> Optional[Tensor]:
        if self.gru is None:
            return None
        return self.gru.initial_state(batch)

    def recurrent(self, pre: Tensor, h: Optional[Tensor]) -> Tuple[Tensor, Optional[Tensor]]:
        """One recurrent step; identity when the GRU is ablated."""
        if self.gru is None:
            return pre, None
        h_next = self.gru.step(pre, h)
        return h_next, h_next

    def post(self, g: Tensor) -> Tensor:
        """Post-recurrent stack: LayerNorm/LReLU, encoder/tanh, FC, res x2."""
        h = self.post_norm(g).leaky_relu(0.01)
        if self.enc2 is not None:
            h = self.enc2(h).tanh()
        h = self.fc(h).leaky_relu(0.01)
        h = self.res1(h)
        h = self.res2(h)
        return h

    # -- sequence helpers ---------------------------------------------------
    def features_seq(self, states: np.ndarray) -> List[Tensor]:
        """Run a (B, L, D) batch through the trunk; returns L feature tensors."""
        b, l, _ = states.shape
        h = self.initial_state(b)
        feats: List[Tensor] = []
        for t in range(l):
            pre = self.pre(Tensor(states[:, t, :]))
            g, h = self.recurrent(pre, h)
            feats.append(self.post(g))
        return feats

    def recurrent_seq(self, states: np.ndarray) -> List[Tensor]:
        """Like :meth:`features_seq` but stops before :meth:`post` — used by
        the critic, which injects the action between the stages."""
        b, l, _ = states.shape
        h = self.initial_state(b)
        outs: List[Tensor] = []
        for t in range(l):
            pre = self.pre(Tensor(states[:, t, :]))
            g, h = self.recurrent(pre, h)
            outs.append(g)
        return outs

    # -- fused sequence path ------------------------------------------------
    # The per-timestep helpers above build one autograd subgraph per (t,
    # layer) pair; at (B=16, L=8) that is hundreds of closure nodes per
    # train step and the interpreter dominates the math. The fused path
    # folds every non-recurrent stage over all timesteps at once and leaves
    # only the GRU's L hidden products sequential. Rows are t-major: row
    # ``t * B + i`` of the flat result is batch row i at timestep t.

    def recurrent_flat(self, states: np.ndarray) -> Tensor:
        """``(B, L, D)`` states -> ``(L*B, H)`` recurrent features, fused."""
        b, l, d = states.shape
        flat = np.ascontiguousarray(states.transpose(1, 0, 2)).reshape(l * b, d)
        pre = self.pre(Tensor(flat))
        if self.gru is None:
            return pre
        hs = self.gru.forward_seq(pre.reshape(l, b, pre.shape[-1]))
        return hs.reshape(l * b, self.gru.hidden_dim)

    def features_seq_fused(self, states: np.ndarray) -> Tensor:
        """``(B, L, D)`` states -> ``(L*B, E)`` trunk features, fused."""
        return self.post(self.recurrent_flat(states))


class SagePolicy(Module):
    """The policy network pi_theta(a | s): trunk + GMM head."""

    def __init__(self, cfg: NetworkConfig, rng: np.random.Generator) -> None:
        self.cfg = cfg
        self.trunk = _Trunk(cfg, rng)
        n_comp = cfg.n_components if cfg.use_gmm else 1
        self.head = GMMHead(cfg.enc_dim, n_comp, rng)

    # -- training-time API -------------------------------------------------
    def features_seq(self, states: np.ndarray) -> List[Tensor]:
        return self.trunk.features_seq(states)

    def features_seq_fused(self, states: np.ndarray) -> Tensor:
        """Fused ``(B, L, D) -> (L*B, E)`` features (t-major rows)."""
        return self.trunk.features_seq_fused(states)

    def log_prob(self, feat: Tensor, log_actions: np.ndarray) -> Tensor:
        return self.head.log_prob(feat, log_actions)

    def sample(self, feat: Tensor, rng: np.random.Generator) -> np.ndarray:
        return self.head.sample(feat, rng)

    def mode(self, feat: Tensor) -> np.ndarray:
        return self.head.mode(feat)

    # -- deployment-time API -------------------------------------------
    def initial_state(self, batch: int = 1) -> Optional[Tensor]:
        return self.trunk.initial_state(batch)

    def step(
        self, state: np.ndarray, h: Optional[Tensor]
    ) -> Tuple[Tensor, Optional[Tensor]]:
        """Single-step feature extraction for real-time inference."""
        pre = self.trunk.pre(Tensor(state[None, :]))
        g, h_next = self.trunk.recurrent(pre, h)
        return self.trunk.post(g), h_next


class SageCritic(Module):
    """The distributional critic Q_w(s, a): trunk + action inject + C51."""

    def __init__(self, cfg: NetworkConfig, rng: np.random.Generator) -> None:
        self.cfg = cfg
        self.trunk = _Trunk(cfg, rng)
        post_in = cfg.gru_dim if cfg.use_gru else cfg.enc_dim
        # action (log-ratio, 1 dim) joins after the recurrent stage
        self.action_mix = Linear(post_in + 1, post_in, rng)

        self.head = DistributionalHead(
            cfg.enc_dim, rng, n_atoms=cfg.n_atoms, v_min=cfg.v_min, v_max=cfg.v_max
        )

    def recurrent_seq(self, states: np.ndarray) -> List[Tensor]:
        """Per-step recurrent features (action-independent, reusable)."""
        return self.trunk.recurrent_seq(states)

    def recurrent_seq_fused(self, states: np.ndarray) -> Tensor:
        """Fused ``(B, L, D) -> (L*B, H)`` recurrent features (t-major).

        :meth:`q_features` accepts the flat result directly — the critic's
        per-row math is batch-shape agnostic."""
        return self.trunk.recurrent_flat(states)

    def q_features(self, rec: Tensor, log_actions: np.ndarray) -> Tensor:
        """Combine recurrent features with an action: (B, E) critic features."""
        a = Tensor(np.asarray(log_actions)[:, None])
        mixed = self.action_mix(concat([rec, a], axis=-1)).leaky_relu(0.01)
        return self.trunk.post(mixed)

    def q_logits(self, rec: Tensor, log_actions: np.ndarray) -> Tensor:
        return self.head.logits(self.q_features(rec, log_actions))

    def q_value(self, rec: Tensor, log_actions: np.ndarray) -> Tensor:
        return self.head.expected_value(self.q_features(rec, log_actions))


def log_action(actions: np.ndarray) -> np.ndarray:
    """Map cwnd ratios to the log space the heads operate in."""
    return np.log(np.clip(np.asarray(actions, dtype=np.float64), 1e-3, 1e3))


class FastPolicy:
    """Raw-numpy inference mirror of :class:`SagePolicy`.

    Real-time deployment runs the policy once per 20 ms tick; going through
    the autograd graph there wastes ~25 ms per call on op dispatch. This
    class snapshots the weights and evaluates the identical trunk + head
    with plain numpy — the repo's counterpart of the paper's frozen
    TensorFlow inference graph.
    """

    def __init__(self, policy: SagePolicy) -> None:
        self.cfg = policy.cfg
        p = {name: t.data for name, t in policy.named_parameters()}
        self._p = p
        self._use_gru = policy.cfg.use_gru
        self._use_enc2 = policy.cfg.use_post_encoder
        self._n_comp = policy.head.n_components
        self._log_std_min = policy.head.log_std_min
        self._log_std_max = policy.head.log_std_max

    @staticmethod
    def _lrelu(x: np.ndarray) -> np.ndarray:
        return np.where(x > 0, x, 0.01 * x)

    def _lin(self, name: str, x: np.ndarray) -> np.ndarray:
        return x @ self._p[f"{name}.W"] + self._p[f"{name}.b"]

    def _ln(self, name: str, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        var = ((x - mu) ** 2).mean(axis=-1, keepdims=True)
        return (x - mu) / np.sqrt(var + 1e-5) * self._p[f"{name}.gamma"] + self._p[
            f"{name}.beta"
        ]

    def initial_state(self) -> Optional[np.ndarray]:
        if not self._use_gru:
            return None
        return np.zeros(self._p["trunk.gru.wz.W"].shape[1])

    def step(
        self, state: np.ndarray, h: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """One inference step: normalized state (D,) -> (mode ratio, h')."""
        x = self._lin("trunk.enc1b", self._lrelu(self._lin("trunk.enc1a", state)))
        if self._use_gru:
            xh = np.concatenate([x, h])
            z = _sigmoid(self._lin("trunk.gru.wz", xh))
            r = _sigmoid(self._lin("trunk.gru.wr", xh))
            n = np.tanh(self._lin("trunk.gru.wn", np.concatenate([x, r * h])))
            h = (1.0 - z) * n + z * h
            g = h
        else:
            g = x
        y = self._lrelu(self._ln("trunk.post_norm", g))
        if self._use_enc2:
            y = np.tanh(self._lin("trunk.enc2", y))
        y = self._lrelu(self._lin("trunk.fc", y))
        for res in ("trunk.res1", "trunk.res2"):
            t = self._ln(f"{res}.norm", y)
            t = self._lrelu(self._lin(f"{res}.fc1", t))
            y = y + self._lin(f"{res}.fc2", t)
        out = self._lin("head.proj", y)
        k = self._n_comp
        logits = out[0:k]
        means = np.tanh(out[k : 2 * k]) * ((LOG_ACTION_HI - LOG_ACTION_LO) / 2.0)
        comp = int(np.argmax(logits))
        ratio = float(np.exp(np.clip(means[comp], LOG_ACTION_LO, LOG_ACTION_HI)))
        return ratio, h

    def sample_step(
        self,
        state: np.ndarray,
        h: Optional[np.ndarray],
        rng: np.random.Generator,
    ) -> Tuple[float, Optional[np.ndarray]]:
        """Stochastic inference step: draw the action from the mixture.

        This is the paper's deployment rule ("we obtain the output action
        a_t by sampling from pi(a|s)"); the stochasticity doubles as
        bandwidth probing.
        """
        # mirror step() up to the head, then sample instead of argmax-mode
        x = self._lin("trunk.enc1b", self._lrelu(self._lin("trunk.enc1a", state)))
        if self._use_gru:
            xh = np.concatenate([x, h])
            z = _sigmoid(self._lin("trunk.gru.wz", xh))
            r = _sigmoid(self._lin("trunk.gru.wr", xh))
            n = np.tanh(self._lin("trunk.gru.wn", np.concatenate([x, r * h])))
            h = (1.0 - z) * n + z * h
            g = h
        else:
            g = x
        y = self._lrelu(self._ln("trunk.post_norm", g))
        if self._use_enc2:
            y = np.tanh(self._lin("trunk.enc2", y))
        y = self._lrelu(self._lin("trunk.fc", y))
        for res in ("trunk.res1", "trunk.res2"):
            t = self._ln(f"{res}.norm", y)
            t = self._lrelu(self._lin(f"{res}.fc1", t))
            y = y + self._lin(f"{res}.fc2", t)
        out = self._lin("head.proj", y)
        k = self._n_comp
        logits = out[0:k]
        means = np.tanh(out[k : 2 * k]) * ((LOG_ACTION_HI - LOG_ACTION_LO) / 2.0)
        log_std = np.clip(out[2 * k : 3 * k], self._log_std_min, self._log_std_max)
        w = np.exp(logits - logits.max())
        w /= w.sum()
        comp = int(rng.choice(k, p=w))
        u = means[comp] + np.exp(log_std[comp]) * rng.standard_normal()
        ratio = float(np.exp(np.clip(u, LOG_ACTION_LO, LOG_ACTION_HI)))
        return ratio, h

    # -- batched serving path ------------------------------------------
    # One (N, 69) forward for N concurrent flows. Built on the einsum
    # kernels in repro.nn.batched, so each row's result is bitwise
    # identical for any batch size — the serving engine may merge and
    # split batches freely without changing any flow's decision stream.
    # (The 1-D step()/sample_step() above use BLAS gemv and differ from
    # this path by float rounding only.)

    def _blin(self, name: str, x: np.ndarray) -> np.ndarray:
        return batched_linear(x, self._p[f"{name}.W"], self._p[f"{name}.b"])

    def _bln(self, name: str, x: np.ndarray) -> np.ndarray:
        return batched_layer_norm(
            x, self._p[f"{name}.gamma"], self._p[f"{name}.beta"]
        )

    def initial_state_batch(self, n: int) -> Optional[np.ndarray]:
        if not self._use_gru:
            return None
        return np.zeros((n, self._p["trunk.gru.wz.W"].shape[1]))

    def _forward_batch(
        self, states: np.ndarray, h: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Trunk + head projection for a ``(N, D)`` batch of states."""
        x = self._blin(
            "trunk.enc1b", self._lrelu(self._blin("trunk.enc1a", states))
        )
        if self._use_gru:
            xh = np.concatenate([x, h], axis=-1)
            z = batched_sigmoid(self._blin("trunk.gru.wz", xh))
            r = batched_sigmoid(self._blin("trunk.gru.wr", xh))
            n = np.tanh(
                self._blin("trunk.gru.wn", np.concatenate([x, r * h], axis=-1))
            )
            h = (1.0 - z) * n + z * h
            g = h
        else:
            g = x
        y = self._lrelu(self._bln("trunk.post_norm", g))
        if self._use_enc2:
            y = np.tanh(self._blin("trunk.enc2", y))
        y = self._lrelu(self._blin("trunk.fc", y))
        for res in ("trunk.res1", "trunk.res2"):
            t = self._bln(f"{res}.norm", y)
            t = self._lrelu(self._blin(f"{res}.fc1", t))
            y = y + self._blin(f"{res}.fc2", t)
        return self._blin("head.proj", y), h

    def step_batch(
        self, states: np.ndarray, h: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Deterministic batched step: ``(N, D), (N, H) -> (N,) ratios, h'``."""
        out, h = self._forward_batch(states, h)
        k = self._n_comp
        logits = out[:, 0:k]
        means = np.tanh(out[:, k : 2 * k]) * ((LOG_ACTION_HI - LOG_ACTION_LO) / 2.0)
        comp = np.argmax(logits, axis=-1)
        picked = means[np.arange(len(means)), comp]
        ratios = np.exp(np.clip(picked, LOG_ACTION_LO, LOG_ACTION_HI))
        return ratios, h

    def sample_step_batch(
        self,
        states: np.ndarray,
        h: Optional[np.ndarray],
        rngs: Sequence[np.random.Generator],
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Stochastic batched step with one RNG per flow.

        The forward pass is batched; the (cheap) mixture draws loop over
        rows so each flow consumes its own RNG stream exactly as the 1-D
        ``sample_step`` would — a flow's sample sequence is independent of
        which other flows share its batch.
        """
        out, h = self._forward_batch(states, h)
        k = self._n_comp
        logits = out[:, 0:k]
        means = np.tanh(out[:, k : 2 * k]) * ((LOG_ACTION_HI - LOG_ACTION_LO) / 2.0)
        log_std = np.clip(
            out[:, 2 * k : 3 * k], self._log_std_min, self._log_std_max
        )
        w = np.exp(logits - logits.max(axis=-1, keepdims=True))
        w /= w.sum(axis=-1, keepdims=True)
        ratios = np.empty(len(states))
        for i, rng in enumerate(rngs):
            comp = int(rng.choice(k, p=w[i]))
            u = means[i, comp] + np.exp(log_std[i, comp]) * rng.standard_normal()
            ratios[i] = np.exp(np.clip(u, LOG_ACTION_LO, LOG_ACTION_HI))
        return ratios, h


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))
