"""Multi-flow serving harness: N Sage senders, one bottleneck, one server.

The missing scale test for the Execution block: N concurrent flows share a
single bottleneck link *and* a single :class:`PolicyServer`. Every control
tick, each sender's GR unit produces its raw Table-1 state; all N states
are submitted and decided in one batched forward; the resulting cwnd ratios
are enforced through ``TcpSender.set_cwnd`` exactly as ``run_policy`` does
for one flow.

Returns per-flow :class:`~repro.tcp.flow.FlowStats`, the serving-metrics
snapshot, aggregate throughput, and Jain's fairness index across the N
served flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.collector.environments import EnvConfig, build_network
from repro.collector.gr_unit import GRUnit, WindowConfig
from repro.collector.rollout import TICK
from repro.core.networks import SagePolicy
from repro.netsim.topo import make_topology
from repro.serve.engine import PolicyServer, ServeConfig
from repro.tcp.flow import Flow, FlowStats
from repro.workload.fct import FctSummary
from repro.workload.generator import WorkloadConfig, generate_schedule
from repro.workload.runner import (
    _Runner,
    _Session,
    apply_aqmstall,
    apply_linkflap,
    main_paths,
)


@dataclass(frozen=True)
class MultiFlowConfig:
    """One serving-scale scenario: N served flows over one bottleneck."""

    n_flows: int = 8
    bw_mbps: float = 96.0
    min_rtt: float = 0.04
    buffer_bdp: float = 2.0
    duration: float = 10.0
    tick: float = TICK
    aqm: str = "taildrop"
    #: stagger between consecutive flow starts, seconds (0 = all at once)
    start_stagger: float = 0.0

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError("need at least one flow")

    def env(self) -> EnvConfig:
        return EnvConfig(
            env_id=f"serve-{self.n_flows}flows-bw{self.bw_mbps:g}",
            kind="flat",
            bw_mbps=self.bw_mbps,
            min_rtt=self.min_rtt,
            buffer_bdp=self.buffer_bdp,
            duration=self.duration,
            aqm=self.aqm,
        )


@dataclass
class MultiFlowResult:
    """Outcome of one multi-flow serving run."""

    config: MultiFlowConfig
    stats: List[FlowStats]
    metrics: dict
    aggregate_throughput_bps: float
    jain_fairness: float
    #: per-flow decision counts by provenance, summed over the run
    sources: Dict[str, int] = field(default_factory=dict)


def jain_index(throughputs: List[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even shares."""
    xs = np.asarray(throughputs, dtype=np.float64)
    if len(xs) == 0 or float(np.sum(xs * xs)) == 0.0:
        return 0.0
    return float(np.sum(xs) ** 2 / (len(xs) * np.sum(xs * xs)))


def run_served_flows(
    policy: SagePolicy,
    config: Optional[MultiFlowConfig] = None,
    serve_config: Optional[ServeConfig] = None,
    server: Optional[PolicyServer] = None,
    windows: Optional[WindowConfig] = None,
    distilled=None,
) -> MultiFlowResult:
    """Drive ``n_flows`` Sage senders through one shared policy server.

    ``server`` overrides construction (e.g. to inject a slow policy or a
    fake clock); otherwise one is built from ``serve_config``, with
    ``distilled`` optionally mounted as the symbolic tier.
    """
    cfg = config if config is not None else MultiFlowConfig()
    if server is None:
        sc = serve_config if serve_config is not None else ServeConfig(
            tick_interval=cfg.tick
        )
        server = PolicyServer(policy, sc, distilled=distilled)

    env = cfg.env()
    loop, network = build_network(env)
    flows: List[Flow] = []
    grs: List[GRUnit] = []
    for i in range(cfg.n_flows):
        flow = Flow(
            network,
            flow_id=i,
            scheme="cubic",  # transport plumbing only: cwnd is served
            min_rtt=cfg.min_rtt,
            start_at=i * cfg.start_stagger,
        )
        flow.sender.external_cwnd_control = True
        server.connect(i)
        flow.start()
        flows.append(flow)
        grs.append(GRUnit(flow.sender, windows=windows))

    t = 0.0
    end = (cfg.n_flows - 1) * cfg.start_stagger + cfg.duration
    sample_every = max(int(round(0.1 / cfg.tick)), 1)
    n_ticks = 0
    while t < end - 1e-9:
        t += cfg.tick
        loop.run_until(t)
        for flow, gr in zip(flows, grs):
            if t < flow.start_at:
                continue
            state, _ = gr.tick()
            server.submit(flow.flow_id, state, cwnd=flow.sender.cwnd)
        decisions = server.tick()
        for fid, decision in decisions.items():
            sender = flows[fid].sender
            sender.set_cwnd(sender.cwnd * decision.ratio)
            grs[fid]._last_cwnd = max(sender.cwnd, 1.0)
        n_ticks += 1
        if n_ticks % sample_every == 0:
            for flow in flows:
                if t >= flow.start_at:
                    flow.sample()

    for flow in flows:
        flow.stop()
        server.close(flow.flow_id)

    stats = [f.stats() for f in flows]
    thrs = [s.avg_throughput_bps for s in stats]
    snapshot = server.metrics.snapshot()
    return MultiFlowResult(
        config=cfg,
        stats=stats,
        metrics=snapshot,
        aggregate_throughput_bps=float(np.sum(thrs)),
        jain_fairness=jain_index(thrs),
        sources=dict(snapshot["sources"]),
    )


# --------------------------------------------------------------------------
# open-loop workload serving
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadServeConfig:
    """Open-loop serving scenario: Poisson arrivals of short served flows."""

    topology: str = "dumbbell"  # a repro.netsim.topo class
    bw_mbps: float = 96.0
    min_rtt: float = 0.02
    buffer_bdp: float = 2.0
    arrival_rate: float = 200.0  # sessions/second
    duration: float = 5.0  # arrival window, seconds
    mean_size_bytes: float = 30_000.0
    size_dist: str = "pareto"
    requests_per_session: float = 1.0
    think_time: float = 0.2
    drain: float = 5.0  # extra seconds for in-flight transfers to finish
    tick: float = TICK
    seed: int = 0

    @property
    def buffer_bytes(self) -> int:
        bdp = self.bw_mbps * 1e6 * self.min_rtt / 8.0
        return max(int(self.buffer_bdp * bdp), 3 * 1500)

    def workload(self) -> WorkloadConfig:
        return WorkloadConfig(
            arrival_rate=self.arrival_rate,
            duration=self.duration,
            size_dist=self.size_dist,
            mean_size_bytes=self.mean_size_bytes,
            requests_per_session=self.requests_per_session,
            think_time=self.think_time,
            seed=self.seed,
        )


@dataclass
class WorkloadServeResult:
    """Outcome of one open-loop served-workload run."""

    config: WorkloadServeConfig
    metrics: dict  # ServingMetrics.snapshot(), includes the "fct" section
    fct: FctSummary
    n_sessions: int
    n_requests: int
    peak_concurrent: int
    flapped_links: List[int] = field(default_factory=list)


def run_served_workload(
    policy: SagePolicy,
    config: Optional[WorkloadServeConfig] = None,
    serve_config: Optional[ServeConfig] = None,
    server: Optional[PolicyServer] = None,
    windows: Optional[WindowConfig] = None,
    distilled=None,
    chaos: Optional[object] = None,
) -> WorkloadServeResult:
    """Serve an open-loop workload: every arriving flow's cwnd is decided
    by the shared :class:`PolicyServer` until the flow completes and closes.

    This is the serving-scale complement of :func:`run_served_flows`: churn
    (connect/close per flow) and short transfers instead of N long-lived
    flows. Completion times land in ``ServingMetrics`` (``fct`` section of
    the snapshot) as well as the returned :class:`FctSummary`.
    """
    cfg = config if config is not None else WorkloadServeConfig()
    if server is None:
        sc = serve_config if serve_config is not None else ServeConfig(
            tick_interval=cfg.tick
        )
        server = PolicyServer(policy, sc, distilled=distilled)

    topo = make_topology(
        cfg.topology,
        bw_mbps=cfg.bw_mbps,
        min_rtt=cfg.min_rtt,
        buffer_bytes=cfg.buffer_bytes,
    )
    loop = topo.loop
    runner = _Runner(
        topo, main_paths(topo), "cubic", cfg.min_rtt, initial_cwnd=10.0
    )
    grs: Dict[int, GRUnit] = {}

    def on_start(flow: Flow) -> None:
        flow.sender.external_cwnd_control = True
        server.connect(flow.flow_id)
        grs[flow.flow_id] = GRUnit(flow.sender, windows=windows)

    def on_finish(fid: int, record) -> None:
        grs.pop(fid, None)
        server.close(fid)
        if record.completed:
            server.metrics.record_fct(record.fct)
        else:
            server.metrics.record_abandoned()

    runner.on_flow_start = on_start
    runner.on_flow_finish = on_finish

    schedule = generate_schedule(cfg.workload(), chaos=chaos)
    flapped = apply_linkflap(topo, chaos, cfg.duration)
    apply_aqmstall(topo, chaos, cfg.duration)
    for arrival in schedule:
        session = _Session(runner, arrival)
        loop.call_at(arrival.time, session.start_next)

    t = 0.0
    end = cfg.duration + cfg.drain
    while t < end - 1e-9:
        t += cfg.tick
        loop.run_until(t)
        for fid in sorted(grs):
            flow = runner.live[fid][0]
            state, _ = grs[fid].tick()
            server.submit(fid, state, cwnd=flow.sender.cwnd)
        decisions = server.tick()
        for fid, decision in decisions.items():
            entry = runner.live.get(fid)
            if entry is None:
                continue
            sender = entry[0].sender
            sender.set_cwnd(sender.cwnd * decision.ratio)
            grs[fid]._last_cwnd = max(sender.cwnd, 1.0)
    runner.abandon_remaining()

    first_path = runner.paths[0]
    links = [
        topo.link_between(u, v) for u, v in zip(first_path, first_path[1:])
    ]
    bottleneck = min(l.inner.rate.rate_at(0.0) for l in links)
    base_rtt = max(cfg.min_rtt, sum(l.prop_delay for l in links) * 2.0)
    fct = FctSummary.from_records(runner.records, base_rtt, bottleneck)
    return WorkloadServeResult(
        config=cfg,
        metrics=server.metrics.snapshot(),
        fct=fct,
        n_sessions=len(schedule),
        n_requests=runner.n_requests,
        peak_concurrent=runner.peak_concurrent,
        flapped_links=flapped,
    )
