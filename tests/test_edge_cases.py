"""Edge-case coverage: extreme parameters, degenerate configs, callbacks."""

import numpy as np
import pytest

from repro.collector.environments import EnvConfig, build_network
from repro.collector.rollout import collect_trajectory
from repro.core.training import collect_pool
from repro.evalx.leagues import Participant, run_league
from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate
from repro.tcp.flow import Flow


class TestExtremeNetworks:
    def test_tiny_buffer_still_works(self):
        # buffer floors at 3 packets: heavy loss, but the stream advances
        env = EnvConfig(env_id="tiny-buf", kind="flat", bw_mbps=12.0,
                        min_rtt=0.04, buffer_bdp=0.01, duration=5.0)
        r = collect_trajectory(env, "cubic")
        assert r.stats.avg_throughput_bps > 1e6

    def test_very_small_rtt(self):
        # 5 ms is below the paper's 10 ms floor; the tiny BDP (20 packets)
        # makes every recovery expensive, but utilization must hold up
        env = EnvConfig(env_id="lan", kind="flat", bw_mbps=48.0,
                        min_rtt=0.005, buffer_bdp=4.0, duration=3.0)
        r = collect_trajectory(env, "cubic")
        assert r.stats.avg_throughput_bps > 0.5 * 48e6

    def test_very_large_rtt(self):
        env = EnvConfig(env_id="sat", kind="flat", bw_mbps=12.0,
                        min_rtt=0.5, buffer_bdp=1.0, duration=8.0)
        r = collect_trajectory(env, "hybla")
        assert r.stats.avg_throughput_bps > 0  # slow ramp, but alive

    def test_slow_link(self):
        env = EnvConfig(env_id="slow", kind="flat", bw_mbps=0.5,
                        min_rtt=0.04, buffer_bdp=4.0, duration=5.0)
        r = collect_trajectory(env, "newreno")
        assert r.stats.avg_throughput_bps > 0.2 * 0.5e6

    def test_max_cwnd_window_limits_flow(self):
        loop = EventLoop()
        net = Network(loop, FlatRate(96e6), TailDrop(10_000_000))
        flow = Flow(net, 0, "cubic", min_rtt=0.2)  # BDP = 1600 pkts
        flow.sender.max_cwnd = 100.0
        flow.start()
        loop.run_until(10.0)
        thr = flow.receiver.total_bytes * 8 / 10.0
        # window-limited: ~100 pkts / 200 ms = 6 Mbps
        assert thr < 96e6 * 0.15

    def test_initial_cwnd_respected(self):
        loop = EventLoop()
        net = Network(loop, FlatRate(12e6), TailDrop(120_000))
        flow = Flow(net, 0, "vegas", min_rtt=0.04, initial_cwnd=2.0)
        flow.start()
        loop.run_until(0.05)  # just past the first RTT
        assert flow.sender.inflight <= 2  # never more than IW outstanding
        assert flow.sender.sent_packets <= 4  # IW + first-RTT ack clocking


class TestCallbacks:
    def test_collect_pool_progress(self):
        env = EnvConfig(env_id="p", kind="flat", bw_mbps=12.0,
                        min_rtt=0.04, buffer_bdp=2.0, duration=2.0)
        messages = []
        collect_pool([env], schemes=["cubic"], progress=messages.append)
        assert messages and "cubic" in messages[0]

    def test_run_league_progress(self):
        set1 = [EnvConfig(env_id="lg", kind="flat", bw_mbps=12.0,
                          min_rtt=0.04, buffer_bdp=2.0, duration=3.0)]
        messages = []
        run_league(
            [Participant.from_scheme("cubic")], set1=set1, set2=[],
            progress=messages.append,
        )
        assert messages


class TestRewardEdgeBehaviour:
    def test_zero_duration_rollout_rejected_by_scoring(self):
        from repro.evalx.scores import interval_scores

        env = EnvConfig(env_id="z", kind="flat", bw_mbps=12.0,
                        min_rtt=0.04, buffer_bdp=2.0, duration=3.0)
        r = collect_trajectory(env, "cubic")
        r.stats.times = []
        r.stats.throughput_series = []
        r.stats.rtt_series = []
        with pytest.raises(ValueError):
            interval_scores(r)

    def test_competitor_head_start_honoured(self):
        env = EnvConfig(env_id="hs", kind="flat", bw_mbps=12.0,
                        min_rtt=0.04, buffer_bdp=2.0, n_competing_cubic=1,
                        competitor_head_start=3.0, duration=6.0)
        r = collect_trajectory(env, "vegas")
        comp = r.competitor_stats[0]
        # the competitor ran ~3 s longer than the scheme under test
        assert comp.duration >= r.stats.duration + 2.0
