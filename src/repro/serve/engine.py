"""The policy-serving engine: N flows, one shared policy, batched inference.

The paper's Execution block deploys the frozen policy per flow; serving
"heavy traffic" means many concurrent flows must share one policy without
N separate forward passes per control tick. :class:`PolicyServer` is that
tier:

- a **per-flow hidden-state table** — one row of GRU state per connection,
  allocated on :meth:`connect`, freed on :meth:`close` (the table doubles
  like a socket table; rows are recycled through a free list);
- a **tick scheduler** — senders :meth:`submit` their raw 69-dim GR states
  as ticks fire; :meth:`tick` gathers everything pending into a single
  ``(N, 69)`` batched forward (`FastPolicy.step_batch`, bitwise
  row-consistent for any batch composition);
- a **deadline/fallback path** — when the forward misses the tick budget,
  every flow in the batch keeps its previous cwnd ratio; after
  ``max_misses`` *consecutive* misses a flow degrades to a built-in
  heuristic (ratio-space CUBIC by default) until inference meets the
  deadline again;
- **serving metrics** — per-tick latency percentiles, a batch-size
  histogram, and decision-provenance counts (policy / stale / heuristic).

A batch of one takes the legacy 1-D ``FastPolicy`` fast path (BLAS gemv),
which keeps single-flow serving bit-identical to the historical
``SageAgent`` — the pretrained-checkpoint gates depend on that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.collector.gr_unit import STATE_DIM, normalize_state
from repro.core.networks import FastPolicy, SagePolicy
from repro.serve.fallback import RatioFallback, make_fallback
from repro.serve.metrics import ServingMetrics


@dataclass(frozen=True)
class ServeConfig:
    """Serving-engine knobs.

    ``tick_budget`` is the inference deadline in seconds (``None`` disables
    the deadline machinery entirely — e.g. offline evaluation);
    ``max_misses`` is K, the consecutive-miss count after which a flow
    degrades to ``fallback``. ``tick_interval`` is the control period the
    fallback heuristics integrate over.
    """

    deterministic: bool = False
    tick_budget: Optional[float] = 0.020
    max_misses: int = 3
    fallback: str = "cubic"
    tick_interval: float = 0.02
    seed: int = 0
    state_mask: Optional[np.ndarray] = None
    initial_capacity: int = 16

    def __post_init__(self) -> None:
        if self.max_misses < 1:
            raise ValueError("max_misses must be >= 1")
        if self.tick_budget is not None and self.tick_budget < 0:
            raise ValueError("tick_budget must be >= 0 or None")
        if self.initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")


@dataclass
class ServeDecision:
    """One served control decision for one flow."""

    flow_id: int
    ratio: float
    #: "policy" (fresh inference), "stale" (deadline missed, previous ratio
    #: reused), or "heuristic" (degraded to the built-in fallback)
    source: str
    latency_s: float
    batch_size: int


class _FlowSession:
    """Per-connection serving state (everything but the hidden row)."""

    __slots__ = (
        "row",
        "rng",
        "last_ratio",
        "miss_streak",
        "degraded",
        "fallback",
        "cwnd_est",
    )

    def __init__(self, row: int, rng: np.random.Generator) -> None:
        self.row = row
        self.rng = rng
        self.last_ratio = 1.0
        self.miss_streak = 0
        self.degraded = False
        self.fallback: Optional[RatioFallback] = None
        self.cwnd_est = 10.0  # packets; resynced by submit(cwnd=...) hints


class PolicyServer:
    """Serves one frozen policy to many concurrent flows.

    Parameters
    ----------
    policy:
        The trained :class:`SagePolicy` to freeze and serve.
    config:
        Engine knobs; defaults to :class:`ServeConfig()`.
    fast:
        Pre-built :class:`FastPolicy` (tests inject slow subclasses here to
        exercise the deadline path; also lets a caller share one snapshot).
    clock:
        Monotonic time source used for deadline accounting; injectable for
        deterministic tests.
    chaos:
        Optional :class:`~repro.chaos.inject.FaultInjector`; pending
        ``serve.*`` faults (NaN outputs, slow forwards) hit the matching
        tick inside the deadline-timed region.
    """

    def __init__(
        self,
        policy: SagePolicy,
        config: Optional[ServeConfig] = None,
        fast: Optional[FastPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,
        chaos=None,
    ) -> None:
        self.policy = policy
        self.config = config if config is not None else ServeConfig()
        self.fast = fast if fast is not None else FastPolicy(policy)
        self.clock = clock
        self.metrics = ServingMetrics()
        self._chaos = chaos
        self._tick_index = 0  # forwards served, for chaos targeting

        h0 = self.fast.initial_state()
        self._hdim = 0 if h0 is None else len(h0)
        cap = self.config.initial_capacity
        self._table = np.zeros((cap, self._hdim))
        self._free: List[int] = list(range(cap - 1, -1, -1))
        self._sessions: Dict[int, _FlowSession] = {}
        #: flow_id -> (raw state, optional cwnd hint), insertion-ordered
        self._pending: Dict[int, Tuple[np.ndarray, Optional[float]]] = {}

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    @property
    def n_flows(self) -> int:
        return len(self._sessions)

    @property
    def capacity(self) -> int:
        """Current hidden-state table capacity (rows)."""
        return len(self._table)

    def connect(
        self, flow_id: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        """Open a serving session: allocate and zero one hidden-state row."""
        if flow_id in self._sessions:
            raise ValueError(f"flow {flow_id} already connected")
        if not self._free:
            self._grow()
        row = self._free.pop()
        self._table[row] = 0.0
        if rng is None:
            rng = np.random.default_rng((self.config.seed, flow_id))
        self._sessions[flow_id] = _FlowSession(row, rng)

    def close(self, flow_id: int) -> None:
        """End a session: recycle its hidden-state row."""
        sess = self._sessions.pop(flow_id, None)
        if sess is None:
            raise KeyError(f"flow {flow_id} not connected")
        self._pending.pop(flow_id, None)
        self._free.append(sess.row)

    def _grow(self) -> None:
        old = self._table
        self._table = np.zeros((2 * len(old), self._hdim))
        self._table[: len(old)] = old
        self._free.extend(range(2 * len(old) - 1, len(old) - 1, -1))

    # ------------------------------------------------------------------
    # the tick scheduler
    # ------------------------------------------------------------------
    def submit(
        self, flow_id: int, state: np.ndarray, cwnd: Optional[float] = None
    ) -> None:
        """Queue one flow's raw GR state for the next batched tick.

        ``cwnd`` optionally resyncs the server's window estimate with the
        sender's actual cwnd (the fallback heuristics integrate on it).
        """
        if flow_id not in self._sessions:
            raise KeyError(f"flow {flow_id} not connected")
        self._pending[flow_id] = (np.asarray(state, dtype=np.float64), cwnd)

    def tick(self) -> Dict[int, ServeDecision]:
        """Run one control interval: batch all pending states, decide all.

        The whole batch shares one forward pass and therefore one deadline
        verdict; per-flow miss streaks and degradation remain individual
        (flows join and leave batches at different times).
        """
        if not self._pending:
            return {}
        pending, self._pending = self._pending, {}
        flow_ids = list(pending)
        sessions = [self._sessions[f] for f in flow_ids]
        raw = np.stack([pending[f][0] for f in flow_ids])

        x = normalize_state(raw)
        if self.config.state_mask is not None:
            x = x * self.config.state_mask

        t0 = self.clock()
        ratios, h_next = self._forward(x, sessions)
        if self._chaos is not None:
            # inside the timed region: a serve.slow fault shows up as real
            # inference latency, a serve.nan fault as poisoned outputs
            ratios, h_next = self._chaos.mutate_serve(
                self._tick_index, ratios, h_next
            )
        elapsed = self.clock() - t0
        self._tick_index += 1
        self._commit_hidden(sessions, h_next)

        budget = self.config.tick_budget
        missed = budget is not None and elapsed > budget
        self.metrics.record_tick(len(flow_ids), elapsed, missed)

        decisions: Dict[int, ServeDecision] = {}
        for i, (fid, sess) in enumerate(zip(flow_ids, sessions)):
            cwnd_hint = pending[fid][1]
            if cwnd_hint is not None:
                sess.cwnd_est = float(cwnd_hint)
            if not missed:
                value = float(ratios[i])
                if np.isfinite(value):
                    sess.miss_streak = 0
                    sess.degraded = False
                    sess.fallback = None
                    ratio, source = value, "policy"
                else:
                    # a non-finite ratio must never reach a sender's cwnd:
                    # route this decision through the heuristic instead
                    self.metrics.invalid_actions += 1
                    if sess.fallback is None:
                        sess.fallback = make_fallback(self.config.fallback)
                    ratio = float(
                        sess.fallback.ratio(
                            raw[i], sess.cwnd_est, self.config.tick_interval
                        )
                    )
                    source = "heuristic"
            else:
                sess.miss_streak += 1
                if sess.miss_streak >= self.config.max_misses:
                    if not sess.degraded:
                        sess.degraded = True
                        sess.fallback = make_fallback(self.config.fallback)
                    ratio = float(
                        sess.fallback.ratio(
                            raw[i], sess.cwnd_est, self.config.tick_interval
                        )
                    )
                    source = "heuristic"
                else:
                    # late result discarded: hold the previous cwnd ratio
                    ratio, source = sess.last_ratio, "stale"
            sess.last_ratio = ratio
            sess.cwnd_est = min(max(sess.cwnd_est * ratio, 1.0), 4096.0)
            self.metrics.record_decision(source)
            decisions[fid] = ServeDecision(
                flow_id=fid,
                ratio=ratio,
                source=source,
                latency_s=elapsed,
                batch_size=len(flow_ids),
            )
        return decisions

    def serve_one(
        self, flow_id: int, state: np.ndarray, cwnd: Optional[float] = None
    ) -> ServeDecision:
        """Submit + tick for a single flow (the thin-client entry point)."""
        self.submit(flow_id, state, cwnd=cwnd)
        return self.tick()[flow_id]

    # ------------------------------------------------------------------
    def _forward(
        self, x: np.ndarray, sessions: List[_FlowSession]
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """One forward pass; batch=1 takes the legacy bit-exact 1-D path."""
        if len(sessions) == 1:
            sess = sessions[0]
            h = self._table[sess.row] if self._hdim else None
            if self.config.deterministic:
                ratio, h = self.fast.step(x[0], h)
            else:
                ratio, h = self.fast.sample_step(x[0], h, sess.rng)
            h_next = None if h is None else h[None, :]
            return np.array([ratio]), h_next
        rows = [s.row for s in sessions]
        h = self._table[rows] if self._hdim else None
        if self.config.deterministic:
            return self.fast.step_batch(x, h)
        return self.fast.sample_step_batch(x, h, [s.rng for s in sessions])

    def _commit_hidden(
        self, sessions: List[_FlowSession], h_next: Optional[np.ndarray]
    ) -> None:
        # Hidden state advances even on a deadline miss: the forward did
        # complete (just late), and keeping recurrent continuity makes
        # post-brown-out recovery seamless. Non-finite rows are the one
        # exception — a poisoned forward must not contaminate recurrent
        # state, so those flows keep their previous hidden state.
        if h_next is None or not self._hdim:
            return
        for i, sess in enumerate(sessions):
            row = h_next[i]
            if np.all(np.isfinite(row)):
                self._table[sess.row] = row
