"""Reproduction of *Sage* (SIGCOMM 2023).

Sage is the first purely data-driven (offline-RL) Internet congestion-control
scheme: it observes trajectories of existing heuristic CC schemes across many
emulated networks and learns a better-performing policy with
Critic-Regularized Regression, without ever interacting with a network during
training.

Top-level subpackages
---------------------
``repro.netsim``
    Discrete-event single-bottleneck network emulator (the Mahimahi
    substitute): links, queues, AQMs, traces.
``repro.tcp``
    A from-scratch TCP-like reliable transport with a pluggable congestion
    control interface, plus 17 re-implemented CC schemes.
``repro.collector``
    Sage's Policy Collector: the General Representation unit (69-dim state,
    cwnd-ratio actions, dual rewards), Set I / Set II environments, rollouts,
    and the pool of policies.
``repro.nn``
    Reverse-mode autograd on numpy with the layers Sage's network needs
    (GRU, LayerNorm, residual blocks, GMM head, distributional critic).
``repro.core``
    The paper's contribution: CRR offline-RL training and the deployable
    Sage agent.
``repro.baselines``
    BC variants, online RL, Aurora-like, Indigo-like, Orca-like, and
    Vivace-like baselines used by the paper's league comparisons.
``repro.evalx``
    Scores, winning rates, leagues, Internet/cellular evaluations, and the
    deep-dive analyses (distance CDFs, similarity indices, t-SNE, frontier).
"""

from repro.version import __version__

__all__ = ["__version__"]
