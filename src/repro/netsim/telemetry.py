"""Queue telemetry capture for training the learned ECN predictor.

:class:`QueueTelemetryRecorder` hooks into a :class:`~repro.netsim.link.Link`
(``link.telemetry = recorder``) and logs one row per *admitted* packet:

- the four predictor features **as seen at enqueue time** — occupancy
  fraction just before admission, the queue's sojourn EWMA, arrival-rate
  EWMA, and the link drain rate — i.e. exactly what
  :class:`~repro.netsim.aqm.LearnedECN` would have computed for its own
  marking decision, and
- the outcome label, resolved at dequeue: the packet's actual sojourn time
  through the buffer.

:mod:`repro.aqm_learn` turns these rows into a supervised dataset
(``y = sojourn > target``): the predictor learns, from how the heuristic
queue actually behaved, to recognise *at enqueue* the packets that will go
on to blow the delay target. Traces persist as schema-versioned ``.npz``
shards so fits are reproducible and CI can ship tiny fixtures.

The hook is ``None`` by default and the Link fast path does not change when
it is absent, so droptail event streams stay bit-identical.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.netsim.ecn_model import FEATURES
from repro.netsim.packet import Packet

__all__ = ["QueueTelemetryRecorder", "TRACE_SCHEMA_VERSION", "load_traces"]

#: bump when the trace .npz layout changes
TRACE_SCHEMA_VERSION = 1

_EWMA_ALPHA = 0.1


class QueueTelemetryRecorder:
    """Per-link queue-telemetry logger (features at enqueue, sojourn label)."""

    def __init__(self, max_rows: int = 1_000_000) -> None:
        if max_rows <= 0:
            raise ValueError(f"max_rows must be positive, got {max_rows}")
        self.max_rows = int(max_rows)
        self.features: List[tuple] = []
        self.sojourns: List[float] = []
        self.dropped_rows = 0
        self._pending: Dict[int, tuple] = {}
        self._sojourn_ewma = 0.0
        self._arrival_rate = 0.0
        self._last_arrival = -1.0

    def __len__(self) -> int:
        return len(self.sojourns)

    # -- Link hooks ----------------------------------------------------
    def on_enqueue(self, aqm, pkt: Packet, now: float) -> None:
        """Record the feature snapshot for an admitted packet.

        Called *after* admission, so occupancy is reconstructed as the
        backlog excluding the packet itself — what the marking decision at
        arrival would have seen.
        """
        if self._last_arrival >= 0.0 and now > self._last_arrival:
            inst = pkt.size * 8.0 / (now - self._last_arrival)
            self._arrival_rate += _EWMA_ALPHA * (inst - self._arrival_rate)
        self._last_arrival = now
        if len(self.sojourns) + len(self._pending) >= self.max_rows:
            self.dropped_rows += 1
            return
        row = (
            max(aqm.bytes_queued - pkt.size, 0) / aqm.capacity_bytes,
            self._sojourn_ewma,
            self._arrival_rate,
            aqm.current_rate_bps,
        )
        # Packet has __slots__, so key pending rows by object identity; the
        # id stays valid until dequeue because the buffer holds the packet.
        self._pending[id(pkt)] = row

    def on_dequeue(self, pkt: Packet, now: float) -> None:
        """Resolve a pending row with the packet's realised sojourn time."""
        row = self._pending.pop(id(pkt), None)
        sojourn = now - pkt.enqueue_time
        self._sojourn_ewma += _EWMA_ALPHA * (sojourn - self._sojourn_ewma)
        if row is None:
            return
        self.features.append(row)
        self.sojourns.append(sojourn)

    # -- dataset export ------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Completed rows as ``{"features": (N, 4), "sojourns": (N,)}``."""
        n = len(self.sojourns)
        feats = np.asarray(self.features[:n], dtype=np.float64).reshape(n, len(FEATURES))
        return {
            "features": feats,
            "sojourns": np.asarray(self.sojourns, dtype=np.float64),
        }

    def save(self, path) -> Path:
        """Write completed rows as a schema-versioned trace shard."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = self.to_arrays()
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                **{
                    "meta/schema_version": np.array(
                        [TRACE_SCHEMA_VERSION], dtype=np.int64
                    ),
                    "trace/features": arrays["features"],
                    "trace/sojourns": arrays["sojourns"],
                },
            )
        os.replace(tmp, path)
        return path


def load_traces(paths) -> Dict[str, np.ndarray]:
    """Load and concatenate one or more trace shards written by ``save``."""
    if isinstance(paths, (str, Path)):
        paths = [paths]
    if not paths:
        raise ValueError("no trace shards given")
    feats: List[np.ndarray] = []
    sojourns: List[np.ndarray] = []
    for p in paths:
        p = Path(p)
        try:
            data = np.load(p, allow_pickle=False)
        except Exception as exc:
            raise ValueError(f"queue trace {p} is unreadable: {exc}") from exc
        with data:
            keys = set(data.files)
            required = {"meta/schema_version", "trace/features", "trace/sojourns"}
            missing = sorted(required - keys)
            if missing:
                raise ValueError(
                    f"queue trace {p} is missing keys {missing}; "
                    f"not a telemetry shard"
                )
            version = int(data["meta/schema_version"][0])
            if version != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"queue trace {p} has schema version {version}; this "
                    f"build reads version {TRACE_SCHEMA_VERSION}"
                )
            f = np.asarray(data["trace/features"], dtype=np.float64)
            s = np.asarray(data["trace/sojourns"], dtype=np.float64)
        if f.ndim != 2 or f.shape[1] != len(FEATURES) or f.shape[0] != s.shape[0]:
            raise ValueError(
                f"queue trace {p} has inconsistent shapes "
                f"{f.shape} / {s.shape}"
            )
        feats.append(f)
        sojourns.append(s)
    return {
        "features": np.concatenate(feats, axis=0),
        "sojourns": np.concatenate(sojourns, axis=0),
    }
