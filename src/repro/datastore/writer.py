"""ShardWriter: append-only streaming ingest into a sharded store.

Collector workers produce one trajectory at a time; the writer buffers them
until a fixed byte budget is reached, then commits the buffer as one shard
— three plain ``.npy`` files (states / actions / rewards, trajectories
concatenated along axis 0) so readers can ``np.load(mmap_mode="r")`` them.
Commits are atomic: each array is written to a ``*.tmp`` file and
``os.replace``d into place, and the manifest is rewritten (also atomically)
after every shard, so a killed collection run leaves a valid store holding
every shard committed so far — never a half-written one.

Usage::

    with ShardWriter(out_dir, shard_bytes=32 << 20) as w:
        for rollout in rollouts:
            w.add_rollout(rollout)
    # close() flushed the tail shard and wrote the final manifest
"""

from __future__ import annotations

import errno
import os
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.collector.pool import Trajectory
from repro.datastore.manifest import (
    Manifest,
    ShardFile,
    ShardRecord,
    TrajectoryRecord,
    file_crc32,
)

__all__ = ["ShardWriter", "StoreFullError", "DEFAULT_SHARD_BYTES"]

#: default shard budget — big enough to amortize file overhead, small
#: enough that a corrupt shard quarantines a sliver of the pool
DEFAULT_SHARD_BYTES = 32 << 20

#: approximate .npy v1 header bytes per component file, for budget math
_NPY_HEADER_BYTES = 128


class StoreFullError(OSError):
    """A flush was refused (disk budget) or failed (``ENOSPC``) atomically.

    Either way the store on disk is untouched — the manifest still
    describes exactly the shards committed before the failed flush — and
    the writer's buffer is preserved, so the caller can free space (or
    raise the budget) and call ``flush()`` again.
    """


class ShardWriter:
    """Append-only writer for a sharded trajectory store.

    Parameters
    ----------
    root:
        Store directory (created if missing). Must not already contain a
        manifest unless ``append=True``.
    shard_bytes:
        Soft per-shard budget over the summed array bytes; a shard is cut
        as soon as the buffer reaches it. One oversized trajectory still
        gets a (single-trajectory) shard of its own.
    append:
        Continue an existing store, adding shards after the ones already
        in its manifest.
    chaos:
        Optional :class:`~repro.chaos.inject.FaultInjector`; pending
        ``datastore.*`` faults (bit-flips, truncations) are applied to the
        matching shard's files *after* the shard and manifest commit — the
        corruption is exactly what
        :func:`~repro.datastore.manifest.verify_store` must catch.
    disk_budget_bytes:
        Optional hard cap on the store's total array bytes. A flush whose
        projected size would cross it raises :class:`StoreFullError`
        *before* touching disk; an ``ENOSPC`` from the filesystem
        mid-flush is unwound to the same guarantee (committed-prefix
        manifest, buffer preserved).
    """

    def __init__(
        self,
        root,
        shard_bytes: int = DEFAULT_SHARD_BYTES,
        append: bool = False,
        chaos=None,
        disk_budget_bytes: Optional[int] = None,
    ) -> None:
        if shard_bytes < 1:
            raise ValueError("shard_bytes must be positive")
        if disk_budget_bytes is not None and disk_budget_bytes < 1:
            raise ValueError("disk_budget_bytes must be positive or None")
        self.disk_budget_bytes = (
            None if disk_budget_bytes is None else int(disk_budget_bytes)
        )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shard_bytes = int(shard_bytes)
        manifest_path = self.root / "manifest.json"
        if manifest_path.exists():
            if not append:
                raise FileExistsError(
                    f"{self.root} already holds a store; pass append=True "
                    "to extend it"
                )
            self.manifest = Manifest.load(self.root)
        else:
            self.manifest: Optional[Manifest] = None  # created on first add
        self._buffer: List[Trajectory] = []
        self._buffered_bytes = 0
        self._closed = False
        self._chaos = chaos

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.manifest.shards) if self.manifest else 0

    @property
    def n_trajectories(self) -> int:
        committed = len(self.manifest.trajectories) if self.manifest else 0
        return committed + len(self._buffer)

    # ------------------------------------------------------------------
    def add(self, traj: Trajectory) -> None:
        """Buffer one trajectory; cuts a shard when the budget is reached."""
        if self._closed:
            raise RuntimeError("ShardWriter is closed")
        if traj.length == 0:
            raise ValueError(
                f"refusing to store zero-length trajectory "
                f"{traj.scheme!r} on {traj.env_id!r}"
            )
        states = np.ascontiguousarray(traj.states)
        if states.ndim != 2:
            raise ValueError(
                f"states must be 2-D (T, state_dim), got shape {states.shape}"
            )
        if self.manifest is None:
            self.manifest = Manifest(
                state_dim=int(states.shape[1]),
                dtypes={
                    "states": str(states.dtype),
                    "actions": str(np.asarray(traj.actions).dtype),
                    "rewards": str(np.asarray(traj.rewards).dtype),
                },
            )
        elif states.shape[1] != self.manifest.state_dim:
            raise ValueError(
                f"state_dim {states.shape[1]} != store's "
                f"{self.manifest.state_dim}"
            )
        self._buffer.append(traj)
        self._buffered_bytes += (
            states.nbytes
            + np.asarray(traj.actions).nbytes
            + np.asarray(traj.rewards).nbytes
        )
        if self._buffered_bytes >= self.shard_bytes:
            self.flush()

    def add_rollout(self, rollout) -> None:
        """Append a :class:`~repro.collector.rollout.RolloutResult`."""
        self.add(
            Trajectory(
                scheme=rollout.scheme,
                env_id=rollout.env.env_id,
                multi_flow=rollout.env.is_multi_flow,
                states=rollout.states,
                actions=rollout.actions,
                rewards=rollout.rewards,
            )
        )

    # ------------------------------------------------------------------
    def _store_bytes(self) -> int:
        """Total array bytes already committed to the store."""
        if self.manifest is None:
            return 0
        return sum(
            f.bytes for s in self.manifest.shards for f in s.files.values()
        )

    def _commit_array(self, name: str, arr: np.ndarray) -> ShardFile:
        """Atomically write one component array and checksum it."""
        path = self.root / name
        tmp = self.root / (name + ".tmp")
        with open(tmp, "wb") as fh:
            np.save(fh, arr)
        os.replace(tmp, path)
        return ShardFile(file=name, crc32=file_crc32(path), bytes=path.stat().st_size)

    def flush(self) -> None:
        """Commit buffered trajectories as one shard + updated manifest."""
        if self._closed:
            raise RuntimeError("ShardWriter is closed")
        if not self._buffer:
            return
        manifest = self.manifest
        dtypes = manifest.dtypes
        shard_idx = len(manifest.shards)
        name = f"shard-{shard_idx:05d}"
        states = np.concatenate(
            [np.asarray(t.states, dtype=dtypes["states"]) for t in self._buffer]
        )
        actions = np.concatenate(
            [np.asarray(t.actions, dtype=dtypes["actions"]) for t in self._buffer]
        )
        rewards = np.concatenate(
            [np.asarray(t.rewards, dtype=dtypes["rewards"]) for t in self._buffer]
        )
        projected = (
            states.nbytes + actions.nbytes + rewards.nbytes
            + 3 * _NPY_HEADER_BYTES
        )
        if (
            self.disk_budget_bytes is not None
            and self._store_bytes() + projected > self.disk_budget_bytes
        ):
            raise StoreFullError(
                f"flush refused: shard would grow the store to "
                f"~{self._store_bytes() + projected} bytes, over the "
                f"{self.disk_budget_bytes}-byte budget; the manifest still "
                f"describes the {shard_idx} committed shard(s) and the "
                f"buffer is preserved"
            )
        files = {}
        parts = (("states", states), ("actions", actions), ("rewards", rewards))
        try:
            for part, arr in parts:
                files[part] = self._commit_array(f"{name}.{part}.npy", arr)
        except OSError as exc:
            # unwind this shard's files so the store matches its manifest
            # (which never saw the shard); the buffer stays intact
            for part, _ in parts:
                for victim in (
                    self.root / f"{name}.{part}.npy",
                    self.root / f"{name}.{part}.npy.tmp",
                ):
                    try:
                        victim.unlink()
                    except OSError:
                        pass
            if exc.errno == errno.ENOSPC:
                raise StoreFullError(
                    f"flush of {name} hit ENOSPC and was unwound; the "
                    f"manifest still describes the {shard_idx} committed "
                    f"shard(s) and the buffer is preserved"
                ) from exc
            raise
        manifest.shards.append(
            ShardRecord(
                name=name,
                rows=int(states.shape[0]),
                n_trajectories=len(self._buffer),
                files=files,
            )
        )
        offset = 0
        for t in self._buffer:
            manifest.trajectories.append(
                TrajectoryRecord(
                    scheme=t.scheme,
                    env_id=t.env_id,
                    multi_flow=bool(t.multi_flow),
                    length=t.length,
                    shard=shard_idx,
                    offset=offset,
                )
            )
            offset += t.length
        manifest.save(self.root)
        if self._chaos is not None:
            self._chaos.corrupt_shard(self.root, shard_idx, files)
        self._buffer = []
        self._buffered_bytes = 0

    def close(self) -> None:
        """Flush the tail shard and finalize the manifest (idempotent)."""
        if self._closed:
            return
        self.flush()
        if self.manifest is None:
            # an empty collection run still leaves a valid (empty) store
            self.manifest = Manifest(state_dim=0)
        self.manifest.save(self.root)
        self._closed = True

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
