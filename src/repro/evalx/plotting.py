"""Terminal plotting: ASCII time-series and scatter charts.

matplotlib is deliberately not a dependency; the dynamics figures
(Figs. 17-19, 24-28) render as terminal charts good enough to eyeball the
waveforms the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_GLYPHS = "#*+ox%@&"


def ascii_timeseries(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named (times, values) series on one shared-axis ASCII chart."""
    if not series:
        raise ValueError("no series to plot")
    all_t = np.concatenate([np.asarray(t, float) for t, _ in series.values()])
    all_v = np.concatenate([np.asarray(v, float) for _, v in series.values()])
    if all_t.size == 0:
        raise ValueError("series are empty")
    t_lo, t_hi = float(all_t.min()), float(all_t.max())
    v_lo, v_hi = float(all_v.min()), float(all_v.max())
    if t_hi <= t_lo:
        t_hi = t_lo + 1.0
    if v_hi <= v_lo:
        v_hi = v_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, (ts, vs)) in enumerate(series.items()):
        glyph = _GLYPHS[k % len(_GLYPHS)]
        for t, v in zip(np.asarray(ts, float), np.asarray(vs, float)):
            x = int((t - t_lo) / (t_hi - t_lo) * (width - 1))
            y = int((v - v_lo) / (v_hi - v_lo) * (height - 1))
            grid[height - 1 - y][x] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{v_hi:10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{v_lo:10.3g} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{t_lo:<10.3g}" + " " * (width - 20) + f"{t_hi:>10.3g}")
    legend = "   ".join(
        f"{_GLYPHS[k % len(_GLYPHS)]} {name}" for k, name in enumerate(series)
    )
    lines.append(" " * 12 + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def ascii_scatter(
    points: Dict[str, Tuple[float, float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labeled (x, y) points — the Fig. 8/22 throughput-delay planes."""
    if not points:
        raise ValueError("no points to plot")
    xs = np.array([p[0] for p in points.values()], float)
    ys = np.array([p[1] for p in points.values()], float)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    labels = []
    for k, (name, (x, y)) in enumerate(points.items()):
        gx = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        gy = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        glyph = _GLYPHS[k % len(_GLYPHS)]
        grid[height - 1 - gy][gx] = glyph
        labels.append(f"{glyph} {name}")
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:10.3g} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{x_lo:<10.3g} {x_label} {x_hi:>10.3g}  [{y_label}]")
    lines.append(" " * 12 + "   ".join(labels))
    return "\n".join(lines)


def plot_flow_throughput(result, width: int = 72, height: int = 14) -> str:
    """Chart a rollout's throughput series (Mbps over seconds)."""
    s = result.stats
    return ascii_timeseries(
        {result.scheme: (s.times, [t / 1e6 for t in s.throughput_series])},
        width=width, height=height,
        title=f"throughput — {result.env.env_id}", y_label="Mbps",
    )
