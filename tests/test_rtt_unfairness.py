"""RTT-unfairness: a classic substrate-validity experiment.

Loss-based AIMD famously favours short-RTT flows (throughput ~ 1/RTT^z);
Cubic was designed to reduce, and Hybla to eliminate, that bias. These
tests check our substrate reproduces the known ordering.
"""

import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate
from repro.tcp.flow import Flow


def rtt_unfairness(scheme, rtt_short=0.02, rtt_long=0.08, bw=24e6, dur=40.0):
    """Run one short-RTT and one long-RTT flow of the same scheme; return
    throughput(short) / throughput(long)."""
    loop = EventLoop()
    net = Network(loop, FlatRate(bw), TailDrop(int(2 * bw * rtt_long / 8)))
    short = Flow(net, 0, scheme, min_rtt=rtt_short)
    long_ = Flow(net, 1, scheme, min_rtt=rtt_long)
    short.start()
    long_.start()
    loop.run_until(dur)
    # score the steady tail only
    half = dur / 2
    s_bytes = short.receiver.total_bytes
    l_bytes = long_.receiver.total_bytes
    return s_bytes / max(l_bytes, 1)


class TestRttUnfairness:
    def test_reno_strongly_favours_short_rtt(self):
        ratio = rtt_unfairness("newreno")
        assert ratio > 1.5

    def test_cubic_less_biased_than_reno(self):
        reno = rtt_unfairness("newreno")
        cubic = rtt_unfairness("cubic")
        # Cubic's real-time-based growth reduces the RTT bias
        assert cubic < reno * 1.1

    def test_hybla_compensates_rtt(self):
        hybla = rtt_unfairness("hybla")
        reno = rtt_unfairness("newreno")
        # Hybla's rho-equalization narrows the gap vs plain AIMD
        assert hybla < reno

    def test_short_flow_never_starves(self):
        for scheme in ("newreno", "cubic", "vegas"):
            ratio = rtt_unfairness(scheme, dur=25.0)
            assert ratio > 0.5  # sanity: short-RTT flow at least competitive
