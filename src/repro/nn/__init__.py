"""Neural-network substrate: reverse-mode autograd on numpy.

The paper trains Sage with TensorFlow/Acme on GPUs; offline here, we
implement the needed subset from scratch:

- :mod:`~repro.nn.autograd` — a small reverse-mode autodiff engine
  (:class:`Tensor`) supporting broadcasting, matmul, and the nonlinear ops
  Sage's network uses.
- :mod:`~repro.nn.layers` — Linear, LayerNorm, activations, residual blocks,
  and the :class:`Module` parameter-tree base.
- :mod:`~repro.nn.gru` — the Gated Recurrent Unit (Fig. 6's memory).
- :mod:`~repro.nn.heads` — the Gaussian-mixture policy head and the C51
  distributional critic head.
- :mod:`~repro.nn.optim` — Adam with global-norm gradient clipping.
- :mod:`~repro.nn.serial` — checkpointing parameter trees to ``.npz``.
"""

from repro.nn.autograd import Tensor, as_tensor, no_grad
from repro.nn.functional import leaky_relu_np, sigmoid_np, softmax_np
from repro.nn.layers import (
    Module,
    Linear,
    LayerNorm,
    LeakyReLU,
    Tanh,
    Sequential,
    ResidualBlock,
)
from repro.nn.gru import GRU
from repro.nn.heads import GMMHead, DistributionalHead
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.serial import save_params, load_params

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "Module",
    "Linear",
    "LayerNorm",
    "LeakyReLU",
    "Tanh",
    "Sequential",
    "ResidualBlock",
    "GRU",
    "GMMHead",
    "DistributionalHead",
    "Adam",
    "clip_grad_norm",
    "save_params",
    "load_params",
    "softmax_np",
    "sigmoid_np",
    "leaky_relu_np",
]
