"""Fig. 14 — impact of the observation-window granularity.

Pools rebuilt with a *single* window size — Small (10), Medium (200),
Large (1000) ticks — train Sage-s / Sage-m / Sage-l; default Sage keeps all
three timescales. Paper shape: the long window wins the TCP-friendliness
set; the full three-timescale input wins overall.
"""

from conftest import (
    BENCH_CRR,
    BENCH_NET,
    SCALE,
    bench_pool_schemes,
    bench_set1,
    bench_set2,
    once,
)

from repro.collector.gr_unit import WindowConfig
from repro.core.training import collect_pool, train_sage_on_pool
from repro.evalx.leagues import Participant, run_league

STEPS = {"tiny": 60, "small": 200, "full": 1000}[SCALE]
WINDOWS = {
    "sage-s": WindowConfig(small=10, medium=10, large=10),
    "sage-m": WindowConfig(small=200, medium=200, large=200),
    "sage-l": WindowConfig(small=1000, medium=1000, large=1000),
}


def test_fig14_window_granularity(benchmark, sage_agent):
    set1, set2 = bench_set1()[:2], bench_set2()[:2]
    collect_envs = (set1 + set2)[:4]
    schemes = bench_pool_schemes()[:3]

    def run():
        participants = [Participant.from_agent(sage_agent)]
        for name, windows in WINDOWS.items():
            pool = collect_pool(collect_envs, schemes=schemes, windows=windows)
            r = train_sage_on_pool(
                pool, n_steps=STEPS, n_checkpoints=1, net_config=BENCH_NET,
                crr_config=BENCH_CRR,
            )
            r.agent.name = name
            participants.append(Participant.from_agent(r.agent))
        return run_league(participants, set1=set1, set2=set2)

    result = once(benchmark, run)
    print("\n=== Fig. 14: window-granularity variants ===")
    print(result.format_table())
    assert {"sage", "sage-s", "sage-m", "sage-l"} <= set(result.set1_rates)
