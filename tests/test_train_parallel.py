"""Data-parallel gradient workers (repro.train.parallel).

The contract under test:

- for any worker count dividing the grain width, losses, parameters and
  per-(step, grain) seed streams are **bit-identical** — for the
  in-memory pool and the sharded on-disk store alike;
- an injected worker crash (``train.workercrash``) is recovered by
  respawn + same-seed replay, leaving the run bit-identical to a
  fault-free one;
- a poisoned batch under a :class:`DivergenceGuard` is masked exactly as
  in the single-process engine;
- checkpoints record the worker layout and refuse to resume under a
  different one, and a real ``kill -9`` mid-train resumes to the
  uninterrupted run's exact bytes through the pipeline supervisor.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.collector.gr_unit import STATE_DIM
from repro.collector.parallel import derive_seed
from repro.collector.pool import PolicyPool, Trajectory
from repro.core.crr import CRRConfig, CRRTrainer
from repro.core.networks import NetworkConfig
from repro.core.training import train_sage_on_pool
from repro.train.engine import FastCRRTrainer
from repro.train.guard import DivergenceGuard, GuardConfig
from repro.train.parallel import (
    DEFAULT_GRAINS,
    DataParallelTrainer,
    grain_seed,
)

REPO = Path(__file__).resolve().parent.parent

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)
CFG = CRRConfig(batch_size=8, seq_len=4)


def synthetic_pool(seed: int = 0, n_traj: int = 6, length: int = 24) -> PolicyPool:
    rng = np.random.default_rng(seed)
    pool = PolicyPool()
    for i in range(n_traj):
        pool.add(
            Trajectory(
                scheme=f"s{i % 3}", env_id=f"e{i}", multi_flow=False,
                states=rng.normal(size=(length, STATE_DIM)),
                actions=np.abs(rng.normal(size=length)) + 0.5,
                rewards=rng.normal(size=length),
            )
        )
    return pool


def _params(trainer):
    out = {}
    for tag, net in (
        ("policy", trainer.policy),
        ("critic", trainer.critic),
        ("target_policy", trainer.target_policy),
        ("target_critic", trainer.target_critic),
    ):
        for name, p in sorted(net.named_parameters()):
            out[f"{tag}/{name}"] = np.asarray(p.data).tobytes()
    return out


def _run(pool, workers, steps=5, seed=0, chaos=None, guard=None):
    trainer = DataParallelTrainer(
        pool, net_config=TINY, config=CFG, seed=seed,
        grad_workers=workers, chaos=chaos,
    )
    try:
        trainer.train(steps, guard=guard)
        return (
            {k: list(v) for k, v in trainer.history.items()},
            _params(trainer),
            trainer,
        )
    finally:
        trainer.close()


# ---------------------------------------------------------------------------
# bit-identity across worker counts
# ---------------------------------------------------------------------------


class TestBitIdentity:
    def test_seed_stream_is_per_step_grain(self):
        # the documented derivation: one SplitMix64 stream per (step, grain)
        for step in (0, 3):
            for g in range(DEFAULT_GRAINS):
                assert grain_seed(7, step, g, DEFAULT_GRAINS) == derive_seed(
                    7, step * DEFAULT_GRAINS + g
                )
        # distinct across both axes
        seeds = {
            grain_seed(0, s, g, DEFAULT_GRAINS)
            for s in range(4) for g in range(DEFAULT_GRAINS)
        }
        assert len(seeds) == 16

    def test_in_memory_identical_for_1_2_4_workers(self):
        pool = synthetic_pool()
        h1, p1, _ = _run(pool, 1)
        h2, p2, _ = _run(pool, 2)
        h4, p4, _ = _run(pool, 4)
        assert h1 == h2 == h4
        assert p1 == p2 == p4

    def test_sharded_pool_identical_to_in_memory(self, tmp_path):
        from repro.datastore.convert import pack_pool
        from repro.datastore.reader import ShardedPool

        pool = synthetic_pool()
        pack_pool(pool, tmp_path / "store")
        sharded = ShardedPool.open(tmp_path / "store")
        try:
            h_mem, p_mem, _ = _run(pool, 4)
            h_st, p_st, _ = _run(sharded, 2)
            assert h_mem == h_st
            assert p_mem == p_st
        finally:
            sharded.drop_cache()

    def test_different_stream_than_single_process(self):
        # grad_workers >= 1 is a deliberately different (per-grain) seed
        # trajectory than the single-process interleaved stream
        pool = synthetic_pool()
        single = FastCRRTrainer(pool, net_config=TINY, config=CFG, seed=0)
        single.train(3)
        h1, _, _ = _run(pool, 1, steps=3)
        assert h1["critic_loss"] != list(single.history["critic_loss"])


# ---------------------------------------------------------------------------
# crash recovery + chaos + guard
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_workercrash_recovery_bit_identical(self):
        pool = synthetic_pool()
        h_clean, p_clean, _ = _run(pool, 2)
        plan = FaultPlan(
            seed=0, faults=[FaultSpec("train.workercrash", target=2, param=1.0)]
        )
        h, p, trainer = _run(pool, 2, chaos=FaultInjector(plan))
        assert trainer.respawns == 1
        assert h == h_clean
        assert p == p_clean

    def test_nan_fault_masked_by_guard(self):
        pool = synthetic_pool()
        h_clean, p_clean, _ = _run(pool, 4, steps=4)
        plan = FaultPlan(seed=0, faults=[FaultSpec("train.nan", target=1)])
        guard = DivergenceGuard(GuardConfig(max_rollbacks=4))
        with np.errstate(invalid="ignore"):
            h, p, _ = _run(
                pool, 4, steps=4, chaos=FaultInjector(plan), guard=guard
            )
        assert h == h_clean
        assert p == p_clean
        assert [e.reason for e in guard.events].count("step-failure") == 1


# ---------------------------------------------------------------------------
# checkpoint layout contract
# ---------------------------------------------------------------------------


class TestCheckpointLayout:
    def test_resume_bit_identical(self, tmp_path):
        pool = synthetic_pool()
        _, p_ref, _ = _run(pool, 2, steps=6)

        ckpt = tmp_path / "ckpt.npz"
        a = DataParallelTrainer(
            pool, net_config=TINY, config=CFG, seed=0, grad_workers=2
        )
        try:
            a.train(3)
            a.save_checkpoint(ckpt)
        finally:
            a.close()
        b = DataParallelTrainer(
            pool, net_config=TINY, config=CFG, seed=0, grad_workers=2
        )
        try:
            b.load_checkpoint(ckpt)
            b.train(3)
            assert _params(b) == p_ref
        finally:
            b.close()

    def test_layout_mismatch_refused(self, tmp_path):
        pool = synthetic_pool()
        ckpt = tmp_path / "ckpt.npz"
        a = DataParallelTrainer(
            pool, net_config=TINY, config=CFG, seed=0, grad_workers=2
        )
        try:
            a.train(1)
            a.save_checkpoint(ckpt)
        finally:
            a.close()
        # parallel trainer with a different worker count
        b = DataParallelTrainer(
            pool, net_config=TINY, config=CFG, seed=0, grad_workers=4
        )
        try:
            with pytest.raises(ValueError, match="grad-workers"):
                b.load_checkpoint(ckpt)
        finally:
            b.close()
        # and the single-process engine (layout 0)
        c = FastCRRTrainer(pool, net_config=TINY, config=CFG, seed=0)
        with pytest.raises(ValueError, match="grad-workers"):
            c.load_checkpoint(ckpt)

    def test_pre_layout_checkpoints_still_load(self, tmp_path):
        # checkpoints written before the layout fields existed load as
        # single-process (missing keys default to layout 0)
        pool = synthetic_pool()
        ckpt = tmp_path / "old.npz"
        a = FastCRRTrainer(pool, net_config=TINY, config=CFG, seed=0)
        a.train(1)
        a.save_checkpoint(ckpt)
        with np.load(ckpt, allow_pickle=False) as data:
            payload = {
                k: data[k] for k in data.files
                if not k.startswith("meta/grad_")
            }
        np.savez_compressed(ckpt, **payload)
        ckpt.with_name(ckpt.name + ".crc32").unlink()  # rewrote the archive
        b = FastCRRTrainer(pool, net_config=TINY, config=CFG, seed=0)
        b.load_checkpoint(ckpt)
        assert b.steps_done == 1


# ---------------------------------------------------------------------------
# construction validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_worker_count_must_divide_grains(self):
        with pytest.raises(ValueError, match="divide grains"):
            DataParallelTrainer(
                synthetic_pool(), net_config=TINY, config=CFG, grad_workers=3
            )

    def test_batch_size_must_divide_into_grains(self):
        cfg = CRRConfig(batch_size=6, seq_len=4)
        with pytest.raises(ValueError, match="divisible"):
            DataParallelTrainer(
                synthetic_pool(), net_config=TINY, config=cfg, grad_workers=2
            )

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            DataParallelTrainer(
                synthetic_pool(), net_config=TINY, config=CFG, grad_workers=0
            )

    def test_filtered_store_view_rejected(self, tmp_path):
        from repro.datastore.convert import pack_pool
        from repro.datastore.reader import ShardedPool

        pack_pool(synthetic_pool(), tmp_path / "store")
        sharded = ShardedPool.open(tmp_path / "store")
        view = sharded.filter_env(lambda env: env == "e0")
        try:
            with pytest.raises(ValueError, match="full store"):
                DataParallelTrainer(
                    view, net_config=TINY, config=CFG, grad_workers=2
                )
        finally:
            sharded.drop_cache()

    def test_grain_view_validates_index(self):
        pool = synthetic_pool()
        with pytest.raises(ValueError):
            pool.grain_view(4, 4)
        assert len(pool.grain_view(1, 3).trajectories) == 2

    def test_train_sage_on_pool_guards(self):
        pool = synthetic_pool()
        with pytest.raises(ValueError, match="fast engine"):
            train_sage_on_pool(
                pool, n_steps=2, n_checkpoints=1, engine="legacy",
                grad_workers=2,
            )
        with pytest.raises(ValueError, match="mutually exclusive"):
            train_sage_on_pool(
                pool, n_steps=2, n_checkpoints=1, prefetch=2, grad_workers=2,
            )

    def test_train_sage_on_pool_routes_to_parallel(self):
        run = train_sage_on_pool(
            synthetic_pool(), n_steps=2, n_checkpoints=1,
            net_config=TINY, crr_config=CFG, grad_workers=2,
        )
        assert isinstance(run.trainer, DataParallelTrainer)
        assert run.trainer.steps_done == 2


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------


class TestCLI:
    def test_train_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["train", "--pool", "p.npz"])
        assert args.grad_workers == 0
        args = build_parser().parse_args(
            ["train", "--pool", "p.npz", "--grad-workers", "2"]
        )
        assert args.grad_workers == 2

    def test_pipeline_run_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["pipeline", "run", "--workdir", "r/", "--grad-workers", "2"]
        )
        assert args.grad_workers == 2

    def test_train_bench_scaling_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["train-bench"])
        assert args.scaling_workers == "1,2,4"
        assert args.scaling_steps == 12
        args = build_parser().parse_args(
            ["train-bench", "--scaling-workers", ""]
        )
        assert args.scaling_workers == ""


# ---------------------------------------------------------------------------
# pipeline: real kill -9 mid-train, data-parallel resume
# ---------------------------------------------------------------------------


PIPE_KW = dict(
    scale="mini", schemes=("cubic",), workers=1, n_steps=4,
    eval_duration=1.0, grad_workers=2,
)


class TestPipelineSigkill:
    def test_real_sigkill_mid_train_resumes_bit_identical(self, tmp_path):
        from repro.pipeline import PipelineConfig, build_supervisor
        from repro.pipeline.state import PipelineState

        def _arrays(path):
            with np.load(path, allow_pickle=False) as data:
                return {k: data[k].tobytes() for k in data.files}

        clean_cfg = PipelineConfig(workdir=str(tmp_path / "clean"), **PIPE_KW)
        build_supervisor(clean_cfg).run(config=clean_cfg.to_json())

        workdir = tmp_path / "killed"
        driver = f"""
import os, signal, sys
sys.path.insert(0, {str(REPO / "src")!r})
from repro.pipeline import PipelineConfig, build_supervisor
from repro.train.parallel import DataParallelTrainer
cfg = PipelineConfig(workdir={str(workdir)!r}, **{PIPE_KW!r})
real_train = DataParallelTrainer.train
def dying_train(self, n_steps, **kw):
    real_train(self, 2, **kw)  # checkpoint at steps 1, 2 commits first
    self.close()  # leave no gradient workers to orphan
    os.kill(os.getpid(), signal.SIGKILL)
DataParallelTrainer.train = dying_train
build_supervisor(cfg).run(config=cfg.to_json())
"""
        proc = subprocess.run(
            [sys.executable, "-c", driver], capture_output=True, timeout=300
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        journal = PipelineState.load(workdir / "pipeline_state.json")
        assert not journal.complete

        cfg = PipelineConfig(workdir=str(workdir), **PIPE_KW)
        state = build_supervisor(cfg).run(resume=True, config=cfg.to_json())
        assert state.complete
        a = _arrays(clean_cfg.checkpoint_path)
        b = _arrays(cfg.checkpoint_path)
        assert a.keys() == b.keys()
        for key in a:
            assert a[key] == b[key], key
