"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_collect_defaults(self):
        args = build_parser().parse_args(["collect"])
        assert args.scale == "mini"
        assert args.out == "pool.npz"

    def test_train_requires_pool(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_deploy_requires_agent(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy"])

    def test_collect_store_defaults(self):
        args = build_parser().parse_args(["collect", "--store", "shards/"])
        assert args.store == "shards/"
        assert args.shard_mb == 32

    def test_pool_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pool"])

    def test_pool_pack_args(self):
        args = build_parser().parse_args(["pool", "pack", "p.npz", "st/"])
        assert args.source == "p.npz" and args.out == "st/"

    def test_pool_verify_flags(self):
        args = build_parser().parse_args(
            ["pool", "verify", "st/", "--strict", "--no-quarantine"]
        )
        assert args.strict and args.no_quarantine

    def test_pipeline_run_args(self):
        args = build_parser().parse_args(
            ["pipeline", "run", "--workdir", "run/", "--fault-plan", "p.json"]
        )
        assert args.workdir == "run/" and not args.resume
        assert args.fault_plan == "p.json"
        assert args.task_timeout is None

    def test_pipeline_resume_and_status(self):
        args = build_parser().parse_args(["pipeline", "resume", "--workdir", "r/"])
        assert args.resume and args.workdir == "r/"
        args = build_parser().parse_args(["pipeline", "status", "--workdir", "r/"])
        assert args.workdir == "r/"

    def test_chaos_plan_args(self):
        args = build_parser().parse_args(
            ["chaos", "plan", "--seed", "7", "--faults", "train.nan",
             "--universes", "train=12", "--out", "plan.json"]
        )
        assert args.seed == 7 and args.faults == "train.nan"
        assert args.universes == "train=12" and args.out == "plan.json"

    def test_collect_task_timeout(self):
        args = build_parser().parse_args(["collect", "--task-timeout", "30"])
        assert args.task_timeout == 30.0

    def test_serve_bench_tiers_flags(self):
        args = build_parser().parse_args(
            ["serve-bench", "--tiers", "--coverage", "0.9", "--refresh",
             "16", "--no-league"]
        )
        assert args.tiers and args.coverage == 0.9
        assert args.refresh == 16 and args.no_league
        args = build_parser().parse_args(["serve-bench"])
        assert not args.tiers  # tiered section is opt-in

    def test_distill_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["distill"])

    def test_distill_fit_args(self):
        args = build_parser().parse_args(
            ["distill", "fit", "--agent", "sage.npz", "--pool", "pool.npz",
             "--out", "tree.npz", "--coverage", "0.9", "--refresh", "16",
             "--max-depth", "8", "--rules", "5"]
        )
        assert args.agent == "sage.npz" and args.pool == "pool.npz"
        assert args.out == "tree.npz" and args.coverage == 0.9
        assert args.refresh == 16 and args.max_depth == 8 and args.rules == 5

    def test_distill_fit_requires_agent_and_pool(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["distill", "fit", "--agent", "a.npz"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["distill", "fit", "--pool", "p.npz"])

    def test_distill_eval_args(self):
        args = build_parser().parse_args(
            ["distill", "eval", "--model", "tree.npz", "--agent", "sage.npz",
             "--pool", "pool.npz", "--max-samples", "500"]
        )
        assert args.model == "tree.npz" and args.max_samples == 500


class TestEndToEnd:
    def test_collect_train_deploy(self, tmp_path, capsys):
        pool_path = str(tmp_path / "pool.npz")
        agent_path = str(tmp_path / "sage.npz")
        assert main([
            "collect", "--scale", "mini", "--schemes", "cubic,vegas",
            "--out", pool_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "PolicyPool" in out

        assert main([
            "train", "--pool", pool_path, "--steps", "4",
            "--checkpoints", "2", "--out", agent_path,
            "--enc-dim", "16", "--gru-dim", "16",
            "--components", "2", "--atoms", "7",
        ]) == 0

        assert main([
            "deploy", "--agent", agent_path, "--bw", "12", "--duration", "3",
            "--enc-dim", "16", "--gru-dim", "16",
            "--components", "2", "--atoms", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput=" in out


class TestTopoCli:
    def test_topo_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topo"])

    def test_topo_describe_args(self):
        args = build_parser().parse_args(
            ["topo", "describe", "parking_lot", "--segments", "4",
             "--bw", "24", "--rtt", "0.04"]
        )
        assert args.topo_class == "parking_lot"
        assert args.segments == 4 and args.bw == 24.0

    def test_topo_matrix_args(self):
        args = build_parser().parse_args(
            ["topo", "matrix", "--schemes", "cubic,vegas",
             "--classes", "dumbbell,incast", "--duration", "5",
             "--out", "m.json"]
        )
        assert args.schemes == "cubic,vegas"
        assert args.classes == "dumbbell,incast"
        assert args.duration == 5.0 and args.out == "m.json"

    def test_collect_topology_flag(self):
        args = build_parser().parse_args(["collect", "--topology", "incast"])
        assert args.topology == "incast"

    def test_serve_bench_workload_flags(self):
        args = build_parser().parse_args(
            ["serve-bench", "--workload", "--topology", "parking_lot",
             "--arrival-rate", "150", "--workload-duration", "3",
             "--mean-size-kb", "25"]
        )
        assert args.workload and args.topology == "parking_lot"
        assert args.arrival_rate == 150.0
        assert args.workload_duration == 3.0 and args.mean_size_kb == 25.0

    def test_describe_runs(self, capsys):
        assert main(["topo", "describe", "incast", "--senders", "4"]) == 0
        out = capsys.readouterr().out
        assert "egress" in out and "main path" in out

    def test_matrix_runs_and_saves(self, tmp_path, capsys):
        out_path = str(tmp_path / "matrix.json")
        assert main([
            "topo", "matrix", "--schemes", "cubic,vegas",
            "--classes", "dumbbell,proxy_split", "--duration", "2",
            "--workers", "1", "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "dumbbell" in out and "proxy_split" in out
        import json
        saved = json.loads((tmp_path / "matrix.json").read_text())
        assert saved["schema_version"] == 1
        assert set(saved["rates"]) == {"dumbbell", "proxy_split"}
        for per_class in saved["rates"].values():
            assert set(per_class) == {"cubic", "vegas"}


class TestAqmCli:
    def test_aqm_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["aqm"])

    def test_aqm_matrix_args(self):
        args = build_parser().parse_args(
            ["aqm", "matrix", "--schemes", "cubic,dctcp",
             "--aqms", "taildrop,fq_codel", "--duration", "4",
             "--ecn-model", "m.npz", "--out", "aqm.json"]
        )
        assert args.schemes == "cubic,dctcp"
        assert args.aqms == "taildrop,fq_codel"
        assert args.ecn_model == "m.npz" and args.out == "aqm.json"

    def test_aqm_trace_args(self):
        args = build_parser().parse_args(
            ["aqm", "trace", "--aqm", "pie", "--shards", "3",
             "--out-dir", "traces/"]
        )
        assert args.aqm == "pie" and args.shards == 3

    def test_aqm_learn_args(self):
        args = build_parser().parse_args(
            ["aqm", "learn", "a.npz", "b.npz", "--epochs", "50",
             "--out", "model.npz"]
        )
        assert args.traces == ["a.npz", "b.npz"] and args.epochs == 50

    def test_collect_aqm_flag(self):
        args = build_parser().parse_args(["collect", "--aqm", "fq_codel"])
        assert args.aqm == "fq_codel"

    def test_topo_describe_aqm_flags(self):
        args = build_parser().parse_args(
            ["topo", "describe", "incast", "--aqm", "fq_codel",
             "--ecn-kb", "30"]
        )
        assert args.aqm == "fq_codel" and args.ecn_kb == 30.0

    def test_trace_learn_matrix_loop(self, tmp_path, capsys):
        """The aqm-smoke CI loop end to end at micro scale."""
        traces = tmp_path / "traces"
        model = str(tmp_path / "ecn.npz")
        assert main([
            "aqm", "trace", "--aqm", "codel", "--duration", "2",
            "--shards", "1", "--out-dir", str(traces),
        ]) == 0
        shards = sorted(str(p) for p in traces.glob("*.npz"))
        assert shards
        assert main([
            "aqm", "learn", *shards, "--epochs", "30", "--out", model,
        ]) == 0
        out_path = tmp_path / "aqm_matrix.json"
        assert main([
            "aqm", "matrix", "--schemes", "cubic", "--aqms",
            "taildrop,learned_ecn", "--ecn-model", model,
            "--duration", "2", "--out", str(out_path),
        ]) == 0
        capsys.readouterr()
        import json
        saved = json.loads(out_path.read_text())
        assert set(saved["rates"]) == {"taildrop", "learned_ecn"}
