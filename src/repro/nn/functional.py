"""Shared raw-numpy numerics used outside the autograd graph.

Several no-grad paths — the GMM head's sampler, the CRR target projection,
the :class:`~repro.core.networks.FastPolicy` inference mirror, and the fused
training fast path — all need the same handful of stable elementwise
kernels. They live here once instead of as per-module ``_softmax_np``
copies.

Every function accepts an optional ``out=`` buffer so hot loops can reuse
preallocated arrays instead of re-allocating per call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["softmax_np", "sigmoid_np", "leaky_relu_np"]


def softmax_np(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Numerically-stable softmax over the last axis (no gradients)."""
    if out is None:
        out = np.empty_like(x, dtype=np.float64)
    np.subtract(x, x.max(axis=-1, keepdims=True), out=out)
    np.exp(out, out=out)
    out /= out.sum(axis=-1, keepdims=True)
    return out


def sigmoid_np(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Logistic sigmoid (no gradients)."""
    if out is None:
        out = np.empty_like(x, dtype=np.float64)
    np.multiply(x, -1.0, out=out)
    np.exp(out, out=out)
    out += 1.0
    np.reciprocal(out, out=out)
    return out


def leaky_relu_np(
    x: np.ndarray, alpha: float = 0.01, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """LeakyReLU (no gradients); ``max(x, alpha*x)`` for ``0 < alpha < 1``.

    ``out`` may alias ``x`` for an in-place update."""
    if out is None:
        out = np.empty_like(x, dtype=np.float64)
    if out is x:
        np.multiply(out, alpha, where=out < 0, out=out)
        return out
    np.multiply(x, alpha, out=out)
    np.maximum(x, out, out=out)
    return out
