"""Section 8 extension — compressing the deployed model.

Prunes and quantizes the trained policy and measures (a) action fidelity
against the uncompressed model and (b) per-step inference cost, the two
quantities the paper's overhead discussion trades off.
"""

import copy
import time

import numpy as np

from conftest import once

from repro.collector.gr_unit import STATE_DIM
from repro.core.compress import nonzero_count, prune_magnitude, quantize_per_tensor
from repro.core.networks import FastPolicy


def _fidelity(fast_a, fast_b, n=200, seed=0):
    rng = np.random.default_rng(seed)
    ha, hb = fast_a.initial_state(), fast_b.initial_state()
    diffs = []
    for _ in range(n):
        s = rng.standard_normal(STATE_DIM) * 0.3
        ra, ha = fast_a.step(s, ha)
        rb, hb = fast_b.step(s, hb)
        diffs.append(abs(np.log(ra) - np.log(rb)))
    return float(np.mean(diffs))


def _speed(fast, n=300, seed=1):
    rng = np.random.default_rng(seed)
    h = fast.initial_state()
    t0 = time.perf_counter()
    for _ in range(n):
        _, h = fast.step(rng.standard_normal(STATE_DIM), h)
    return (time.perf_counter() - t0) / n


def test_compression_tradeoff(benchmark, sage_agent):
    base_policy = sage_agent.policy

    def run():
        rows = []
        fast0 = FastPolicy(base_policy)
        rows.append(("original", nonzero_count(base_policy), 0.0, _speed(fast0)))
        for sparsity in (0.3, 0.6, 0.9):
            p = copy.deepcopy(base_policy)
            prune_magnitude(p, sparsity)
            fast = FastPolicy(p)
            rows.append(
                (f"pruned-{int(sparsity * 100)}%", nonzero_count(p),
                 _fidelity(fast0, fast), _speed(fast))
            )
        for bits in (8, 4):
            p = copy.deepcopy(base_policy)
            quantize_per_tensor(p, n_bits=bits)
            fast = FastPolicy(p)
            rows.append(
                (f"int{bits}", nonzero_count(p), _fidelity(fast0, fast),
                 _speed(fast))
            )
        return rows

    rows = once(benchmark, run)
    print("\n=== Compression: footprint vs fidelity vs speed ===")
    print(f"{'variant':>12} {'nonzeros':>9} {'|dlog action|':>14} {'us/step':>8}")
    for name, nz, fid, spd in rows:
        print(f"{name:>12} {nz:>9} {fid:14.4f} {spd * 1e6:8.1f}")

    base_nz = rows[0][1]
    by_name = {r[0]: r for r in rows}
    assert by_name["pruned-90%"][1] < 0.3 * base_nz  # real footprint cut
    assert by_name["int8"][2] < 0.2  # int8 barely moves the actions
    assert by_name["pruned-30%"][2] < by_name["pruned-90%"][2]  # monotone damage
