"""Collect queue-telemetry traces for the ECN-predictor fitter.

Each shard instruments the bottleneck of a dumbbell topology with a
:class:`~repro.netsim.telemetry.QueueTelemetryRecorder` and drives an
open-loop workload through it under a *heuristic* queue (CoDel by default —
the teacher whose delay judgement the predictor learns to anticipate).
Shards differ only in their seed, so a multi-shard collection spans many
arrival patterns while staying exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.netsim.aqm import make_aqm
from repro.netsim.telemetry import QueueTelemetryRecorder
from repro.netsim.topo import dumbbell_topology
from repro.netsim.traces import FlatRate
from repro.workload.generator import WorkloadConfig
from repro.workload.runner import run_workload

__all__ = ["TraceSpec", "collect_queue_traces"]


@dataclass(frozen=True)
class TraceSpec:
    """One telemetry-collection scenario (one shard per seed)."""

    aqm: str = "codel"
    bw_mbps: float = 24.0
    min_rtt: float = 0.04
    buffer_bytes: int = 90_000
    duration: float = 6.0
    arrival_rate: float = 40.0
    mean_size_bytes: float = 60_000.0
    scheme: str = "cubic"
    max_rows: int = 200_000

    def __post_init__(self) -> None:
        if self.bw_mbps <= 0 or self.min_rtt <= 0 or self.buffer_bytes <= 0:
            raise ValueError(f"invalid trace spec: {self}")


def collect_queue_traces(
    spec: Optional[TraceSpec] = None,
    shards: int = 2,
    seed: int = 1,
    out_dir=None,
    progress=None,
) -> List[Path]:
    """Run ``shards`` instrumented workloads; return the written shard paths.

    Shard ``k`` uses workload seed ``seed + k``. With ``out_dir`` unset the
    shards land in the current directory as ``queue_trace_<k>.npz``.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    spec = spec if spec is not None else TraceSpec()
    out_dir = Path(out_dir) if out_dir is not None else Path(".")
    paths: List[Path] = []
    for k in range(shards):
        topo = dumbbell_topology(
            FlatRate(spec.bw_mbps * 1e6),
            make_aqm(spec.aqm, spec.buffer_bytes),
            seed=seed + k,
        )
        recorder = QueueTelemetryRecorder(max_rows=spec.max_rows)
        topo.links[0].inner.telemetry = recorder
        result = run_workload(
            topo,
            WorkloadConfig(
                arrival_rate=spec.arrival_rate,
                duration=spec.duration,
                mean_size_bytes=spec.mean_size_bytes,
                seed=seed + k,
            ),
            scheme=spec.scheme,
            min_rtt=spec.min_rtt,
        )
        path = recorder.save(out_dir / f"queue_trace_{k}.npz")
        paths.append(path)
        if progress is not None:
            progress(
                f"shard {k + 1}/{shards}: {len(recorder)} rows "
                f"({result.n_requests} requests, "
                f"{recorder.dropped_rows} rows past cap)"
            )
    return paths
