"""ShardedPool: the PolicyPool API served out-of-core from mmap'd shards.

Where :class:`~repro.collector.pool.PolicyPool` holds every trajectory (and
a second concatenated copy) in RAM, a :class:`ShardedPool` keeps only the
manifest's integer index arrays resident and reads trajectory rows through
``np.load(mmap_mode="r")`` — the OS pages in exactly the windows a batch
touches. A bounded LRU of open shard handles keeps the hot shards' pages
warm without ever holding more than ``max_open_shards`` files open.

Sampling is **bit-identical** to the in-memory pool: both draw window
positions through :func:`repro.collector.pool.draw_window_starts` (one
shared RNG stream over the same trajectory ordering), and the gathered rows
are byte-for-byte what the writer stored. ``train_sage_on_pool`` and
``SequenceSampler`` therefore accept either pool interchangeably.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.collector.pool import Trajectory, draw_window_starts
from repro.datastore.manifest import Manifest, TrajectoryRecord

__all__ = ["ShardedPool", "ShardCache"]


class ShardCache:
    """Bounded LRU of open shard memmaps, shared across pool views."""

    def __init__(self, root: Path, manifest: Manifest, max_open: int = 8) -> None:
        if max_open < 1:
            raise ValueError("max_open must be >= 1")
        self.root = Path(root)
        self.manifest = manifest
        self.max_open = int(max_open)
        self._open: "OrderedDict[int, Dict[str, np.ndarray]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, shard_idx: int) -> Dict[str, np.ndarray]:
        """The ``{states, actions, rewards}`` memmaps of one shard."""
        entry = self._open.get(shard_idx)
        if entry is not None:
            self.hits += 1
            self._open.move_to_end(shard_idx)
            return entry
        self.misses += 1
        shard = self.manifest.shards[shard_idx]
        entry = {}
        for part, rec in shard.files.items():
            path = self.root / rec.file
            try:
                entry[part] = np.load(path, mmap_mode="r", allow_pickle=False)
            except (OSError, ValueError) as exc:
                raise ValueError(
                    f"cannot map shard file {path}: {exc} "
                    "(run `repro pool verify` to quarantine corrupt shards)"
                ) from exc
        self._open[shard_idx] = entry
        while len(self._open) > self.max_open:
            self._open.popitem(last=False)
        return entry

    def clear(self) -> None:
        """Drop every open handle (the next access reopens lazily)."""
        self._open.clear()


class ShardedPool:
    """Out-of-core drop-in for :class:`~repro.collector.pool.PolicyPool`.

    Build one with :meth:`open`; ``filter_schemes`` / ``filter_env`` return
    lightweight views that share the manifest and the shard cache.
    """

    def __init__(
        self,
        root,
        manifest: Manifest,
        records: Optional[List[TrajectoryRecord]] = None,
        cache: Optional[ShardCache] = None,
        max_open_shards: int = 8,
    ) -> None:
        self.root = Path(root)
        self.manifest = manifest
        self.records: List[TrajectoryRecord] = (
            list(manifest.trajectories) if records is None else list(records)
        )
        self.cache = (
            cache
            if cache is not None
            else ShardCache(self.root, manifest, max_open=max_open_shards)
        )
        self._lengths = np.array(
            [t.length for t in self.records], dtype=np.int64
        )
        self._shard_of = np.array(
            [t.shard for t in self.records], dtype=np.int64
        )
        self._offsets = np.array(
            [t.offset for t in self.records], dtype=np.int64
        )

    @classmethod
    def open(cls, root, max_open_shards: int = 8) -> "ShardedPool":
        """Open the store at ``root`` (a directory holding manifest.json)."""
        root = Path(root)
        return cls(
            root, Manifest.load(root), max_open_shards=max_open_shards
        )

    # ------------------------------------------------------------------
    # PolicyPool API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    @property
    def n_transitions(self) -> int:
        return int(self._lengths.sum()) if len(self.records) else 0

    def schemes(self) -> List[str]:
        return sorted({t.scheme for t in self.records})

    def env_ids(self) -> List[str]:
        return sorted({t.env_id for t in self.records})

    def filter_schemes(self, keep: Iterable[str]) -> "ShardedPool":
        """A sub-pool view containing only the given schemes."""
        keep_set = set(keep)
        return ShardedPool(
            self.root,
            self.manifest,
            records=[t for t in self.records if t.scheme in keep_set],
            cache=self.cache,
        )

    def filter_env(self, predicate) -> "ShardedPool":
        """A sub-pool view of trajectories whose env_id satisfies ``predicate``."""
        return ShardedPool(
            self.root,
            self.manifest,
            records=[t for t in self.records if predicate(t.env_id)],
            cache=self.cache,
        )

    def grain_view(self, index: int, count: int) -> "ShardedPool":
        """Round-robin slice ``index`` of ``count`` (see
        :meth:`~repro.collector.pool.PolicyPool.grain_view`).

        Unlike the filter views, a grain view gets its own **private**
        shard cache: a data-parallel worker process sampling only its
        grains maps only the shards those grains' trajectories live in,
        so each worker's resident set is its slice of the store, not the
        whole store.
        """
        if not 0 <= index < count:
            raise ValueError(f"grain index {index} outside [0, {count})")
        return ShardedPool(
            self.root,
            self.manifest,
            records=self.records[index::count],
            cache=ShardCache(self.root, self.manifest, max_open=self.cache.max_open),
        )

    def sample_sequences(
        self,
        batch_size: int,
        seq_len: int,
        rng: np.random.Generator,
        normalize: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Sample ``batch_size`` windows of ``seq_len + 1`` consecutive steps.

        Same contract — and, for the same seed and trajectory ordering, the
        same bits — as :meth:`PolicyPool.sample_sequences`, but each window
        is gathered from its shard's memmap: the resident cost is the
        touched pages, not the pool.
        """
        idx, local_starts = draw_window_starts(
            self._lengths, seq_len, batch_size, rng
        )
        span = seq_len + 1
        dtypes = self.manifest.dtypes
        s = np.empty((batch_size, span, self.manifest.state_dim), dtypes["states"])
        a = np.empty((batch_size, span), dtypes["actions"])
        r = np.empty((batch_size, span), dtypes["rewards"])

        shard_ids = self._shard_of[idx]
        shard_starts = self._offsets[idx] + local_starts
        arange = np.arange(span)
        for shard in np.unique(shard_ids):
            sel = np.nonzero(shard_ids == shard)[0]
            rows = shard_starts[sel][:, None] + arange
            arrs = self.cache.get(int(shard))
            s[sel] = arrs["states"][rows]
            a[sel] = arrs["actions"][rows]
            r[sel] = arrs["rewards"][rows]
        if normalize is not None:
            s = normalize(s)
        return {
            "states": s[:, :-1],
            "actions": a[:, :-1],
            "rewards": r[:, :-1],
            "next_states": s[:, 1:],
        }

    def drop_cache(self) -> None:
        """Close open shard handles (parity with ``PolicyPool.drop_cache``)."""
        self.cache.clear()

    # ------------------------------------------------------------------
    # Trajectory materialization (for merge/convert/inspection)
    # ------------------------------------------------------------------
    def trajectory(self, i: int) -> Trajectory:
        """Materialize trajectory ``i`` as an in-memory :class:`Trajectory`."""
        rec = self.records[i]
        arrs = self.cache.get(rec.shard)
        rows = slice(rec.offset, rec.offset + rec.length)
        return Trajectory(
            scheme=rec.scheme,
            env_id=rec.env_id,
            multi_flow=rec.multi_flow,
            states=np.array(arrs["states"][rows]),
            actions=np.array(arrs["actions"][rows]),
            rewards=np.array(arrs["rewards"][rows]),
        )

    def iter_trajectories(self) -> Iterator[Trajectory]:
        """Yield every trajectory, materialized one at a time."""
        for i in range(len(self.records)):
            yield self.trajectory(i)

    # ------------------------------------------------------------------
    def scheme_transitions(self) -> Dict[str, int]:
        """Per-scheme transition counts (same tallies as ``summary()``)."""
        by_scheme: Dict[str, int] = {}
        for t in self.records:
            by_scheme[t.scheme] = by_scheme.get(t.scheme, 0) + t.length
        return by_scheme

    def summary(self) -> str:
        """Human-readable inventory; per-scheme lines match ``PolicyPool``."""
        lines = [
            f"ShardedPool: {len(self)} trajectories, "
            f"{self.n_transitions} transitions"
        ]
        by_scheme = self.scheme_transitions()
        for scheme in sorted(by_scheme):
            lines.append(f"  {scheme:12s} {by_scheme[scheme]:8d} transitions")
        return "\n".join(lines)
