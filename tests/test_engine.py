"""Unit tests for the discrete-event engine."""

import pytest

from repro.netsim.engine import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.call_at(2.0, lambda: fired.append("b"))
    loop.call_at(1.0, lambda: fired.append("a"))
    loop.call_at(3.0, lambda: fired.append("c"))
    loop.run_until(10.0)
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    loop = EventLoop()
    fired = []
    for i in range(5):
        loop.call_at(1.0, lambda i=i: fired.append(i))
    loop.run_until(1.0)
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_advances_clock_even_with_no_events():
    loop = EventLoop()
    loop.run_until(5.0)
    assert loop.now == 5.0


def test_run_until_does_not_fire_future_events():
    loop = EventLoop()
    fired = []
    loop.call_at(2.0, lambda: fired.append("x"))
    loop.run_until(1.0)
    assert fired == []
    loop.run_until(2.0)
    assert fired == ["x"]


def test_call_later_is_relative_to_now():
    loop = EventLoop()
    times = []
    loop.call_at(1.0, lambda: loop.call_later(0.5, lambda: times.append(loop.now)))
    loop.run_until(3.0)
    assert times == [pytest.approx(1.5)]


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    handle = loop.call_at(1.0, lambda: fired.append("x"))
    handle.cancel()
    loop.run_until(2.0)
    assert fired == []


def test_cancel_one_of_several_at_same_time():
    loop = EventLoop()
    fired = []
    h1 = loop.call_at(1.0, lambda: fired.append(1))
    loop.call_at(1.0, lambda: fired.append(2))
    h1.cancel()
    loop.run_until(1.0)
    assert fired == [2]


def test_scheduling_in_the_past_raises():
    loop = EventLoop()
    loop.run_until(5.0)
    with pytest.raises(ValueError):
        loop.call_at(4.0, lambda: None)


def test_negative_delay_raises():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.call_later(-1.0, lambda: None)


def test_events_scheduled_during_run_fire_in_same_run():
    loop = EventLoop()
    fired = []

    def chain():
        fired.append(loop.now)
        if loop.now < 0.5:
            loop.call_later(0.1, chain)

    loop.call_at(0.1, chain)
    loop.run_until(1.0)
    assert len(fired) >= 5


def test_pending_counts_only_live_events():
    loop = EventLoop()
    h1 = loop.call_at(1.0, lambda: None)
    loop.call_at(2.0, lambda: None)
    h1.cancel()
    assert loop.pending() == 1


def test_peek_time_skips_cancelled():
    loop = EventLoop()
    h1 = loop.call_at(1.0, lambda: None)
    loop.call_at(2.0, lambda: None)
    h1.cancel()
    assert loop.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventLoop().peek_time() is None


def test_run_all_drains_everything():
    loop = EventLoop()
    fired = []
    loop.call_at(1.0, lambda: loop.call_later(1.0, lambda: fired.append("deep")))
    loop.run_all()
    assert fired == ["deep"]


def test_now_monotone_across_runs():
    loop = EventLoop()
    loop.call_at(1.0, lambda: None)
    loop.run_until(2.0)
    t1 = loop.now
    loop.run_until(3.0)
    assert loop.now >= t1
