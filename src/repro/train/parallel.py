"""DataParallelTrainer: deterministic multi-process gradient workers.

Scales the fused CRR engine across N processes while keeping the result a
pure function of the seed — **bit-identical for any worker count**. The
trick is that the unit of parallelism is not the worker but the **grain**:

- Every step's batch is decomposed into ``grains`` fixed slices of
  ``batch_size / grains`` sequence windows each. Grain ``g`` of step ``s``
  samples its windows from the round-robin pool view
  ``pool.grain_view(g, grains)`` using a private generator seeded
  ``derive_seed(seed, s * grains + g)`` — the same SplitMix64 stream the
  parallel collector uses. Batches, target-action draws, and the
  ``m_samples`` filter draws all come from that per-(step, grain)
  generator, so the RNG streams never depend on process layout.
- Workers own grains round-robin (grain ``g`` → worker ``g % N``) and run
  the plain :class:`~repro.train.engine.FastCRRTrainer` forward/backward
  kernels on their slices. For a :class:`~repro.datastore.reader
  .ShardedPool` each grain view carries a private shard cache, so a worker
  memory-maps only the shards its slice touches.
- Gradients come back over pipes and the parent **all-reduces in
  canonical grain order** ``0..grains-1`` (mean), clips, applies the
  single Adam update, and broadcasts the new parameters. Because the
  reduction order is grain order — never worker order — the floating-point
  sum is identical whether one process computed all grains or four
  processes computed one each.

Each step runs a two-phase protocol (the Eq. 6 filter must read the
*updated* critic, exactly like the single-process engine):

``('critic', s)``
    workers: sample grain batches, Bellman targets, critic
    loss/backward → per-grain grads to parent; parent: all-reduce +
    clip + Adam on the critic.
``('policy', s, critic params)``
    workers: load the updated critic, advantage filter + policy
    loss/backward → per-grain grads; parent: all-reduce + clip + Adam
    on the policy, then Polyak target updates.
``('finish', policy params)``
    workers: load the updated policy and apply the same elementwise
    Polyak update locally — replicas stay bitwise in lockstep without
    shipping the target nets every step.

Crash recovery (the ``train.workercrash`` chaos site): a dead worker is
detected as EOF/EPIPE on its pipe. The parent rolls the step back to its
entry state (the critic update, if already applied, is undone from a
pre-update snapshot), respawns the dead process, re-broadcasts the full
parameter state to *every* worker, and replays the step from the same
per-(step, grain) seeds. Per-step state is otherwise stateless, so
recovery is bit-identical to a run that never crashed. A parent SIGKILL
orphans the workers with a closed pipe — they see EOF and exit, and the
checkpoint (which records the worker layout) resumes the run at the last
step boundary.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.collector.parallel import derive_seed
from repro.collector.pool import PolicyPool
from repro.core.crr import CRRConfig
from repro.core.networks import NetworkConfig
from repro.nn.optim import clip_grad_norm
from repro.train.engine import FastCRRTrainer

__all__ = ["DataParallelTrainer", "WorkerCrashed", "DEFAULT_GRAINS", "grain_seed"]

#: canonical batch-decomposition width — every worker count must divide it
DEFAULT_GRAINS = 4

#: replays of one step before a crash loop is declared
_MAX_STEP_ATTEMPTS = 10

_WORKER_PHASES = ("sample", "targets", "critic", "filter", "policy")


def grain_seed(seed: int, step: int, grain: int, grains: int) -> int:
    """The RNG seed of grain ``grain`` at training step ``step``.

    A flat SplitMix64 stream indexed ``step * grains + grain`` — the same
    derivation the parallel collector uses for its tasks, and independent
    of which worker process computes the grain.
    """
    return derive_seed(seed, step * grains + grain)


class WorkerCrashed(RuntimeError):
    """Internal: one or more gradient workers died mid-step."""

    def __init__(self, workers: Set[int]) -> None:
        super().__init__(f"gradient worker(s) {sorted(workers)} died")
        self.workers = set(workers)


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _set_params(net, blobs: Sequence[np.ndarray]) -> None:
    params = list(net.parameters())
    if len(params) != len(blobs):  # pragma: no cover - protocol bug guard
        raise ValueError("parameter blob does not match the network")
    for p, arr in zip(params, blobs):
        p.data = arr


def _get_params(net) -> List[np.ndarray]:
    return [p.data for p in net.parameters()]


def _grain_pools(spec, grains: int, my_grains: Sequence[int]) -> Dict[int, object]:
    """Open this worker's grain views from a picklable pool spec."""
    if spec[0] == "store":
        from repro.datastore.reader import ShardedPool

        base = ShardedPool.open(spec[1], max_open_shards=spec[2])
        return {g: base.grain_view(g, grains) for g in my_grains}
    return {g: spec[1].grain_view(g, grains) for g in my_grains}


def _worker_main(
    parent_conn,
    conn,
    spec,
    net_config: Optional[NetworkConfig],
    config: CRRConfig,
    seed: int,
    state_mask,
    grains: int,
    my_grains: Sequence[int],
    plan_json: Optional[Dict],
) -> None:
    # drop the inherited copy of the parent's pipe end: when the parent
    # dies (even SIGKILL) our recv() then sees EOF instead of blocking
    parent_conn.close()
    pools = _grain_pools(spec, grains, my_grains)
    trainer = FastCRRTrainer(
        pools[my_grains[0]],
        net_config=net_config,
        config=config,
        seed=seed,
        state_mask=state_mask,
    )
    chaos = None
    if plan_json is not None:
        from repro.chaos.inject import FaultInjector
        from repro.chaos.plan import FaultPlan

        chaos = FaultInjector(FaultPlan.from_json(plan_json))
    rows = config.batch_size // grains
    ctxs: Dict[int, Dict] = {}
    rngs: Dict[int, np.random.Generator] = {}

    def phase_delta(before: Dict[str, float]) -> Dict[str, float]:
        return {
            k: trainer.phase_seconds[k] - before.get(k, 0.0)
            for k in _WORKER_PHASES
        }

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone
        cmd = msg[0]
        if cmd == "stop":
            return
        if cmd == "die":  # chaos train.workercrash
            os._exit(1)
        if cmd == "sync":
            _set_params(trainer.policy, msg[1])
            _set_params(trainer.critic, msg[2])
            _set_params(trainer.target_policy, msg[3])
            _set_params(trainer.target_critic, msg[4])
            conn.send(("ok",))
        elif cmd == "critic":
            step = int(msg[1])
            before = dict(trainer.phase_seconds)
            out = []
            try:
                for g in my_grains:
                    rng = np.random.default_rng(grain_seed(seed, step, g, grains))
                    t0 = time.perf_counter()
                    batch = pools[g].sample_sequences(
                        rows, config.seq_len, rng, normalize=trainer._normalize
                    )
                    # batch faults target grain 0 only, so the poisoned
                    # slice is the same for every worker count
                    if chaos is not None and g == 0:
                        chaos.mutate_batch(step, batch)
                    ctx = trainer._batch_context(batch)
                    trainer.phase_seconds["sample"] += time.perf_counter() - t0
                    loss = trainer._critic_backward(ctx, rng)
                    grads = [
                        None if p.grad is None else np.array(p.grad, copy=True)
                        for p in trainer.critic.parameters()
                    ]
                    ctxs[g] = ctx
                    rngs[g] = rng
                    out.append((g, loss, grads))
                conn.send(("grads", out, phase_delta(before)))
            except Exception as exc:  # reported, recovered by the parent
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        elif cmd == "policy":
            _set_params(trainer.critic, msg[2])
            before = dict(trainer.phase_seconds)
            out = []
            try:
                for g in my_grains:
                    ploss, mean_f = trainer._policy_backward(ctxs[g], rngs[g])
                    grads = [
                        None if p.grad is None else np.array(p.grad, copy=True)
                        for p in trainer.policy.parameters()
                    ]
                    out.append((g, ploss, mean_f, grads))
                conn.send(("grads", out, phase_delta(before)))
            except Exception as exc:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        elif cmd == "finish":
            _set_params(trainer.policy, msg[1])
            # same elementwise Polyak op on the same values as the parent:
            # the local target nets stay bitwise identical without ever
            # shipping them over the pipe
            trainer._polyak_update()


class _Worker:
    """Parent-side handle: process + pipe end, with dead-pipe detection."""

    def __init__(self, index: int, ctx, target, args) -> None:
        self.index = index
        self.conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=target, args=(self.conn, child_conn) + args, daemon=True
        )
        self.proc.start()
        # the child closed its copy of self.conn; close ours of child_conn
        # so a dead peer turns into EOF/EPIPE instead of a hang
        child_conn.close()

    def send(self, msg) -> bool:
        try:
            self.conn.send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False

    def recv(self):
        """The next message, or ``None`` if the worker died."""
        try:
            return self.conn.recv()
        except (EOFError, OSError):
            return None

    def stop(self, timeout: float = 5.0) -> None:
        self.send(("stop",))
        self.proc.join(timeout=timeout)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.terminate()
            self.proc.join(timeout=timeout)
        self.conn.close()


# ----------------------------------------------------------------------
# parent
# ----------------------------------------------------------------------
class DataParallelTrainer(FastCRRTrainer):
    """The fused CRR trainer over ``grad_workers`` gradient processes.

    Construction spawns the workers (fork start method — the in-memory
    pool is shared copy-on-write; a sharded store is re-opened per
    worker). ``grains`` fixes the batch decomposition: any
    ``grad_workers`` dividing it yields bit-identical losses, parameters,
    and RNG streams. Call :meth:`close` when done (the ``train_sage_on_
    pool`` / pipeline entry points do).

    The parent's own ``rng`` / sampler are never consumed — sampling
    happens in the workers on per-(step, grain) generators — so the RNG
    stream *differs* from the single-process engine's interleaved stream:
    ``grad_workers >= 1`` is a different (still seed-deterministic)
    trajectory family than ``grad_workers = 0``. Checkpoints record the
    layout and refuse to resume under a different one.
    """

    def __init__(
        self,
        pool,
        net_config: Optional[NetworkConfig] = None,
        config: Optional[CRRConfig] = None,
        seed: int = 0,
        state_mask: Optional[np.ndarray] = None,
        grad_workers: int = 1,
        grains: int = DEFAULT_GRAINS,
        chaos=None,
    ) -> None:
        if grad_workers < 1:
            raise ValueError("grad_workers must be >= 1")
        if grains < 1 or grains % grad_workers != 0:
            raise ValueError(
                f"grad_workers ({grad_workers}) must divide grains ({grains}) "
                "so every worker owns the same number of grains"
            )
        cfg = config if config is not None else CRRConfig()
        if cfg.batch_size % grains != 0:
            raise ValueError(
                f"batch_size ({cfg.batch_size}) must be divisible by "
                f"grains ({grains})"
            )
        # the parent's chaos hooks are the parallel-specific ones
        # (train.workercrash); batch faults fire inside the workers
        super().__init__(
            pool, net_config, cfg, seed, state_mask, prefetch=0,
            sampler_workers=1, chaos=None,
        )
        self.grad_workers = int(grad_workers)
        self.grad_grains = int(grains)
        self._parent_chaos = chaos
        self._plan_json = chaos.plan.to_json() if chaos is not None else None
        self._seed = int(seed)
        self._state_mask_arg = state_mask
        self._spec = self._pool_spec(pool)
        self._validate_grains(pool)
        self.phase_seconds["grad_comm"] = 0.0
        #: how many workers were respawned after a crash (audit/test hook)
        self.respawns = 0
        self._critic_applied = False
        self._pre_critic = None
        self._mp = mp.get_context("fork")
        self._workers: List[Optional[_Worker]] = [None] * self.grad_workers
        self._grains_of = {
            w: tuple(g for g in range(grains) if g % grad_workers == w)
            for w in range(grad_workers)
        }
        for w in range(self.grad_workers):
            self._spawn(w)
        # one initial broadcast so replicas are in lockstep no matter when
        # (or after what parent-side mutations) the processes forked
        dead = self._sync_workers()
        if dead:  # pragma: no cover - spawn failed outright
            raise RuntimeError(f"gradient worker(s) {sorted(dead)} failed to start")

    # ------------------------------------------------------------------
    @staticmethod
    def _pool_spec(pool):
        from repro.datastore.reader import ShardedPool

        if isinstance(pool, ShardedPool):
            if len(pool.records) != len(pool.manifest.trajectories):
                raise ValueError(
                    "data-parallel training needs the full store, not a "
                    "filtered view: grain decomposition is defined over "
                    "the manifest's trajectory order"
                )
            return ("store", str(pool.root), pool.cache.max_open)
        if isinstance(pool, PolicyPool):
            return ("memory", pool)
        raise ValueError(f"unsupported pool type {type(pool).__name__}")

    def _validate_grains(self, pool) -> None:
        span = self.cfg.seq_len + 1
        for g in range(self.grad_grains):
            view = pool.grain_view(g, self.grad_grains)
            if isinstance(view, PolicyPool):
                lengths = [t.length for t in view.trajectories]
            else:
                lengths = view._lengths.tolist()
            if not any(ln >= span for ln in lengths):
                raise ValueError(
                    f"grain {g}/{self.grad_grains} has no trajectory of "
                    f">= seq_len+1 = {span} steps; the pool is too small "
                    "for this grain count"
                )

    def _spawn(self, w: int) -> None:
        old = self._workers[w]
        if old is not None:
            try:
                old.conn.close()
            except OSError:  # pragma: no cover
                pass
            if old.proc.is_alive():  # pragma: no cover - defensive
                old.proc.terminate()
            old.proc.join(timeout=5.0)
        self._workers[w] = _Worker(
            w,
            self._mp,
            _worker_main,
            (
                self._spec,
                self.net_cfg,
                self.cfg,
                self._seed,
                self._state_mask_arg,
                self.grad_grains,
                self._grains_of[w],
                self._plan_json,
            ),
        )

    def _sync_blob(self):
        return (
            "sync",
            _get_params(self.policy),
            _get_params(self.critic),
            _get_params(self.target_policy),
            _get_params(self.target_critic),
        )

    def _sync_workers(self) -> Set[int]:
        """Broadcast the full parameter state; returns workers that died."""
        blob = self._sync_blob()
        dead: Set[int] = set()
        for w, h in enumerate(self._workers):
            if not h.send(blob):
                dead.add(w)
        for w, h in enumerate(self._workers):
            if w in dead:
                continue
            if h.recv() is None:
                dead.add(w)
        return dead

    # ------------------------------------------------------------------
    def _broadcast(self, msg) -> Set[int]:
        dead: Set[int] = set()
        for w, h in enumerate(self._workers):
            if not h.send(msg):
                dead.add(w)
        return dead

    def _collect(self, skip: Set[int]):
        """One reply per live worker; drains every pipe before reporting
        deaths so no stale reply can desynchronize the next phase."""
        replies: Dict[int, Tuple] = {}
        dead: Set[int] = set()
        for w, h in enumerate(self._workers):
            if w in skip:
                continue
            r = h.recv()
            if r is None:
                dead.add(w)
            else:
                replies[w] = r
        return replies, dead

    def _phase_roundtrip(self, msg):
        """Broadcast ``msg``, gather grads; raises on dead workers and
        turns worker-side step failures into ``ValueError`` (the type the
        ``DivergenceGuard`` recovery path in ``train()`` handles)."""
        t0 = time.perf_counter()
        dead = self._broadcast(msg)
        replies, rdead = self._collect(dead)
        wall = time.perf_counter() - t0
        dead |= rdead
        if dead:
            raise WorkerCrashed(dead)
        errors = [r[1] for r in replies.values() if r[0] == "error"]
        if errors:
            raise ValueError(
                "gradient worker step failed: " + "; ".join(sorted(errors))
            )
        compute = 0.0
        for r in replies.values():
            delta = r[2]
            for k, v in delta.items():
                self.phase_seconds[k] += v
            compute = max(compute, sum(delta.values()))
        # comm = round-trip wall minus the slowest worker's compute time
        self.phase_seconds["grad_comm"] += max(wall - compute, 0.0)
        per_grain: Dict[int, Tuple] = {}
        for r in replies.values():
            for entry in r[1]:
                per_grain[entry[0]] = entry[1:]
        return per_grain

    def _reduce_into(self, per_grain_grads: Dict[int, List[np.ndarray]], net) -> None:
        """Mean-reduce per-grain grads in canonical grain order onto
        ``net``'s ``.grad`` slots — the order (hence the bits) never
        depends on the worker count. A parameter that received no grad in
        any grain stays ``None`` (skipped by clip/Adam, matching the
        single-process engine)."""
        params = list(net.parameters())
        total: List[Optional[np.ndarray]] = [None] * len(params)
        for g in range(self.grad_grains):
            for i, a in enumerate(per_grain_grads[g]):
                if a is None:
                    continue
                if total[i] is None:
                    total[i] = np.array(a, copy=True)
                else:
                    total[i] += a
        inv = 1.0 / self.grad_grains
        for p, acc in zip(params, total):
            if acc is not None:
                acc *= inv
            p.grad = acc

    @staticmethod
    def _reduce_scalar(per_grain: Dict[int, Tuple], pos: int) -> float:
        total = 0.0
        for g in sorted(per_grain):
            total += per_grain[g][pos]
        return total / len(per_grain)

    # ------------------------------------------------------------------
    def _attempt_step(self, step: int) -> Dict[str, float]:
        cfg = self.cfg
        self._critic_applied = False

        # phase 1: per-grain critic grads -> reduced critic Adam update
        per_grain = self._phase_roundtrip(("critic", step))
        tu = time.perf_counter()
        # the step's only non-replayable mutation is the critic update;
        # snapshot what it overwrites so a crash later in the step can
        # rewind to the step boundary and replay from the same seeds
        self._pre_critic = (
            [np.array(p.data, copy=True) for p in self.critic.parameters()],
            self.opt_critic.t,
            [m.copy() for m in self.opt_critic._m],
            [v.copy() for v in self.opt_critic._v],
        )
        critic_loss = self._reduce_scalar(per_grain, 0)
        self._reduce_into({g: v[1] for g, v in per_grain.items()}, self.critic)
        clip_grad_norm(self.critic.parameters(), cfg.grad_clip)
        self.opt_critic.step()
        self._critic_applied = True
        self.phase_seconds["update"] += time.perf_counter() - tu

        # phase 2: per-grain policy grads (against the updated critic)
        per_grain = self._phase_roundtrip(
            ("policy", step, _get_params(self.critic))
        )
        tu = time.perf_counter()
        policy_loss = self._reduce_scalar(per_grain, 0)
        mean_f = self._reduce_scalar(per_grain, 1)
        self._reduce_into({g: v[2] for g, v in per_grain.items()}, self.policy)
        clip_grad_norm(self.policy.parameters(), cfg.grad_clip)
        self.opt_policy.step()
        self._polyak_update()
        self.phase_seconds["update"] += time.perf_counter() - tu

        # phase 3: new policy out; workers run the same Polyak update.
        # A death here is past the point of mutation — the step stands;
        # respawn + full re-sync instead of replaying.
        dead = self._broadcast(("finish", _get_params(self.policy)))
        if dead:
            self._respawn_and_sync(dead)
        return {
            "critic_loss": critic_loss,
            "policy_loss": policy_loss,
            "mean_f": mean_f,
        }

    def _respawn_and_sync(self, dead: Set[int]) -> None:
        while True:
            for w in sorted(dead):
                self.respawns += 1
                self._spawn(w)
            dead = self._sync_workers()
            if not dead:  # pragma: no branch
                return

    def _recover(self, crash: WorkerCrashed) -> None:
        if self._critic_applied:
            params, t, ms, vs = self._pre_critic
            for p, saved in zip(self.critic.parameters(), params):
                p.data = saved
            self.opt_critic.t = t
            self.opt_critic._m = ms
            self.opt_critic._v = vs
            self._critic_applied = False
        self._respawn_and_sync(crash.workers)

    def train_step(self) -> Dict[str, float]:
        t0 = time.perf_counter()
        step = self.steps_done
        if self._parent_chaos is not None:
            spec = self._parent_chaos.worker_crash(step)
            if spec is not None:
                victim = int(spec.param) % self.grad_workers
                self._workers[victim].send(("die",))
                self._workers[victim].proc.join(timeout=10.0)
        for _ in range(_MAX_STEP_ATTEMPTS):
            try:
                metrics = self._attempt_step(step)
                break
            except WorkerCrashed as crash:
                self._recover(crash)
        else:  # pragma: no cover - needs a persistent external killer
            raise RuntimeError(
                f"step {step}: gradient workers crashed "
                f"{_MAX_STEP_ATTEMPTS} times in a row; giving up"
            )
        self._train_seconds += time.perf_counter() - t0
        self.steps_done += 1
        for k, v in metrics.items():
            self.history[k].append(v)
        return metrics

    # ------------------------------------------------------------------
    # state management: any restored parent state is re-broadcast so the
    # replicas stay in lockstep (guard rollbacks, checkpoint resume)
    def restore_state(self, snapshot: Dict[str, np.ndarray]) -> None:
        super().restore_state(snapshot)
        dead = self._sync_workers()
        if dead:
            self._respawn_and_sync(dead)

    def load_checkpoint(self, path: str) -> None:
        super().load_checkpoint(path)
        dead = self._sync_workers()
        if dead:
            self._respawn_and_sync(dead)

    def close(self) -> None:
        for h in self._workers:
            if h is not None:
                h.stop()
        self._workers = [None] * self.grad_workers
        super().close()
