"""FastCRRTrainer: the fused sequence-level CRR training engine.

Same learner as :class:`~repro.core.crr.CRRTrainer` (Eq. 5 policy
evaluation + Eq. 6 advantage-filtered improvement), restructured for
throughput:

- **No-grad phases on raw numpy.** Bellman targets and the advantage
  filter run through :mod:`repro.train.fastpath` — plain arrays,
  preallocated scratch, no autograd dispatch.
- **Fused gradient phases.** The two losses that *do* need gradients run
  through the fused ``(L*B, ·)`` autograd path
  (``features_seq_fused`` / ``recurrent_seq_fused``): one graph over all
  timesteps instead of ``L`` per-timestep subgraphs.
- **Prefetched batches.** A :class:`~repro.train.sampler.SequenceSampler`
  optionally prepares batches on worker threads.

Equivalence contract (vs the legacy engine, ``prefetch=0``, same seed):
every RNG draw happens in the same order on the same generator — pool
sampling, then per-timestep target-action draws, then the ``t``-major
``m_samples`` filter draws — so the random *streams* are bit-identical.
Floating-point values differ only by summation-order rounding (BLAS
blocking on the larger fused matmuls, gate-weight splitting in the GRU),
so ``critic_loss`` / ``policy_loss`` / ``mean_f`` trajectories track the
legacy engine within accumulated float tolerance rather than bitwise; the
only mechanism that could amplify a rounding difference is a sampled
mixture component or binary-filter indicator flipping across the
boundary, which at float64 has negligible probability per step. The
regression test pins this tolerance.
"""

from __future__ import annotations

import json
import os
import time
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.collector.pool import PolicyPool
from repro.core.crr import CRRConfig, CRRTrainer, MetricsCallback
from repro.core.networks import NetworkConfig, log_action
from repro.nn.autograd import Tensor
from repro.nn.functional import softmax_np
from repro.nn.optim import clip_grad_norm
from repro.train import fastpath as fp
from repro.train.sampler import SequenceSampler

__all__ = ["FastCRRTrainer"]

_PHASES = ("sample", "targets", "critic", "filter", "policy", "update")


class FastCRRTrainer(CRRTrainer):
    """Drop-in CRR trainer with the fused hot path.

    Extra parameters on top of :class:`CRRTrainer`:

    ``prefetch``
        Batches kept in flight by the sampler. ``0`` (default) keeps the
        legacy bit-identical sampling order; ``>0`` switches to the
        deterministic per-batch seed stream (see
        :mod:`repro.train.sampler`).
    ``sampler_workers``
        Producer threads when ``prefetch > 0``.
    ``chaos``
        Optional :class:`~repro.chaos.inject.FaultInjector`; pending
        ``train.*`` faults (NaN / reward-spike batches) poison the matching
        sampled batch — the corruption a
        :class:`~repro.train.guard.DivergenceGuard` must catch.
    """

    def __init__(
        self,
        pool: PolicyPool,
        net_config: Optional[NetworkConfig] = None,
        config: Optional[CRRConfig] = None,
        seed: int = 0,
        state_mask: Optional[np.ndarray] = None,
        prefetch: int = 0,
        sampler_workers: int = 1,
        chaos=None,
        rss_soft_limit_mb: Optional[float] = None,
    ) -> None:
        super().__init__(pool, net_config, config, seed, state_mask)
        self._chaos = chaos
        self._bufs = fp.BufferPool()
        #: optional RSS watermark: crossing it drops the pool's hot-shard
        #: cache (recomputable state) instead of letting a long training
        #: run be OOM-killed mid-checkpoint
        self.memory_guard = None
        if rss_soft_limit_mb is not None:
            from repro.resources import MemoryGuard

            self.memory_guard = MemoryGuard(
                int(rss_soft_limit_mb * 1e6), check_every=16
            )
            if hasattr(pool, "drop_cache"):
                self.memory_guard.add_valve("pool.drop_cache", pool.drop_cache)
        #: Worker layout, recorded in checkpoints: ``(0, 0)`` for this
        #: single-process engine; :class:`~repro.train.parallel
        #: .DataParallelTrainer` overrides with ``(N, grains)``. The layout
        #: is part of the determinism contract (it selects the RNG-stream
        #: decomposition), so resuming under a different one is refused.
        self.grad_workers = 0
        self.grad_grains = 0
        self.sampler = SequenceSampler(
            pool,
            self.cfg.batch_size,
            self.cfg.seq_len,
            rng=self.rng,
            normalize=self._normalize,
            prefetch=prefetch,
            workers=sampler_workers,
            seed=seed,
        )
        #: cumulative seconds per train-step phase, since construction
        self.phase_seconds: Dict[str, float] = {k: 0.0 for k in _PHASES}
        self._train_seconds = 0.0
        # Polyak pairs, resolved once: the Tensor objects are stable (only
        # their .data rebinds), so the name matching need not be repeated
        # every step the way Module.soft_update does.
        self._polyak_pairs = [
            (dict(tgt.named_parameters()), dict(src.named_parameters()))
            for tgt, src in (
                (self.target_policy, self.policy),
                (self.target_critic, self.critic),
            )
        ]
        self._polyak_pairs = [
            [(mine[name], theirs[name]) for name in mine]
            for mine, theirs in self._polyak_pairs
        ]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop sampler worker threads (no-op for ``prefetch=0``)."""
        self.sampler.close()

    def timing_summary(self) -> Dict[str, float]:
        """Steps/sec plus the per-phase second totals."""
        out = dict(self.phase_seconds)
        out["total_s"] = self._train_seconds
        out["steps_per_s"] = (
            self.steps_done / self._train_seconds if self._train_seconds else 0.0
        )
        return out

    # ------------------------------------------------------------------
    # The step is split into gradient phases so the data-parallel engine
    # can run each phase on a batch *slice* in a worker process and keep
    # the optimizer/Polyak mutations in the parent. Op order is unchanged
    # from the original monolithic step — results are bit-identical.
    def _batch_context(self, batch: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Flat views shared by both gradient phases of one batch."""
        states = batch["states"]  # (B, L, D), already normalized
        rewards = batch["rewards"] * self.cfg.reward_scale
        b, l, _ = states.shape
        n = b * l
        # t-major flats: row t*B + i is batch row i at timestep t
        log_a = log_action(batch["actions"])
        return {
            "states": states,
            "next_states": batch["next_states"],
            "rewards": rewards,
            "b": b,
            "l": l,
            "n": n,
            "log_a_flat": np.ascontiguousarray(log_a.T).reshape(n),
        }

    def _critic_backward(self, ctx: Dict, rng: np.random.Generator) -> float:
        """Bellman targets + Eq. 5 critic loss/backward (no optimizer step).

        Leaves the loss gradients on ``self.critic``'s parameters and
        returns the scalar loss; the caller clips and applies the update
        (locally here, after an all-reduce in the parallel engine).
        """
        cfg = self.cfg
        bufs = self._bufs
        b, l, n = ctx["b"], ctx["l"], ctx["n"]
        next_states = ctx["next_states"]
        t1 = time.perf_counter()

        # ---- targets (raw numpy, no graph) ----------------------------
        # Same RNG order as the legacy per-t loop: actions for timestep t
        # are drawn before timestep t+1's. The mixture CDF is precomputed
        # for all rows at once (consumes no RNG).
        p_tpol = fp.params_of(self.target_policy)
        tgt_feats = fp.policy_features_seq(
            self.target_policy, next_states, bufs, "tpol", p=p_tpol
        )
        glog, gmu, gls = fp.gmm_split(self.target_policy, tgt_feats, p=p_tpol)
        gcdf = fp.gmm_cdf(glog)
        a_next = np.empty(n)
        for t in range(l):
            sl = slice(t * b, (t + 1) * b)
            a_next[sl] = fp.gmm_sample(
                glog[sl], gmu[sl], gls[sl], rng, cdf=gcdf[sl]
            )
        p_tcrit = fp.params_of(self.target_critic)
        tgt_rec = fp.critic_recurrent_seq(
            self.target_critic, next_states, bufs, "tcrit", p=p_tcrit
        )
        next_logits = fp.critic_q_logits(
            self.target_critic, tgt_rec, log_action(a_next), bufs, "tcrit", p=p_tcrit
        )
        next_p = softmax_np(next_logits, out=bufs.get("tcrit.p", next_logits.shape))
        rewards_flat = np.ascontiguousarray(ctx["rewards"].T).reshape(n)
        target_probs = fp.project_target(
            self.critic.head, rewards_flat, cfg.gamma, next_p
        )
        t2 = time.perf_counter()

        # ---- policy evaluation (critic loss, Eq. 5) -------------------
        rec = self.critic.recurrent_seq_fused(ctx["states"])
        feats = self.critic.q_features(rec, ctx["log_a_flat"])
        # flat mean over L*B rows == legacy mean of per-t means (equal B)
        critic_loss = self.critic.head.cross_entropy(feats, target_probs)
        self.opt_critic.zero_grad()
        critic_loss.backward()
        t3 = time.perf_counter()

        ph = self.phase_seconds
        ph["targets"] += t2 - t1
        ph["critic"] += t3 - t2
        return float(critic_loss.data)

    def _policy_backward(self, ctx: Dict, rng: np.random.Generator):
        """Advantage filter + Eq. 6 policy loss/backward (no optimizer step).

        Must run *after* the critic update for this batch: the filter reads
        the freshly-updated critic. Returns ``(policy_loss, mean_f)``.
        """
        cfg = self.cfg
        bufs = self._bufs
        b, l, n = ctx["b"], ctx["l"], ctx["n"]
        states = ctx["states"]
        log_a_flat = ctx["log_a_flat"]
        t3 = time.perf_counter()

        # ---- advantage filter (raw numpy, no graph) -------------------
        # The policy features are built on the autograd path because the
        # improvement step below reuses the same graph; the filter reads
        # only their .data. Critic features must be recomputed from the
        # *updated* critic (the optimizer just rebound its weights).
        pol_feats = self.policy.features_seq_fused(states)
        plog, pmu, pls = fp.gmm_split(self.policy, pol_feats.data)
        pcdf = fp.gmm_cdf(plog)
        p_crit = fp.params_of(self.critic)
        rec_np = fp.critic_recurrent_seq(self.critic, states, bufs, "crit", p=p_crit)
        # legacy draw order: t outer, j in m_samples inner
        m = cfg.m_samples
        a_samp = np.empty((m, n))
        for t in range(l):
            sl = slice(t * b, (t + 1) * b)
            cdf_t, mu_t, ls_t = pcdf[sl], pmu[sl], pls[sl]
            for j in range(m):
                a_samp[j, sl] = fp.gmm_sample(
                    plog[sl], mu_t, ls_t, rng, cdf=cdf_t
                )
        # fold the data action + the m baseline draws into one
        # ((m+1)*N, ·) critic pass: rows [0:N] give Q(s, a_data), the
        # rest the baseline evaluations
        hdim = rec_np.shape[1]
        rec_all = bufs.get("filter.rec_all", ((m + 1) * n, hdim))
        rec_all.reshape(m + 1, n, hdim)[:] = rec_np
        la_all = bufs.get("filter.la_all", ((m + 1) * n,))
        la_all[:n] = log_a_flat
        la_all[n:] = log_action(a_samp.reshape(-1))
        q_all = fp.critic_q_values(
            self.critic, rec_all, la_all, bufs, "critm", p=p_crit
        )
        q_data = q_all[:n]
        q_base = q_all[n:].reshape(m, n)
        adv = q_data - q_base.sum(axis=0) / m
        if cfg.filter_type == "binary":
            f_flat = (adv > 0).astype(float)
        else:
            f_flat = np.minimum(np.exp(adv / cfg.adv_temperature), cfg.f_max)
        t4 = time.perf_counter()

        # ---- policy improvement (Eq. 6) -------------------------------
        logp = self.policy.log_prob(pol_feats, log_a_flat)
        policy_loss = (Tensor(f_flat) * logp * -1.0).mean()
        self.opt_policy.zero_grad()
        policy_loss.backward()
        t5 = time.perf_counter()

        ph = self.phase_seconds
        ph["filter"] += t4 - t3
        ph["policy"] += t5 - t4
        return float(policy_loss.data), float(f_flat.mean())

    def _polyak_update(self) -> None:
        """Soft target updates — same math and .data-rebinding semantics
        as ``Module.soft_update``, minus the per-step dict building."""
        tau = self.cfg.target_tau
        for pairs in self._polyak_pairs:
            for tgt, src in pairs:
                tgt.data = (1.0 - tau) * tgt.data + tau * src.data

    def train_step(self) -> Dict[str, float]:
        """One fused policy-evaluation + policy-improvement iteration."""
        cfg = self.cfg
        t0 = time.perf_counter()
        batch = self.sampler.next_batch()
        if self._chaos is not None:
            # next_batch() pre-increments, so the batch just drawn is
            # batch_index - 1; sampled arrays are copies, mutation is safe
            self._chaos.mutate_batch(self.sampler.batch_index - 1, batch)
        ctx = self._batch_context(batch)
        self.phase_seconds["sample"] += time.perf_counter() - t0

        critic_loss = self._critic_backward(ctx, self.rng)
        tc = time.perf_counter()
        clip_grad_norm(self.critic.parameters(), cfg.grad_clip)
        self.opt_critic.step()
        self.phase_seconds["critic"] += time.perf_counter() - tc

        policy_loss, mean_f = self._policy_backward(ctx, self.rng)
        tp = time.perf_counter()
        clip_grad_norm(self.policy.parameters(), cfg.grad_clip)
        self.opt_policy.step()
        self.phase_seconds["policy"] += time.perf_counter() - tp

        tu = time.perf_counter()
        self._polyak_update()
        t_end = time.perf_counter()
        self.phase_seconds["update"] += t_end - tu
        self._train_seconds += t_end - t0

        self.steps_done += 1
        metrics = {
            "critic_loss": critic_loss,
            "policy_loss": policy_loss,
            "mean_f": mean_f,
        }
        for k, v in metrics.items():
            self.history[k].append(v)
        return metrics

    # ------------------------------------------------------------------
    def train(
        self,
        n_steps: int,
        log_every: int = 0,
        metrics_callback: Optional[MetricsCallback] = None,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
        guard=None,
    ) -> Dict[str, float]:
        """Like :meth:`CRRTrainer.train`, plus periodic checkpointing:
        every ``checkpoint_every`` steps the full training state is saved
        to ``checkpoint_path`` (overwritten in place).

        ``guard`` arms a :class:`~repro.train.guard.DivergenceGuard`: each
        step's metrics are checked, and on divergence (non-finite values,
        loss explosion) the trainer restores its last clean in-memory
        snapshot and replays from there. A consumed poisoned batch (e.g.
        an injected ``train.nan`` fault) is therefore fully masked — the
        replayed steps are bit-identical to a run that never saw it.
        Exhausting the guard's rollback budget raises
        :class:`~repro.train.guard.TrainingDiverged`.
        """
        if checkpoint_every and not checkpoint_path:
            raise ValueError("checkpoint_every requires checkpoint_path")
        start = self.steps_done
        end = start + n_steps
        snapshot = self.capture_state() if guard is not None else None
        metrics: Dict[str, float] = {}
        while self.steps_done < end:
            if self.memory_guard is not None:
                self.memory_guard.maybe_check()
            if guard is not None:
                restored = int(snapshot["meta/steps_done"][0])
                try:
                    metrics = self.train_step()
                except (ValueError, ArithmeticError) as exc:
                    # poisoned numbers can crash the step outright (NaN
                    # rewards break the C51 projection) — same recovery
                    guard.record_failure(
                        self.steps_done,
                        f"{type(exc).__name__}: {exc}",
                        restored_step=restored,
                    )
                    self.restore_state(snapshot)
                    continue
                event = guard.check(
                    self.steps_done - 1, metrics, restored_step=restored
                )
                if event is not None:
                    # the poisoned step is gone: parameters, optimizer
                    # moments, RNG, sampler position, history all rewind
                    self.restore_state(snapshot)
                    continue
            else:
                metrics = self.train_step()
            i = self.steps_done - start  # clean steps completed this call
            if metrics_callback is not None:
                if log_every == 0 or i % log_every == 0:
                    metrics_callback(self.steps_done, metrics)
            elif log_every and i % log_every == 0:
                print(
                    f"step {self.steps_done}: "
                    f"critic={metrics['critic_loss']:.4f} "
                    f"policy={metrics['policy_loss']:.4f} "
                    f"f={metrics['mean_f']:.3f}"
                )
            if checkpoint_every and i % checkpoint_every == 0:
                self.save_checkpoint(checkpoint_path)
            if guard is not None and i % guard.config.snapshot_every == 0:
                snapshot = self.capture_state()
        return metrics

    # ------------------------------------------------------------------
    # Checkpointing: everything needed to resume a run mid-stream —
    # all four networks, both Adam states, the RNG stream, the sampler
    # position, and the metric history — in one compressed .npz. The same
    # payload doubles as the in-memory snapshot the DivergenceGuard
    # rollback restores.
    def _state_payload(self) -> Dict[str, np.ndarray]:
        payload: Dict[str, np.ndarray] = {}
        nets = (
            ("policy", self.policy),
            ("critic", self.critic),
            ("target_policy", self.target_policy),
            ("target_critic", self.target_critic),
        )
        for prefix, net in nets:
            for name, value in net.state_dict().items():
                payload[f"{prefix}/{name}"] = value
        for prefix, opt in (("opt_policy", self.opt_policy), ("opt_critic", self.opt_critic)):
            payload[f"{prefix}/t"] = np.array([opt.t], dtype=np.int64)
            for i, (m, v) in enumerate(zip(opt._m, opt._v)):
                payload[f"{prefix}/m{i}"] = m
                payload[f"{prefix}/v{i}"] = v
        payload["meta/steps_done"] = np.array([self.steps_done], dtype=np.int64)
        payload["meta/grad_workers"] = np.array([self.grad_workers], dtype=np.int64)
        payload["meta/grad_grains"] = np.array([self.grad_grains], dtype=np.int64)
        payload["meta/batch_index"] = np.array(
            [self.sampler.batch_index], dtype=np.int64
        )
        payload["meta/rng_state"] = np.array(
            json.dumps(self.rng.bit_generator.state)
        )
        for key, values in self.history.items():
            payload[f"meta/history/{key}"] = np.asarray(values, dtype=np.float64)
        return payload

    def _apply_payload(self, data, keys) -> None:
        # The worker layout selects the RNG-stream decomposition (one
        # trainer stream vs per-(step, grain) streams), so a checkpoint is
        # only resumable under the layout that wrote it. Checked before any
        # state is mutated. Pre-parallel checkpoints carry no layout keys
        # and mean the single-process layout (0, 0).
        saved_workers = (
            int(data["meta/grad_workers"][0]) if "meta/grad_workers" in keys else 0
        )
        saved_grains = (
            int(data["meta/grad_grains"][0]) if "meta/grad_grains" in keys else 0
        )
        if (saved_workers, saved_grains) != (self.grad_workers, self.grad_grains):
            raise ValueError(
                f"checkpoint was saved with --grad-workers {saved_workers} "
                f"(grains={saved_grains}) but this trainer runs "
                f"--grad-workers {self.grad_workers} "
                f"(grains={self.grad_grains}); the worker layout is part of "
                "the determinism contract — resume with the same layout"
            )
        nets = (
            ("policy", self.policy),
            ("critic", self.critic),
            ("target_policy", self.target_policy),
            ("target_critic", self.target_critic),
        )
        for prefix, net in nets:
            state = {
                key[len(prefix) + 1 :]: data[key]
                for key in keys
                if key.startswith(f"{prefix}/")
            }
            net.load_state_dict(state)
        for prefix, opt in (
            ("opt_policy", self.opt_policy),
            ("opt_critic", self.opt_critic),
        ):
            opt.t = int(data[f"{prefix}/t"][0])
            for i in range(len(opt._m)):
                opt._m[i] = data[f"{prefix}/m{i}"].copy()
                opt._v[i] = data[f"{prefix}/v{i}"].copy()
        self.steps_done = int(data["meta/steps_done"][0])
        self.rng.bit_generator.state = json.loads(str(data["meta/rng_state"]))
        self.sampler.seek(int(data["meta/batch_index"][0]))
        for key in self.history:
            hk = f"meta/history/{key}"
            if hk in keys:  # absent in pre-resilience checkpoints
                self.history[key].clear()
                self.history[key].extend(np.asarray(data[hk]).tolist())

    def capture_state(self) -> Dict[str, np.ndarray]:
        """Deep-copied in-memory snapshot of the full training state."""
        return {k: np.array(v, copy=True) for k, v in self._state_payload().items()}

    def restore_state(self, snapshot: Dict[str, np.ndarray]) -> None:
        """Rewind to a :meth:`capture_state` snapshot (bit-exact)."""
        self._apply_payload(
            {k: np.array(v, copy=True) for k, v in snapshot.items()},
            list(snapshot.keys()),
        )

    def save_checkpoint(self, path: str) -> None:
        """Atomically write the full training state, with a CRC sidecar.

        The payload goes to a ``*.tmp`` file first and is ``os.replace``d
        into place — a crash mid-write can never leave a truncated
        checkpoint under the real name. ``<path>.crc32`` records the
        final file's checksum so :meth:`load_checkpoint` can reject silent
        corruption. (The npz is written through an open handle because
        ``np.savez`` appends ``.npz`` to bare paths.)
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **self._state_payload())
        os.replace(tmp, path)
        crc = 0
        with open(path, "rb") as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                crc = zlib.crc32(block, crc)
        sidecar = path.with_name(path.name + ".crc32")
        tmp = sidecar.with_name(sidecar.name + ".tmp")
        tmp.write_text(
            json.dumps({"crc32": crc & 0xFFFFFFFF, "bytes": path.stat().st_size})
            + "\n"
        )
        os.replace(tmp, sidecar)

    def load_checkpoint(self, path: str) -> None:
        """Restore a :meth:`save_checkpoint` file, verifying integrity.

        When the ``.crc32`` sidecar exists the file's checksum and size
        must match it; a corrupt or truncated archive raises ``ValueError``
        rather than half-loading state.
        """
        path = Path(path)
        sidecar = path.with_name(path.name + ".crc32")
        if sidecar.exists():
            expected = json.loads(sidecar.read_text())
            crc = 0
            with open(path, "rb") as fh:
                for block in iter(lambda: fh.read(1 << 20), b""):
                    crc = zlib.crc32(block, crc)
            if (
                (crc & 0xFFFFFFFF) != int(expected["crc32"])
                or path.stat().st_size != int(expected["bytes"])
            ):
                raise ValueError(
                    f"checkpoint {path} fails its integrity check "
                    f"(crc/size mismatch vs {sidecar.name}); refusing to load"
                )
        try:
            with np.load(path, allow_pickle=False) as data:
                self._apply_payload(data, list(data.files))
        except (zipfile.BadZipFile, EOFError) as exc:
            raise ValueError(
                f"checkpoint {path} is not a valid .npz archive: {exc}"
            ) from exc
