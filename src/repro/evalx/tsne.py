"""Minimal exact t-SNE (van der Maaten & Hinton 2008) for Fig. 16.

The paper visualizes the last hidden layer of Sage-s/m/l over seven Set II
environments. This is a small, exact (non-Barnes-Hut) implementation —
fine for the few hundred points the figure uses.
"""

from __future__ import annotations

import numpy as np


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    s = (x * x).sum(axis=1)
    d2 = s[:, None] + s[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _binary_search_perplexity(
    d2_row: np.ndarray, target_entropy: float, tol: float = 1e-5, iters: int = 50
) -> np.ndarray:
    """Find the Gaussian precision matching the target perplexity for one row."""
    beta_lo, beta_hi, beta = 0.0, np.inf, 1.0
    p = np.zeros_like(d2_row)
    for _ in range(iters):
        p = np.exp(-d2_row * beta)
        p_sum = p.sum()
        if p_sum <= 0:
            p_sum = 1e-12
        h = np.log(p_sum) + beta * (d2_row * p).sum() / p_sum
        diff = h - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:
            beta_lo = beta
            beta = beta * 2.0 if beta_hi == np.inf else (beta + beta_hi) / 2.0
        else:
            beta_hi = beta
            beta = (beta + beta_lo) / 2.0
    return p / max(p.sum(), 1e-12)


def tsne(
    x: np.ndarray,
    n_components: int = 2,
    perplexity: float = 15.0,
    n_iter: int = 300,
    learning_rate: float = 100.0,
    seed: int = 0,
) -> np.ndarray:
    """Embed (N, D) points into (N, n_components)."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n < 4:
        raise ValueError("t-SNE needs at least 4 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    d2 = _pairwise_sq_dists(x)
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        row = np.delete(d2[i], i)
        pi = _binary_search_perplexity(row, target_entropy)
        p[i, np.arange(n) != i] = pi
    p = (p + p.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)
    p_early = p * 4.0  # early exaggeration

    rng = np.random.default_rng(seed)
    y = rng.standard_normal((n, n_components)) * 1e-2
    velocity = np.zeros_like(y)
    for it in range(n_iter):
        pp = p_early if it < n_iter // 4 else p
        d2y = _pairwise_sq_dists(y)
        q_num = 1.0 / (1.0 + d2y)
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), 1e-12)
        pq = (pp - q) * q_num
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
        momentum = 0.5 if it < 100 else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
