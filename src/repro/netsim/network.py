"""Dumbbell network: a thin facade over the graph engine in ``topo``.

Topology (the paper's emulation model):

::

    sender_1 ─┐                                    ┌─ receiver_1
    sender_2 ─┼─> [ AQM buffer | bottleneck link ] ┼─> receiver_2
       ...    ┘        shared, rate(t)             └─    ...

Data packets from every flow share the one bottleneck; each flow then sees
its own one-way propagation delay. ACKs return on an uncongested reverse
path. ``min_rtt`` of a flow is split evenly between the two directions.

Since the graph engine landed, this class no longer owns the data path: it
builds a two-node, one-link :class:`~repro.netsim.topo.Topology` (all
propagation in the per-flow access segments) and adapts it through a
:class:`~repro.netsim.topo.PathView`. The event schedule — serialization
events, one delivery event per data packet, one return event per ACK, and
the order of jitter draws — is **bit-identical** to the historical
self-contained implementation, so seeded simulations and collected pools
are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.netsim.aqm import AQM, TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.packet import Packet
from repro.netsim.topo import PathView, Topology, dumbbell_topology
from repro.netsim.traces import RateProcess


@dataclass
class PathConfig:
    """Per-flow path parameters.

    ``jitter`` adds a uniform random extra delay in ``[0, jitter]`` seconds
    to each data packet's forward propagation — enough jitter reorders
    packets, exercising the SACK machinery the way real multi-path WANs do.
    """

    min_rtt: float  # seconds, propagation round trip (no queueing)
    jitter: float = 0.0  # seconds of uniform forward-path delay jitter

    def __post_init__(self) -> None:
        if self.min_rtt <= 0:
            raise ValueError(f"min_rtt must be positive, got {self.min_rtt}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")

    @property
    def fwd_delay(self) -> float:
        return self.min_rtt / 2.0

    @property
    def rev_delay(self) -> float:
        return self.min_rtt / 2.0


class Network:
    """A single-bottleneck network instance shared by one or more flows.

    Endpoints register callbacks per flow id:

    - ``data_sink``: receiver-side, invoked when a data packet arrives.
    - ``ack_sink``: sender-side, invoked when an ACK arrives back.

    Senders inject data with :meth:`send_data`; receivers inject ACKs with
    :meth:`send_ack`.
    """

    def __init__(
        self, loop: EventLoop, rate: RateProcess, aqm: AQM, seed: int = 0
    ) -> None:
        self.loop = loop
        self.topology: Topology = dumbbell_topology(rate, aqm, loop=loop, seed=seed)
        self._view: PathView = self.topology.view(("snd", "rcv"))
        #: the bottleneck serializer (queue + AQM), for introspection
        self.link = self.topology.links[0].inner
        self._paths: Dict[int, PathConfig] = {}

    # -- registration ----------------------------------------------------
    def attach_flow(
        self,
        flow_id: int,
        path: PathConfig,
        data_sink: Callable[[Packet], None],
        ack_sink: Callable[[Packet], None],
    ) -> None:
        """Register a flow's path and its two delivery callbacks."""
        self._view.attach_flow(flow_id, path, data_sink, ack_sink)
        self._paths[flow_id] = path

    def detach_flow(self, flow_id: int) -> None:
        """Forget a flow; its in-flight packets are discarded on arrival."""
        self._view.detach_flow(flow_id)
        del self._paths[flow_id]

    # -- data path ---------------------------------------------------------
    def send_data(self, pkt: Packet) -> None:
        """Sender entry point: offer a data packet to the bottleneck."""
        if pkt.flow_id not in self._paths:
            raise ValueError(
                f"flow {pkt.flow_id} is not attached to this network; "
                f"attach_flow() it before sending data"
            )
        self._view.send_data(pkt)

    # -- ack path ----------------------------------------------------------
    def send_ack(self, ack: Packet) -> None:
        """Receiver entry point: return an ACK over the uncongested path."""
        if ack.flow_id not in self._paths:
            raise ValueError(
                f"flow {ack.flow_id} is not attached to this network; "
                f"attach_flow() it before sending ACKs"
            )
        self._view.send_ack(ack)

    # -- introspection -------------------------------------------------------
    def min_rtt(self, flow_id: int) -> float:
        return self._paths[flow_id].min_rtt

    @property
    def queue_delay(self) -> float:
        return self.link.queue_delay()

    @property
    def dropped_by_flow(self) -> Dict[int, int]:
        return self.topology.dropped_by_flow

    @property
    def delivered_by_flow(self) -> Dict[int, int]:
        return self.topology.delivered_by_flow


def make_network(
    rate: RateProcess,
    buffer_bytes: int,
    aqm: Optional[AQM] = None,
    loop: Optional[EventLoop] = None,
) -> Network:
    """Convenience constructor: drop-tail dumbbell on a fresh event loop."""
    loop = loop if loop is not None else EventLoop()
    aqm = aqm if aqm is not None else TailDrop(buffer_bytes)
    return Network(loop, rate, aqm)
