"""Datastore benchmark: ingest rate, window throughput, and peak RSS.

Three measurements over the same synthetic pool, written to
``BENCH_datastore.json``:

- **ingest** — MB/s streaming trajectories through a ``ShardWriter``
  (checksums + atomic commits included);
- **sampling** — ``sample_sequences`` windows/s for the in-memory
  ``PolicyPool`` vs the mmap-backed ``ShardedPool``, plus a bit-identity
  check on the draws;
- **peak RSS** — maximum resident set of a ``train_sage_on_pool`` run on
  the monolithic ``.npz`` vs the sharded store. Each run happens in a
  fresh subprocess so the two high-water marks can't contaminate each
  other; the sharded run must come in measurably lower (the pool is paged
  in on demand and never concatenated).

Runs two ways:

- standalone: ``PYTHONPATH=src python benchmarks/bench_datastore.py``
  (``--tiny`` for a seconds-scale CI smoke run);
- under pytest-benchmark with the rest of the bench suite:
  ``pytest benchmarks/bench_datastore.py``.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.collector.pool import PolicyPool, Trajectory  # noqa: E402
from repro.datastore import ShardWriter, ShardedPool, pack_pool  # noqa: E402

OUT_PATH = REPO / "BENCH_datastore.json"
STATE_DIM = 69


def synthetic_pool(n_rows: int, traj_len: int = 400, seed: int = 0) -> PolicyPool:
    """A pool of ``n_rows`` total transitions split into equal trajectories."""
    rng = np.random.default_rng(seed)
    trajs = []
    for i in range(max(n_rows // traj_len, 1)):
        trajs.append(
            Trajectory(
                scheme=f"s{i % 13}",
                env_id=f"env-{i}",
                multi_flow=bool(i % 2),
                states=rng.standard_normal((traj_len, STATE_DIM)),
                actions=rng.uniform(0.5, 2.0, size=traj_len),
                rewards=rng.uniform(0.0, 1.0, size=traj_len),
            )
        )
    return PolicyPool(trajs)


def pool_nbytes(pool: PolicyPool) -> int:
    return sum(
        t.states.nbytes + t.actions.nbytes + t.rewards.nbytes
        for t in pool.trajectories
    )


# --------------------------------------------------------------------------
# Phase runners
# --------------------------------------------------------------------------


def bench_ingest(pool: PolicyPool, store_dir: Path, shard_mb: int) -> dict:
    t0 = time.perf_counter()
    with ShardWriter(store_dir, shard_bytes=shard_mb << 20) as writer:
        for traj in pool.trajectories:
            writer.add(traj)
    elapsed = time.perf_counter() - t0
    mb = pool_nbytes(pool) / 1e6
    return {
        "pool_mb": round(mb, 2),
        "n_shards": writer.n_shards,
        "elapsed_s": round(elapsed, 3),
        "ingest_mb_per_s": round(mb / elapsed, 2),
    }


def bench_sampling(pool: PolicyPool, store_dir: Path,
                   draws: int, batch: int = 16, seq: int = 8) -> dict:
    sharded = ShardedPool.open(store_dir)

    a = pool.sample_sequences(batch, seq, np.random.default_rng(123))
    b = sharded.sample_sequences(batch, seq, np.random.default_rng(123))
    identical = all(np.array_equal(a[k], b[k]) for k in a)

    def run(p):
        rng = np.random.default_rng(7)
        t0 = time.perf_counter()
        for _ in range(draws):
            p.sample_sequences(batch, seq, rng)
        return time.perf_counter() - t0

    # warm each path once so file opens / cache build don't skew the clock
    run_mem = min(run(pool), run(pool))
    run_shard = min(run(sharded), run(sharded))
    windows = draws * batch
    return {
        "draws": draws,
        "batch": batch,
        "seq_len": seq,
        "bit_identical": identical,
        "in_memory_windows_per_s": round(windows / run_mem, 1),
        "sharded_windows_per_s": round(windows / run_shard, 1),
        "sharded_vs_memory": round(run_mem / run_shard, 3),
    }


def _reset_rss_watermark() -> None:
    # A child spawned via vfork/posix_spawn can inherit the parent's rusage
    # high-water mark; clearing refs restarts the kernel's VmHWM tracking.
    try:
        with open("/proc/self/clear_refs", "w") as f:
            f.write("5")
    except OSError:
        pass


def _peak_rss_kb() -> int:
    # Prefer VmHWM: unlike getrusage's ru_maxrss it tracks this process's
    # own address space, not the accounting inherited across vfork.
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _train_phase(pool_path: str, steps: int) -> dict:
    """Child-process body: train on either pool flavor, report peak RSS."""
    _reset_rss_watermark()
    from repro.core.networks import NetworkConfig
    from repro.core.training import train_sage_on_pool
    from repro.datastore import open_pool

    pool = open_pool(pool_path)
    net = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)
    train_sage_on_pool(pool, n_steps=steps, n_checkpoints=1,
                       net_config=net, seed=0)
    return {"peak_rss_mb": round(_peak_rss_kb() / 1024.0, 1), "steps": steps}


def bench_peak_rss(npz_path: Path, store_dir: Path, steps: int) -> dict:
    """Run the training phase once per pool flavor, each in a fresh process."""
    out = {}
    for key, pool_path in (("in_memory", npz_path), ("sharded", store_dir)):
        proc = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()),
             "--phase", "train", "--pool", str(pool_path),
             "--steps", str(steps)],
            capture_output=True, text=True, check=True,
        )
        out[key] = json.loads(proc.stdout)
    out["rss_saving_mb"] = round(
        out["in_memory"]["peak_rss_mb"] - out["sharded"]["peak_rss_mb"], 1
    )
    out["sharded_lower"] = (
        out["sharded"]["peak_rss_mb"] < out["in_memory"]["peak_rss_mb"]
    )
    return out


# --------------------------------------------------------------------------
# Orchestration
# --------------------------------------------------------------------------


def run_bench(tiny: bool = False, workdir: Path = None) -> dict:
    import tempfile

    n_rows = 60_000 if tiny else 200_000
    steps = 50 if tiny else 200
    draws = 100 if tiny else 300
    shard_mb = 4 if tiny else 16

    ctx = tempfile.TemporaryDirectory() if workdir is None else None
    base = Path(ctx.name) if ctx else Path(workdir)
    try:
        pool = synthetic_pool(n_rows)
        npz_path = base / "pool.npz"
        store_dir = base / "shards"
        pool.save(npz_path)

        result = {
            "scale": "tiny" if tiny else "small",
            "n_trajectories": len(pool),
            "n_transitions": pool.n_transitions,
            "train_steps": steps,
            "ingest": bench_ingest(pool, store_dir, shard_mb),
            "sampling": bench_sampling(pool, store_dir, draws),
            "peak_rss": bench_peak_rss(npz_path, store_dir, steps),
        }
        return result
    finally:
        if ctx:
            ctx.cleanup()


def write_report(result: dict, path: Path = OUT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1) + "\n")


def print_report(result: dict) -> None:
    ing, smp, rss = result["ingest"], result["sampling"], result["peak_rss"]
    print(f"\n=== datastore bench ({result['n_transitions']} transitions, "
          f"{ing['pool_mb']} MB) ===")
    print(f"ingest: {ing['ingest_mb_per_s']} MB/s into "
          f"{ing['n_shards']} shards")
    print(f"sampling: in-memory {smp['in_memory_windows_per_s']} windows/s, "
          f"sharded {smp['sharded_windows_per_s']} windows/s "
          f"({smp['sharded_vs_memory']}x), "
          f"bit-identical={smp['bit_identical']}")
    print(f"peak RSS over {result['train_steps']} train steps: "
          f"in-memory {rss['in_memory']['peak_rss_mb']} MB, "
          f"sharded {rss['sharded']['peak_rss_mb']} MB "
          f"(saving {rss['rss_saving_mb']} MB)")


# --------------------------------------------------------------------------
# pytest-benchmark entry point
# --------------------------------------------------------------------------


def test_datastore_throughput(benchmark):
    from conftest import once

    result = once(benchmark, lambda: run_bench(tiny=True))
    print_report(result)
    write_report(result)
    assert result["sampling"]["bit_identical"], (
        "sharded draws diverged from the in-memory pool"
    )
    assert result["peak_rss"]["sharded_lower"], (
        "sharded training should peak below the in-memory baseline"
    )


# --------------------------------------------------------------------------
# standalone entry point
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="seconds-scale smoke run (CI)")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    parser.add_argument("--phase", choices=("train",), default=None,
                        help=argparse.SUPPRESS)  # internal subprocess hook
    parser.add_argument("--pool", default="", help=argparse.SUPPRESS)
    parser.add_argument("--steps", type=int, default=50, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.phase == "train":
        print(json.dumps(_train_phase(args.pool, args.steps)))
        return 0

    result = run_bench(tiny=args.tiny)
    print_report(result)
    write_report(result, args.out)
    print(f"wrote {args.out}")
    if not result["sampling"]["bit_identical"]:
        print("ERROR: sharded draws diverged from the in-memory pool")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
