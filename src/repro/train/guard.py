"""DivergenceGuard: detect training blow-ups and roll back past them.

Offline CRR on heuristic-generated pools is normally stable, but a single
poisoned batch (NaN rewards from a corrupt shard, a mis-scaled reward
spike) can push the networks into a state no later batch repairs. The
guard watches every step's metrics for two failure signatures:

- **non-finite** — any watched metric is NaN/Inf, or exceeds ``abs_limit``
  (the numbers have already left the representable regime);
- **loss explosion** — the critic/policy loss jumps more than
  ``spike_factor`` times its own exponential moving average (the step
  regressed violently even though the numbers are still finite);

plus a third the engine reports directly: a **step failure**, where the
poisoned numbers crashed the training step with a numeric exception before
any metrics existed (e.g. NaN rewards breaking the C51 projection).

On detection the training engine restores its last good snapshot —
networks, optimizer moments, RNG state, sampler position, metric history —
and replays from there. Because injected faults are one-shot and real
poisoned batches are consumed by the failed step, the replay runs clean
and the final parameters are bit-identical to a run that never saw the
fault. The restart budget (``max_rollbacks``) keeps a persistently
divergent run from cycling forever: exhausting it raises
:class:`TrainingDiverged` with the rollback history attached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "GuardConfig",
    "DivergenceGuard",
    "RollbackEvent",
    "TrainingDiverged",
]

#: metrics the guard watches when the engine reports them
WATCHED_METRICS = ("critic_loss", "policy_loss")


@dataclass
class GuardConfig:
    """Detection thresholds and the restart budget."""

    #: loss > spike_factor * EMA(loss) counts as an explosion
    spike_factor: float = 50.0
    #: any watched metric beyond this magnitude is divergence outright
    abs_limit: float = 1e8
    #: EMA smoothing for the spike baseline
    ema_alpha: float = 0.2
    #: steps before spike detection arms (the EMA needs a baseline)
    warmup_steps: int = 5
    #: rollbacks allowed before :class:`TrainingDiverged` is raised
    max_rollbacks: int = 3
    #: snapshot cadence (in clean steps); 1 = every step, the only setting
    #: that guarantees a rollback replays *only* the poisoned step
    snapshot_every: int = 1


@dataclass
class RollbackEvent:
    """One detection + recovery, for the audit trail."""

    step: int  # training step (0-based) whose metrics tripped the guard
    reason: str  # "non-finite", "loss-spike", or "step-failure"
    detail: str  # which metric, its value, the threshold it broke
    restored_step: int  # steps_done of the snapshot that was restored


class TrainingDiverged(RuntimeError):
    """Raised when the rollback budget is exhausted."""

    def __init__(self, message: str, events: Optional[List[RollbackEvent]] = None):
        super().__init__(message)
        self.events: List[RollbackEvent] = list(events or [])


class DivergenceGuard:
    """Stateful divergence detector with a capped rollback budget.

    The training engine calls :meth:`check` with each step's metrics; a
    non-``None`` return is the :class:`RollbackEvent` the engine must act
    on (restore its snapshot, replay). The guard tracks the EMA baseline
    and the budget; the engine owns the snapshots.
    """

    def __init__(self, config: Optional[GuardConfig] = None) -> None:
        self.config = config or GuardConfig()
        self.events: List[RollbackEvent] = []
        self._ema: Dict[str, float] = {}
        self._steps_seen = 0

    # ------------------------------------------------------------------
    @property
    def rollbacks_used(self) -> int:
        return len(self.events)

    @property
    def budget_left(self) -> int:
        return max(self.config.max_rollbacks - len(self.events), 0)

    # ------------------------------------------------------------------
    def check(
        self, step: int, metrics: Dict[str, float], restored_step: int = 0
    ) -> Optional[RollbackEvent]:
        """Inspect one step's metrics; return a rollback order or ``None``.

        ``restored_step`` is recorded in the event (the ``steps_done`` the
        engine will restore to). Raises :class:`TrainingDiverged` when
        divergence is detected with no budget left.
        """
        cfg = self.config
        problem: Optional[RollbackEvent] = None
        for name in WATCHED_METRICS:
            if name not in metrics:
                continue
            value = float(metrics[name])
            if not math.isfinite(value):
                problem = RollbackEvent(
                    step=step, reason="non-finite",
                    detail=f"{name}={value}", restored_step=restored_step,
                )
                break
            if abs(value) > cfg.abs_limit:
                problem = RollbackEvent(
                    step=step, reason="non-finite",
                    detail=f"{name}={value:.3g} exceeds "
                           f"abs_limit={cfg.abs_limit:g}",
                    restored_step=restored_step,
                )
                break
            ema = self._ema.get(name)
            if (
                ema is not None
                and self._steps_seen >= cfg.warmup_steps
                and abs(value) > cfg.spike_factor * max(abs(ema), 1e-12)
            ):
                problem = RollbackEvent(
                    step=step, reason="loss-spike",
                    detail=f"{name}={value:.3g} is "
                           f">{cfg.spike_factor:g}x its EMA {ema:.3g}",
                    restored_step=restored_step,
                )
                break
        if problem is None:
            # clean step: fold it into the baseline
            for name in WATCHED_METRICS:
                if name not in metrics:
                    continue
                value = float(metrics[name])
                ema = self._ema.get(name)
                self._ema[name] = (
                    value if ema is None
                    else (1 - cfg.ema_alpha) * ema + cfg.ema_alpha * value
                )
            self._steps_seen += 1
            return None
        return self._spend_budget(problem)

    def record_failure(
        self, step: int, detail: str, restored_step: int = 0
    ) -> RollbackEvent:
        """A training step *raised* instead of returning metrics.

        Counts against the same rollback budget as metric-level detection;
        raises :class:`TrainingDiverged` when none is left.
        """
        return self._spend_budget(
            RollbackEvent(
                step=step, reason="step-failure",
                detail=detail, restored_step=restored_step,
            )
        )

    def _spend_budget(self, problem: RollbackEvent) -> RollbackEvent:
        if not self.budget_left:
            raise TrainingDiverged(
                f"training diverged at step {problem.step} "
                f"({problem.reason}: {problem.detail}) with the rollback "
                f"budget of {self.config.max_rollbacks} exhausted",
                events=self.events + [problem],
            )
        self.events.append(problem)
        return problem

    # ------------------------------------------------------------------
    def describe(self) -> List[Dict[str, object]]:
        """The rollback history as plain dicts (for status reports)."""
        return [
            {
                "step": e.step,
                "reason": e.reason,
                "detail": e.detail,
                "restored_step": e.restored_step,
            }
            for e in self.events
        ]
