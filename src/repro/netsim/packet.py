"""Packet objects exchanged over the simulated network.

Both data segments and ACKs are :class:`Packet` instances; ACKs carry the
cumulative acknowledgment plus a SACK-like ``sacked`` hint (the highest
sequence received), which lets the sender detect holes the same way a
kernel's SACK scoreboard does.
"""

from __future__ import annotations

from typing import Optional

#: Default maximum segment size, matching the common Ethernet MTU payload.
MSS_BYTES = 1500

#: Size of a bare ACK on the wire (negligible; the return path is uncongested).
ACK_BYTES = 40


class Packet:
    """A single data segment (or ACK) flowing through the network."""

    __slots__ = (
        "flow_id",
        "seq",
        "size",
        "sent_time",
        "enqueue_time",
        "is_ack",
        "is_retx",
        "ack_seq",
        "sacked_seq",
        "sack_holes",
        "ack_of_sent_time",
        "delivered_at",
        "ect",
        "ce",
        "ece",
    )

    def __init__(
        self,
        flow_id: int,
        seq: int,
        size: int = MSS_BYTES,
        sent_time: float = 0.0,
        is_ack: bool = False,
        is_retx: bool = False,
        ack_seq: int = -1,
        sacked_seq: int = -1,
        sack_holes: tuple = (),
        ack_of_sent_time: float = 0.0,
    ) -> None:
        self.flow_id = flow_id
        self.seq = seq
        self.size = size
        self.sent_time = sent_time
        self.enqueue_time = 0.0
        self.is_ack = is_ack
        self.is_retx = is_retx
        self.ack_seq = ack_seq
        self.sacked_seq = sacked_seq
        self.sack_holes = sack_holes
        self.ack_of_sent_time = ack_of_sent_time
        self.delivered_at: Optional[float] = None
        #: ECN: sender marks capability (ECT), the AQM sets CE on standing
        #: congestion, and the receiver echoes it on ACKs (ECE).
        self.ect = False
        self.ce = False
        self.ece = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else ("RETX" if self.is_retx else "DATA")
        return f"<{kind} flow={self.flow_id} seq={self.seq} t={self.sent_time:.4f}>"
