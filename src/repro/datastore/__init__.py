"""repro.datastore — the data plane: a sharded, mmap-backed trajectory store.

Sage's offline pool *is* the system: >1000 environments x 13 schemes of
``{state, action, reward}`` trajectories, collected once and then sampled
for every training run. The monolithic ``PolicyPool`` ``.npz`` must fit in
RAM twice over (arrays + concat cache); this package is the out-of-core
replacement:

- :class:`ShardWriter` (``writer``) — append-only streaming ingest with a
  fixed shard-size budget, per-file CRC32 checksums, and atomic
  tmp-then-rename commits;
- :class:`Manifest` / :func:`verify_store` (``manifest``) — the JSON index
  of every trajectory and shard, with integrity audit and corrupt-shard
  quarantine;
- :class:`ShardedPool` (``reader``) — the ``PolicyPool`` sampling API over
  ``np.load(mmap_mode="r")`` shards with a bounded hot-shard LRU;
  bit-identical draws for the same seed;
- ``convert`` — ``pool pack / merge / verify / stats`` plumbing, including
  :func:`open_pool`, which opens either pool flavor by path.
"""

from repro.datastore.convert import (
    merge_stores,
    open_pool,
    pack_pool,
    store_stats,
    verify,
)
from repro.datastore.manifest import (
    Manifest,
    ShardRecord,
    TrajectoryRecord,
    VerifyReport,
    verify_store,
)
from repro.datastore.reader import ShardCache, ShardedPool
from repro.datastore.writer import (
    DEFAULT_SHARD_BYTES,
    ShardWriter,
    StoreFullError,
)

__all__ = [
    "DEFAULT_SHARD_BYTES",
    "Manifest",
    "ShardCache",
    "ShardRecord",
    "ShardWriter",
    "ShardedPool",
    "StoreFullError",
    "TrajectoryRecord",
    "VerifyReport",
    "merge_stores",
    "open_pool",
    "pack_pool",
    "store_stats",
    "verify",
    "verify_store",
]
