"""The learned ECN-marking predictor: a tiny pure-numpy MLP over queue telemetry.

The queue side of the arms race (ROADMAP: learned-AQM co-evolution) needs a
marking policy that is *itself* learned. :class:`EcnPredictor` maps four
queue-telemetry features — buffer occupancy, sojourn-time EWMA, arrival
rate, drain rate — to the probability that an arriving packet, if admitted,
will experience a sojourn time above the congestion target. The
:class:`~repro.netsim.aqm.LearnedECN` discipline thresholds/draws against
that probability to CE-mark (or, for non-ECT senders, drop) at enqueue.

The model is deliberately small (one tanh hidden layer, default 8 units;
``hidden=0`` degenerates to plain logistic regression) so a forward pass is
a handful of numpy ops on a length-4 vector — cheap enough for the
per-packet enqueue path. Training lives in :mod:`repro.aqm_learn`; this
module owns the forward pass and persistence.

Persistence follows the repo's checkpoint contract (same as
``repro.distill`` and train checkpoints): schema-versioned ``.npz``, CRC32
sidecar, tmp-then-``os.replace`` atomic writes, and a clear ``ValueError``
instead of a half-loaded model on corruption.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = [
    "EcnPredictor", "FEATURES", "FEATURE_DIM", "SCHEMA_VERSION",
    "normalize_features",
]

#: bump when the .npz layout changes; loaders reject other versions
SCHEMA_VERSION = 1

#: the queue-telemetry feature vector, in order
FEATURES = ("occupancy", "sojourn_ewma", "arrival_rate", "drain_rate")
FEATURE_DIM = len(FEATURES)

#: fixed normalization scales (occupancy is already a fraction; times map
#: 100 ms -> 1.0; rates map 48 Mbps -> 1.0 — the GR unit's conventions)
_FEATURE_SCALE = np.array([1.0, 0.1, 48e6, 48e6], dtype=np.float64)

_REQUIRED_KEYS = (
    "meta/schema_version", "model/w1", "model/b1", "model/w2", "model/b2",
)


def normalize_features(features: np.ndarray) -> np.ndarray:
    """The fixed scale-and-clip transform applied before the forward pass.

    Exposed so the :mod:`repro.aqm_learn` fitter trains on exactly the
    inputs the live queue will present at inference time.
    """
    x = np.asarray(features, dtype=np.float64)
    return np.clip(x / _FEATURE_SCALE, -10.0, 10.0)


class EcnPredictor:
    """One-hidden-layer MLP: telemetry features -> marking probability."""

    def __init__(
        self,
        w1: np.ndarray,
        b1: np.ndarray,
        w2: np.ndarray,
        b2: np.ndarray,
        meta: Optional[dict] = None,
    ) -> None:
        w1 = np.asarray(w1, dtype=np.float64)
        b1 = np.asarray(b1, dtype=np.float64)
        w2 = np.asarray(w2, dtype=np.float64)
        b2 = np.asarray(b2, dtype=np.float64)
        if w1.ndim != 2 or w1.shape[0] != FEATURE_DIM:
            raise ValueError(
                f"w1 must be ({FEATURE_DIM}, H), got shape {w1.shape}"
            )
        hidden = w1.shape[1]
        if b1.shape != (hidden,) or w2.shape != (hidden,) or b2.shape != (1,):
            raise ValueError(
                f"inconsistent layer shapes: w1 {w1.shape}, b1 {b1.shape}, "
                f"w2 {w2.shape}, b2 {b2.shape}"
            )
        self.w1, self.b1, self.w2, self.b2 = w1, b1, w2, b2
        self.meta = dict(meta or {})

    @property
    def hidden(self) -> int:
        return self.w1.shape[1]

    # ------------------------------------------------------------------
    @classmethod
    def init(cls, hidden: int = 8, seed: int = 0) -> "EcnPredictor":
        """Fresh, seed-deterministic initialization (for the fitter).

        ``hidden=0`` builds a single pass-through unit so the model reduces
        to logistic regression over the four features.
        """
        if hidden < 0:
            raise ValueError(f"hidden must be >= 0, got {hidden}")
        rng = np.random.default_rng(seed)
        h = max(hidden, 1)
        w1 = rng.normal(0.0, 0.5, size=(FEATURE_DIM, h))
        b1 = np.zeros(h)
        w2 = rng.normal(0.0, 0.5, size=(h,))
        b2 = np.zeros(1)
        return cls(w1, b1, w2, b2, meta={"hidden": hidden, "seed": seed})

    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Marking probabilities for an ``(N, 4)`` (or ``(4,)``) batch."""
        x = np.asarray(features, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[None, :]
        if x.shape[1] != FEATURE_DIM:
            raise ValueError(
                f"expected {FEATURE_DIM} telemetry features, got {x.shape[1]}"
            )
        x = normalize_features(x)
        hid = np.tanh(x @ self.w1 + self.b1)
        z = hid @ self.w2 + self.b2[0]
        p = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))
        return p[0] if squeeze else p

    def predict_one(
        self,
        occupancy: float,
        sojourn_ewma: float,
        arrival_rate: float,
        drain_rate: float,
    ) -> float:
        """Scalar fast path for the per-packet enqueue hook."""
        return float(
            self.predict_proba(
                np.array(
                    [occupancy, sojourn_ewma, arrival_rate, drain_rate]
                )
            )
        )

    # ------------------------------------------------------------------
    # persistence (same atomicity/integrity contract as distill/train)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Atomically write the predictor, with a CRC32 sidecar."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "meta/schema_version": np.array([SCHEMA_VERSION], dtype=np.int64),
            "meta/json": np.frombuffer(
                json.dumps(self.meta, sort_keys=True).encode("utf-8"),
                dtype=np.uint8,
            ),
            "model/w1": self.w1,
            "model/b1": self.b1,
            "model/w2": self.w2,
            "model/b2": self.b2,
        }
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
        os.replace(tmp, path)
        crc = 0
        with open(path, "rb") as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                crc = zlib.crc32(block, crc)
        sidecar = path.with_name(path.name + ".crc32")
        tmp = sidecar.with_name(sidecar.name + ".tmp")
        tmp.write_text(
            json.dumps({"crc32": crc & 0xFFFFFFFF, "bytes": path.stat().st_size})
            + "\n"
        )
        os.replace(tmp, sidecar)

    @classmethod
    def load(cls, path) -> "EcnPredictor":
        """Load and verify a :meth:`save` file; ``ValueError`` on corruption."""
        path = Path(path)
        sidecar = path.with_name(path.name + ".crc32")
        if sidecar.exists():
            expected = json.loads(sidecar.read_text())
            crc = 0
            with open(path, "rb") as fh:
                for block in iter(lambda: fh.read(1 << 20), b""):
                    crc = zlib.crc32(block, crc)
            if (
                (crc & 0xFFFFFFFF) != int(expected["crc32"])
                or path.stat().st_size != int(expected["bytes"])
            ):
                raise ValueError(
                    f"ECN predictor checkpoint {path} fails its integrity "
                    f"check (crc/size mismatch vs {sidecar.name}); refusing "
                    f"to load"
                )
        try:
            data = np.load(path, allow_pickle=False)
        except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
            raise ValueError(
                f"ECN predictor checkpoint {path} is not a valid .npz "
                f"archive: {exc}"
            ) from exc
        try:
            with data:
                keys = set(data.files)
                missing = [k for k in _REQUIRED_KEYS if k not in keys]
                if missing:
                    raise ValueError(
                        f"ECN predictor checkpoint {path} is missing keys "
                        f"{missing}; not an ECN-predictor file"
                    )
                version = int(data["meta/schema_version"][0])
                if version != SCHEMA_VERSION:
                    raise ValueError(
                        f"ECN predictor checkpoint {path} has schema version "
                        f"{version}; this build reads version {SCHEMA_VERSION}"
                    )
                meta = {}
                if "meta/json" in keys:
                    meta = json.loads(
                        np.asarray(data["meta/json"]).tobytes().decode("utf-8")
                    )
                return cls(
                    w1=np.asarray(data["model/w1"]),
                    b1=np.asarray(data["model/b1"]),
                    w2=np.asarray(data["model/w2"]),
                    b2=np.asarray(data["model/b2"]),
                    meta=meta,
                )
        except (zipfile.BadZipFile, EOFError, OSError) as exc:
            raise ValueError(
                f"ECN predictor checkpoint {path} is not a valid .npz "
                f"archive: {exc}"
            ) from exc
