"""Tests for the Flow wrapper and FlowStats."""

import numpy as np
import pytest

from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate
from repro.tcp.cc_base import make_scheme
from repro.tcp.flow import Flow


def make(scheme="cubic", start_at=0.0):
    loop = EventLoop()
    net = Network(loop, FlatRate(12e6), TailDrop(120_000))
    flow = Flow(net, 0, scheme, min_rtt=0.04, start_at=start_at)
    return loop, flow


class TestFlow:
    def test_accepts_scheme_instance(self):
        loop = EventLoop()
        net = Network(loop, FlatRate(12e6), TailDrop(120_000))
        cc = make_scheme("vegas")
        flow = Flow(net, 0, cc, min_rtt=0.04)
        assert flow.cc is cc

    def test_delayed_start(self):
        loop, flow = make(start_at=1.0)
        flow.start()
        loop.run_until(0.5)
        assert flow.sender.sent_packets == 0
        loop.run_until(2.0)
        assert flow.sender.sent_packets > 0

    def test_sampling_grid(self):
        loop, flow = make()
        flow.start()
        for i in range(1, 21):
            loop.run_until(i * 0.1)
            flow.sample()
        s = flow.stats()
        assert len(s.times) == 20
        assert len(s.throughput_series) == 20
        assert len(s.cwnd_series) == 20

    def test_throughput_series_sums_to_total(self):
        loop, flow = make()
        flow.start()
        for i in range(1, 21):
            loop.run_until(i * 0.1)
            flow.sample()
        s = flow.stats()
        bits_from_series = sum(t * 0.1 for t in s.throughput_series)
        assert bits_from_series == pytest.approx(
            flow.receiver.total_bytes * 8.0, rel=0.05
        )

    def test_stats_fields_sane(self):
        loop, flow = make()
        flow.start()
        for i in range(1, 31):
            loop.run_until(i * 0.1)
            flow.sample()
        flow.stop()
        s = flow.stats()
        assert s.scheme == "cubic"
        assert s.duration == pytest.approx(3.0, rel=0.05)
        assert 0 <= s.loss_rate <= 1
        assert s.p95_owd >= s.avg_owd * 0.5
        assert s.avg_rtt >= s.avg_owd  # round trip at least the one-way

    def test_zero_interval_sample_ignored(self):
        loop, flow = make()
        flow.start()
        loop.run_until(0.5)
        flow.sample()
        flow.sample()  # same instant: must not divide by zero
        assert len(flow._thr_samples) == 1

    def test_stats_before_any_sample(self):
        loop, flow = make()
        flow.start()
        loop.run_until(0.3)
        s = flow.stats()
        assert s.times == []
        assert s.avg_throughput_bps > 0
