"""Tests for pruning, quantization, and distillation (Section 8)."""

import numpy as np
import pytest

from repro.collector.gr_unit import STATE_DIM
from repro.collector.pool import PolicyPool, Trajectory
from repro.core.compress import (
    DistillationTrainer,
    nonzero_count,
    param_count,
    prune_magnitude,
    quantize_per_tensor,
)
from repro.core.networks import FastPolicy, NetworkConfig, SagePolicy

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)
SMALLER = NetworkConfig(enc_dim=8, gru_dim=8, n_components=2, n_atoms=7)


def make_policy(seed=0):
    return SagePolicy(TINY, np.random.default_rng(seed))


def make_pool(seed=0, n=4, length=20):
    rng = np.random.default_rng(seed)
    return PolicyPool([
        Trajectory(
            scheme=f"s{i}", env_id=f"e{i}", multi_flow=False,
            states=rng.standard_normal((length, STATE_DIM)) * 0.1,
            actions=rng.uniform(0.8, 1.2, size=length),
            rewards=rng.uniform(0, 1, size=length),
        )
        for i in range(n)
    ])


class TestPruning:
    def test_achieves_requested_sparsity(self):
        pol = make_policy()
        before = nonzero_count(pol)
        report = prune_magnitude(pol, 0.5)
        after = nonzero_count(pol)
        assert after < before
        matrix_sparsities = [v for v in report.values()]
        assert np.mean(matrix_sparsities) == pytest.approx(0.5, abs=0.05)

    def test_zero_sparsity_is_noop(self):
        pol = make_policy()
        state = pol.state_dict()
        prune_magnitude(pol, 0.0)
        for k, v in pol.state_dict().items():
            np.testing.assert_array_equal(v, state[k])

    def test_biases_untouched(self):
        pol = make_policy()
        pol.trunk.fc.b.data[:] = 0.123
        prune_magnitude(pol, 0.9)
        np.testing.assert_allclose(pol.trunk.fc.b.data, 0.123)

    def test_pruned_policy_still_runs(self):
        pol = make_policy()
        prune_magnitude(pol, 0.7)
        fast = FastPolicy(pol)
        r, _ = fast.step(np.zeros(STATE_DIM), fast.initial_state())
        assert 1 / 3 <= r <= 3

    def test_mild_pruning_barely_changes_actions(self):
        pol = make_policy(seed=3)
        fast0 = FastPolicy(pol)
        h = fast0.initial_state()
        s = np.random.default_rng(1).standard_normal(STATE_DIM) * 0.1
        r0, _ = fast0.step(s, h)
        prune_magnitude(pol, 0.1)
        fast1 = FastPolicy(pol)
        r1, _ = fast1.step(s, fast1.initial_state())
        assert abs(r1 - r0) < 0.3

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            prune_magnitude(make_policy(), 1.0)


class TestQuantization:
    def test_error_bounded_by_step(self):
        pol = make_policy()
        report = quantize_per_tensor(pol, n_bits=8)
        for name, err in report.items():
            assert err < 0.05  # int8 on O(0.3) init weights

    def test_more_bits_less_error(self):
        err8 = max(quantize_per_tensor(make_policy(1), 8).values())
        err4 = max(quantize_per_tensor(make_policy(1), 4).values())
        assert err8 < err4

    def test_quantized_policy_close_to_original(self):
        pol = make_policy(seed=5)
        s = np.random.default_rng(2).standard_normal(STATE_DIM) * 0.1
        fast0 = FastPolicy(pol)
        r0, _ = fast0.step(s, fast0.initial_state())
        quantize_per_tensor(pol, n_bits=8)
        fast1 = FastPolicy(pol)
        r1, _ = fast1.step(s, fast1.initial_state())
        assert abs(r1 - r0) < 0.1

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize_per_tensor(make_policy(), 1)


class TestDistillation:
    def test_student_smaller_than_teacher(self):
        teacher = make_policy()
        trainer = DistillationTrainer(teacher, SMALLER, make_pool())
        assert param_count(trainer.student) < param_count(teacher)

    def test_loss_decreases(self):
        trainer = DistillationTrainer(
            make_policy(7), SMALLER, make_pool(7), batch_size=8, seq_len=4,
        )
        first = np.mean([trainer.train_step() for _ in range(3)])
        trainer.train(40)
        last = np.mean([trainer.train_step() for _ in range(3)])
        assert last < first

    def test_student_closer_to_teacher_than_untrained(self):
        from repro.core.agent import SageAgent

        teacher = make_policy(9)
        trainer = DistillationTrainer(
            teacher, SMALLER, make_pool(9), batch_size=8, seq_len=4, seed=9,
        )
        untrained = SagePolicy(SMALLER, np.random.default_rng(99))
        trainer.train(120)

        rng = np.random.default_rng(3)
        states = rng.standard_normal((10, STATE_DIM)) * 0.1

        def gap(policy):
            a_agent = SageAgent(policy, deterministic=True)
            t_agent = SageAgent(teacher, deterministic=True)
            a_agent.reset()
            t_agent.reset()
            diffs = []
            for s in states:
                diffs.append(
                    abs(np.log(a_agent.act(s)) - np.log(t_agent.act(s)))
                )
            return float(np.mean(diffs))

        assert gap(trainer.student) < gap(untrained)

    def test_agent_name(self):
        trainer = DistillationTrainer(make_policy(), SMALLER, make_pool())
        assert trainer.agent().name == "sage-distilled"
