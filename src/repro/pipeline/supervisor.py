"""The pipeline supervisor: resumable staged execution with retries.

Runs a fixed sequence of stages (collect -> verify -> train -> eval for
the standard pipeline), journaling every transition to a
:class:`~repro.pipeline.state.PipelineState` file before and after it
happens. The contract:

- **Crash-safe.** ``kill -9`` at any instant leaves a consistent state
  file; ``run(resume=True)`` skips stages already ``done`` (re-validating
  their artifacts via the stage's ``check`` hook) and restarts the stage
  that was ``running`` when the process died.
- **Retries with backoff.** A stage that raises is retried up to its
  ``retries`` budget with exponential backoff; exhausting the budget marks
  it ``failed``, persists the error, and raises :class:`PipelineError`.
- **Auditable.** Every skip, restart, retry, and failure is appended to
  the state's event log; stage ``info`` dicts carry the fault/recovery
  events their subsystems reported.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro.pipeline.state import PipelineState, StageState

__all__ = ["StageSpec", "Supervisor", "PipelineError"]


class PipelineError(RuntimeError):
    """A stage failed permanently (its retry budget is exhausted)."""


@dataclass
class StageSpec:
    """One stage: how to run it, re-validate it, and retry it.

    ``run(context)`` does the work and returns the stage's ``info`` dict
    (fault/recovery events under ``"events"``). ``check(context)`` answers
    "are this stage's artifacts still valid?" — consulted on resume before
    trusting a ``done`` status; ``None`` means trust the journal.
    """

    name: str
    run: Callable[[Dict], Optional[Dict]]
    check: Optional[Callable[[Dict], bool]] = None
    retries: int = 1
    backoff_s: float = 0.5


class Supervisor:
    """Drives a stage sequence against a persistent state file.

    Parameters
    ----------
    stages:
        The ordered :class:`StageSpec` list.
    state_path:
        Where the :class:`PipelineState` JSON lives.
    context:
        Mutable dict handed to every stage's ``run`` / ``check`` (the
        standard pipeline puts its config, paths, and the shared chaos
        injector here).
    after_stage:
        Test hook called as ``after_stage(name, state)`` right after a
        stage completes and its state is persisted — the seam the kill -9
        resume tests use to die at an exact stage boundary.
    """

    def __init__(
        self,
        stages: Sequence[StageSpec],
        state_path,
        context: Optional[Dict] = None,
        after_stage: Optional[Callable[[str, PipelineState], None]] = None,
    ) -> None:
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")
        self.stages = list(stages)
        self.state_path = Path(state_path)
        self.context: Dict = context if context is not None else {}
        self.after_stage = after_stage

    # ------------------------------------------------------------------
    def run(
        self, resume: bool = False, config: Optional[Dict] = None
    ) -> PipelineState:
        """Execute the pipeline; returns the final state (all stages done).

        ``resume=False`` starts a fresh journal even if one exists;
        ``resume=True`` picks up an existing one (missing file is not an
        error — the run simply starts from scratch).
        """
        state = self._open_state(resume, config)
        state.save(self.state_path)
        for spec in self.stages:
            st = state.stage(spec.name)
            if st.status == "done":
                if spec.check is None or spec.check(self.context):
                    state.log(
                        "supervisor",
                        f"stage {spec.name} already done; skipping",
                    )
                    state.save(self.state_path)
                    continue
                st.status = "pending"
                st.info = {}
                state.log(
                    "supervisor",
                    f"stage {spec.name} marked done but its artifacts fail "
                    "validation; re-running",
                )
            elif st.status == "running":
                state.log(
                    "supervisor",
                    f"stage {spec.name} was interrupted mid-run "
                    "(process died); restarting it",
                )
            elif st.status == "failed":
                state.log(
                    "supervisor",
                    f"stage {spec.name} previously failed; retrying from "
                    "scratch",
                )
            self._run_stage(spec, st, state)
            if self.after_stage is not None:
                self.after_stage(spec.name, state)
        state.log("supervisor", "pipeline complete")
        state.save(self.state_path)
        return state

    # ------------------------------------------------------------------
    def _open_state(
        self, resume: bool, config: Optional[Dict]
    ) -> PipelineState:
        if resume and self.state_path.exists():
            state = PipelineState.load(self.state_path)
            journal = {s.name for s in state.stages}
            for spec in self.stages:  # tolerate newly-added stages
                if spec.name not in journal:
                    state.stages.append(StageState(name=spec.name))
            state.log("supervisor", "resuming from persisted state")
            return state
        state = PipelineState(
            config=dict(config or {}),
            stages=[StageState(name=s.name) for s in self.stages],
        )
        state.log("supervisor", "starting fresh run")
        return state

    def _run_stage(
        self, spec: StageSpec, st: StageState, state: PipelineState
    ) -> None:
        attempts_allowed = max(spec.retries, 0) + 1
        for attempt in range(attempts_allowed):
            if attempt > 0 and spec.backoff_s > 0:
                delay = spec.backoff_s * (2 ** (attempt - 1))
                state.log(
                    spec.name, f"backing off {delay:g}s before retry"
                )
                state.save(self.state_path)
                time.sleep(delay)
            st.status = "running"
            st.attempts += 1
            st.started_at = time.time()
            st.finished_at = None
            st.error = None
            state.save(self.state_path)  # a kill here reads as interrupted
            try:
                info = spec.run(self.context)
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - journaled, re-raised
                st.error = f"{type(exc).__name__}: {exc}"
                state.log(
                    spec.name, f"attempt {st.attempts} failed: {st.error}"
                )
                if attempt + 1 >= attempts_allowed:
                    st.status = "failed"
                    st.finished_at = time.time()
                    state.save(self.state_path)
                    raise PipelineError(
                        f"stage {spec.name} failed after {st.attempts} "
                        f"attempt(s): {st.error}"
                    ) from exc
                state.save(self.state_path)
                continue
            st.status = "done"
            st.finished_at = time.time()
            st.info = dict(info or {})
            state.save(self.state_path)
            return
