"""Sage's Policy Collector (Section 4.1 of the paper).

Turns runs of arbitrary kernel CC schemes over emulated networks into
generalized ``{state, action, reward}`` trajectories:

- :mod:`~repro.collector.gr_unit` — the General Representation unit: the
  69-element state vector of Table 1 computed over three observation
  windows, and the cwnd-ratio output representation.
- :mod:`~repro.collector.rewards` — the two reward functions: the power-style
  single-flow reward R1 (Eq. 1) and the TCP-friendliness reward R2 (Eq. 2).
- :mod:`~repro.collector.environments` — Set I (flat + step single-flow) and
  Set II (vs-Cubic) environment grids, plus the env → simulator builder.
- :mod:`~repro.collector.rollout` — runs a scheme (or a learned policy) in an
  environment and records the trajectory.
- :mod:`~repro.collector.pool` — the pool of policies: a dataset of
  trajectories with save/load and batch-sampling utilities.
- :mod:`~repro.collector.parallel` — the parallel rollout engine: fans
  ``(scheme, env)`` tasks across worker processes with deterministic
  seeding, crash recovery, and progress reporting.
"""

from repro.collector.gr_unit import (
    GRUnit,
    STATE_DIM,
    STATE_FIELDS,
    WindowConfig,
    normalize_state,
)
from repro.collector.rewards import (
    single_flow_reward,
    friendliness_reward,
    RewardConfig,
)
from repro.collector.environments import (
    aqm_environments,
    EnvConfig,
    build_network,
    build_scenario,
    incast_environments,
    parking_lot_environments,
    proxy_split_environments,
    set1_environments,
    set2_environments,
    topology_class_environments,
    training_environments,
)
from repro.collector.rollout import RolloutResult, collect_trajectory, run_policy
from repro.collector.pool import PolicyPool, Trajectory
from repro.collector.parallel import (
    CollectionReport,
    OrderedConsumer,
    ProgressEvent,
    RolloutTask,
    collect_pool_parallel,
    collect_pool_to_store,
    collect_rollouts,
    derive_seed,
    make_rollout_tasks,
    run_tasks,
)

__all__ = [
    "GRUnit",
    "STATE_DIM",
    "STATE_FIELDS",
    "WindowConfig",
    "normalize_state",
    "single_flow_reward",
    "friendliness_reward",
    "RewardConfig",
    "EnvConfig",
    "build_network",
    "build_scenario",
    "aqm_environments",
    "incast_environments",
    "parking_lot_environments",
    "proxy_split_environments",
    "set1_environments",
    "set2_environments",
    "topology_class_environments",
    "training_environments",
    "RolloutResult",
    "collect_trajectory",
    "run_policy",
    "PolicyPool",
    "Trajectory",
    "CollectionReport",
    "OrderedConsumer",
    "ProgressEvent",
    "RolloutTask",
    "collect_pool_parallel",
    "collect_pool_to_store",
    "collect_rollouts",
    "derive_seed",
    "make_rollout_tasks",
    "run_tasks",
]
