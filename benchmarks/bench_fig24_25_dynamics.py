"""Figs. 24 & 25 — friendliness dynamics in small and large buffers.

One flow of each tested scheme vs a head-start Cubic flow: small buffer
(80 pkt) and large buffer (1280 pkt) at 24 Mbps / 40 ms. Paper shape:
delay-based schemes starve in the large buffer; aggressive online-RL-style
policies crush Cubic; Sage and Cubic share.
"""

import numpy as np

from conftest import once

from repro.collector.environments import EnvConfig
from repro.evalx.leagues import Participant, run_participant

PKT = 1500.0


def _env(buffer_pkts, name):
    bdp_bytes = 24e6 * 0.04 / 8
    return EnvConfig(
        env_id=name, kind="flat", bw_mbps=24.0, min_rtt=0.04,
        buffer_bdp=buffer_pkts * PKT / bdp_bytes, n_competing_cubic=1,
        duration=20.0,
    )


def test_fig24_25_buffer_dynamics(benchmark, sage_agent):
    small = _env(80, "fig24-small")
    large = _env(1280, "fig24-large")
    parts = [
        Participant.from_agent(sage_agent),
        Participant.from_scheme("vegas"),
        Participant.from_scheme("copa"),
        Participant.from_scheme("ledbat"),
        Participant.from_scheme("cubic"),
    ]

    def run():
        out = {}
        for env in (small, large):
            for p in parts:
                r = run_participant(p, env)
                out[(p.name, env.env_id)] = (
                    r.stats.avg_throughput_bps,
                    r.competitor_stats[0].avg_throughput_bps,
                )
        return out

    out = once(benchmark, run)
    print("\n=== Fig. 24/25: scheme vs cubic (Mbps), small & large buffer ===")
    for (name, env_id), (mine, cubic) in out.items():
        print(f"{name:>8} [{env_id}]: scheme={mine / 1e6:5.2f}  cubic={cubic / 1e6:5.2f}")

    # the well-known large-buffer starvation of delay-based schemes
    vegas_large = out[("vegas", "fig24-large")]
    assert vegas_large[0] < 0.5 * vegas_large[1]
    # cubic-vs-cubic reference stays roughly balanced
    cc = out[("cubic", "fig24-large")]
    assert 0.2 < cc[0] / max(cc[1], 1.0) < 5.0
