"""Tests for internet/cellular evaluation, similarity, t-SNE, dynamics."""

import numpy as np
import pytest

from repro.collector.environments import EnvConfig
from repro.collector.pool import PolicyPool
from repro.collector.rollout import collect_trajectory
from repro.evalx.dynamics import (
    aqm_experiment,
    behavior_scenarios,
    fairness_experiment,
    friendliness_experiment,
    frontier_experiment,
)
from repro.evalx.internet import (
    AWS_SERVERS,
    GENI_SERVERS,
    cellular_envs,
    evaluate_paths,
    inter_continental_envs,
    intra_continental_envs,
)
from repro.evalx.leagues import Participant
from repro.evalx.similarity import (
    distance_cdf,
    min_cosine_distances,
    similarity_index,
    similarity_table,
    transition_matrix,
)
from repro.evalx.tsne import tsne


class TestInternetEnvs:
    def test_table4_server_counts(self):
        assert len(GENI_SERVERS) == 15
        assert len(AWS_SERVERS) == 13

    def test_intra_rtts_in_paper_range(self):
        for env in intra_continental_envs():
            assert 0.007 <= env.min_rtt <= 0.070

    def test_inter_rtts_in_paper_range(self):
        for env in inter_continental_envs():
            assert 0.070 <= env.min_rtt <= 0.237

    def test_cellular_defaults_to_23_traces(self):
        envs = cellular_envs()
        assert len(envs) == 23
        assert all(e.kind == "cellular" for e in envs)

    def test_envs_deterministic(self):
        a = [e.min_rtt for e in inter_continental_envs()]
        b = [e.min_rtt for e in inter_continental_envs()]
        assert a == b

    def test_evaluate_paths_normalization(self):
        parts = [Participant.from_scheme(s) for s in ("cubic", "vegas")]
        envs = intra_continental_envs(duration=4.0, n_paths=2)
        report = evaluate_paths(parts, envs, tag="test")
        for p in ("cubic", "vegas"):
            assert 0.0 < report.norm_throughput[p] <= 1.0
            assert report.norm_delay[p] >= 1.0 - 1e-9
            assert report.norm_delay_p95[p] >= report.norm_delay[p] - 0.35
        # somebody is the throughput reference on each path
        assert max(report.norm_throughput.values()) > 0.8
        assert "cubic" in report.format_table()


def _rollout(scheme="cubic", duration=4.0, env_id="sim", bw=12.0):
    env = EnvConfig(env_id=env_id, kind="flat", bw_mbps=bw, min_rtt=0.04,
                    buffer_bdp=2.0, duration=duration)
    return collect_trajectory(env, scheme)


class TestSimilarity:
    def test_transition_matrix_shape(self):
        r = _rollout()
        m = transition_matrix(r)
        assert m.shape == (r.length - 1, 2 * 69 + 1)

    def test_distance_zero_against_self(self):
        r = _rollout()
        pool = PolicyPool()
        pool.add_rollout(r)
        cdf = distance_cdf(r, pool)
        np.testing.assert_allclose(cdf, 0.0, atol=1e-9)

    def test_distance_positive_against_different(self):
        r1 = _rollout("vegas")
        r2 = _rollout("cubic")
        pool = PolicyPool()
        pool.add_rollout(r2)
        cdf = distance_cdf(r1, pool)
        assert cdf[-1] > 0.0
        assert np.all(np.diff(cdf) >= 0)  # sorted

    def test_similarity_one_for_identical(self):
        r = _rollout()
        assert similarity_index(r, r) == pytest.approx(1.0)

    def test_similarity_bounded(self):
        s = similarity_index(_rollout("vegas"), _rollout("cubic"))
        assert -1.0 <= s <= 1.0

    def test_similarity_table_checks_alignment(self):
        r = _rollout()
        with pytest.raises(ValueError):
            similarity_table([r], {"cubic": []})

    def test_min_cosine_distances_identity(self):
        x = np.random.default_rng(0).standard_normal((10, 5))
        d = min_cosine_distances(x, x)
        np.testing.assert_allclose(d, 0.0, atol=1e-9)


class TestTsne:
    def test_output_shape(self):
        x = np.random.default_rng(0).standard_normal((30, 10))
        y = tsne(x, n_iter=60)
        assert y.shape == (30, 2)

    def test_separates_two_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((20, 8)) * 0.1
        b = rng.standard_normal((20, 8)) * 0.1 + 8.0
        y = tsne(np.vstack([a, b]), n_iter=250, perplexity=8.0)
        ca, cb = y[:20].mean(axis=0), y[20:].mean(axis=0)
        within = max(np.linalg.norm(y[:20] - ca, axis=1).mean(),
                     np.linalg.norm(y[20:] - cb, axis=1).mean())
        between = np.linalg.norm(ca - cb)
        assert between > 2.0 * within

    def test_needs_four_points(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((3, 2)))


class TestDynamics:
    def test_behavior_scenarios_match_fig17(self):
        s1, s2, s3 = behavior_scenarios()
        assert s1.kind == "step" and s1.step_m == 2.0
        assert s2.kind == "step" and s2.step_m == 0.5
        assert s3.n_competing_cubic == 1
        # the paper's 450 KB buffer at 24 Mbps / 20 ms
        assert s1.buffer_bytes == pytest.approx(450e3, rel=0.02)

    def test_fairness_same_scheme_flows_converge(self):
        res = fairness_experiment(
            Participant.from_scheme("cubic"), n_flows=2, join_every=3.0,
            bw_mbps=12.0, duration=16.0,
        )
        assert len(res.flow_stats) == 2
        assert res.jain_index() > 0.7

    def test_friendliness_counts_flows(self):
        res = friendliness_experiment(
            Participant.from_scheme("cubic"), n_cubic=3, bw_mbps=24.0,
            duration=8.0,
        )
        assert len(res.flow_stats) == 4

    def test_aqm_experiment_covers_all_aqms(self):
        out = aqm_experiment(
            [Participant.from_scheme("cubic")], bw_mbps=12.0, duration=4.0,
        )
        assert set(out["cubic"]) == {"headdrop", "taildrop", "pie", "bode", "codel"}
        for thr, owd in out["cubic"].values():
            assert thr > 0 and owd > 0

    def test_frontier_shallow_and_deep(self):
        out = frontier_experiment(
            [Participant.from_scheme("vegas"), Participant.from_scheme("cubic")],
            bw_mbps=12.0, duration=5.0,
        )
        assert set(out) == {"shallow", "deep"}
        # deep buffers let loss-based cubic hold more delay than vegas
        assert out["deep"]["cubic"][1] > out["deep"]["vegas"][1]
