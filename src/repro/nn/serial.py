"""Checkpointing: save/load a Module's parameter tree as ``.npz``."""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import numpy as np

from repro.nn.layers import Module


def save_params(module: Module, path) -> None:
    """Write a module's state dict to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    # npz keys cannot contain '/', dots are fine.
    np.savez_compressed(path, **state)


def load_params(module: Module, path) -> None:
    """Load a state dict produced by :func:`save_params` into ``module``."""
    with np.load(Path(path)) as data:
        state: Dict[str, np.ndarray] = {k: data[k] for k in data.files}
    module.load_state_dict(state)
