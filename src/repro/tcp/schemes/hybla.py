"""TCP Hybla (Caini & Firrincieli — Int. J. Satellite Comm. 2004).

Equalizes the window growth of long-RTT (e.g. satellite) connections to a
reference 25 ms connection: with ``ρ = RTT / RTT0``, slow start adds
``2^ρ - 1`` packets per ACK and congestion avoidance ``ρ² / cwnd``.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Hybla(CongestionControl):
    """RTT-compensated AIMD for large-latency paths."""

    name = "hybla"

    RTT0 = 0.025  # reference round-trip time, seconds
    RHO_MAX = 8.0  # safety cap on the equalization factor
    SS_INC_MAX = 8.0  # cap on the per-ACK slow-start increment

    def __init__(self) -> None:
        self.rho = 1.0

    def _update_rho(self, sock) -> None:
        rtt = sock.srtt_or_min
        if rtt > 0:
            self.rho = min(max(rtt / self.RTT0, 1.0), self.RHO_MAX)

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        self._update_rho(sock)
        if self.in_slow_start(sock):
            inc = min((2.0 ** self.rho) - 1.0, self.SS_INC_MAX)
            sock.cwnd = min(sock.cwnd + inc * n_acked, sock.ssthresh + inc * n_acked)
        else:
            sock.cwnd += (self.rho * self.rho) * n_acked / max(sock.cwnd, 1.0)
