"""Tests for Mahimahi trace-file interoperability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.mahimahi import (
    mahimahi_from_rate,
    parse_mahimahi_lines,
    trace_from_mahimahi,
    write_mahimahi,
)
from repro.netsim.packet import MSS_BYTES


class TestParsing:
    def test_basic(self):
        assert parse_mahimahi_lines(["0", "1", "1", "5"]) == [0, 1, 1, 5]

    def test_skips_comments_and_blanks(self):
        assert parse_mahimahi_lines(["# hdr", "", "3"]) == [3]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_mahimahi_lines(["abc"])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            parse_mahimahi_lines(["-1"])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            parse_mahimahi_lines(["5", "1"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_mahimahi_lines([])


class TestConversion:
    def test_constant_trace_rate(self):
        # one packet per ms = 12 Mbps
        lines = [str(t) for t in range(1000)]
        trace = trace_from_mahimahi(lines, slot=0.1)
        assert trace.rate_at(0.05) == pytest.approx(MSS_BYTES * 8 * 1000, rel=0.01)

    def test_bursty_trace(self):
        # 5 opportunities at t=0, nothing for 99 ms
        lines = ["0", "0", "0", "0", "0", "99"]
        trace = trace_from_mahimahi(lines, slot=0.1)
        expected = 6 * MSS_BYTES * 8 / 0.1
        assert trace.rate_at(0.0) == pytest.approx(expected)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "cell.trace"
        rates = [12e6, 24e6, 6e6, 12e6]
        write_mahimahi(path, rates, slot=0.1)
        trace = trace_from_mahimahi(path, slot=0.1)
        # long-run average preserved within packet quantization
        assert trace.mean_rate(0.4) == pytest.approx(np.mean(rates), rel=0.15)

    def test_rate_to_lines_preserves_long_run_volume(self):
        rates = [10e6] * 20
        lines = mahimahi_from_rate(rates, slot=0.1)
        total_bits = len(lines) * MSS_BYTES * 8
        assert total_bits == pytest.approx(10e6 * 2.0, rel=0.05)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            mahimahi_from_rate([-1.0])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            mahimahi_from_rate([0.0, 0.0])

    @given(
        rate=st.floats(1e6, 50e6),
        n_slots=st.integers(5, 30),
    )
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_rate_property(self, rate, n_slots):
        lines = mahimahi_from_rate([rate] * n_slots, slot=0.1)
        trace = trace_from_mahimahi(lines, slot=0.1)
        measured = trace.mean_rate(n_slots * 0.1)
        assert measured == pytest.approx(rate, rel=0.25)


class TestSimulationWithTrace:
    def test_flow_over_mahimahi_trace(self):
        from repro.netsim.aqm import TailDrop
        from repro.netsim.engine import EventLoop
        from repro.netsim.network import Network
        from repro.tcp.flow import Flow

        lines = mahimahi_from_rate([12e6] * 50, slot=0.1)
        trace = trace_from_mahimahi(lines, slot=0.1)
        loop = EventLoop()
        net = Network(loop, trace, TailDrop(120_000))
        flow = Flow(net, 0, "cubic", min_rtt=0.04)
        flow.start()
        loop.run_until(4.0)
        thr = flow.receiver.total_bytes * 8 / 4.0
        assert thr > 0.6 * 12e6
