"""The TCP-like sender and receiver endpoints.

The sender implements the transport machinery every congestion-control
scheme in the paper relies on:

- sequence/cumulative-ACK reliability with a SACK-style "highest received"
  hint;
- RFC 6298 RTT estimation (srtt, rttvar, RTO) with Karn's algorithm;
- dupACK fast retransmit with NewReno partial-ACK recovery;
- RTO fallback with window collapse;
- delivery-rate sampling (the kernel's ``rate_sample``) for model-based
  schemes such as BBR2 and Westwood;
- optional pacing for rate-based schemes.

The congestion window lives on the socket (in packets, as a float) and is
mutated by the :class:`~repro.tcp.cc_base.CongestionControl` hooks, exactly
like a kernel module mutates ``tcp_sock``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.netsim.engine import EventHandle, EventLoop
from repro.netsim.network import Network
from repro.netsim.packet import ACK_BYTES, MSS_BYTES, Packet
from repro.tcp.cc_base import CongestionControl

# Socket congestion-avoidance states (mirrors kernel TCP_CA_*).
CA_OPEN = 0
CA_RECOVERY = 1
CA_LOSS = 2

#: RTO bounds. The lower bound is well below RFC 6298's 1 s so that
#: short simulated experiments are not dominated by timer waits; the
#: qualitative behaviour (timeout >> RTT) is preserved.
RTO_MIN = 0.2
RTO_MAX = 60.0

DUPACK_THRESHOLD = 3


class TcpReceiver:
    """Receiver endpoint: reassembly cursor plus per-packet ACKs.

    With ``delayed_acks=True`` the receiver follows RFC 1122 delayed
    acknowledgments: in-order segments are ACKed every second packet or
    after ``delack_timeout`` (40 ms here, the common kernel value), while
    out-of-order segments still elicit an immediate (dup)ACK. Default off —
    per-packet ACKs give the GR unit and rate-based schemes the cleanest
    signal, and most experiments in the paper's lineage disable delacks.
    """

    __slots__ = (
        "flow_id",
        "network",
        "delayed_acks",
        "delack_timeout",
        "_received",
        "rcv_next",
        "max_seq_seen",
        "total_packets",
        "total_bytes",
        "owd_sum",
        "owd_count",
        "owd_max",
        "acks_sent",
        "_delack_pending",
        "_delack_timer",
    )

    def __init__(
        self,
        flow_id: int,
        network: Network,
        delayed_acks: bool = False,
        delack_timeout: float = 0.040,
    ) -> None:
        self.flow_id = flow_id
        self.network = network
        self.delayed_acks = delayed_acks
        self.delack_timeout = delack_timeout
        self._received = set()
        self.rcv_next = 0  # next expected sequence number
        self.max_seq_seen = -1
        self.total_packets = 0
        self.total_bytes = 0
        #: running sums for one-way delay statistics
        self.owd_sum = 0.0
        self.owd_count = 0
        self.owd_max = 0.0
        self.acks_sent = 0
        self._delack_pending: Optional[Packet] = None
        self._delack_timer = None

    def on_data(self, pkt: Packet) -> None:
        """Network callback: a data packet arrived; record it and ACK."""
        now = self.network.loop.now
        owd = now - pkt.sent_time
        self.owd_sum += owd
        self.owd_count += 1
        if owd > self.owd_max:
            self.owd_max = owd
        if pkt.seq >= self.rcv_next and pkt.seq not in self._received:
            self._received.add(pkt.seq)
            self.total_packets += 1
            self.total_bytes += pkt.size
            if pkt.seq > self.max_seq_seen:
                self.max_seq_seen = pkt.seq
            while self.rcv_next in self._received:
                self._received.discard(self.rcv_next)
                self.rcv_next += 1
        # SACK-style hole report: sequences missing below the highest seen.
        # The scan is bounded (first 128 holes within a 1024-seq horizon) so
        # a pathological overshoot cannot make ACK generation quadratic;
        # holes beyond the horizon are reported once earlier ones fill.
        if self.max_seq_seen > self.rcv_next:
            horizon = min(self.max_seq_seen, self.rcv_next + 1024)
            holes_list = []
            for s in range(self.rcv_next, horizon):
                if s not in self._received:
                    holes_list.append(s)
                    if len(holes_list) >= 128:
                        break
            holes = tuple(holes_list)
        else:
            holes = ()
        ack = Packet(
            flow_id=self.flow_id,
            seq=pkt.seq,
            size=ACK_BYTES,
            sent_time=now,
            is_ack=True,
            # Carries whether the *triggering data packet* was a
            # retransmission, so the sender can take exact per-packet RTT
            # samples while honouring Karn's algorithm.
            is_retx=pkt.is_retx,
            ack_seq=self.rcv_next,
            sacked_seq=self.max_seq_seen,
            sack_holes=holes,
            ack_of_sent_time=pkt.sent_time,
        )
        # per-packet CE echo (DCTCP-style exact feedback)
        ack.ece = pkt.ce

        if not self.delayed_acks:
            self._emit(ack)
            return
        out_of_order = holes or pkt.seq != ack.ack_seq - 1
        if out_of_order or pkt.ce:
            # dup/SACK/ECN information must not be delayed
            self._flush_pending()
            self._emit(ack)
            return
        if self._delack_pending is not None:
            # second in-order segment: ack both now
            self._cancel_timer()
            self._delack_pending = None
            self._emit(ack)
            return
        self._delack_pending = ack
        self._delack_timer = self.network.loop.call_later(
            self.delack_timeout, self._on_delack_timeout
        )

    # -- delayed-ack machinery -------------------------------------------
    def _emit(self, ack: Packet) -> None:
        self.acks_sent += 1
        self.network.send_ack(ack)

    def _cancel_timer(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None

    def _flush_pending(self) -> None:
        if self._delack_pending is not None:
            self._cancel_timer()
            pending, self._delack_pending = self._delack_pending, None
            self._emit(pending)

    def _on_delack_timeout(self) -> None:
        self._delack_timer = None
        self._flush_pending()

    @property
    def mean_owd(self) -> float:
        """Mean one-way delay of all packets seen so far (seconds)."""
        return self.owd_sum / self.owd_count if self.owd_count else 0.0


class TcpSender:
    """Sender endpoint with pluggable congestion control.

    The application model is an infinite backlog (bulk transfer), matching
    the paper's experiments.
    """

    __slots__ = (
        "flow_id",
        "network",
        "loop",
        "cc",
        "max_cwnd",
        "cwnd",
        "ssthresh",
        "ca_state",
        "snd_nxt",
        "snd_una",
        "_unacked",
        "_dup_acks",
        "_recovery_point",
        "_high_sacked",
        "_lost_set",
        "_sacked_est",
        "srtt",
        "rttvar",
        "rto",
        "min_rtt",
        "latest_rtt",
        "delivered",
        "delivered_bytes",
        "lost",
        "lost_bytes",
        "retransmits",
        "sent_packets",
        "delivery_rate",
        "max_delivery_rate",
        "_delivered_time",
        "ecn_ce_acks",
        "total_acks",
        "_rto_timer",
        "_pacing_blocked",
        "_started",
        "_stopped",
        "start_time",
        "external_cwnd_control",
        "size_pkts",
        "on_complete",
        "completed_at",
    )

    def __init__(
        self,
        flow_id: int,
        network: Network,
        cc: CongestionControl,
        initial_cwnd: float = 10.0,
        max_cwnd: float = 4096.0,
        size_pkts: Optional[int] = None,
    ) -> None:
        if size_pkts is not None and size_pkts < 1:
            raise ValueError(f"size_pkts must be >= 1, got {size_pkts}")
        self.flow_id = flow_id
        self.network = network
        self.loop: EventLoop = network.loop
        self.cc = cc
        #: hard window cap, the analogue of the kernel's socket-buffer limit
        #: (tcp_wmem); keeps a runaway policy from flooding the simulator.
        self.max_cwnd = float(max_cwnd)

        # -- window state (packets) --
        self.cwnd = float(initial_cwnd)
        self.ssthresh = 1e9  # "infinite" until the first loss
        self.ca_state = CA_OPEN

        # -- sequence state --
        self.snd_nxt = 0  # next fresh sequence number to send
        self.snd_una = 0  # lowest unacknowledged sequence
        #: seq -> (sent_time, is_retx, delivered_snapshot, delivered_t_snapshot)
        self._unacked: Dict[int, Tuple[float, bool, int, float]] = {}
        self._dup_acks = 0
        self._recovery_point = -1
        self._high_sacked = -1
        #: sequences declared lost and not yet retransmitted (out of the pipe)
        self._lost_set: set = set()
        #: estimate of packets SACKed above snd_una (received, out of the pipe)
        self._sacked_est = 0

        # -- RTT estimation (RFC 6298) --
        self.srtt = 0.0
        self.rttvar = 0.0
        self.rto = 1.0
        self.min_rtt = float("inf")
        self.latest_rtt = 0.0

        # -- counters the GR unit samples --
        self.delivered = 0  # cumulatively acked packets
        self.delivered_bytes = 0
        self.lost = 0  # packets declared lost
        self.lost_bytes = 0
        self.retransmits = 0
        self.sent_packets = 0
        self.delivery_rate = 0.0  # latest per-ack rate sample, bits/s
        self.max_delivery_rate = 0.0
        self._delivered_time = 0.0
        self.ecn_ce_acks = 0  # ACKs carrying an ECE echo
        self.total_acks = 0

        # -- timers/pacing --
        self._rto_timer: Optional[EventHandle] = None
        self._pacing_blocked = False
        self._started = False
        self._stopped = False
        self.start_time = 0.0

        #: when set, the cwnd is frozen and driven externally (Sage's
        #: Execution block and the RL baselines use this).
        self.external_cwnd_control = False

        # -- finite flows (open-loop workloads) --
        #: total packets to send, or None for an unbounded flow
        self.size_pkts = size_pkts
        #: called with this sender once the final packet is cumulatively acked
        self.on_complete: Optional[Callable[["TcpSender"], None]] = None
        self.completed_at: Optional[float] = None

        self.cc.on_init(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Begin transmitting at absolute simulation time ``at``."""
        if self._started:
            raise RuntimeError("sender already started")
        self._started = True

        def _go() -> None:
            self.start_time = self.loop.now
            self._delivered_time = self.loop.now
            self._try_send()

        if at <= self.loop.now:
            _go()
        else:
            self.loop.call_at(at, _go)

    def stop(self) -> None:
        """Stop transmitting and cancel timers."""
        self._stopped = True
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Packets actually in the network: sent minus lost minus SACKed.

        This is the kernel's ``pipe`` — declaring a packet lost or learning
        it was received out of order removes it from the pipe, otherwise a
        big drop burst would freeze the sender against its own window.
        """
        return max(len(self._unacked) - len(self._lost_set) - self._sacked_est, 0)

    @property
    def inflight_bytes(self) -> int:
        return self.inflight * MSS_BYTES

    def _can_send(self) -> bool:
        return (
            not self._stopped
            and not self._pacing_blocked
            and self.inflight < self.cwnd
            and (self.size_pkts is None or self.snd_nxt < self.size_pkts)
        )

    def _try_send(self) -> None:
        while self._can_send():
            self._transmit(self.snd_nxt, is_retx=False)
            self.snd_nxt += 1
            rate = self.cc.pacing_rate(self)
            if rate is not None and rate > 0:
                self._pacing_blocked = True
                gap = MSS_BYTES * 8.0 / rate
                self.loop.call_later(gap, self._pacing_done)
                break

    def _pacing_done(self) -> None:
        self._pacing_blocked = False
        self._try_send()

    def _transmit(self, seq: int, is_retx: bool) -> None:
        now = self.loop.now
        pkt = Packet(
            flow_id=self.flow_id,
            seq=seq,
            size=MSS_BYTES,
            sent_time=now,
            is_retx=is_retx,
        )
        pkt.ect = self.cc.ecn_capable
        self._unacked[seq] = (now, is_retx, self.delivered, self._delivered_time)
        self._lost_set.discard(seq)  # a retransmission re-enters the pipe
        self.sent_packets += 1
        if is_retx:
            self.retransmits += 1
        self.network.send_data(pkt)
        self._arm_rto()

    # ------------------------------------------------------------------
    # receiving ACKs
    # ------------------------------------------------------------------
    def on_ack(self, ack: Packet) -> None:
        """Network callback: an ACK returned from the receiver."""
        if self._stopped:
            return
        now = self.loop.now
        new_cum = ack.ack_seq
        self._high_sacked = max(self._high_sacked, ack.sacked_seq)

        # Exact per-packet RTT sample: every ACK echoes the send time of the
        # data packet that triggered it. Karn's algorithm: skip samples for
        # retransmitted packets.
        if not ack.is_retx and ack.ack_of_sent_time > 0:
            self._update_rtt(now - ack.ack_of_sent_time)

        if ack.ece:
            self.ecn_ce_acks += 1
            if not self.external_cwnd_control:
                self.cc.on_ecn_ack(self, now)
        self.total_acks += 1

        if new_cum > self.snd_una:
            self._process_cumulative_ack(new_cum, now)
        else:
            self._dup_acks += 1

        self._update_sacked_estimate(ack)
        self._sack_loss_detection(ack, now)
        self._try_send()
        if (
            self.size_pkts is not None
            and self.completed_at is None
            and self.snd_una >= self.size_pkts
        ):
            self.completed_at = now
            self.stop()
            if self.on_complete is not None:
                self.on_complete(self)

    def _update_sacked_estimate(self, ack: Packet) -> None:
        """Estimate how many packets above ``snd_una`` the receiver holds.

        Within ``[snd_una, high_sacked]`` every non-hole sequence has been
        received out of order; those packets are no longer in the network
        and must not count against the congestion window.
        """
        if self._high_sacked < self.snd_una:
            self._sacked_est = 0
            return
        # Only count SACKs inside the range the hole report actually covers.
        # The receiver's scan stops at 1024 sequences past its cumulative ack
        # or at 128 holes, whichever first — beyond that boundary we know
        # nothing, and assuming "received" there made the pipe estimate
        # collapse and the sender overrun the network.
        coverage_end = min(self._high_sacked, ack.ack_seq + 1024)
        if len(ack.sack_holes) >= 128:
            coverage_end = min(coverage_end, ack.sack_holes[-1])
        if coverage_end < self.snd_una:
            self._sacked_est = 0
            return
        span = coverage_end - self.snd_una + 1
        holes_in_span = sum(
            1 for h in ack.sack_holes if self.snd_una <= h <= coverage_end
        )
        self._sacked_est = max(span - holes_in_span, 0)

    def _process_cumulative_ack(self, new_cum: int, now: float) -> None:
        n_acked = 0
        newest_sent = -1.0  # most recent transmit time among non-retx acked
        newest_record = None
        newest_record_sent = -1.0
        for seq in range(self.snd_una, new_cum):
            rec = self._unacked.pop(seq, None)
            if rec is None:
                continue
            n_acked += 1
            self._lost_set.discard(seq)
            sent_time, is_retx, _, _ = rec
            if sent_time > newest_record_sent:
                newest_record_sent = sent_time
                newest_record = rec
            if not is_retx and sent_time > newest_sent:
                # Karn's algorithm: only never-retransmitted packets give RTT
                # samples, and only the most recently sent one — older packets
                # acked by the same cumulative jump sat behind a hole and
                # would inflate srtt with recovery time.
                newest_sent = sent_time

        # RTT is sampled per-ACK in on_ack; here we only report the freshest
        # cumulative sample to the CC hook (<= 0 means "no valid sample").
        best_sample = self.latest_rtt if newest_sent > 0 else -1.0
        self.snd_una = new_cum
        self._dup_acks = 0
        # Forward progress cancels any RTO exponential backoff (RFC 6298).
        if self.srtt > 0:
            self.rto = min(max(self.srtt + 4.0 * self.rttvar, RTO_MIN), RTO_MAX)

        if n_acked == 0:
            return

        self.delivered += n_acked
        self.delivered_bytes += n_acked * MSS_BYTES

        # Delivery-rate sample (kernel rate_sample): packets delivered since
        # the newest acked packet was sent, over the elapsed interval.
        if newest_record is not None:
            _, _, delivered_snap, delivered_t_snap = newest_record
            interval = now - delivered_t_snap
            if interval > 1e-9:
                rate = (self.delivered - delivered_snap) * MSS_BYTES * 8.0 / interval
                self.delivery_rate = rate
                if rate > self.max_delivery_rate:
                    self.max_delivery_rate = rate
        self._delivered_time = now

        if best_sample > 0:
            self._update_rtt(best_sample)

        if self.ca_state != CA_OPEN:
            if self.snd_una > self._recovery_point:
                # full ACK: recovery complete
                self.ca_state = CA_OPEN
                self._lost_set.clear()
                self._sacked_est = 0
            else:
                # partial ACK: retransmit the next hole (NewReno)
                self._mark_lost_and_retransmit(self.snd_una)

        if self.ca_state == CA_OPEN and not self.external_cwnd_control:
            self.cc.on_ack(self, n_acked, best_sample, now)
            self.cwnd = min(max(self.cwnd, CongestionControl.MIN_CWND), self.max_cwnd)

        self._arm_rto()

    def _sack_loss_detection(self, ack: Packet, now: float) -> None:
        """Mark and repair holes the receiver reported (SACK scoreboard).

        A hole is declared lost once at least ``DUPACK_THRESHOLD`` packets
        above it have been received (the classic reordering guard). All lost
        holes are retransmitted in the same round, as a SACK-enabled kernel
        would, so a burst drop costs one recovery RTT instead of one RTT per
        hole.
        """
        holes = [
            h
            for h in ack.sack_holes
            if h >= self.snd_una and self._high_sacked - h >= DUPACK_THRESHOLD
        ]
        if not holes and not (
            self._dup_acks >= DUPACK_THRESHOLD and self.ca_state == CA_OPEN
        ):
            return
        # A hole is repairable if never retransmitted, or if its last
        # retransmission is itself stale (presumed dropped as well) — without
        # the second clause a dropped retransmission deadlocks the connection
        # until an exponentially backed-off RTO.
        stale_after = max(2.0 * self.srtt, 4.0 * self.rttvar, 0.05)
        fresh = []
        for h in holes or [self.snd_una]:
            rec = self._unacked.get(h)
            if rec is None:
                continue
            if not rec[1] or (now - rec[0]) > stale_after:
                fresh.append(h)
        if not fresh:
            return
        if self.ca_state == CA_OPEN:
            self.ca_state = CA_RECOVERY
            self._recovery_point = self.snd_nxt - 1
            if not self.external_cwnd_control:
                self.cc.on_loss_event(self, now)
        # Mark every detected hole lost right away (it leaves the pipe), but
        # rate-limit actual repairs to a couple per ACK (PRR-style): a burst
        # of retransmissions would overflow the very queue that just dropped,
        # and every re-dropped retransmit stalls for a full RTO. Remaining
        # holes are re-reported by subsequent ACKs.
        for h in fresh:
            if h not in self._lost_set:
                self.lost += 1
                self.lost_bytes += MSS_BYTES
                self._lost_set.add(h)
        for h in fresh[:2]:
            self._transmit(h, is_retx=True)

    def _mark_lost_and_retransmit(self, seq: int) -> None:
        rec = self._unacked.get(seq)
        if rec is not None and rec[1]:
            # Already retransmitted once in this recovery; wait for RTO.
            return
        if seq not in self._lost_set:
            self.lost += 1
            self.lost_bytes += MSS_BYTES
        self._transmit(seq, is_retx=True)

    # ------------------------------------------------------------------
    # RTT / RTO
    # ------------------------------------------------------------------
    def _update_rtt(self, sample: float) -> None:
        self.latest_rtt = sample
        if sample < self.min_rtt:
            self.min_rtt = sample
        if self.srtt == 0.0:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, RTO_MIN), RTO_MAX)

    def _arm_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        if self._unacked and not self._stopped:
            self._rto_timer = self.loop.call_later(self.rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self._stopped or not self._unacked:
            return
        self.ca_state = CA_LOSS
        self._recovery_point = self.snd_nxt - 1
        self._dup_acks = 0
        self.lost += 1
        self.lost_bytes += MSS_BYTES
        if not self.external_cwnd_control:
            self.cc.on_rto(self, self.loop.now)
            self.cwnd = max(self.cwnd, 1.0)
        self.rto = min(self.rto * 2.0, RTO_MAX)  # exponential backoff
        # Everything outstanding is presumed lost (kernel behaviour): it
        # leaves the pipe and becomes eligible for fast retransmission, so
        # recovery restarts from a clean scoreboard.
        for seq, rec in list(self._unacked.items()):
            self._lost_set.add(seq)
            if rec[1]:
                # allow the walk of partial ACKs to retransmit it again
                self._unacked[seq] = (rec[0], False, rec[2], rec[3])
        self._transmit(self.snd_una, is_retx=True)
        self._try_send()

    # ------------------------------------------------------------------
    # external cwnd control (Sage Execution block / RL baselines)
    # ------------------------------------------------------------------
    def set_cwnd(self, cwnd: float) -> None:
        """Directly set the congestion window (packets).

        Used by learned policies: the agent computes a cwnd ratio and the
        Execution block enforces it through this API (the repo's equivalent
        of the paper's TCP Pure socket option).
        """
        self.cwnd = min(max(cwnd, 1.0), self.max_cwnd)
        self._try_send()

    # -- GR-unit convenience views --------------------------------------
    @property
    def srtt_or_min(self) -> float:
        """srtt, falling back to min_rtt before the first sample."""
        if self.srtt > 0:
            return self.srtt
        return self.min_rtt if self.min_rtt != float("inf") else 0.0
