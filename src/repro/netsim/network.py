"""Dumbbell network wiring senders, the bottleneck, and receivers.

Topology (the paper's emulation model):

::

    sender_1 ─┐                                    ┌─ receiver_1
    sender_2 ─┼─> [ AQM buffer | bottleneck link ] ┼─> receiver_2
       ...    ┘        shared, rate(t)             └─    ...

Data packets from every flow share the one bottleneck; each flow then sees
its own one-way propagation delay. ACKs return on an uncongested reverse
path. ``min_rtt`` of a flow is split evenly between the two directions.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.netsim.aqm import AQM, TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.traces import RateProcess


@dataclass
class PathConfig:
    """Per-flow path parameters.

    ``jitter`` adds a uniform random extra delay in ``[0, jitter]`` seconds
    to each data packet's forward propagation — enough jitter reorders
    packets, exercising the SACK machinery the way real multi-path WANs do.
    """

    min_rtt: float  # seconds, propagation round trip (no queueing)
    jitter: float = 0.0  # seconds of uniform forward-path delay jitter

    def __post_init__(self) -> None:
        if self.min_rtt <= 0:
            raise ValueError(f"min_rtt must be positive, got {self.min_rtt}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")

    @property
    def fwd_delay(self) -> float:
        return self.min_rtt / 2.0

    @property
    def rev_delay(self) -> float:
        return self.min_rtt / 2.0


class Network:
    """A single-bottleneck network instance shared by one or more flows.

    Endpoints register callbacks per flow id:

    - ``data_sink``: receiver-side, invoked when a data packet arrives.
    - ``ack_sink``: sender-side, invoked when an ACK arrives back.

    Senders inject data with :meth:`send_data`; receivers inject ACKs with
    :meth:`send_ack`.
    """

    def __init__(
        self, loop: EventLoop, rate: RateProcess, aqm: AQM, seed: int = 0
    ) -> None:
        self.loop = loop
        self.link = Link(loop, rate, aqm, self._on_link_deliver)
        self._jitter_rng = _random.Random(seed)
        self._paths: Dict[int, PathConfig] = {}
        self._data_sinks: Dict[int, Callable[[Packet], None]] = {}
        self._ack_sinks: Dict[int, Callable[[Packet], None]] = {}
        self.dropped_by_flow: Dict[int, int] = {}
        self.delivered_by_flow: Dict[int, int] = {}

    # -- registration ----------------------------------------------------
    def attach_flow(
        self,
        flow_id: int,
        path: PathConfig,
        data_sink: Callable[[Packet], None],
        ack_sink: Callable[[Packet], None],
    ) -> None:
        """Register a flow's path and its two delivery callbacks."""
        if flow_id in self._paths:
            raise ValueError(f"flow {flow_id} already attached")
        self._paths[flow_id] = path
        self._data_sinks[flow_id] = data_sink
        self._ack_sinks[flow_id] = ack_sink
        self.dropped_by_flow[flow_id] = 0
        self.delivered_by_flow[flow_id] = 0

    # -- data path ---------------------------------------------------------
    def send_data(self, pkt: Packet) -> None:
        """Sender entry point: offer a data packet to the bottleneck."""
        if pkt.flow_id not in self._paths:
            raise KeyError(f"unknown flow {pkt.flow_id}")
        accepted = self.link.send(pkt)
        if not accepted:
            self.dropped_by_flow[pkt.flow_id] += 1

    def _on_link_deliver(self, pkt: Packet) -> None:
        path = self._paths[pkt.flow_id]
        sink = self._data_sinks[pkt.flow_id]
        self.delivered_by_flow[pkt.flow_id] += 1
        delay = path.fwd_delay
        if path.jitter > 0:
            delay += self._jitter_rng.random() * path.jitter
        self.loop.call_later(delay, lambda p=pkt: sink(p))

    # -- ack path ----------------------------------------------------------
    def send_ack(self, ack: Packet) -> None:
        """Receiver entry point: return an ACK over the uncongested path."""
        path = self._paths[ack.flow_id]
        sink = self._ack_sinks[ack.flow_id]
        self.loop.call_later(path.rev_delay, lambda p=ack: sink(p))

    # -- introspection -------------------------------------------------------
    def min_rtt(self, flow_id: int) -> float:
        return self._paths[flow_id].min_rtt

    @property
    def queue_delay(self) -> float:
        return self.link.queue_delay()


def make_network(
    rate: RateProcess,
    buffer_bytes: int,
    aqm: Optional[AQM] = None,
    loop: Optional[EventLoop] = None,
) -> Network:
    """Convenience constructor: drop-tail dumbbell on a fresh event loop."""
    loop = loop if loop is not None else EventLoop()
    aqm = aqm if aqm is not None else TailDrop(buffer_bytes)
    return Network(loop, rate, aqm)
