"""repro.chaos — deterministic, seed-driven fault injection.

The resilience layer's proof obligation: every defense the pipeline claims
(collector re-dispatch and watchdog, datastore quarantine + repair,
training divergence rollback, serving heuristic fallback) is exercised by
replaying a :class:`FaultPlan` — a seeded, serializable fault schedule —
through a :class:`FaultInjector` threaded into each subsystem's ``chaos``
hook. Same seed, same faults, every run.
"""

from repro.chaos.inject import FaultInjector, FiredFault
from repro.chaos.plan import (
    DEFAULT_PARAMS,
    DEFAULT_UNIVERSES,
    SITES,
    FaultPlan,
    FaultSpec,
)
from repro.chaos.process import DEFAULT_RATES, FaultProcess

__all__ = [
    "DEFAULT_PARAMS",
    "DEFAULT_RATES",
    "DEFAULT_UNIVERSES",
    "SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultProcess",
    "FaultSpec",
    "FiredFault",
]
