"""Built-in heuristic fallbacks, expressed in the cwnd-ratio action space.

When a flow's inference keeps missing its tick deadline, the serving engine
degrades it to one of these controllers: a self-contained re-statement of a
kernel heuristic as a per-tick cwnd *ratio* (the Execution block's action
space), driven only by what the server already sees — the raw Table-1 GR
state plus its running estimate of the flow's cwnd.

They are deliberately small: the point is a safe, familiar control law to
ride out a serving brown-out, not a competitive scheme (the full kernel
implementations live in ``repro.tcp.schemes``).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

#: Table-1 indices the fallbacks read (see repro.collector.gr_unit).
_SRTT = 0  # smoothed RTT, seconds
_LOSS_DB = 60  # bytes newly lost over the last tick (0 = clean tick)

#: action clip, mirroring the GR unit's output representation
_RATIO_LO = 1.0 / 3.0
_RATIO_HI = 3.0


def _clip(ratio: float) -> float:
    return min(max(ratio, _RATIO_LO), _RATIO_HI)


class RatioFallback:
    """Interface: one heuristic controller per degraded flow."""

    name = "base"

    def ratio(self, state: np.ndarray, cwnd: float, dt: float) -> float:
        """Next cwnd ratio given the raw GR state, cwnd estimate, and tick.

        ``dt`` is the control interval in seconds; ``cwnd`` the server's
        estimate of the flow's current window in packets.
        """
        raise NotImplementedError

    # -- snapshot/restore (server crash tolerance) ---------------------
    def state_dict(self) -> Dict[str, float]:
        """JSON-able controller state; stateless fallbacks return ``{}``."""
        return {}

    def load_state(self, state: Dict[str, float]) -> None:
        """Restore :meth:`state_dict` output; default is a no-op."""


class CubicFallback(RatioFallback):
    """TCP CUBIC's window curve, re-derived as a per-tick ratio.

    On a loss tick: remember ``w_max``, cut to ``beta * cwnd``. Otherwise
    target ``W(t) = C (t - K)^3 + w_max`` with ``K = cbrt(w_max (1-beta)/C)``
    (RFC 8312 defaults C=0.4, beta=0.7) and emit ``target / cwnd``. Before
    the first loss it probes like slow start (doubling per RTT).
    """

    name = "cubic"
    C = 0.4
    BETA = 0.7

    __slots__ = ("_w_max", "_t")

    def __init__(self) -> None:
        self._w_max: float = 0.0
        self._t = 0.0  # seconds since the last loss epoch started

    def ratio(self, state: np.ndarray, cwnd: float, dt: float) -> float:
        cwnd = max(cwnd, 1.0)
        if state[_LOSS_DB] > 0.0:
            self._w_max = cwnd
            self._t = 0.0
            return _clip(self.BETA)
        if self._w_max <= 0.0:  # pre-loss: slow-start-style doubling per RTT
            rtt = max(state[_SRTT], dt)
            return _clip(2.0 ** (dt / rtt))
        self._t += dt
        k = (self._w_max * (1.0 - self.BETA) / self.C) ** (1.0 / 3.0)
        target = self.C * (self._t - k) ** 3 + self._w_max
        return _clip(target / cwnd)

    def state_dict(self) -> Dict[str, float]:
        return {"w_max": self._w_max, "t": self._t}

    def load_state(self, state: Dict[str, float]) -> None:
        self._w_max = float(state.get("w_max", 0.0))
        self._t = float(state.get("t", 0.0))


class AimdFallback(RatioFallback):
    """NewReno-style AIMD: +1 packet per RTT, halve on a loss tick."""

    name = "aimd"

    __slots__ = ()

    def ratio(self, state: np.ndarray, cwnd: float, dt: float) -> float:
        cwnd = max(cwnd, 1.0)
        if state[_LOSS_DB] > 0.0:
            return _clip(0.5)
        rtt = max(state[_SRTT], dt)
        return _clip(1.0 + dt / (rtt * cwnd))


_FALLBACKS: Dict[str, Callable[[], RatioFallback]] = {
    CubicFallback.name: CubicFallback,
    AimdFallback.name: AimdFallback,
}


def make_fallback(name: str) -> RatioFallback:
    """Instantiate a registered ratio-space fallback by name."""
    if name not in _FALLBACKS:
        raise ValueError(
            f"unknown fallback {name!r}; known: {sorted(_FALLBACKS)}"
        )
    return _FALLBACKS[name]()
