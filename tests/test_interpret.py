"""Tests for the saliency-based interpretability tools."""

import numpy as np
import pytest

from repro.collector.gr_unit import STATE_DIM, STATE_FIELDS
from repro.core.interpret import (
    action_gradient,
    group_saliency,
    input_saliency,
    top_signals,
)
from repro.core.networks import NetworkConfig, SagePolicy

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)


@pytest.fixture()
def policy():
    return SagePolicy(TINY, np.random.default_rng(0))


class TestActionGradient:
    def test_shape(self, policy):
        g = action_gradient(policy, np.zeros(STATE_DIM))
        assert g.shape == (STATE_DIM,)
        assert np.all(np.isfinite(g))

    def test_nonzero_somewhere(self, policy):
        g = action_gradient(policy, np.random.default_rng(1).standard_normal(STATE_DIM))
        assert np.abs(g).max() > 0

    def test_matches_finite_difference(self, policy):
        # Use a non-degenerate point: LayerNorm at a constant input vector
        # makes finite differences explode, so probe a random state.
        from repro.nn.autograd import Tensor, no_grad

        s_norm = np.random.default_rng(5).standard_normal(STATE_DIM) * 0.3

        def mean_of_top(v):
            with no_grad():
                x = Tensor(v[None, :])
                pre = policy.trunk.pre(x)
                gg, _ = policy.trunk.recurrent(pre, policy.trunk.initial_state(1))
                feat = policy.trunk.post(gg)
                logits, means, _ = policy.head._split(feat)
                comp = int(np.argmax(logits.data[0]))
                return float(means.data[0, comp])

        x = Tensor(s_norm[None, :], requires_grad=True)
        pre = policy.trunk.pre(x)
        gg, _ = policy.trunk.recurrent(pre, policy.trunk.initial_state(1))
        feat = policy.trunk.post(gg)
        logits, means, _ = policy.head._split(feat)
        comp = int(np.argmax(logits.data[0]))
        means[:, comp].sum().backward()
        g = x.grad[0]

        eps = 1e-6
        for idx in (0, 2, 30, 68):
            up, dn = s_norm.copy(), s_norm.copy()
            up[idx] += eps
            dn[idx] -= eps
            fd = (mean_of_top(up) - mean_of_top(dn)) / (2 * eps)
            assert g[idx] == pytest.approx(fd, abs=1e-4)


class TestSaliency:
    def test_keys_are_table1_fields(self, policy):
        sal = input_saliency(policy, np.zeros((3, STATE_DIM)))
        assert set(sal) == set(STATE_FIELDS)
        assert all(v >= 0 for v in sal.values())

    def test_top_signals_ordering(self, policy):
        sal = input_saliency(policy, np.random.default_rng(2).standard_normal((4, STATE_DIM)))
        top = top_signals(sal, k=5)
        assert len(top) == 5
        values = [v for _, v in top]
        assert values == sorted(values, reverse=True)

    def test_top_signals_rejects_bad_k(self, policy):
        with pytest.raises(ValueError):
            top_signals({}, k=0)

    def test_group_saliency_partitions_everything(self, policy):
        sal = input_saliency(policy, np.zeros((2, STATE_DIM)))
        groups = group_saliency(sal)
        assert set(groups) == {"delay", "throughput", "loss", "inflight", "control"}
        assert sum(groups.values()) == pytest.approx(sum(sal.values()))
