"""Evaluation framework: scores, winning rates, leagues, and deep dives.

- :mod:`~repro.evalx.scores` — the S_p (power) and S_fr (friendliness)
  scores, interval splitting, and winner determination (Section 5.1 +
  Appendix D).
- :mod:`~repro.evalx.leagues` — run a league of participants (kernel schemes
  and/or learned agents) over Set I / Set II and rank by winning rate
  (Figs. 1, 7, 9, 10, 20, 21; Tables 2, 3).
- :mod:`~repro.evalx.internet` — simulated GENI/AWS Internet paths and
  cellular-trace evaluations (Fig. 8, Fig. 26, Table 4).
- :mod:`~repro.evalx.similarity` — trajectory Distance CDFs (Fig. 11) and
  Similarity Indices (Fig. 13).
- :mod:`~repro.evalx.tsne` — minimal exact t-SNE (Fig. 16).
- :mod:`~repro.evalx.dynamics` — time-series experiments: behaviour samples,
  fairness, TCP-friendliness, AQM robustness (Figs. 17-19, 22-25, 27, 28).
"""

from repro.evalx.scores import (
    power_score,
    friendliness_score,
    interval_scores,
    determine_winners,
    winning_rates,
    ScoreEntry,
)
from repro.evalx.leagues import (
    Participant,
    LeagueResult,
    run_league,
    run_participant,
    HEURISTIC_LEAGUE,
    DELAY_LEAGUE_NAMES,
)
from repro.evalx.internet import (
    GENI_SERVERS,
    AWS_SERVERS,
    InternetReport,
    evaluate_paths,
    intra_continental_envs,
    inter_continental_envs,
    cellular_envs,
)
from repro.evalx.similarity import (
    distance_cdf,
    similarity_index,
    similarity_table,
    transition_matrix,
)
from repro.evalx.dynamics import (
    behavior_scenarios,
    fairness_experiment,
    friendliness_experiment,
    aqm_experiment,
    frontier_experiment,
    MultiFlowResult,
)
from repro.evalx.topo_matrix import (
    DEFAULT_MATRIX_SCHEMES,
    TopologyMatrix,
    run_topology_matrix,
)
from repro.evalx.tsne import tsne
from repro.evalx.plotting import ascii_scatter, ascii_timeseries, plot_flow_throughput
from repro.evalx.reporting import markdown_table, save_csv

__all__ = [
    "power_score",
    "friendliness_score",
    "interval_scores",
    "determine_winners",
    "winning_rates",
    "ScoreEntry",
    "Participant",
    "LeagueResult",
    "run_league",
    "run_participant",
    "HEURISTIC_LEAGUE",
    "DELAY_LEAGUE_NAMES",
    "GENI_SERVERS",
    "AWS_SERVERS",
    "InternetReport",
    "evaluate_paths",
    "intra_continental_envs",
    "inter_continental_envs",
    "cellular_envs",
    "distance_cdf",
    "similarity_index",
    "similarity_table",
    "transition_matrix",
    "behavior_scenarios",
    "fairness_experiment",
    "friendliness_experiment",
    "aqm_experiment",
    "frontier_experiment",
    "MultiFlowResult",
    "DEFAULT_MATRIX_SCHEMES",
    "TopologyMatrix",
    "run_topology_matrix",
    "tsne",
    "ascii_scatter",
    "ascii_timeseries",
    "plot_flow_throughput",
    "markdown_table",
    "save_csv",
]
