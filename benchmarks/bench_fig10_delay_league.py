"""Fig. 10 — the league of delay-based schemes.

Sage vs BBR2, Copa, C2TCP, LEDBAT, Vegas, Sprout. Paper shape: Sage ranks
first in both sets even though Set I is the home turf of delay-based
designs; Vegas/Sprout collapse in Set II.
"""

from conftest import bench_set1, bench_set2, once

from repro.evalx.leagues import DELAY_LEAGUE_NAMES, Participant, run_league


def test_fig10_delay_league(benchmark, sage_agent):
    parts = [Participant.from_scheme(s) for s in DELAY_LEAGUE_NAMES]
    parts.append(Participant.from_agent(sage_agent))

    def run():
        return run_league(parts, set1=bench_set1(), set2=bench_set2())

    result = once(benchmark, run)
    print("\n=== Fig. 10: delay-based league ===")
    print(result.format_table())
    # The paper's Set II collapse of pure delay-based schemes:
    assert result.set2_rates["vegas"] <= 0.15
    # Sage holds a competitive multi-flow rate against the delay league.
    sage_rank2 = [n for n, _ in result.ranking("set2")].index("sage")
    assert sage_rank2 <= 3
