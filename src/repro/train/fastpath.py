"""Raw-numpy no-grad sequence kernels for the fused CRR training engine.

Half of a CRR train step never needs gradients: the Bellman targets (target
networks) and the advantage filter (Eq. 6's ``f``). Running those through
the autograd graph costs one Python closure per op per timestep; these
kernels evaluate the identical math on plain arrays — the training-time
counterpart of :class:`~repro.core.networks.FastPolicy` — but batched over
*all* ``(B, L)`` timesteps at once and with preallocated ``out=`` scratch
buffers so the hot loop does not churn the allocator.

Layout convention (shared with the fused autograd path in
:mod:`repro.core.networks`): sequence batches are flattened **t-major** —
row ``t * B + i`` of a ``(L*B, ·)`` array is batch row ``i`` at timestep
``t`` — so per-timestep slices are contiguous ``(B, ·)`` blocks.

Weights are read from ``module.named_parameters()`` (a dict of array
views). They are *not* cached across steps because Polyak updates rebind
``p.data`` to fresh arrays; within a phase the caller may fetch the dict
once with :func:`params_of` and pass it to every kernel via ``p=``.

Numerics: these kernels use BLAS ``@`` (throughput) and split each GRU
gate's weight into input/hidden halves, so results agree with the
per-timestep autograd path to float rounding, not bitwise — see
``docs/architecture.md`` ("Training engine") for the equivalence contract.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.functional import leaky_relu_np, sigmoid_np, softmax_np
from repro.nn.heads import LOG_ACTION_HI, LOG_ACTION_LO

__all__ = [
    "BufferPool",
    "params_of",
    "policy_features_seq",
    "critic_recurrent_seq",
    "critic_q_logits",
    "critic_q_values",
    "gmm_split",
    "gmm_cdf",
    "gmm_sample",
    "project_target",
]


class BufferPool:
    """Named scratch arrays, reallocated only when a shape changes."""

    def __init__(self) -> None:
        self._bufs: Dict[str, np.ndarray] = {}

    def get(self, tag: str, shape: Tuple[int, ...]) -> np.ndarray:
        buf = self._bufs.get(tag)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=np.float64)
            self._bufs[tag] = buf
        return buf


def params_of(module) -> Dict[str, np.ndarray]:
    """Flat ``name -> ndarray`` view of a module's current parameters."""
    return {name: t.data for name, t in module.named_parameters()}


# --------------------------------------------------------------------------
# Trunk stages
# --------------------------------------------------------------------------


def _linear(
    p: Dict[str, np.ndarray],
    name: str,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    y = np.matmul(x, p[f"{name}.W"], out=out)
    y += p[f"{name}.b"]
    return y


def _layer_norm(
    p: Dict[str, np.ndarray], name: str, x: np.ndarray, out: np.ndarray
) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    np.subtract(x, mu, out=out)
    var = np.mean(out * out, axis=-1, keepdims=True)
    out /= np.sqrt(var + 1e-5)
    out *= p[f"{name}.gamma"]
    out += p[f"{name}.beta"]
    return out


def _pre_flat(
    p: Dict[str, np.ndarray], states: np.ndarray, bufs: BufferPool, tag: str
) -> np.ndarray:
    """Input encoder over all timesteps: ``(B, L, D) -> (L*B, E)`` t-major."""
    b, l, d = states.shape
    flat = np.ascontiguousarray(states.transpose(1, 0, 2)).reshape(l * b, d)
    e = p["trunk.enc1a.W"].shape[1]
    h = _linear(p, "trunk.enc1a", flat, out=bufs.get(f"{tag}.pre1", (l * b, e)))
    a = leaky_relu_np(h, out=bufs.get(f"{tag}.pre1a", (l * b, e)))
    return _linear(p, "trunk.enc1b", a, out=bufs.get(f"{tag}.pre2", (l * b, e)))


def _gru_seq(
    p: Dict[str, np.ndarray],
    pre_flat: np.ndarray,
    batch: int,
    bufs: BufferPool,
    tag: str,
) -> np.ndarray:
    """Fused GRU unroll over a t-major ``(L*B, E)`` input: ``-> (L*B, H)``.

    Gate input projections run as one matmul per gate for the whole
    sequence; only the ``(B, H) @ (H, H)`` hidden products stay sequential.
    """
    n, e = pre_flat.shape
    l = n // batch
    wz, wr, wn = p["trunk.gru.wz.W"], p["trunk.gru.wr.W"], p["trunk.gru.wn.W"]
    hdim = wz.shape[1]
    # all-timestep input projections, one gemm per gate
    xz = _linear_split(pre_flat, wz[:e], p["trunk.gru.wz.b"], bufs, f"{tag}.xz")
    xr = _linear_split(pre_flat, wr[:e], p["trunk.gru.wr.b"], bufs, f"{tag}.xr")
    xn = _linear_split(pre_flat, wn[:e], p["trunk.gru.wn.b"], bufs, f"{tag}.xn")
    wz_h, wr_h, wn_h = wz[e:], wr[e:], wn[e:]

    out = bufs.get(f"{tag}.rec", (n, hdim))
    z = bufs.get(f"{tag}.z", (batch, hdim))
    r = bufs.get(f"{tag}.r", (batch, hdim))
    g = bufs.get(f"{tag}.g", (batch, hdim))
    h = np.zeros((batch, hdim))
    for t in range(l):
        sl = slice(t * batch, (t + 1) * batch)
        np.matmul(h, wz_h, out=z)
        z += xz[sl]
        sigmoid_np(z, out=z)
        np.matmul(h, wr_h, out=r)
        r += xr[sl]
        sigmoid_np(r, out=r)
        r *= h  # r now holds r * h
        np.matmul(r, wn_h, out=g)
        g += xn[sl]
        np.tanh(g, out=g)
        # h' = (1 - z) * n + z * h, written into the output row block
        h_next = out[sl]
        np.multiply(z, h, out=h_next)
        z -= 1.0  # z - 1
        g *= z  # (z - 1) * n
        h_next -= g  # z*h - (z-1)*n = (1-z)*n + z*h
        h = h_next
    return out


def _linear_split(
    x: np.ndarray, w: np.ndarray, b: np.ndarray, bufs: BufferPool, tag: str
) -> np.ndarray:
    out = bufs.get(tag, (x.shape[0], w.shape[1]))
    np.matmul(x, w, out=out)
    out += b
    return out


def _post_flat(
    p: Dict[str, np.ndarray], g: np.ndarray, bufs: BufferPool, tag: str
) -> np.ndarray:
    """Post-recurrent stack on any ``(N, ·)`` batch: ``-> (N, E)``.

    Activations ping-pong between paired scratch buffers instead of being
    applied in place: ``leaky_relu_np``'s two-op src->dst path is several
    times faster than its masked in-place path.
    """
    n = g.shape[0]
    y = _layer_norm(p, "trunk.post_norm", g, out=bufs.get(f"{tag}.ln", g.shape))
    y = leaky_relu_np(y, out=bufs.get(f"{tag}.lna", y.shape))
    if "trunk.enc2.W" in p:
        e = p["trunk.enc2.W"].shape[1]
        y = _linear(p, "trunk.enc2", y, out=bufs.get(f"{tag}.enc2", (n, e)))
        np.tanh(y, out=y)
    e = p["trunk.fc.W"].shape[1]
    y = _linear(p, "trunk.fc", y, out=bufs.get(f"{tag}.fc", (n, e)))
    y = leaky_relu_np(y, out=bufs.get(f"{tag}.fca", y.shape))
    for res in ("trunk.res1", "trunk.res2"):
        t = _layer_norm(p, f"{res}.norm", y, out=bufs.get(f"{tag}.{res}.ln", y.shape))
        t = _linear(p, f"{res}.fc1", t, out=bufs.get(f"{tag}.{res}.h", y.shape))
        t = leaky_relu_np(t, out=bufs.get(f"{tag}.{res}.ha", t.shape))
        y += _linear(p, f"{res}.fc2", t, out=bufs.get(f"{tag}.{res}.o", y.shape))
    return y


def _recurrent_flat(
    module,
    states: np.ndarray,
    bufs: BufferPool,
    tag: str,
    p: Optional[Dict[str, np.ndarray]] = None,
) -> np.ndarray:
    if p is None:
        p = params_of(module)
    pre = _pre_flat(p, states, bufs, tag)
    if "trunk.gru.wz.W" not in p:  # "no GRU" ablation
        return pre
    return _gru_seq(p, pre, states.shape[0], bufs, tag)


# --------------------------------------------------------------------------
# Policy side
# --------------------------------------------------------------------------


def policy_features_seq(
    policy,
    states: np.ndarray,
    bufs: BufferPool,
    tag: str = "pol",
    p: Optional[Dict[str, np.ndarray]] = None,
) -> np.ndarray:
    """Trunk features for a ``(B, L, D)`` batch: ``-> (L*B, E)`` t-major."""
    if p is None:
        p = params_of(policy)
    g = _recurrent_flat(policy, states, bufs, tag, p=p)
    return _post_flat(p, g, bufs, tag)


def gmm_split(
    policy, feats: np.ndarray, p: Optional[Dict[str, np.ndarray]] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Head projection -> (logits, means, log_std), each ``(N, k)``."""
    if p is None:
        p = params_of(policy)
    out = feats @ p["head.proj.W"] + p["head.proj.b"]
    k = policy.head.n_components
    logits = out[:, 0:k]
    means = np.tanh(out[:, k : 2 * k]) * ((LOG_ACTION_HI - LOG_ACTION_LO) / 2.0)
    log_std = np.clip(
        out[:, 2 * k : 3 * k], policy.head.log_std_min, policy.head.log_std_max
    )
    return logits, means, log_std


def gmm_cdf(logits: np.ndarray) -> np.ndarray:
    """Per-row mixture CDF for :func:`gmm_sample`'s ``cdf=`` fast path.

    Matches ``rng.choice``'s internal normalization (``cumsum`` then divide
    by the last column). Compute it once over all ``(N, k)`` rows and slice;
    it consumes no RNG, so precomputation cannot perturb the stream.
    """
    p = softmax_np(logits)
    cdf = np.cumsum(p, axis=1, out=p)
    cdf /= cdf[:, -1:]
    return cdf


def gmm_sample(
    logits: np.ndarray,
    means: np.ndarray,
    log_std: np.ndarray,
    rng: np.random.Generator,
    cdf: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Draw action ratios ``(B,)``, RNG-compatible with ``GMMHead.sample``.

    ``GMMHead.sample`` calls ``rng.choice(k, p=p[i])`` per row, which draws
    exactly one ``random()`` double and picks via
    ``cdf.searchsorted(u, side='right')``. One batched ``rng.random(B)``
    consumes the same bitstream in the same order, and the vectorized
    ``(cdf <= u).sum`` reproduces searchsorted-right — so both the stream
    *and* the selected components are bit-identical to the per-row loop
    (then one ``standard_normal(B)``, as in the original).

    Pass ``cdf=gmm_cdf(logits)[rows]`` to reuse one softmax/cumsum across
    repeated draws from the same rows (the ``m_samples`` filter loop)."""
    if cdf is None:
        cdf = gmm_cdf(logits)
    b = means.shape[0]
    u = rng.random(b)
    comps = (cdf <= u[:, None]).sum(axis=1)
    rows = np.arange(b)
    mu = means[rows, comps]
    sigma = np.exp(log_std[rows, comps])
    u = mu + sigma * rng.standard_normal(b)
    return np.exp(np.clip(u, LOG_ACTION_LO, LOG_ACTION_HI))


# --------------------------------------------------------------------------
# Critic side
# --------------------------------------------------------------------------


def critic_recurrent_seq(
    critic,
    states: np.ndarray,
    bufs: BufferPool,
    tag: str = "crit",
    p: Optional[Dict[str, np.ndarray]] = None,
) -> np.ndarray:
    """Action-independent recurrent features: ``(B, L, D) -> (L*B, H)``."""
    return _recurrent_flat(critic, states, bufs, tag, p=p)


def critic_q_logits(
    critic,
    rec: np.ndarray,
    log_actions: np.ndarray,
    bufs: BufferPool,
    tag: str = "crit",
    p: Optional[Dict[str, np.ndarray]] = None,
) -> np.ndarray:
    """Distributional logits for ``(N, H)`` features + ``(N,)`` actions."""
    if p is None:
        p = params_of(critic)
    n, hdim = rec.shape
    xa = bufs.get(f"{tag}.xa", (n, hdim + 1))
    xa[:, :hdim] = rec
    xa[:, hdim] = log_actions
    mixed = _linear(p, "action_mix", xa, out=bufs.get(f"{tag}.mix", (n, hdim)))
    mixed = leaky_relu_np(mixed, out=bufs.get(f"{tag}.mixa", mixed.shape))
    y = _post_flat(p, mixed, bufs, f"{tag}.q")
    return _linear(
        p, "head.proj", y, out=bufs.get(f"{tag}.logits", (n, critic.head.n_atoms))
    )


def critic_q_values(
    critic,
    rec: np.ndarray,
    log_actions: np.ndarray,
    bufs: BufferPool,
    tag: str = "crit",
    p: Optional[Dict[str, np.ndarray]] = None,
) -> np.ndarray:
    """Scalar expected Q values ``(N,)`` (softmax over atoms, then E[Z])."""
    logits = critic_q_logits(critic, rec, log_actions, bufs, tag, p=p)
    probs = softmax_np(logits, out=bufs.get(f"{tag}.probs", logits.shape))
    return probs @ critic.head.atoms


def project_target(
    head, rewards: np.ndarray, gamma: float, next_probs: np.ndarray
) -> np.ndarray:
    """Vectorized ``DistributionalHead.project_target`` (C51, Eq. 5).

    Replaces the per-atom ``np.add.at`` scatter loop with two flat
    ``bincount`` scatters over all ``(N, n_atoms)`` cells. Summation order
    differs from the reference loop, so the result matches to float
    rounding (covered by the engine's pinned equivalence tolerance), not
    bitwise.
    """
    n, k = next_probs.shape
    tz = np.clip(rewards[:, None] + gamma * head.atoms[None, :], head.v_min, head.v_max)
    pos = (tz - head.v_min) / head.delta
    lower = np.floor(pos).astype(np.int64)
    upper = np.ceil(pos).astype(np.int64)
    lower_w = next_probs * ((upper - pos) + (lower == upper))
    upper_w = next_probs * (pos - lower)
    rows = np.arange(n, dtype=np.int64)[:, None] * k
    target = np.bincount((rows + lower).ravel(), lower_w.ravel(), minlength=n * k)
    target += np.bincount((rows + upper).ravel(), upper_w.ravel(), minlength=n * k)
    return target.reshape(n, k)
