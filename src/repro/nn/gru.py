"""Gated Recurrent Unit (Chung et al. 2014).

Fig. 6's memory component: the GRU lets Sage's policy propagate hidden state
across timesteps, which the ablation (Fig. 12) shows is the single most
important architectural piece.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.autograd import Tensor, concat
from repro.nn.layers import Linear, Module


class GRU(Module):
    """Single-layer GRU cell, unrolled step-by-step.

    Gates (standard formulation)::

        z = sigmoid(W_z [x, h])
        r = sigmoid(W_r [x, h])
        n = tanh(W_n [x, r*h])
        h' = (1 - z) * n + z * h
    """

    def __init__(self, in_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        self.hidden_dim = hidden_dim
        self.wz = Linear(in_dim + hidden_dim, hidden_dim, rng)
        self.wr = Linear(in_dim + hidden_dim, hidden_dim, rng)
        self.wn = Linear(in_dim + hidden_dim, hidden_dim, rng)

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))

    def step(self, x: Tensor, h: Tensor) -> Tensor:
        """One timestep: (B, in_dim), (B, H) -> (B, H)."""
        xh = concat([x, h], axis=-1)
        z = self.wz(xh).sigmoid()
        r = self.wr(xh).sigmoid()
        xrh = concat([x, r * h], axis=-1)
        n = self.wn(xrh).tanh()
        return (1.0 - z) * n + z * h

    def forward(
        self, xs: List[Tensor], h0: Optional[Tensor] = None
    ) -> Tuple[List[Tensor], Tensor]:
        """Unroll over a list of per-timestep inputs (each (B, in_dim)).

        Returns the list of hidden states and the final hidden state.
        """
        if not xs:
            raise ValueError("empty input sequence")
        h = h0 if h0 is not None else self.initial_state(xs[0].shape[0])
        outs: List[Tensor] = []
        for x in xs:
            h = self.step(x, h)
            outs.append(h)
        return outs, h

    def forward_seq(self, x_seq: Tensor, h0: Optional[Tensor] = None) -> Tensor:
        """Fused sequence unroll: ``(L, B, in_dim) -> (L, B, H)``.

        Each gate's weight is split into its input and hidden halves, so the
        input projections of *all* timesteps run as one ``(L*B, in_dim)``
        matmul per gate up front; the per-step recurrence is left with only
        the ``(B, H) @ (H, H)`` hidden products. Mathematically identical to
        L :meth:`step` calls (the split changes the float summation order of
        ``[x, h] @ W``, so results agree to rounding, not bitwise).

        The whole unroll is **one graph node** with a hand-written BPTT
        backward: building ~18 autograd nodes per timestep costs more in
        Python dispatch than the (B, H) arithmetic itself. The forward
        evaluates the same float expressions in the same order as the
        per-op formulation, so outputs are unchanged; gradients are checked
        against numerical differentiation in ``tests/test_autograd.py``.
        """
        l, b, e = x_seq.shape
        hdim = self.hidden_dim
        wz, wr, wn = self.wz.W, self.wr.W, self.wn.W
        bz, br, bn = self.wz.b, self.wr.b, self.wn.b
        wz_x, wz_h = wz.data[:e], wz.data[e:]
        wr_x, wr_h = wr.data[:e], wr.data[e:]
        wn_x, wn_h = wn.data[:e], wn.data[e:]
        x_flat = x_seq.data.reshape(l * b, e)
        xz = x_flat @ wz_x + bz.data
        xr = x_flat @ wr_x + br.data
        xn = x_flat @ wn_x + bn.data
        h0_data = h0.data if h0 is not None else np.zeros((b, hdim))
        n_rows = l * b
        z_all = np.empty((n_rows, hdim))
        r_all = np.empty((n_rows, hdim))
        n_all = np.empty((n_rows, hdim))
        h_flat = np.empty((n_rows, hdim))
        h = h0_data
        for t in range(l):
            sl = slice(t * b, (t + 1) * b)
            z = z_all[sl]
            r = r_all[sl]
            n = n_all[sl]
            z[:] = 1.0 / (1.0 + np.exp(-(xz[sl] + h @ wz_h)))
            r[:] = 1.0 / (1.0 + np.exp(-(xr[sl] + h @ wr_h)))
            n[:] = np.tanh(xn[sl] + (r * h) @ wn_h)
            h_flat[sl] = (1.0 - z) * n + z * h
            h = h_flat[sl]
        parents = [x_seq, wz, bz, wr, br, wn, bn]
        if h0 is not None:
            parents.append(h0)
        out = Tensor(
            h_flat.reshape(l, b, hdim),
            requires_grad=any(p.requires_grad for p in parents),
            parents=tuple(parents),
        )
        if not out.requires_grad:
            return out

        def _bw(g: np.ndarray) -> None:
            g2 = g.reshape(n_rows, hdim)
            h_prev = np.empty((n_rows, hdim))
            h_prev[:b] = h0_data
            h_prev[b:] = h_flat[: n_rows - b]
            dxz = np.empty((n_rows, hdim))
            dxr = np.empty((n_rows, hdim))
            dxn = np.empty((n_rows, hdim))
            carry = np.zeros((b, hdim))
            for t in range(l - 1, -1, -1):
                sl = slice(t * b, (t + 1) * b)
                z, r, n, hp = z_all[sl], r_all[sl], n_all[sl], h_prev[sl]
                gh = g2[sl] + carry
                da_n = gh * (1.0 - z) * (1.0 - n * n)
                dc = da_n @ wn_h.T
                da_r = dc * hp * r * (1.0 - r)
                da_z = gh * (hp - n) * z * (1.0 - z)
                carry = gh * z + dc * r + da_z @ wz_h.T + da_r @ wr_h.T
                dxz[sl] = da_z
                dxr[sl] = da_r
                dxn[sl] = da_n
            if x_seq.requires_grad:
                dx = dxz @ wz_x.T
                dx += dxr @ wr_x.T
                dx += dxn @ wn_x.T
                x_seq._accumulate(dx.reshape(l, b, e))
            for w, bias, dxa, hpart in (
                (wz, bz, dxz, h_prev),
                (wr, br, dxr, h_prev),
                (wn, bn, dxn, None),
            ):
                if w.requires_grad:
                    dw = np.empty_like(w.data)
                    dw[:e] = x_flat.T @ dxa
                    if hpart is None:
                        hpart = r_all * h_prev  # n's recurrent input is r*h
                    dw[e:] = hpart.T @ dxa
                    w._accumulate(dw)
                if bias.requires_grad:
                    bias._accumulate(dxa.sum(axis=0))
            if h0 is not None and h0.requires_grad:
                h0._accumulate(carry)

        out._backward = _bw
        return out
