"""Fig. 1 — winning rates of the heuristic CC schemes in Set I and Set II.

Paper shape: Vegas/YeAH/Copa-style delay-sensitive schemes top the
single-flow ranking while scoring near zero on TCP-friendliness; Cubic/
HTCP/BIC top the multi-flow ranking; the two orderings roughly invert.
"""

from conftest import bench_pool_schemes, bench_set1, bench_set2, once

from repro.evalx.leagues import Participant, run_league


def test_fig01_heuristic_league(benchmark):
    parts = [Participant.from_scheme(s) for s in bench_pool_schemes()]

    def run():
        return run_league(parts, set1=bench_set1(), set2=bench_set2())

    result = once(benchmark, run)
    print("\n=== Fig. 1: heuristic league winning rates ===")
    print(result.format_table())

    r1, r2 = dict(result.set1_rates), dict(result.set2_rates)
    # Shape checks mirroring the paper's headline observations:
    assert r1["vegas"] > r1["cubic"], "Vegas must beat Cubic in Set I"
    assert r2["cubic"] > r2["vegas"], "Cubic must beat Vegas in Set II"
    assert r2["vegas"] <= 0.10, "Vegas is not TCP-friendly (paper: 0.6%)"
