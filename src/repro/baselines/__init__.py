"""ML-based baselines for the Fig. 9 league.

Each baseline is an honest representative of its learning *category* on the
same substrate Sage uses (same GR states, same action space, same
environments), reproducing the paper's category-level comparisons:

- :mod:`~repro.baselines.bc` — Behavioral Cloning (BC, BC-top, BC-top3,
  BCv2): pure log-likelihood regression on (filtered) pools.
- :mod:`~repro.baselines.online_rl` — OnlineRL: the online off-policy
  actor-critic counterpart of Sage (same inputs/rewards/architecture, but
  interacts with the environments during training).
- :mod:`~repro.baselines.aurora` — Aurora-like: online *on-policy* policy
  gradient, MLP (no memory), single-flow reward only; plus the Genet-like
  curriculum variant.
- :mod:`~repro.baselines.indigo` — Indigo-like: imitation of a
  ground-truth oracle controller; plus the multi-flow-retrained Indigov2.
- :mod:`~repro.baselines.orca` — Orca-like hybrid: Cubic underneath, an RL
  agent adjusting the window on top; plus the dual-reward-retrained Orcav2
  and the delay-bounding DeepCC-like plug-in variant.
- :mod:`~repro.baselines.vivace` — PCC Vivace: online utility-gradient rate
  control (a deterministic algorithm, registered as a scheme).
- :mod:`~repro.baselines.remy` — Remy-like computer-generated CC: offline
  policy *search* over a frozen rule table (Appendix A's early
  learning-based lineage).
"""

from repro.baselines.bc import BCTrainer, train_bc_variant, BC_VARIANTS
from repro.baselines.online_rl import OnlineRLTrainer
from repro.baselines.aurora import AuroraTrainer
from repro.baselines.indigo import OracleAgent, train_indigo
from repro.baselines.orca import OrcaAgent, train_orca
from repro.baselines.vivace import Vivace
from repro.baselines.remy import RemyAgent, RemyOptimizer, RemyTable

__all__ = [
    "RemyAgent",
    "RemyOptimizer",
    "RemyTable",
    "BCTrainer",
    "train_bc_variant",
    "BC_VARIANTS",
    "OnlineRLTrainer",
    "AuroraTrainer",
    "OracleAgent",
    "train_indigo",
    "OrcaAgent",
    "train_orca",
    "Vivace",
]
