"""Tests for the learned-ECN stack: predictor, telemetry, fitter, factory."""

import json

import numpy as np
import pytest

from repro.netsim.aqm import LearnedECN, make_aqm
from repro.netsim.ecn_model import (
    EcnPredictor,
    FEATURE_DIM,
    SCHEMA_VERSION,
    normalize_features,
)
from repro.netsim.packet import Packet
from repro.netsim.telemetry import (
    QueueTelemetryRecorder,
    TRACE_SCHEMA_VERSION,
    load_traces,
)
from repro.aqm_learn import FitReport, TraceSpec, collect_queue_traces, fit_ecn_predictor


def pkt(seq=0, size=1500, flow=0, ect=False):
    p = Packet(flow_id=flow, seq=seq, size=size)
    p.ect = ect
    return p


def synthetic_trace(n=400, seed=3):
    """A separable toy dataset: high occupancy + arrival rate -> long sojourn."""
    rng = np.random.default_rng(seed)
    occ = rng.uniform(0.0, 1.0, size=n)
    soj = rng.uniform(0.0, 0.02, size=n)
    arr = rng.uniform(0.0, 96e6, size=n)
    drain = np.full(n, 48e6)
    feats = np.stack([occ, soj, arr, drain], axis=1)
    sojourns = np.where(occ + arr / 96e6 > 1.0, 0.02, 0.001)
    return {"features": feats, "sojourns": sojourns}


class TestEcnPredictor:
    def test_init_seed_deterministic(self):
        a = EcnPredictor.init(hidden=8, seed=4)
        b = EcnPredictor.init(hidden=8, seed=4)
        assert np.array_equal(a.w1, b.w1) and np.array_equal(a.w2, b.w2)

    def test_hidden_zero_is_logistic(self):
        m = EcnPredictor.init(hidden=0, seed=0)
        assert m.w1.shape == (FEATURE_DIM, 1)

    def test_predict_proba_range_and_shapes(self):
        m = EcnPredictor.init(seed=1)
        batch = np.abs(np.random.default_rng(0).normal(size=(10, FEATURE_DIM)))
        p = m.predict_proba(batch)
        assert p.shape == (10,)
        assert np.all((p >= 0.0) & (p <= 1.0))
        one = m.predict_one(0.5, 0.01, 24e6, 48e6)
        assert 0.0 <= one <= 1.0

    def test_predict_rejects_wrong_width(self):
        m = EcnPredictor.init(seed=1)
        with pytest.raises(ValueError):
            m.predict_proba(np.zeros((3, FEATURE_DIM + 1)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            EcnPredictor(
                np.zeros((FEATURE_DIM, 4)), np.zeros(4), np.zeros(5), np.zeros(1)
            )

    def test_normalize_features_clips(self):
        x = normalize_features(np.array([100.0, 100.0, 1e12, -1e12]))
        assert np.all(np.abs(x) <= 10.0)

    def test_checkpoint_roundtrip_bitwise(self, tmp_path):
        m = EcnPredictor.init(hidden=8, seed=9)
        m.meta["note"] = "roundtrip"
        path = tmp_path / "ecn.npz"
        m.save(path)
        loaded = EcnPredictor.load(path)
        assert np.array_equal(m.w1, loaded.w1)
        assert np.array_equal(m.b1, loaded.b1)
        assert np.array_equal(m.w2, loaded.w2)
        assert np.array_equal(m.b2, loaded.b2)
        assert loaded.meta["note"] == "roundtrip"
        # and the sidecar matches the file on disk
        sidecar = json.loads((tmp_path / "ecn.npz.crc32").read_text())
        assert sidecar["bytes"] == path.stat().st_size

    def test_corrupt_checkpoint_raises_value_error(self, tmp_path):
        m = EcnPredictor.init(seed=9)
        path = tmp_path / "ecn.npz"
        m.save(path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(raw)
        with pytest.raises(ValueError, match="integrity"):
            EcnPredictor.load(path)

    def test_not_an_npz_raises_value_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_text("definitely not a zip archive")
        with pytest.raises(ValueError, match="not a valid"):
            EcnPredictor.load(path)

    def test_missing_keys_raises_value_error(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(ValueError, match="missing keys"):
            EcnPredictor.load(path)

    def test_wrong_schema_version_raises(self, tmp_path):
        m = EcnPredictor.init(seed=0)
        path = tmp_path / "ecn.npz"
        m.save(path)
        data = dict(np.load(path, allow_pickle=False))
        data["meta/schema_version"] = np.array([SCHEMA_VERSION + 1], dtype=np.int64)
        np.savez(path, **data)
        (tmp_path / "ecn.npz.crc32").unlink()  # stale sidecar would trip first
        with pytest.raises(ValueError, match="schema version"):
            EcnPredictor.load(path)


class TestTelemetryRecorder:
    def test_records_feature_rows_and_sojourns(self):
        from repro.netsim.aqm import TailDrop

        rec = QueueTelemetryRecorder()
        q = TailDrop(capacity_bytes=30_000)
        q.current_rate_bps = 24e6
        now = 0.0
        for i in range(5):
            p = pkt(i)
            assert q.enqueue(p, now)
            rec.on_enqueue(q, p, now)
            now += 0.001
        for _ in range(5):
            p = q.dequeue(now)
            rec.on_dequeue(p, now)
            now += 0.002
        assert len(rec) == 5
        arrays = rec.to_arrays()
        assert arrays["features"].shape == (5, FEATURE_DIM)
        assert np.all(arrays["sojourns"] > 0.0)
        # occupancy excludes the arriving packet: first row saw an empty queue
        assert arrays["features"][0, 0] == 0.0

    def test_max_rows_cap(self):
        from repro.netsim.aqm import TailDrop

        rec = QueueTelemetryRecorder(max_rows=2)
        q = TailDrop(capacity_bytes=100_000)
        pkts = [pkt(i) for i in range(4)]
        for i, p in enumerate(pkts):
            q.enqueue(p, i * 0.001)
            rec.on_enqueue(q, p, i * 0.001)
        for p in pkts:
            rec.on_dequeue(q.dequeue(0.01), 0.01)
        assert len(rec) == 2
        assert rec.dropped_rows == 2

    def test_save_load_roundtrip(self, tmp_path):
        from repro.netsim.aqm import TailDrop

        rec = QueueTelemetryRecorder()
        q = TailDrop(capacity_bytes=30_000)
        for i in range(3):
            p = pkt(i)
            q.enqueue(p, i * 0.001)
            rec.on_enqueue(q, p, i * 0.001)
        for _ in range(3):
            rec.on_dequeue(q.dequeue(0.01), 0.01)
        path = rec.save(tmp_path / "shard.npz")
        data = load_traces([path, path])  # concatenation works
        assert data["features"].shape == (6, FEATURE_DIM)
        assert data["sojourns"].shape == (6,)

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.zeros(2))
        with pytest.raises(ValueError, match="missing keys"):
            load_traces(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(
            path,
            **{
                "meta/schema_version": np.array(
                    [TRACE_SCHEMA_VERSION + 1], dtype=np.int64
                ),
                "trace/features": np.zeros((1, FEATURE_DIM)),
                "trace/sojourns": np.zeros(1),
            },
        )
        with pytest.raises(ValueError, match="schema version"):
            load_traces(path)


class TestFitter:
    def test_fit_learns_separable_data(self):
        model, report = fit_ecn_predictor(
            synthetic_trace(), target=0.005, epochs=300, seed=0
        )
        assert isinstance(report, FitReport)
        assert report.accuracy > 0.9
        assert 0.0 < report.positive_rate < 1.0
        assert model.meta["target"] == 0.005

    def test_fit_is_seed_deterministic(self):
        m1, r1 = fit_ecn_predictor(synthetic_trace(), epochs=50, seed=5)
        m2, r2 = fit_ecn_predictor(synthetic_trace(), epochs=50, seed=5)
        assert np.array_equal(m1.w1, m2.w1) and np.array_equal(m1.w2, m2.w2)
        assert r1.loss == r2.loss

    def test_fit_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="empty"):
            fit_ecn_predictor(
                {"features": np.zeros((0, FEATURE_DIM)), "sojourns": np.zeros(0)}
            )

    def test_report_json_shape(self):
        _, report = fit_ecn_predictor(synthetic_trace(), epochs=20)
        js = report.to_json()
        assert set(js) == {
            "n_rows", "positive_rate", "loss", "accuracy",
            "precision", "recall", "epochs",
        }


class TestTraceCollection:
    def test_collect_writes_shards(self, tmp_path):
        spec = TraceSpec(aqm="codel", duration=2.0, arrival_rate=30.0)
        paths = collect_queue_traces(spec, shards=2, seed=1, out_dir=tmp_path)
        assert len(paths) == 2
        data = load_traces(paths)
        assert data["features"].shape[0] > 0
        assert data["features"].shape[1] == FEATURE_DIM


class TestLearnedECNWithModel:
    def test_factory_checkpoint_suffix(self, tmp_path):
        m = EcnPredictor.init(hidden=4, seed=2)
        path = tmp_path / "Model.npz"  # case preserved: paths are not lowered
        m.save(path)
        q = make_aqm(f"learned_ecn@{path}", 30_000)
        assert isinstance(q, LearnedECN)
        assert q.predictor is not None
        assert q.params()["mode"] == "model"
        assert q.checkpoint == str(path)

    def test_model_mode_marks_when_predictor_fires(self, tmp_path):
        # A predictor hand-built to always fire: huge positive bias.
        m = EcnPredictor(
            np.zeros((FEATURE_DIM, 1)), np.zeros(1), np.zeros(1), np.array([50.0])
        )
        q = LearnedECN(capacity_bytes=100_000, predictor=m)
        assert q.enqueue(pkt(0, ect=True), 0.0)
        assert q.ecn_marks == 1
        assert not q.enqueue(pkt(1, ect=False), 0.001)  # non-ECT is dropped
        assert q.drops == 1

    def test_end_to_end_fit_then_serve(self, tmp_path):
        """The full loop: fit on a synthetic trace, save, serve via factory."""
        model, _ = fit_ecn_predictor(synthetic_trace(), epochs=100, seed=0)
        path = tmp_path / "fitted.npz"
        model.save(path)
        q = make_aqm(f"learned_ecn@{path}", 50_000)
        now = 0.0
        for i in range(30):
            q.enqueue(pkt(i, ect=True), now)
            if i % 2 == 0:
                q.dequeue(now + 0.0005)
            now += 0.0005
        assert q.enqueues > 0  # serving decisions ran through the model
