"""Sage's two reward functions (Section 4.1, Eqs. 1 and 2).

``R1`` (single-flow, myopic): a Power-style reward rewarding high delivery
rate, low loss, and low delay::

    R1_t = (r_t - xi * l_t)^kappa / d_t

``R2`` (multi-flow, farsighted): TCP-friendliness as a Gaussian bump around
the ideal fair share (Fig. 5)::

    R2_t = exp(-8 * (x_t - 1)^2),   x_t = r_t / fr_t

Both are computed on *normalized* quantities so that rewards from different
environments are comparable inside one training pool: rates are normalized
by the link capacity and delay by the propagation RTT.
"""

from __future__ import annotations

from dataclasses import dataclass

import math


@dataclass
class RewardConfig:
    """Coefficients of Eq. 1 and Eq. 2."""

    xi: float = 1.0  # impact of the loss rate in R1
    kappa: float = 1.0  # throughput-vs-delay importance in R1
    friendliness_sharpness: float = 8.0  # the "-8" exponent factor of Eq. 2

    def __post_init__(self) -> None:
        if self.xi < 0 or self.kappa <= 0 or self.friendliness_sharpness <= 0:
            raise ValueError("reward coefficients must be positive")


DEFAULT_REWARDS = RewardConfig()


def single_flow_reward(
    delivery_rate_bps: float,
    loss_rate_bps: float,
    avg_delay: float,
    link_capacity_bps: float,
    min_rtt: float,
    config: RewardConfig = DEFAULT_REWARDS,
) -> float:
    """Eq. 1: the Power-style reward for single-flow scenarios.

    Parameters are raw measurements over the last timestep; the link
    capacity and propagation RTT normalize them into dimensionless form.
    Returns a value in roughly [0, 1].
    """
    if link_capacity_bps <= 0 or min_rtt <= 0:
        raise ValueError("capacity and min_rtt must be positive")
    r = min(delivery_rate_bps / link_capacity_bps, 2.0)
    l = min(loss_rate_bps / link_capacity_bps, 2.0)
    d = max(avg_delay / min_rtt, 1.0)
    util = max(r - config.xi * l, 0.0)
    return (util ** config.kappa) / d


def friendliness_reward(
    delivery_rate_bps: float,
    fair_share_bps: float,
    config: RewardConfig = DEFAULT_REWARDS,
) -> float:
    """Eq. 2: the TCP-friendliness reward (Fig. 5).

    Peaks at 1.0 when the flow holds exactly its fair share, and decays
    symmetrically whether the flow is starving or bullying its competitor.
    """
    if fair_share_bps <= 0:
        raise ValueError("fair share must be positive")
    x = delivery_rate_bps / fair_share_bps
    return math.exp(-config.friendliness_sharpness * (x - 1.0) ** 2)
