"""Persistent pipeline state: the supervisor's crash-safe journal.

One JSON file (``pipeline_state.json`` in the pipeline workdir) records the
run's configuration, every stage's status/attempts/timing/outcome, and an
append-only event log of what the supervisor observed and did — including
every fault the resilience layer caught and the recovery action it took.

The file is rewritten atomically (tmp + ``os.replace``) after **every**
state transition, so a ``kill -9`` at any instant leaves either the state
before the transition or the state after it, never a torn file. A stage
found ``running`` on load is the signature of an interrupted run: the
supervisor restarts that stage on resume.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["StageState", "PipelineState", "STATUSES"]

STATE_SCHEMA_VERSION = 1

#: a stage's lifecycle: pending -> running -> done | failed
STATUSES = ("pending", "running", "done", "failed")


@dataclass
class StageState:
    """One stage's journal entry."""

    name: str
    status: str = "pending"
    attempts: int = 0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: stage-specific outcome (counts, fault/recovery events, artifact info)
    info: Dict = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "status": self.status,
            "attempts": self.attempts,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "info": self.info,
        }

    @classmethod
    def from_json(cls, d: Dict) -> "StageState":
        status = str(d.get("status", "pending"))
        if status not in STATUSES:
            raise ValueError(f"unknown stage status {status!r}")
        return cls(
            name=str(d["name"]),
            status=status,
            attempts=int(d.get("attempts", 0)),
            started_at=d.get("started_at"),
            finished_at=d.get("finished_at"),
            error=d.get("error"),
            info=dict(d.get("info", {})),
        )


@dataclass
class PipelineState:
    """The whole run's journal: config + stages + event log."""

    config: Dict = field(default_factory=dict)
    stages: List[StageState] = field(default_factory=list)
    events: List[Dict] = field(default_factory=list)
    created_at: float = field(default_factory=time.time)

    # ------------------------------------------------------------------
    def stage(self, name: str) -> StageState:
        for st in self.stages:
            if st.name == name:
                return st
        raise KeyError(f"no stage named {name!r}")

    def log(self, source: str, message: str) -> None:
        """Append one event (persisted on the next save)."""
        self.events.append(
            {"time": time.time(), "source": source, "message": message}
        )

    @property
    def complete(self) -> bool:
        return bool(self.stages) and all(s.status == "done" for s in self.stages)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        return {
            "schema_version": STATE_SCHEMA_VERSION,
            "created_at": self.created_at,
            "config": self.config,
            "stages": [s.to_json() for s in self.stages],
            "events": self.events,
        }

    @classmethod
    def from_json(cls, d: Dict) -> "PipelineState":
        version = d.get("schema_version")
        if version != STATE_SCHEMA_VERSION:
            raise ValueError(
                f"pipeline state has schema version {version!r}; this build "
                f"reads version {STATE_SCHEMA_VERSION}"
            )
        return cls(
            config=dict(d.get("config", {})),
            stages=[StageState.from_json(s) for s in d.get("stages", [])],
            events=list(d.get("events", [])),
            created_at=float(d.get("created_at", 0.0)),
        )

    def save(self, path) -> None:
        """Atomic tmp-then-rename write; survives kill -9 at any instant."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=1) + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> "PipelineState":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt pipeline state {path}: {exc}") from exc
        return cls.from_json(data)

    # ------------------------------------------------------------------
    def fault_log(self) -> List[Dict]:
        """Every fault/recovery event recorded by any stage, in order.

        Stages deposit ``{"kind", "detail", "action"}`` entries under
        ``info["events"]``; this flattens them with their stage names —
        the record behind ``repro pipeline status``.
        """
        out: List[Dict] = []
        for st in self.stages:
            for ev in st.info.get("events", []):
                out.append({"stage": st.name, **ev})
        return out

    def status_json(self) -> Dict:
        """Machine-readable run summary (CLI ``pipeline status --json``).

        Everything CI needs to gate on without parsing the table: stage
        states with attempts/durations, the flattened fault log, and the
        completion verdict.
        """
        stages = []
        for st in self.stages:
            duration = None
            if st.started_at is not None and st.finished_at is not None:
                duration = round(st.finished_at - st.started_at, 6)
            stages.append(
                {
                    "name": st.name,
                    "status": st.status,
                    "attempts": st.attempts,
                    "duration_s": duration,
                    "error": st.error,
                }
            )
        return {
            "complete": self.complete,
            "created_at": self.created_at,
            "stages": stages,
            "faults": self.fault_log(),
            "n_events": len(self.events),
        }

    def format_status(self) -> str:
        """Human-readable run summary (CLI ``pipeline status``)."""
        lines = ["stage      status    attempts  detail"]
        for st in self.stages:
            detail = ""
            if st.status == "done" and st.started_at and st.finished_at:
                detail = f"{st.finished_at - st.started_at:.1f}s"
            elif st.error:
                detail = st.error
            lines.append(
                f"{st.name:<10} {st.status:<9} {st.attempts:<9} {detail}"
            )
        faults = self.fault_log()
        if faults:
            lines.append("")
            lines.append(f"faults caught & recovered ({len(faults)}):")
            for ev in faults:
                lines.append(
                    f"  [{ev['stage']}] {ev.get('kind', '?')}: "
                    f"{ev.get('detail', '')} -> {ev.get('action', '')}"
                )
        else:
            lines.append("")
            lines.append("no faults observed")
        lines.append("")
        lines.append(
            "pipeline complete" if self.complete else "pipeline incomplete"
        )
        return "\n".join(lines)
