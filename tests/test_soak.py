"""Tests for the continuous-chaos soak layer.

Covers the new robustness machinery end to end:

- ``FaultProcess``: seed determinism, per-site stream independence,
  horizon-prefix stability, JSON round-trips, and the replay-clean
  one-shot guarantee it inherits by materializing to a ``FaultPlan``;
- ``PolicyServer.snapshot()/restore()``: bit-identical decision streams
  across an in-process restore **and** a real ``kill -9``, corrupt
  snapshots refused via the CRC sidecar;
- ``reload_policy``: hot swap accepted for a good checkpoint, a
  NaN-poisoned one rejected by shadow validation with the old policy
  still serving, the optional divergence gate;
- resource guards: ``ShardWriter`` disk budgets + ENOSPC unwind,
  ``MemoryGuard`` valves;
- graceful degradation: corrupt ECN / distilled checkpoints fall back
  instead of raising through serving setup;
- ``verify_store`` sweeping orphaned ``*.tmp`` files;
- the soak harness itself: a tiny seeded run with all phases, zero
  invariant violations, artifacts bit-identical to its fault-free twin.
"""

import errno
import json
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.chaos import DEFAULT_RATES, FaultProcess
from repro.collector.gr_unit import STATE_DIM
from repro.core.networks import NetworkConfig, SagePolicy
from repro.datastore import ShardWriter, StoreFullError, verify_store
from repro.resources import MemoryGuard, rss_bytes
from repro.serve.engine import PolicyServer, ServeConfig
from repro.serve.metrics import ServingMetrics
from repro.soak import SoakConfig, run_soak
from repro.soak.report import (
    FaultObserver,
    aggregate_faults,
    evaluate_slos,
)

REPO = Path(__file__).resolve().parent.parent

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)

HORIZONS = {"collector": 6, "train": 40, "serve": 50, "workload": 30}


@pytest.fixture()
def policy():
    return SagePolicy(TINY, np.random.default_rng(0))


def _serve_states(seed, ticks, flows):
    rng = np.random.default_rng(seed)
    return np.abs(rng.standard_normal((ticks, flows, STATE_DIM)))


def _drive(server, states, start=0, stop=None):
    stop = states.shape[0] if stop is None else stop
    out = []
    for t in range(start, stop):
        for flow in range(states.shape[1]):
            server.submit(flow, states[t, flow], cwnd=20.0)
        for flow, d in sorted(server.tick().items()):
            out.append((t, flow, float(d.ratio).hex(), d.source))
    return out


# --------------------------------------------------------------------------
# FaultProcess
# --------------------------------------------------------------------------


class TestFaultProcess:
    def test_same_seed_same_schedule(self):
        a = FaultProcess(seed=7).plan(HORIZONS)
        b = FaultProcess(seed=7).plan(HORIZONS)
        assert a == b
        assert FaultProcess(seed=8).plan(HORIZONS) != a

    def test_streams_are_disjoint_across_sites(self):
        # cranking one site's rate must not shift any other site's slots
        base = FaultProcess(seed=3)
        loud = FaultProcess(
            seed=3, rates={**DEFAULT_RATES, "train.nan": 50.0}
        )
        for site in DEFAULT_RATES:
            if site == "train.nan":
                continue
            assert base.arrivals(site, 64) == loud.arrivals(site, 64), site

    def test_arrivals_are_prefix_stable(self):
        proc = FaultProcess(seed=11)
        short = proc.arrivals("collector.crash", 16)
        long = proc.arrivals("collector.crash", 256)
        assert long[: len(short)] == short
        assert all(0 <= t < 16 for t in short)
        assert sorted(set(long)) == long  # strictly increasing, deduped

    def test_zero_rate_site_never_fires(self):
        proc = FaultProcess(seed=0, rates={"train.nan": 0.0})
        assert proc.arrivals("train.nan", 10_000) == []

    def test_json_round_trip(self):
        proc = FaultProcess(seed=5, rates={"serve.nan": 0.4})
        clone = FaultProcess.from_json(proc.to_json())
        assert clone == proc
        assert clone.plan(HORIZONS) == proc.plan(HORIZONS)

    def test_save_load(self, tmp_path):
        proc = FaultProcess(seed=9)
        proc.save(tmp_path / "proc.json")
        assert FaultProcess.load(tmp_path / "proc.json") == proc

    def test_schema_version_rejected(self):
        payload = FaultProcess(seed=1).to_json()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema"):
            FaultProcess.from_json(payload)

    def test_bad_sites_and_rates_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultProcess(rates={"nope.nope": 1.0})
        with pytest.raises(ValueError, match="rate"):
            FaultProcess(rates={"train.nan": -1.0})
        with pytest.raises(ValueError, match="rate"):
            FaultProcess(rates={"train.nan": float("nan")})

    def test_injector_is_one_shot(self):
        proc = FaultProcess(seed=2, rates={"train.nan": 5.0})
        injector = proc.injector({"train": 8})
        slots = proc.arrivals("train.nan", 8)
        assert slots, "a rate of 5/slot must fire within 8 slots"
        batch = {"rewards": np.ones(4), "states": np.ones((4, 3))}
        injector.mutate_batch(slots[0], batch)
        assert np.isnan(batch["rewards"]).all()
        clean = {"rewards": np.ones(4), "states": np.ones((4, 3))}
        injector.mutate_batch(slots[0], clean)  # replay: already spent
        assert np.isfinite(clean["rewards"]).all()
        assert [f.site for f in injector.fired] == ["train.nan"]

    def test_fired_faults_carry_timestamps(self):
        proc = FaultProcess(seed=2, rates={"train.nan": 5.0})
        injector = proc.injector({"train": 8})
        slot = proc.arrivals("train.nan", 8)[0]
        injector.mutate_batch(slot, {"rewards": np.ones(2)})
        assert injector.fired[0].at > 0.0


# --------------------------------------------------------------------------
# FaultObserver / report plumbing
# --------------------------------------------------------------------------


class _Tick:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestFaultObserver:
    def _injector(self):
        proc = FaultProcess(seed=2, rates={"train.nan": 5.0})
        return proc.injector({"train": 8}), proc.arrivals("train.nan", 8)

    def test_observe_stamps_detection_and_ttr(self):
        injector, slots = self._injector()
        obs = FaultObserver()
        injector.mutate_batch(slots[0], {"rewards": np.ones(2)})
        obs.observe(injector, "train-stage-complete")
        (record,) = obs.records
        assert record["site"] == "train.nan"
        assert record["recovery_boundary"] == "train-stage-complete"
        assert record["ttr_s"] >= 0.0 and record["detected_s"] >= 0.0

    def test_deferred_faults_close_at_resolve(self):
        injector, slots = self._injector()
        obs = FaultObserver(clock=_Tick())
        injector.mutate_batch(slots[0], {"rewards": np.ones(2)})
        obs.observe(injector, "collect", defer=("train.",))
        assert obs.records[0]["ttr_s"] is None
        obs.resolve("train.", "verify-repair")
        assert obs.records[0]["recovery_boundary"] == "verify-repair"
        assert obs.records[0]["ttr_s"] is not None

    def test_aggregate_and_slos(self):
        records = [
            {"site": "a.x", "ttr_s": 1.0, "detected_s": 0.5},
            {"site": "a.x", "ttr_s": 3.0, "detected_s": 2.0},
            {"site": "b.y", "ttr_s": 2.0, "detected_s": 1.0},
        ]
        faults = aggregate_faults(records)
        assert faults["by_site"] == {"a.x": 2, "b.y": 1}
        assert faults["sites_exercised"] == 2
        assert faults["mttr"]["p50_s"] == 2.0
        slos = evaluate_slos(faults, [], 10.0, 10.0, min_sites=2)
        assert slos["passed"]
        slos = evaluate_slos(faults, [{"invariant": "x", "detail": "d"}],
                             10.0, 10.0)
        assert not slos["passed"]


# --------------------------------------------------------------------------
# snapshot / restore
# --------------------------------------------------------------------------


class TestSnapshotRestore:
    def _server(self, policy, **kw):
        cfg = ServeConfig(deterministic=True, tick_budget=None, **kw)
        return PolicyServer(policy, cfg)

    def test_restored_decision_stream_is_bit_identical(self, tmp_path, policy):
        states = _serve_states(0, 12, 3)
        straight = self._server(policy)
        broken = self._server(policy)
        for flow in range(3):
            straight.connect(flow)
            broken.connect(flow)
        want = _drive(straight, states)
        got = _drive(broken, states, stop=6)
        broken.snapshot(tmp_path / "snap.npz")
        fresh = self._server(policy)
        fresh.restore(tmp_path / "snap.npz")
        got += _drive(fresh, states, start=6)
        assert got == want

    def test_snapshot_preserves_metrics_and_sessions(self, tmp_path, policy):
        server = self._server(policy)
        for flow in range(4):
            server.connect(flow)
        _drive(server, _serve_states(1, 5, 4))
        server.close(3)
        server.snapshot(tmp_path / "snap.npz")
        fresh = self._server(policy)
        fresh.restore(tmp_path / "snap.npz")
        assert sorted(fresh._sessions) == [0, 1, 2]
        assert fresh.metrics.decisions == server.metrics.decisions
        assert fresh.metrics.ticks == server.metrics.ticks
        assert fresh._tick_index == server._tick_index

    def test_corrupt_snapshot_is_refused(self, tmp_path, policy):
        server = self._server(policy)
        server.connect(0)
        server.snapshot(tmp_path / "snap.npz")
        raw = bytearray((tmp_path / "snap.npz").read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        (tmp_path / "snap.npz").write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="integrity"):
            self._server(policy).restore(tmp_path / "snap.npz")

    def test_snapshot_refused_for_mismatched_network(self, tmp_path, policy):
        server = self._server(policy)
        server.connect(0)
        server.snapshot(tmp_path / "snap.npz")
        other = SagePolicy(
            NetworkConfig(enc_dim=16, gru_dim=8, n_components=2, n_atoms=7),
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="pair"):
            self._server(other).restore(tmp_path / "snap.npz")

    def test_real_sigkill_then_restore_is_bit_identical(self, tmp_path, policy):
        # an uninterrupted reference stream, in-process
        states = _serve_states(4, 10, 3)
        straight = self._server(policy)
        for flow in range(3):
            straight.connect(flow)
        want = _drive(straight, states)

        snap = tmp_path / "snap.npz"
        first = tmp_path / "first_half.json"
        driver = f"""
import json, os, signal, sys
import numpy as np
sys.path.insert(0, {str(REPO / "src")!r})
sys.path.insert(0, {str(REPO)!r})
from tests.test_soak import TINY, _drive, _serve_states
from repro.core.networks import SagePolicy
from repro.serve.engine import PolicyServer, ServeConfig
policy = SagePolicy(TINY, np.random.default_rng(0))
server = PolicyServer(
    policy, ServeConfig(deterministic=True, tick_budget=None)
)
for flow in range(3):
    server.connect(flow)
states = _serve_states(4, 10, 3)
out = _drive(server, states, stop=5)
server.snapshot({str(snap)!r})
with open({str(first)!r}, "w") as fh:
    json.dump(out, fh)
    fh.flush()
    os.fsync(fh.fileno())
os.kill(os.getpid(), signal.SIGKILL)
"""
        proc = subprocess.run(
            [sys.executable, "-c", driver], capture_output=True, timeout=300
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        got = [tuple(x) for x in json.loads(first.read_text())]
        fresh = self._server(policy)
        fresh.restore(snap)
        got += _drive(fresh, states, start=5)
        assert got == want


# --------------------------------------------------------------------------
# hot reload
# --------------------------------------------------------------------------


class TestHotReload:
    def _server(self, policy):
        cfg = ServeConfig(deterministic=True, tick_budget=None)
        return PolicyServer(policy, cfg)

    def test_good_checkpoint_swaps_in(self, tmp_path, policy):
        other = SagePolicy(TINY, np.random.default_rng(1))
        np.savez(tmp_path / "ck.npz", **other.state_dict())
        server = self._server(policy)
        report = server.reload_policy(tmp_path / "ck.npz")
        assert report["accepted"], report["reason"]
        assert server.reload_events[-1] is report
        want = other.state_dict()
        got = server.policy.state_dict()
        assert all(np.array_equal(want[k], got[k]) for k in want)

    def test_poisoned_checkpoint_rejected_old_policy_serves(
        self, tmp_path, policy
    ):
        params = SagePolicy(TINY, np.random.default_rng(1)).state_dict()
        key = sorted(params)[0]
        params[key] = np.full_like(params[key], np.nan)
        np.savez(tmp_path / "bad.npz", **params)
        server = self._server(policy)
        server.connect(0)
        before = server.policy
        report = server.reload_policy(tmp_path / "bad.npz")
        assert not report["accepted"]
        assert "shadow validation" in report["reason"]
        assert server.policy is before
        server.submit(0, _serve_states(0, 1, 1)[0, 0], cwnd=20.0)
        (decision,) = server.tick().values()
        assert np.isfinite(decision.ratio) and decision.ratio > 0

    def test_unreadable_checkpoint_rejected(self, tmp_path, policy):
        (tmp_path / "junk.npz").write_bytes(b"not a checkpoint")
        server = self._server(policy)
        report = server.reload_policy(tmp_path / "junk.npz")
        assert not report["accepted"]
        assert "unusable" in report["reason"]
        report = server.reload_policy(tmp_path / "missing.npz")
        assert not report["accepted"]

    def test_divergence_gate(self, tmp_path, policy):
        np.savez(tmp_path / "same.npz", **policy.state_dict())
        far = SagePolicy(TINY, np.random.default_rng(99))
        for arr in far.state_dict().values():
            arr *= 50.0
        np.savez(tmp_path / "far.npz", **far.state_dict())
        server = self._server(policy)
        same = server.reload_policy(
            tmp_path / "same.npz", max_log_ratio_shift=1e-9
        )
        assert same["accepted"], same["reason"]
        report = server.reload_policy(
            tmp_path / "far.npz", max_log_ratio_shift=1e-9
        )
        assert not report["accepted"]
        assert "d log ratio" in report["reason"]


# --------------------------------------------------------------------------
# resource guards
# --------------------------------------------------------------------------


def _traj(rng, i, length=32):
    from repro.collector.pool import Trajectory

    return Trajectory(
        scheme=f"s{i}", env_id=f"e{i}", multi_flow=False,
        states=rng.standard_normal((length, STATE_DIM)),
        actions=rng.uniform(0.5, 2.0, size=length),
        rewards=rng.uniform(0.0, 1.0, size=length),
    )


class TestDiskBudget:
    def test_budget_exceeded_raises_before_writing(self, tmp_path):
        rng = np.random.default_rng(0)
        writer = ShardWriter(tmp_path / "st", disk_budget_bytes=10_000)
        writer.add(_traj(rng, 0))
        with pytest.raises(StoreFullError):
            writer.flush()
        assert not list((tmp_path / "st").glob("*.npy"))
        assert len(writer._buffer) == 1

    def test_flush_retries_after_budget_raised(self, tmp_path):
        rng = np.random.default_rng(0)
        writer = ShardWriter(tmp_path / "st", disk_budget_bytes=10_000)
        writer.add(_traj(rng, 0))
        with pytest.raises(StoreFullError):
            writer.flush()
        writer.disk_budget_bytes = 10_000_000
        writer.flush()
        writer.close()
        assert verify_store(tmp_path / "st", quarantine=False).clean

    def test_enospc_mid_commit_unwinds_to_valid_prefix(
        self, tmp_path, monkeypatch
    ):
        rng = np.random.default_rng(0)
        writer = ShardWriter(tmp_path / "st")
        writer.add(_traj(rng, 0))
        writer.flush()  # shard 0 lands

        real = ShardWriter._commit_array

        def exploding(self, name, arr):
            if name.endswith("rewards.npy"):
                raise OSError(errno.ENOSPC, "No space left on device")
            return real(self, name, arr)

        monkeypatch.setattr(ShardWriter, "_commit_array", exploding)
        writer.add(_traj(rng, 1))
        with pytest.raises(StoreFullError):
            writer.flush()
        monkeypatch.setattr(ShardWriter, "_commit_array", real)
        # the failed shard's partial files are gone; manifest prefix valid
        assert verify_store(tmp_path / "st", quarantine=False).clean
        assert len(writer._buffer) == 1
        writer.flush()  # buffer preserved -> the retry lands shard 1
        writer.close()
        report = verify_store(tmp_path / "st", quarantine=False)
        assert report.clean and report.n_shards == 2

    def test_other_oserror_propagates(self, tmp_path, monkeypatch):
        rng = np.random.default_rng(0)
        writer = ShardWriter(tmp_path / "st")

        def exploding(self, name, arr):
            raise OSError(errno.EACCES, "Permission denied")

        monkeypatch.setattr(ShardWriter, "_commit_array", exploding)
        writer.add(_traj(rng, 0))
        with pytest.raises(OSError) as excinfo:
            writer.flush()
        assert not isinstance(excinfo.value, StoreFullError)


class TestMemoryGuard:
    def test_rss_bytes_measures_something(self):
        assert rss_bytes() > 0

    def test_valves_fire_over_limit(self):
        readings = iter([100, 40])
        guard = MemoryGuard(
            soft_limit_bytes=50, check_every=1,
            measure=lambda: next(readings), clock=lambda: 0.0,
        )
        fired = []
        guard.add_valve("cache", lambda: fired.append("cache") or 7)
        event = guard.maybe_check()
        assert event is not None
        assert fired == ["cache"]
        assert event["rss_before"] == 100 and event["rss_after"] == 40
        assert event["released"] == {"cache": 7}
        assert guard.events == [event]

    def test_check_cadence(self):
        calls = []
        guard = MemoryGuard(
            soft_limit_bytes=10**12, check_every=4,
            measure=lambda: calls.append(1) or 0, clock=lambda: 0.0,
        )
        for _ in range(8):
            guard.maybe_check()
        assert len(calls) == 2  # measured on calls 4 and 8 only

    def test_valve_exceptions_are_contained(self):
        guard = MemoryGuard(
            soft_limit_bytes=1, check_every=1,
            measure=lambda: 100, clock=lambda: 0.0,
        )
        guard.add_valve("broken", lambda: 1 / 0)
        event = guard.maybe_check()
        assert "error" in event["released"]["broken"]

    def test_server_guard_shrinks_metrics(self, policy):
        cfg = ServeConfig(
            deterministic=True, tick_budget=None,
            rss_soft_limit_mb=1e-6, rss_check_every=1,
        )
        server = PolicyServer(policy, cfg)
        server.connect(0)
        _drive(server, _serve_states(0, 3, 1))
        assert server.memory_guard.events  # limit is tiny: every check fires


# --------------------------------------------------------------------------
# graceful degradation + tmp sweep
# --------------------------------------------------------------------------


class TestGracefulDegradation:
    def test_learned_ecn_falls_back_on_bad_checkpoint(self, tmp_path):
        from repro.netsim.aqm import LearnedECN, make_aqm

        bad = tmp_path / "ecn.npz"
        bad.write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning, match="falling back"):
            aqm = make_aqm(f"learned_ecn@{bad}", 30_000)
        assert isinstance(aqm, LearnedECN)
        assert aqm.predictor is None
        assert "threshold" in aqm.load_warning

    def test_missing_ecn_checkpoint_also_falls_back(self):
        from repro.netsim.aqm import make_aqm

        with pytest.warns(RuntimeWarning):
            aqm = make_aqm("learned_ecn@/nonexistent/ecn.npz", 30_000)
        assert aqm.predictor is None

    def test_mount_distilled_garbage_keeps_nn_tier(self, tmp_path, policy):
        server = PolicyServer(
            policy, ServeConfig(deterministic=True, tick_budget=None)
        )
        bad = tmp_path / "tree.npz"
        bad.write_bytes(b"garbage")
        warning = server.mount_distilled(bad)
        assert warning is not None and "NN tier" in warning
        assert server.warnings == [warning]
        server.connect(0)
        server.submit(0, _serve_states(0, 1, 1)[0, 0], cwnd=20.0)
        (decision,) = server.tick().values()
        assert np.isfinite(decision.ratio)


class TestTmpSweep:
    def _store(self, tmp_path):
        rng = np.random.default_rng(0)
        with ShardWriter(tmp_path / "st") as writer:
            writer.add(_traj(rng, 0))
        return tmp_path / "st"

    def test_orphans_swept_when_quarantining(self, tmp_path):
        store = self._store(tmp_path)
        (store / "shard-00000001.states.npy.tmp").write_bytes(b"partial")
        report = verify_store(store, quarantine=True)
        assert report.tmp_orphans == ["shard-00000001.states.npy.tmp"]
        assert report.tmp_removed
        assert not (store / "shard-00000001.states.npy.tmp").exists()
        assert "swept 1 orphaned .tmp" in report.format()
        assert report.clean

    def test_orphans_only_reported_without_quarantine(self, tmp_path):
        store = self._store(tmp_path)
        (store / "leftover.npy.tmp").write_bytes(b"partial")
        report = verify_store(store, quarantine=False)
        assert report.tmp_orphans == ["leftover.npy.tmp"]
        assert not report.tmp_removed
        assert (store / "leftover.npy.tmp").exists()
        assert "found 1 orphaned .tmp" in report.format()


# --------------------------------------------------------------------------
# serving metrics state
# --------------------------------------------------------------------------


class TestMetricsState:
    def test_round_trip(self):
        metrics = ServingMetrics()
        metrics.record_tick(2, 0.01, missed_deadline=False)
        metrics.record_decision("policy")
        metrics.record_decision("heuristic")
        clone = ServingMetrics.from_state(metrics.to_state())
        assert clone.to_state() == metrics.to_state()
        assert clone.snapshot()["decisions"] == 2

    def test_shrink_drops_oldest(self):
        metrics = ServingMetrics()
        for i in range(100):
            metrics.record_tick(1, float(i), missed_deadline=False)
            metrics.record_decision("policy")
        dropped = metrics.shrink(keep=10)
        assert dropped > 0
        assert len(metrics.latencies_s) == 10
        assert metrics.latencies_s[0] == 90.0  # oldest went first
        assert metrics.decisions == 100  # counters untouched


# --------------------------------------------------------------------------
# pipeline status --json
# --------------------------------------------------------------------------


class TestStatusJson:
    def test_shape(self):
        from repro.pipeline.state import PipelineState, StageState

        state = PipelineState(
            stages=[
                StageState(name="collect", status="done", attempts=2,
                           started_at=1.0, finished_at=3.5,
                           info={"events": [{"kind": "crash",
                                             "detail": "x", "action": "y"}]}),
                StageState(name="train", status="failed", error="boom"),
            ]
        )
        payload = state.status_json()
        assert json.loads(json.dumps(payload)) == payload
        assert not payload["complete"]
        assert payload["stages"][0]["duration_s"] == 2.5
        assert payload["stages"][1]["error"] == "boom"
        assert payload["faults"] == [
            {"stage": "collect", "kind": "crash",
             "detail": "x", "action": "y"}
        ]


# --------------------------------------------------------------------------
# the soak harness
# --------------------------------------------------------------------------


class TestSoakHarness:
    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="phase"):
            SoakConfig(workdir=str(tmp_path), phases=("fly",))
        with pytest.raises(ValueError, match="rate_scale"):
            SoakConfig(workdir=str(tmp_path), rate_scale=0.0)
        with pytest.raises(ValueError, match="max_rounds"):
            SoakConfig(workdir=str(tmp_path), min_rounds=3, max_rounds=2)

    def test_serve_only_soak(self, tmp_path):
        cfg = SoakConfig(
            workdir=str(tmp_path), duration_s=0.0, min_rounds=1,
            max_rounds=1, seed=1, phases=("serve",), serve_ticks=6,
            serve_flows=2, workload_duration=0.3, arrival_rate=20.0,
            check_identity=False,
        )
        report = run_soak(cfg, out_path=tmp_path / "BENCH_soak.json")
        assert report["rounds"] == 1
        assert not report["invariants"]["violations"]
        on_disk = json.loads((tmp_path / "BENCH_soak.json").read_text())
        assert on_disk["schema_version"] == report["schema_version"]
        assert "mttr" in on_disk["faults"]

    def test_full_soak_with_identity_twin(self, tmp_path):
        cfg = SoakConfig(
            workdir=str(tmp_path), duration_s=0.0, min_rounds=1,
            max_rounds=1, seed=3, rate_scale=2.0, steps_per_round=3,
            serve_ticks=8, serve_flows=2, workload_duration=0.4,
            arrival_rate=25.0, check_identity=True,
        )
        report = run_soak(cfg)
        assert report["passed"], report["invariants"]["violations"]
        assert report["faults"]["total"] > 0
        assert report["identity"]["checked"]
        assert report["identity"]["store_manifest"]
        assert report["identity"]["train_checkpoint"]
        # every fired fault is timed
        for record in report["fault_log"]:
            assert record["ttr_s"] is not None
            assert record["ttr_s"] >= 0.0
        journal = json.loads(
            (tmp_path / "pipe" / "soak_journal.json").read_text()
        )
        assert [e["index"] for e in journal] == list(range(len(journal)))
