"""Throughput and determinism of the topology + open-loop workload engine.

Three sections, written to ``BENCH_topo.json``:

- **determinism** — the same seed reproduces the same arrival schedule and
  the same flow-completion-time distribution, twice over;
- **raw workload** — flow arrivals processed per wall-clock second when a
  kernel scheme (cubic) drives thousands of short flows through a
  parking-lot topology (simulation-only ceiling);
- **served workload** — the same figure through the full serving path:
  topology simulation + GR feature extraction + one batched policy forward
  per control tick + cwnd enforcement (the ISSUE target: >= 1k arrivals/s).

Runs two ways:

- standalone: ``PYTHONPATH=src python benchmarks/bench_topo.py`` (``--tiny``
  for the CI smoke run);
- under pytest-benchmark with the rest of the bench suite:
  ``pytest benchmarks/bench_topo.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.core.networks import NetworkConfig, SagePolicy  # noqa: E402
from repro.netsim.topo import parking_lot_topology  # noqa: E402
from repro.serve.harness import (  # noqa: E402
    WorkloadServeConfig,
    run_served_workload,
)
from repro.workload import (  # noqa: E402
    WorkloadConfig,
    generate_schedule,
    run_workload,
    schedule_digest,
)

OUT_PATH = REPO / "BENCH_topo.json"

#: compact policy for the serving section — serving cost, not model size,
#: is what this bench isolates
SERVE_NET = NetworkConfig(enc_dim=16, gru_dim=16, n_components=3, n_atoms=7)


def bench_determinism(tiny: bool) -> dict:
    """Same seed -> same schedule digest and same FCT distribution."""
    cfg = WorkloadConfig(
        arrival_rate=100.0 if tiny else 200.0,
        duration=1.5 if tiny else 4.0,
        mean_size_bytes=20_000.0,
        seed=11,
    )
    digests = {schedule_digest(generate_schedule(cfg)) for _ in range(2)}
    runs = [
        run_workload(parking_lot_topology(n_segments=3), cfg)
        for _ in range(2)
    ]
    return {
        "seed": cfg.seed,
        "schedule_digest": next(iter(digests)),
        "schedule_deterministic": len(digests) == 1,
        "fct_deterministic": (
            runs[0].summary.to_json() == runs[1].summary.to_json()
        ),
        "n_flows": runs[0].summary.n_flows,
    }


def bench_raw_workload(tiny: bool) -> dict:
    """Simulation-only arrivals/sec: cubic short flows, no policy server."""
    cfg = WorkloadConfig(
        arrival_rate=200.0 if tiny else 400.0,
        duration=2.0 if tiny else 5.0,
        mean_size_bytes=15_000.0,
        seed=0,
    )
    topo = parking_lot_topology(n_segments=3, bw_mbps=48.0)
    t0 = time.perf_counter()
    res = run_workload(topo, cfg, drain=3.0)
    wall = time.perf_counter() - t0
    return {
        "topology": "parking_lot",
        "arrival_rate": cfg.arrival_rate,
        "duration_s": cfg.duration,
        "n_requests": res.n_requests,
        "n_completed": res.summary.n_completed,
        "peak_concurrent": res.peak_concurrent,
        "fct_p50_ms": res.summary.to_json()["fct_p50_ms"],
        "fct_p99_ms": res.summary.to_json()["fct_p99_ms"],
        "elapsed_s": round(wall, 3),
        "arrivals_per_s_wall": round(res.n_requests / wall, 1),
    }


def bench_served_workload(tiny: bool) -> dict:
    """Arrivals/sec through the full serving path (the ISSUE target)."""
    from repro.serve.bench import run_workload_bench

    policy = SagePolicy(SERVE_NET, np.random.default_rng(0))
    cfg = WorkloadServeConfig(
        arrival_rate=200.0 if tiny else 400.0,
        duration=2.0 if tiny else 4.0,
        drain=2.0,
        mean_size_bytes=15_000.0,
        seed=0,
    )
    out = run_workload_bench(policy, cfg)
    out["net"] = {"enc_dim": SERVE_NET.enc_dim, "gru_dim": SERVE_NET.gru_dim}
    return out


def run_bench(tiny: bool = False) -> dict:
    return {
        "cpu_count": os.cpu_count() or 1,
        "scale": "tiny" if tiny else "small",
        "determinism": bench_determinism(tiny),
        "raw_workload": bench_raw_workload(tiny),
        "served_workload": bench_served_workload(tiny),
    }


def write_report(result: dict, path: Path = OUT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1) + "\n")


def print_report(result: dict) -> None:
    d = result["determinism"]
    raw = result["raw_workload"]
    served = result["served_workload"]
    print(f"\n=== topology/workload bench ({result['scale']}, "
          f"{result['cpu_count']} cores) ===")
    print(f"determinism: schedule={d['schedule_deterministic']} "
          f"fct={d['fct_deterministic']} "
          f"(digest {d['schedule_digest']}, {d['n_flows']} flows)")
    for label, row in (("raw (cubic)", raw), ("served", served)):
        print(f"{label:>12}: {row['n_requests']} arrivals in "
              f"{row['elapsed_s']:.2f}s wall -> "
              f"{row['arrivals_per_s_wall']:.0f}/s "
              f"(FCT p50/p99 {row['fct_p50_ms']:.1f}/"
              f"{row['fct_p99_ms']:.1f} ms)")


# --------------------------------------------------------------------------
# pytest-benchmark entry point
# --------------------------------------------------------------------------


def test_topo_workload_throughput(benchmark):
    from conftest import once

    result = once(benchmark, lambda: run_bench(tiny=True))
    print_report(result)
    write_report(result)
    assert result["determinism"]["schedule_deterministic"]
    assert result["determinism"]["fct_deterministic"]
    assert result["served_workload"]["n_completed"] > 0
    # soft floor so slow CI runners don't flake; the recorded number on a
    # normal machine is well past the 1k/s ISSUE target
    assert result["served_workload"]["arrivals_per_s_wall"] > 200.0


# --------------------------------------------------------------------------
# standalone entry point
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="seconds-scale smoke run (CI)")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    result = run_bench(tiny=args.tiny)
    print_report(result)
    write_report(result, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
