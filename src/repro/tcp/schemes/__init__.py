"""Re-implementations of the paper's congestion-control schemes.

The 13 kernel heuristics forming Sage's pool of policies (Section 5):
NewReno, Cubic, BIC, HighSpeed, HTCP, Hybla, Illinois, Veno, Westwood,
YeAH, Vegas, CDG, BBR2 — plus the delay-based league of Section 6.3:
Copa, LEDBAT, C2TCP, Sprout.

Importing this package registers every scheme in the
:mod:`repro.tcp.cc_base` registry.
"""

from repro.tcp.schemes.reno import NewReno
from repro.tcp.schemes.cubic import Cubic
from repro.tcp.schemes.bic import Bic
from repro.tcp.schemes.highspeed import HighSpeed
from repro.tcp.schemes.htcp import HTcp
from repro.tcp.schemes.hybla import Hybla
from repro.tcp.schemes.illinois import Illinois
from repro.tcp.schemes.veno import Veno
from repro.tcp.schemes.westwood import Westwood
from repro.tcp.schemes.yeah import Yeah
from repro.tcp.schemes.vegas import Vegas
from repro.tcp.schemes.cdg import Cdg
from repro.tcp.schemes.bbr2 import Bbr2
from repro.tcp.schemes.copa import Copa
from repro.tcp.schemes.ledbat import Ledbat
from repro.tcp.schemes.c2tcp import C2Tcp
from repro.tcp.schemes.sprout import Sprout
from repro.tcp.schemes.dctcp import Dctcp
from repro.tcp.schemes.scalable import Scalable
from repro.tcp.schemes.compound import Compound
from repro.tcp.schemes.lp import TcpLp

__all__ = [
    "Dctcp",
    "Scalable",
    "Compound",
    "TcpLp",
    "NewReno",
    "Cubic",
    "Bic",
    "HighSpeed",
    "HTcp",
    "Hybla",
    "Illinois",
    "Veno",
    "Westwood",
    "Yeah",
    "Vegas",
    "Cdg",
    "Bbr2",
    "Copa",
    "Ledbat",
    "C2Tcp",
    "Sprout",
]
