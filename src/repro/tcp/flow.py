"""A flow: sender + receiver bound to a network, plus measurement hooks.

Every experiment in the paper boils down to "run these flows over this
network and measure throughput/delay/loss over time"; :class:`Flow` is that
unit, and :class:`FlowStats` the measured outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.netsim.network import Network, PathConfig
from repro.netsim.packet import MSS_BYTES
from repro.tcp.cc_base import CongestionControl, make_scheme
from repro.tcp.socket import TcpReceiver, TcpSender


@dataclass
class FlowStats:
    """Aggregate and time-series measurements of one finished flow."""

    flow_id: int
    scheme: str
    duration: float
    #: average delivery rate at the receiver, bits/second
    avg_throughput_bps: float
    #: mean one-way delay, seconds
    avg_owd: float
    #: mean RTT observed at the sender, seconds
    avg_rtt: float
    #: 95th-percentile one-way delay proxy (max observed scaled), seconds
    p95_owd: float
    loss_rate: float
    retransmits: int
    #: per-sample time series (sampled on a fixed grid)
    times: List[float] = field(default_factory=list)
    throughput_series: List[float] = field(default_factory=list)
    cwnd_series: List[float] = field(default_factory=list)
    rtt_series: List[float] = field(default_factory=list)
    owd_series: List[float] = field(default_factory=list)


class Flow:
    """Sender/receiver pair attached to a shared :class:`Network`."""

    __slots__ = (
        "cc",
        "network",
        "flow_id",
        "start_at",
        "receiver",
        "sender",
        "_sample_times",
        "_thr_samples",
        "_cwnd_samples",
        "_rtt_samples",
        "_owd_samples",
        "_last_bytes",
        "_last_sample_t",
        "_last_owd_sum",
        "_last_owd_count",
    )

    def __init__(
        self,
        network: Network,
        flow_id: int,
        scheme,
        min_rtt: float,
        start_at: float = 0.0,
        initial_cwnd: float = 10.0,
        size_bytes: Optional[int] = None,
    ) -> None:
        """
        Parameters
        ----------
        scheme:
            Either a scheme name (looked up in the registry) or a
            ready-made :class:`CongestionControl` instance.
        min_rtt:
            Propagation RTT of this flow's path, seconds.
        start_at:
            Absolute simulation time at which the flow begins sending.
        size_bytes:
            Total bytes to transfer, or None for an unbounded flow. Finite
            flows stop themselves once the final packet is acked; the
            completion time is on ``sender.completed_at``.
        """
        if isinstance(scheme, CongestionControl):
            self.cc = scheme
        else:
            self.cc = make_scheme(scheme)
        self.network = network
        self.flow_id = flow_id
        self.start_at = start_at
        self.receiver = TcpReceiver(flow_id, network)
        size_pkts = (
            None if size_bytes is None
            else max(int(-(-size_bytes // MSS_BYTES)), 1)
        )
        self.sender = TcpSender(
            flow_id, network, self.cc,
            initial_cwnd=initial_cwnd, size_pkts=size_pkts,
        )
        network.attach_flow(
            flow_id,
            PathConfig(min_rtt=min_rtt),
            data_sink=self.receiver.on_data,
            ack_sink=self.sender.on_ack,
        )
        # time-series sampling state
        self._sample_times: List[float] = []
        self._thr_samples: List[float] = []
        self._cwnd_samples: List[float] = []
        self._rtt_samples: List[float] = []
        self._owd_samples: List[float] = []
        self._last_bytes = 0
        self._last_sample_t = start_at
        self._last_owd_sum = 0.0
        self._last_owd_count = 0

    def start(self) -> None:
        self.sender.start(at=self.start_at)

    def stop(self) -> None:
        self.sender.stop()

    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Record one point of the throughput/cwnd/RTT/owd time series.

        Call on a fixed grid (the experiment runner does this); throughput
        is computed over the inter-sample interval.
        """
        now = self.network.loop.now
        interval = now - self._last_sample_t
        if interval <= 0:
            return
        delta_bytes = self.receiver.total_bytes - self._last_bytes
        thr = delta_bytes * 8.0 / interval
        owd_cnt = self.receiver.owd_count - self._last_owd_count
        owd_sum = self.receiver.owd_sum - self._last_owd_sum
        owd = owd_sum / owd_cnt if owd_cnt > 0 else (
            self._owd_samples[-1] if self._owd_samples else 0.0
        )
        self._sample_times.append(now)
        self._thr_samples.append(thr)
        self._cwnd_samples.append(self.sender.cwnd)
        self._rtt_samples.append(self.sender.srtt_or_min)
        self._owd_samples.append(owd)
        self._last_bytes = self.receiver.total_bytes
        self._last_sample_t = now
        self._last_owd_sum = self.receiver.owd_sum
        self._last_owd_count = self.receiver.owd_count

    def stats(self) -> FlowStats:
        """Summarize the flow after the experiment."""
        now = self.network.loop.now
        duration = max(now - self.start_at, 1e-9)
        sent = max(self.sender.sent_packets, 1)
        owds = sorted(self._owd_samples) if self._owd_samples else [0.0]
        p95 = owds[min(int(0.95 * len(owds)), len(owds) - 1)]
        return FlowStats(
            flow_id=self.flow_id,
            scheme=self.cc.name,
            duration=duration,
            avg_throughput_bps=self.receiver.total_bytes * 8.0 / duration,
            avg_owd=self.receiver.mean_owd,
            avg_rtt=self._mean(self._rtt_samples),
            p95_owd=p95,
            loss_rate=self.sender.lost / sent,
            retransmits=self.sender.retransmits,
            times=list(self._sample_times),
            throughput_series=list(self._thr_samples),
            cwnd_series=list(self._cwnd_samples),
            rtt_series=list(self._rtt_samples),
            owd_series=list(self._owd_samples),
        )

    @staticmethod
    def _mean(xs: List[float]) -> float:
        return sum(xs) / len(xs) if xs else 0.0
