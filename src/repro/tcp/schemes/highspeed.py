"""HighSpeed TCP (Floyd — RFC 3649).

For large windows, the per-RTT increase ``a(w)`` grows and the decrease
factor ``b(w)`` shrinks with the window, interpolated logarithmically
between (W=38, a=1, b=0.5) and (W=83000, a=72, b=0.1). Below W=38 it is
plain Reno.
"""

from __future__ import annotations

import math

from repro.tcp.cc_base import CongestionControl, register_scheme

_LOW_WINDOW = 38.0
_HIGH_WINDOW = 83000.0
_HIGH_P = 1e-7
_LOW_B = 0.5
_HIGH_B = 0.1
_LOG_RATIO = math.log(_HIGH_WINDOW) - math.log(_LOW_WINDOW)


def hstcp_b(w: float) -> float:
    """RFC 3649 decrease factor b(w)."""
    if w <= _LOW_WINDOW:
        return _LOW_B
    frac = (math.log(min(w, _HIGH_WINDOW)) - math.log(_LOW_WINDOW)) / _LOG_RATIO
    return _LOW_B + (_HIGH_B - _LOW_B) * frac


def hstcp_a(w: float) -> float:
    """RFC 3649 increase a(w), derived from the response function.

    ``a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w))`` with
    ``p(w) = 0.078 / w^1.2``.
    """
    if w <= _LOW_WINDOW:
        return 1.0
    b = hstcp_b(w)
    p = 0.078 / (w ** 1.2)
    return max(w * w * p * 2.0 * b / (2.0 - b), 1.0)


@register_scheme
class HighSpeed(CongestionControl):
    """HighSpeed TCP for large congestion windows."""

    name = "highspeed"

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            return
        sock.cwnd += hstcp_a(sock.cwnd) * n_acked / max(sock.cwnd, 1.0)

    def ssthresh(self, sock) -> float:
        b = hstcp_b(sock.cwnd)
        return max(sock.cwnd * (1.0 - b), self.MIN_CWND)
