"""The standard collect -> verify -> train -> eval pipeline stages.

Each stage is a plain function over the supervisor's context dict, reads
its inputs from the pipeline workdir, and leaves its artifacts there:

- ``collect``  -> ``<workdir>/store/``     (sharded trajectory store)
- ``verify``   -> the same store, audited; corrupt shards quarantined and
  the missing rollouts **re-collected**, rebuilding a store byte-identical
  to a fault-free run's
- ``train``    -> ``<workdir>/checkpoint.npz`` (+ ``.crc32`` sidecar)
- ``eval``     -> ``<workdir>/eval.json``  (served-policy rollout metrics)

Stages are **deterministic given the config**, so re-running one after a
crash (or after the verify stage repairs the store) converges on the same
bytes. Each stage's ``info`` carries a fault/recovery event list that
``repro pipeline status`` reports.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.pipeline.supervisor import StageSpec, Supervisor

__all__ = ["PipelineConfig", "build_pipeline", "build_supervisor"]

STATE_FILE = "pipeline_state.json"


@dataclasses.dataclass
class PipelineConfig:
    """Everything a pipeline run needs — JSON-serializable so a resumed
    process can rebuild the exact same run from the state file alone."""

    workdir: str
    # collection
    scale: str = "mini"
    schemes: Optional[Tuple[str, ...]] = ("cubic",)  # None -> all pool schemes
    workers: int = 1
    chunksize: Optional[int] = None
    shard_bytes: int = 1 << 20
    base_seed: int = 0
    tick: float = 0.02
    max_task_seconds: Optional[float] = None
    max_rounds: int = 3
    retry_backoff_s: float = 0.0
    # training
    n_steps: int = 12
    checkpoint_every: int = 1
    train_seed: int = 0
    batch_size: int = 8
    seq_len: int = 8
    m_samples: int = 2
    enc_dim: int = 16
    gru_dim: int = 16
    n_components: int = 2
    n_atoms: int = 7
    max_rollbacks: int = 3
    snapshot_every: int = 1
    #: data-parallel gradient workers: 0 = single-process FastCRRTrainer,
    #: N >= 1 spawns a DataParallelTrainer (N must divide its grain count;
    #: the checkpoint records the layout, so resume keeps it)
    grad_workers: int = 0
    # evaluation
    eval_duration: float = 3.0
    # fault injection: path to a FaultPlan JSON (None = no chaos)
    fault_plan: Optional[str] = None

    def to_json(self) -> Dict:
        d = dataclasses.asdict(self)
        if d["schemes"] is not None:
            d["schemes"] = list(d["schemes"])
        return d

    @classmethod
    def from_json(cls, d: Dict) -> "PipelineConfig":
        d = dict(d)
        if d.get("schemes") is not None:
            d["schemes"] = tuple(d["schemes"])
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    # -- derived paths --------------------------------------------------
    @property
    def root(self) -> Path:
        return Path(self.workdir)

    @property
    def store_dir(self) -> Path:
        return self.root / "store"

    @property
    def checkpoint_path(self) -> Path:
        return self.root / "checkpoint.npz"

    @property
    def eval_path(self) -> Path:
        return self.root / "eval.json"

    @property
    def state_path(self) -> Path:
        return self.root / STATE_FILE


# --------------------------------------------------------------------------
# shared helpers
# --------------------------------------------------------------------------


def _environments(cfg: PipelineConfig):
    from repro.collector.environments import training_environments

    return training_environments(cfg.scale)


def _schemes(cfg: PipelineConfig) -> List[str]:
    if cfg.schemes is not None:
        return list(cfg.schemes)
    from repro.tcp.cc_base import POOL_SCHEMES

    return list(POOL_SCHEMES)


def _expected_tasks(cfg: PipelineConfig):
    from repro.collector.parallel import make_rollout_tasks

    return make_rollout_tasks(
        _environments(cfg), _schemes(cfg), tick=cfg.tick,
        base_seed=cfg.base_seed,
    )


def _net_config(cfg: PipelineConfig):
    from repro.core.networks import NetworkConfig

    return NetworkConfig(
        enc_dim=cfg.enc_dim, gru_dim=cfg.gru_dim,
        n_components=cfg.n_components, n_atoms=cfg.n_atoms,
    )


def _crr_config(cfg: PipelineConfig):
    from repro.core.crr import CRRConfig

    return CRRConfig(
        batch_size=cfg.batch_size, seq_len=cfg.seq_len,
        m_samples=cfg.m_samples,
    )


def _make_trainer(cfg: PipelineConfig, pool, chaos=None):
    if cfg.grad_workers > 0:
        from repro.train.parallel import DataParallelTrainer

        return DataParallelTrainer(
            pool, net_config=_net_config(cfg), config=_crr_config(cfg),
            seed=cfg.train_seed, grad_workers=cfg.grad_workers, chaos=chaos,
        )
    from repro.train.engine import FastCRRTrainer

    return FastCRRTrainer(
        pool, net_config=_net_config(cfg), config=_crr_config(cfg),
        seed=cfg.train_seed, chaos=chaos,
    )


# --------------------------------------------------------------------------
# stage: collect
# --------------------------------------------------------------------------


def _stage_collect(ctx: Dict) -> Dict:
    """Roll every (env, scheme) pair into the sharded store.

    Restarting after a crash wipes any partial store first — collection is
    deterministic, so a clean redo converges on the same bytes as an
    uninterrupted run.
    """
    from repro.collector.parallel import collect_pool_to_store

    cfg: PipelineConfig = ctx["config"]
    if cfg.store_dir.exists():
        shutil.rmtree(cfg.store_dir)
    reports: List = []
    pool = collect_pool_to_store(
        _environments(cfg),
        _schemes(cfg),
        str(cfg.store_dir),
        tick=cfg.tick,
        workers=cfg.workers,
        chunksize=cfg.chunksize,
        base_seed=cfg.base_seed,
        shard_bytes=cfg.shard_bytes,
        max_task_seconds=cfg.max_task_seconds,
        max_rounds=cfg.max_rounds,
        retry_backoff_s=cfg.retry_backoff_s,
        chaos=ctx.get("chaos"),
        report_sink=reports.append,
    )
    n_traj = len(pool.records)
    pool.drop_cache()
    report = reports[0]
    return {
        "n_trajectories": n_traj,
        "n_retried": report.n_retried,
        "n_crashes": report.n_crashes,
        "n_timeouts": report.n_timeouts,
        "events": list(report.events),
    }


def _check_collect(ctx: Dict) -> bool:
    cfg: PipelineConfig = ctx["config"]
    try:
        from repro.datastore.manifest import Manifest

        manifest = Manifest.load(cfg.store_dir)
    except (FileNotFoundError, ValueError):
        return False
    return len(manifest.trajectories) == len(_expected_tasks(cfg))


# --------------------------------------------------------------------------
# stage: verify (+ repair)
# --------------------------------------------------------------------------


def _stage_verify(ctx: Dict) -> Dict:
    """Audit the store; quarantine corrupt shards and re-collect the loss.

    Repair rebuilds the *entire* store in expected task order with the same
    shard budget, so the repaired store is byte-identical to one from a
    fault-free collection — downstream training samples the same bits.
    """
    from repro.datastore.manifest import verify_store

    cfg: PipelineConfig = ctx["config"]
    report = verify_store(cfg.store_dir, quarantine=True)
    events: List[Dict] = []
    for problem in report.corrupt:
        events.append(
            {
                "kind": "corrupt-shard",
                "detail": f"{problem.name}: {problem.reason}",
                "action": "quarantined",
            }
        )
    info: Dict = {
        "n_shards": report.n_shards,
        "quarantined": list(report.quarantined),
        "dropped_trajectories": report.dropped_trajectories,
        "events": events,
    }
    if report.quarantined:
        recollected = _repair_store(cfg)
        events.append(
            {
                "kind": "store-repair",
                "detail": f"re-collected {recollected} dropped "
                          "trajectory(ies) and rebuilt the store in "
                          "canonical order",
                "action": "store restored byte-identical to a fault-free run",
            }
        )
        info["recollected"] = recollected
    return info


def _repair_store(cfg: PipelineConfig) -> int:
    """Rebuild the store: surviving rollouts + re-collected missing ones.

    Greedily matches the quarantined store's surviving trajectory records
    (their manifest order is collection order) against the expected
    (env, scheme) task list; gaps are re-collected — rollouts are pure
    functions of their task, so the redo bit-matches the original. The
    rebuilt directory then atomically replaces the damaged store.
    """
    from repro.collector.parallel import _reseed_for, _run_rollout_task
    from repro.datastore.reader import ShardedPool
    from repro.datastore.writer import ShardWriter

    tasks = _expected_tasks(cfg)
    pool = ShardedPool.open(cfg.store_dir)
    survivors = pool.records
    rebuild_dir = cfg.root / "store.rebuild"
    if rebuild_dir.exists():
        shutil.rmtree(rebuild_dir)
    recollected = 0
    cursor = 0
    with ShardWriter(rebuild_dir, shard_bytes=cfg.shard_bytes) as writer:
        for task in tasks:
            record = survivors[cursor] if cursor < len(survivors) else None
            if (
                record is not None
                and record.scheme == task.scheme
                and record.env_id == task.env.env_id
            ):
                writer.add(pool.trajectory(cursor))
                cursor += 1
            else:
                _reseed_for(task)
                writer.add_rollout(_run_rollout_task(task))
                recollected += 1
    pool.drop_cache()
    shutil.rmtree(cfg.store_dir)
    os.replace(rebuild_dir, cfg.store_dir)
    return recollected


def _check_verify(ctx: Dict) -> bool:
    from repro.datastore.manifest import verify_store

    cfg: PipelineConfig = ctx["config"]
    if not _check_collect(ctx):
        return False
    return verify_store(cfg.store_dir, quarantine=False).clean


# --------------------------------------------------------------------------
# stage: train
# --------------------------------------------------------------------------


def _stage_train(ctx: Dict) -> Dict:
    """Offline CRR under the DivergenceGuard, checkpointing atomically.

    A valid checkpoint from an interrupted run resumes mid-stream (the
    checkpoint carries the RNG and sampler position, so the continuation
    is bit-identical to an uninterrupted run); a corrupt one is discarded
    and training restarts from scratch.
    """
    from repro.datastore.reader import ShardedPool
    from repro.train.guard import DivergenceGuard, GuardConfig

    cfg: PipelineConfig = ctx["config"]
    events: List[Dict] = []
    pool = ShardedPool.open(cfg.store_dir)
    trainer = None
    try:
        trainer = _make_trainer(cfg, pool, chaos=ctx.get("chaos"))
        if cfg.checkpoint_path.exists():
            try:
                trainer.load_checkpoint(cfg.checkpoint_path)
                events.append(
                    {
                        "kind": "train-resume",
                        "detail": f"found checkpoint at step "
                                  f"{trainer.steps_done}",
                        "action": "resumed mid-train (bit-identical "
                                  "continuation)",
                    }
                )
            except ValueError as exc:
                events.append(
                    {
                        "kind": "corrupt-checkpoint",
                        "detail": str(exc),
                        "action": "discarded; training restarts from step 0",
                    }
                )
        guard = DivergenceGuard(
            GuardConfig(
                max_rollbacks=cfg.max_rollbacks,
                snapshot_every=cfg.snapshot_every,
            )
        )
        remaining = cfg.n_steps - trainer.steps_done
        if remaining > 0:
            trainer.train(
                remaining,
                checkpoint_every=cfg.checkpoint_every,
                checkpoint_path=str(cfg.checkpoint_path),
                guard=guard,
            )
        trainer.save_checkpoint(str(cfg.checkpoint_path))
        for ev in guard.events:
            events.append(
                {
                    "kind": f"train-{ev.reason}",
                    "detail": f"step {ev.step}: {ev.detail}",
                    "action": f"rolled back to step {ev.restored_step} "
                              "and replayed clean",
                }
            )
        respawns = getattr(trainer, "respawns", 0)
        if respawns:
            events.append(
                {
                    "kind": "train-worker-crash",
                    "detail": f"{respawns} gradient worker(s) died "
                              "mid-step",
                    "action": "respawned and replayed the step from the "
                              "same grain seeds (bit-identical recovery)",
                }
            )
        history = {
            k: (float(v[-1]) if len(v) else None)
            for k, v in trainer.history.items()
        }
    finally:
        if trainer is not None:
            trainer.close()  # stops gradient workers too
        pool.drop_cache()
    return {
        "steps_done": trainer.steps_done,
        "rollbacks": guard.rollbacks_used,
        "final_metrics": history,
        "events": events,
    }


def _check_train(ctx: Dict) -> bool:
    cfg: PipelineConfig = ctx["config"]
    if not cfg.checkpoint_path.exists():
        return False
    try:
        with np.load(cfg.checkpoint_path, allow_pickle=False) as data:
            return int(data["meta/steps_done"][0]) >= cfg.n_steps
    except Exception:  # noqa: BLE001 - any unreadable checkpoint fails check
        return False


# --------------------------------------------------------------------------
# stage: eval
# --------------------------------------------------------------------------


def _stage_eval(ctx: Dict) -> Dict:
    """Serve the trained policy through one environment, end to end.

    Runs the *production* path — :class:`~repro.serve.engine.PolicyServer`
    with its deadline and NaN-fallback machinery — so injected ``serve.*``
    faults are exercised and their fallbacks observable in the metrics.
    """
    from repro.collector.rollout import run_policy
    from repro.core.networks import SagePolicy
    from repro.serve.client import ServedAgent
    from repro.serve.engine import PolicyServer, ServeConfig

    cfg: PipelineConfig = ctx["config"]
    policy = SagePolicy(_net_config(cfg), np.random.default_rng(0))
    with np.load(cfg.checkpoint_path, allow_pickle=False) as data:
        policy.load_state_dict(
            {
                key[len("policy/"):]: data[key]
                for key in data.files
                if key.startswith("policy/")
            }
        )
    serve_cfg = ServeConfig(deterministic=True, tick_budget=None)
    server = PolicyServer(policy, serve_cfg, chaos=ctx.get("chaos"))
    agent = ServedAgent(
        policy, name="sage-pipeline", config=serve_cfg, server=server
    )
    env = dataclasses.replace(
        _environments(cfg)[0], duration=cfg.eval_duration
    )
    result = run_policy(env, agent, tick=cfg.tick)
    metrics = server.metrics.snapshot()
    events: List[Dict] = []
    if metrics["invalid_actions"]:
        events.append(
            {
                "kind": "serve-nan",
                "detail": f"{metrics['invalid_actions']} non-finite policy "
                          "output(s) caught before reaching a sender",
                "action": "served by the heuristic fallback; hidden state "
                          "held",
            }
        )
    chaos = ctx.get("chaos")
    if chaos is not None:
        for fired in chaos.fired:
            if fired.site == "serve.slow":
                events.append(
                    {
                        "kind": "serve-slow",
                        "detail": f"tick {fired.target} delayed "
                                  f"{fired.param:g}s by injection",
                        "action": "absorbed (deadline machinery governs "
                                  "late forwards)",
                    }
                )
    summary = {
        "env_id": env.env_id,
        "ticks": metrics["ticks"],
        "mean_reward": float(np.mean(result.rewards)),
        "serve": metrics,
    }
    tmp = cfg.eval_path.with_name(cfg.eval_path.name + ".tmp")
    tmp.write_text(json.dumps(summary, indent=1) + "\n")
    os.replace(tmp, cfg.eval_path)
    summary["events"] = events
    return summary


def _check_eval(ctx: Dict) -> bool:
    cfg: PipelineConfig = ctx["config"]
    try:
        json.loads(cfg.eval_path.read_text())
    except (FileNotFoundError, ValueError):
        return False
    return True


# --------------------------------------------------------------------------
# assembly
# --------------------------------------------------------------------------


def build_pipeline(cfg: PipelineConfig) -> List[StageSpec]:
    """The standard stage sequence for ``cfg``."""
    return [
        StageSpec("collect", _stage_collect, check=_check_collect),
        StageSpec("verify", _stage_verify, check=_check_verify),
        StageSpec("train", _stage_train, check=_check_train),
        StageSpec("eval", _stage_eval, check=_check_eval),
    ]


def build_supervisor(cfg: PipelineConfig, after_stage=None) -> Supervisor:
    """Supervisor + context for ``cfg``, chaos injector included.

    The injector is rebuilt from the persisted fault-plan path on every
    (re)start; faults already absorbed by completed work cannot re-fire —
    their occurrence indices are behind the run's progress cursor.
    """
    context: Dict = {"config": cfg}
    if cfg.fault_plan:
        from repro.chaos import FaultInjector, FaultPlan

        context["chaos"] = FaultInjector(FaultPlan.load(cfg.fault_plan))
    return Supervisor(
        build_pipeline(cfg),
        cfg.state_path,
        context=context,
        after_stage=after_stage,
    )
