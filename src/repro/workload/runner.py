"""Execute an open-loop workload schedule over a topology.

Sessions arrive per the pre-generated schedule (open loop: arrivals do not
wait for the network); each request is a finite :class:`~repro.tcp.flow.Flow`
over one of the topology's paths, round-robined deterministically by
arrival index. A session's next request starts its think time after the
previous one completes. Completed flows detach immediately — in-flight
packets of a detached flow are discarded on arrival — so the topology's
live state stays proportional to *concurrent* flows, not total arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim.topo import Topology
from repro.workload.fct import FctRecord, FctSummary
from repro.workload.generator import (
    FlowArrival,
    WorkloadConfig,
    generate_schedule,
    schedule_digest,
)

__all__ = [
    "WorkloadResult", "run_workload", "main_paths",
    "apply_linkflap", "apply_aqmstall",
]

#: workload flow ids start here, clear of collector/serve conventions
FLOW_ID_BASE = 1_000_000

#: fraction of the arrival window at which an armed link flap fires
LINKFLAP_AT_FRAC = 0.25

#: fraction of the arrival window at which an armed AQM stall fires
AQMSTALL_AT_FRAC = 0.4


def main_paths(topology: Topology) -> List[Tuple[str, ...]]:
    """Default node paths for workload traffic, one per source host.

    Hosts with at least one outgoing link are sources; each contributes its
    (unique) shortest chain toward a host with no outgoing links (the
    sink), following single-successor edges — which covers every factory
    shape: dumbbell, parking lot (full chain), incast fan-in, proxy split.
    """
    succ: Dict[str, List[str]] = {n: [] for n in topology.nodes}
    for link in topology.links:
        succ[link.src].append(link.dst)
    paths: List[Tuple[str, ...]] = []
    for name, node in topology.nodes.items():
        if node.kind != "host" or not succ[name]:
            continue
        chain = [name]
        cur = name
        while succ[cur]:
            # deterministic: follow the first-added outgoing edge
            cur = succ[cur][0]
            if cur in chain:
                raise ValueError(f"cycle while tracing path from {name!r}")
            chain.append(cur)
        if len(chain) >= 2:
            paths.append(tuple(chain))
    if not paths:
        raise ValueError("topology has no host with an outgoing link")
    return paths


def apply_linkflap(
    topology: Topology, chaos: Optional[object], duration: float
) -> List[int]:
    """Arm any ``netsim.linkflap`` faults against this topology's links.

    Each armed fault (target = link index) schedules a one-shot down/up at
    ``LINKFLAP_AT_FRAC * duration`` for ``param`` seconds. Faults are
    consumed on arming, so a crashed-and-retried run replays clean.
    Returns the flapped link indices.
    """
    if chaos is None:
        return []
    flapped = []
    for link in topology.links:
        spec = chaos.take(
            "netsim.linkflap", link.index, detail=f"flap {link.name}"
        )
        if spec is not None:
            link.schedule_flap(LINKFLAP_AT_FRAC * duration, float(spec.param))
            flapped.append(link.index)
    return flapped


def apply_aqmstall(
    topology: Topology, chaos: Optional[object], duration: float
) -> List[int]:
    """Arm any ``netsim.aqmstall`` faults against this topology's links.

    Each armed fault (target = link index) freezes that link's dequeue side
    at ``AQMSTALL_AT_FRAC * duration`` for ``param`` seconds — the queue
    keeps policing arrivals but serves nothing, then recovers. Faults are
    consumed on arming, so a crashed-and-retried run replays clean.
    Returns the stalled link indices.
    """
    if chaos is None:
        return []
    stalled = []
    for link in topology.links:
        spec = chaos.take(
            "netsim.aqmstall", link.index, detail=f"stall {link.name}"
        )
        if spec is not None:
            link.schedule_stall(AQMSTALL_AT_FRAC * duration, float(spec.param))
            stalled.append(link.index)
    return stalled


@dataclass
class WorkloadResult:
    """Outcome of one open-loop workload run."""

    config: WorkloadConfig
    records: List[FctRecord]
    summary: FctSummary
    digest: str
    n_sessions: int
    n_requests: int
    peak_concurrent: int
    flapped_links: List[int] = field(default_factory=list)
    stalled_links: List[int] = field(default_factory=list)
    link_stats: List[dict] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "digest": self.digest,
            "n_sessions": self.n_sessions,
            "n_requests": self.n_requests,
            "peak_concurrent": self.peak_concurrent,
            "flapped_links": self.flapped_links,
            "stalled_links": self.stalled_links,
            "links": self.link_stats,
            "fct": self.summary.to_json(),
        }


class _Session:
    """Runtime state of one arrival: plays its requests in order."""

    __slots__ = ("runner", "arrival", "next_req", "path")

    def __init__(self, runner: "_Runner", arrival: FlowArrival) -> None:
        self.runner = runner
        self.arrival = arrival
        self.next_req = 0
        self.path = runner.paths[arrival.arrival_index % len(runner.paths)]

    def start_next(self) -> None:
        req = self.arrival.requests[self.next_req]
        self.next_req += 1
        self.runner.launch(self, req.size_bytes)

    def on_flow_done(self) -> None:
        if self.next_req >= len(self.arrival.requests):
            return
        think = self.arrival.requests[self.next_req].think_time
        self.runner.loop.call_later(think, self.start_next)


class _Runner:
    def __init__(
        self,
        topology: Topology,
        paths: Sequence[Tuple[str, ...]],
        scheme: str,
        min_rtt: float,
        initial_cwnd: float,
    ) -> None:
        from repro.tcp.flow import Flow  # local: avoid import cycle at module load

        self._flow_cls = Flow
        self.topology = topology
        self.loop = topology.loop
        self.paths = list(paths)
        self.scheme = scheme
        self.min_rtt = min_rtt
        self.initial_cwnd = initial_cwnd
        self.next_flow_id = FLOW_ID_BASE
        self.live: Dict[int, tuple] = {}  # flow_id -> (Flow, _Session, start, size)
        self.records: List[FctRecord] = []
        self.n_requests = 0
        self.peak_concurrent = 0
        #: hook: called with each new Flow just before it starts (the serve
        #: harness uses this to connect the flow to the policy server)
        self.on_flow_start = None
        #: hook: called with (flow_id, FctRecord) when a flow finishes or
        #: is abandoned at the horizon
        self.on_flow_finish = None

    def launch(self, session: _Session, size_bytes: int) -> None:
        fid = self.next_flow_id
        self.next_flow_id += 1
        view = self.topology.view(session.path)
        flow = self._flow_cls(
            view,
            flow_id=fid,
            scheme=self.scheme,
            min_rtt=self.min_rtt,
            size_bytes=size_bytes,
            initial_cwnd=self.initial_cwnd,
        )
        self.live[fid] = (flow, session, self.loop.now, size_bytes)
        self.n_requests += 1
        self.peak_concurrent = max(self.peak_concurrent, len(self.live))
        flow.sender.on_complete = lambda sender, f=fid: self._done(f)
        if self.on_flow_start is not None:
            self.on_flow_start(flow)
        flow.start()

    def _done(self, fid: int) -> None:
        flow, session, start, size = self.live.pop(fid)
        record = FctRecord(
            flow_id=fid,
            arrival_index=session.arrival.arrival_index,
            size_bytes=size,
            start=start,
            finish=self.loop.now,
        )
        self.records.append(record)
        self.topology.detach_flow(fid)
        if self.on_flow_finish is not None:
            self.on_flow_finish(fid, record)
        session.on_flow_done()

    def abandon_remaining(self) -> None:
        """Horizon reached: record every still-running flow as unfinished."""
        for fid, (flow, session, start, size) in sorted(self.live.items()):
            flow.stop()
            self.topology.detach_flow(fid)
            record = FctRecord(
                flow_id=fid,
                arrival_index=session.arrival.arrival_index,
                size_bytes=size,
                start=start,
                finish=None,
            )
            self.records.append(record)
            if self.on_flow_finish is not None:
                self.on_flow_finish(fid, record)
        self.live.clear()


def run_workload(
    topology: Topology,
    config: Optional[WorkloadConfig] = None,
    scheme: str = "cubic",
    min_rtt: float = 0.04,
    paths: Optional[Sequence[Tuple[str, ...]]] = None,
    drain: float = 10.0,
    initial_cwnd: float = 10.0,
    chaos: Optional[object] = None,
) -> WorkloadResult:
    """Drive an open-loop workload through ``topology`` and report FCTs.

    Arrivals span ``[0, config.duration)``; the run continues for ``drain``
    extra seconds so in-flight transfers can finish, then unfinished flows
    are recorded as incomplete. ``paths`` defaults to
    :func:`main_paths`; arrivals round-robin across them by arrival index.
    """
    cfg = config if config is not None else WorkloadConfig()
    schedule = generate_schedule(cfg, chaos=chaos)
    digest = schedule_digest(schedule)
    route_list = list(paths) if paths is not None else main_paths(topology)
    flapped = apply_linkflap(topology, chaos, cfg.duration)
    stalled = apply_aqmstall(topology, chaos, cfg.duration)

    runner = _Runner(topology, route_list, scheme, min_rtt, initial_cwnd)
    for arrival in schedule:
        session = _Session(runner, arrival)
        topology.loop.call_at(arrival.time, session.start_next)

    topology.loop.run_until(cfg.duration + drain)
    runner.abandon_remaining()

    # the slowest shared link on the first path anchors the slowdown ideal
    first_links = [
        topology.link_between(u, v)
        for u, v in zip(route_list[0], route_list[0][1:])
    ]
    bottleneck_bps = min(l.inner.rate.rate_at(0.0) for l in first_links)
    base_rtt = max(min_rtt, sum(l.prop_delay for l in first_links) * 2.0)

    records = sorted(runner.records, key=lambda r: (r.start, r.flow_id))
    link_stats = topology.link_stats()
    summary = FctSummary.from_records(
        records, base_rtt, bottleneck_bps,
        drops=sum(s["drops"] for s in link_stats),
        ecn_marks=sum(s["ecn_marks"] for s in link_stats),
    )
    return WorkloadResult(
        config=cfg,
        records=records,
        summary=summary,
        digest=digest,
        n_sessions=len(schedule),
        n_requests=runner.n_requests,
        peak_concurrent=runner.peak_concurrent,
        flapped_links=flapped,
        stalled_links=stalled,
        link_stats=link_stats,
    )
