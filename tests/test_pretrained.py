"""Tests for the shipped pretrained checkpoint (skipped if not built)."""

import json
from pathlib import Path

import numpy as np
import pytest

MODEL_DIR = Path(__file__).resolve().parent.parent / "models"
MODEL = MODEL_DIR / "sage_pretrained.npz"
META = MODEL_DIR / "sage_pretrained.json"

pytestmark = pytest.mark.skipif(
    not (MODEL.exists() and META.exists()),
    reason="pretrained checkpoint not built (see models/README.md)",
)


def load_agent():
    from repro.core.agent import SageAgent
    from repro.core.networks import NetworkConfig

    meta = json.loads(META.read_text())
    cfg = NetworkConfig(
        enc_dim=meta["enc_dim"], gru_dim=meta["gru_dim"],
        n_components=meta["n_components"], n_atoms=meta["n_atoms"],
    )
    return SageAgent.load(MODEL, net_config=cfg)


class TestPretrained:
    def test_loads_and_acts(self):
        from repro.collector.gr_unit import STATE_DIM

        agent = load_agent()
        agent.reset()
        r = agent.act(np.zeros(STATE_DIM))
        assert 1 / 3 <= r <= 3

    def test_moves_real_traffic(self):
        from repro.collector.environments import EnvConfig
        from repro.collector.rollout import run_policy

        agent = load_agent()
        env = EnvConfig(env_id="pretrained-check", kind="flat", bw_mbps=24.0,
                        min_rtt=0.04, buffer_bdp=2.0, duration=8.0)
        result = run_policy(env, agent)
        # a shipped model must hold a meaningful share of a familiar link
        # without bloating the queue (laptop-scale training favours delay)
        assert result.stats.avg_throughput_bps > 24e6 / 6
        assert result.stats.avg_owd < 0.04

    def test_metadata_consistent(self):
        meta = json.loads(META.read_text())
        assert meta["train_steps"] >= 1000
        assert len(meta["pool_schemes"]) >= 6
