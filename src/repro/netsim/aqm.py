"""Bottleneck buffers and Active Queue Management disciplines.

Figure 23 of the paper evaluates Sage under five queue disciplines: tail
drop (TDrop), head drop (HDrop), CoDel, PIE, and BoDe. Each discipline here
owns the FIFO buffer so that head-dropping variants can reach inside it.
The intelligent-queue subsystem extends the set with :class:`FQCoDel`
(per-flow fair queueing with per-queue CoDel) and :class:`LearnedECN`
(a trained marking predictor over queue telemetry) — the other side of the
CC-vs-queue arms race the ROADMAP's co-evolution league asks about.

The :class:`~repro.netsim.link.Link` drives the interface: it calls
:meth:`AQM.enqueue` on packet arrival and :meth:`AQM.dequeue` when the
serializer frees up, and it keeps :attr:`AQM.current_rate_bps` up to date so
delay-estimating disciplines (PIE, BoDe) can convert backlog to latency.
Disciplines that signal with ECN count CE marks in :attr:`AQM.ecn_marks`,
next to :attr:`AQM.drops`.
"""

from __future__ import annotations

import math
import warnings
from collections import deque
from typing import Dict, Optional

from repro.netsim.packet import MSS_BYTES, Packet


class AQM:
    """Base buffer: unbounded FIFO bookkeeping plus drop statistics."""

    name = "base"

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self.buffer: deque = deque()
        self.bytes_queued = 0
        self.drops = 0
        #: CE marks applied by ECN-capable disciplines (0 for loss-only ones).
        self.ecn_marks = 0
        self.enqueues = 0
        #: Updated by the Link before every enqueue/dequeue; lets the AQM
        #: estimate queueing delay as backlog / service rate.
        self.current_rate_bps = 1e6

    # -- interface -----------------------------------------------------
    def enqueue(self, pkt: Packet, now: float) -> bool:
        """Try to admit ``pkt``; return True if accepted."""
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        """Pop the next packet to serve, or None if empty."""
        if not self.buffer:
            return None
        pkt = self.buffer.popleft()
        self.bytes_queued -= pkt.size
        return pkt

    # -- helpers -------------------------------------------------------
    def _admit(self, pkt: Packet, now: float) -> None:
        pkt.enqueue_time = now
        self.buffer.append(pkt)
        self.bytes_queued += pkt.size
        self.enqueues += 1

    def queue_delay_estimate(self) -> float:
        """Backlog converted to seconds at the current service rate."""
        return self.bytes_queued * 8.0 / max(self.current_rate_bps, 1e3)

    def params(self) -> Dict[str, object]:
        """Discipline-specific knobs, for ``describe_topology`` pinning."""
        return {}

    def __len__(self) -> int:
        return len(self.buffer)


class TailDrop(AQM):
    """Classic drop-tail: reject arrivals that would overflow the buffer.

    Optionally ECN-capable: with ``ecn_threshold_bytes`` set, arrivals from
    ECT senders are CE-marked (not dropped) once the backlog exceeds the
    threshold — the simple step-marking DCTCP expects from its switches.
    """

    name = "taildrop"

    def __init__(
        self, capacity_bytes: int, ecn_threshold_bytes: Optional[int] = None
    ) -> None:
        super().__init__(capacity_bytes)
        if ecn_threshold_bytes is not None and ecn_threshold_bytes <= 0:
            raise ValueError("ECN threshold must be positive")
        self.ecn_threshold_bytes = ecn_threshold_bytes

    @property
    def ce_marks(self) -> int:
        """Historical alias for :attr:`ecn_marks` (pre-subsystem name)."""
        return self.ecn_marks

    def params(self) -> Dict[str, object]:
        if self.ecn_threshold_bytes is None:
            return {}
        return {"ecn_threshold_bytes": self.ecn_threshold_bytes}

    def enqueue(self, pkt: Packet, now: float) -> bool:
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        if (
            self.ecn_threshold_bytes is not None
            and pkt.ect
            and self.bytes_queued >= self.ecn_threshold_bytes
        ):
            pkt.ce = True
            self.ecn_marks += 1
        self._admit(pkt, now)
        return True


class HeadDrop(AQM):
    """Drop-from-front: on overflow, evict the *oldest* packet(s).

    Head drop signals congestion to the sender one queue-drain earlier than
    tail drop, which is why Mahimahi-style cellular evaluations often use it.
    """

    name = "headdrop"

    def enqueue(self, pkt: Packet, now: float) -> bool:
        while self.buffer and self.bytes_queued + pkt.size > self.capacity_bytes:
            victim = self.buffer.popleft()
            self.bytes_queued -= victim.size
            self.drops += 1
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        self._admit(pkt, now)
        return True


class CoDel(AQM):
    """Controlled Delay AQM (Nichols & Jacobson, CACM 2012).

    Tail-drops on hard overflow, and additionally drops at *dequeue* when the
    per-packet sojourn time has stayed above ``target`` for at least
    ``interval``, with the drop spacing shrinking as ``interval/sqrt(count)``.
    """

    name = "codel"

    def __init__(
        self,
        capacity_bytes: int,
        target: float = 0.005,
        interval: float = 0.100,
    ) -> None:
        super().__init__(capacity_bytes)
        self.target = target
        self.interval = interval
        self._first_above_time = 0.0
        self._drop_next = 0.0
        self._count = 0
        self._dropping = False

    def params(self) -> Dict[str, object]:
        return {"target": self.target, "interval": self.interval}

    def enqueue(self, pkt: Packet, now: float) -> bool:
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        self._admit(pkt, now)
        return True

    def _should_drop(self, pkt: Packet, now: float) -> bool:
        sojourn = now - pkt.enqueue_time
        if sojourn < self.target or self.bytes_queued < 2 * 1500:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def dequeue(self, now: float) -> Optional[Packet]:
        while self.buffer:
            pkt = self.buffer.popleft()
            self.bytes_queued -= pkt.size
            if self._dropping:
                if not self._should_drop(pkt, now):
                    self._dropping = False
                    return pkt
                if now >= self._drop_next:
                    self.drops += 1
                    self._count += 1
                    self._drop_next = now + self.interval / math.sqrt(self._count)
                    continue
                return pkt
            if self._should_drop(pkt, now):
                self.drops += 1
                self._dropping = True
                self._count = max(1, self._count // 2)
                self._drop_next = now + self.interval / math.sqrt(self._count)
                continue
            return pkt
        return None


class PIE(AQM):
    """Proportional Integral controller Enhanced (Pan et al., HPSR 2013).

    Probabilistically drops at enqueue; the drop probability is updated every
    ``t_update`` from the estimated queueing delay and its trend.
    """

    name = "pie"

    def __init__(
        self,
        capacity_bytes: int,
        target: float = 0.015,
        t_update: float = 0.030,
        alpha: float = 0.125,
        beta: float = 1.25,
        seed: int = 7,
    ) -> None:
        super().__init__(capacity_bytes)
        self.target = target
        self.t_update = t_update
        self.alpha = alpha
        self.beta = beta
        self._p = 0.0
        self._qdelay_old = 0.0
        self._last_update = 0.0
        # A tiny deterministic LCG keeps the discipline reproducible without
        # threading a numpy Generator through the hot path.
        self._rng_state = (seed * 2654435761) & 0xFFFFFFFF
        self._seed = seed

    def params(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "t_update": self.t_update,
            "alpha": self.alpha,
            "beta": self.beta,
            "seed": self._seed,
        }

    def _rand(self) -> float:
        self._rng_state = (1103515245 * self._rng_state + 12345) & 0x7FFFFFFF
        return self._rng_state / 0x7FFFFFFF

    def _maybe_update(self, now: float) -> None:
        if now - self._last_update < self.t_update:
            return
        self._last_update = now
        qdelay = self.queue_delay_estimate()
        p = self._p
        p += self.alpha * (qdelay - self.target) + self.beta * (qdelay - self._qdelay_old)
        self._qdelay_old = qdelay
        self._p = min(max(p, 0.0), 1.0)

    def enqueue(self, pkt: Packet, now: float) -> bool:
        self._maybe_update(now)
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        # PIE never drops when the queue is nearly empty (burst allowance).
        if self.bytes_queued > 3 * 1500 and self._rand() < self._p:
            self.drops += 1
            return False
        self._admit(pkt, now)
        return True


class BoDe(AQM):
    """Bounded-Delay queue (Abbasloo & Chao, 2019).

    Bounds the queueing delay: an arriving packet whose projected sojourn
    time exceeds ``delay_bound`` is rejected, regardless of byte backlog.
    """

    name = "bode"

    def __init__(self, capacity_bytes: int, delay_bound: float = 0.020) -> None:
        super().__init__(capacity_bytes)
        self.delay_bound = delay_bound

    def params(self) -> Dict[str, object]:
        return {"delay_bound": self.delay_bound}

    def enqueue(self, pkt: Packet, now: float) -> bool:
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        projected = (self.bytes_queued + pkt.size) * 8.0 / max(
            self.current_rate_bps, 1e3
        )
        if projected > self.delay_bound:
            self.drops += 1
            return False
        self._admit(pkt, now)
        return True


class _SubQueue:
    """One FQ-CoDel per-flow bucket: its packets, DRR deficit, CoDel state."""

    __slots__ = (
        "pkts", "bytes", "deficit",
        "first_above", "drop_next", "count", "dropping",
        "active", "is_new",
    )

    def __init__(self) -> None:
        self.pkts: deque = deque()
        self.bytes = 0
        self.deficit = 0
        self.first_above = 0.0
        self.drop_next = 0.0
        self.count = 0
        self.dropping = False
        self.active = False
        self.is_new = False


class FQCoDel(AQM):
    """Fair-Queueing CoDel (RFC 8290).

    Flows hash into ``n_queues`` sub-queues served by deficit round robin
    with a ``quantum`` of credit per turn. Queues that just became active sit
    on a *new* list served ahead of the *old* list, which is the sparse-flow
    priority: a flow sending less than its fair share re-enters the new list
    on every packet and never waits behind a bulk flow's backlog. Each
    sub-queue runs its own CoDel drop law; ECT packets are CE-marked instead
    of dropped. Hard overflow evicts from the head of the fattest sub-queue
    (never the arrival itself unless the buffer cannot hold it at all), so a
    bulk flow's backlog cannot crowd out sparse arrivals.
    """

    name = "fq_codel"

    def __init__(
        self,
        capacity_bytes: int,
        n_queues: int = 32,
        quantum: int = MSS_BYTES + 14,
        target: float = 0.005,
        interval: float = 0.100,
    ) -> None:
        super().__init__(capacity_bytes)
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.n_queues = int(n_queues)
        self.quantum = int(quantum)
        self.target = target
        self.interval = interval
        self._queues = [_SubQueue() for _ in range(self.n_queues)]
        self._new: deque = deque()
        self._old: deque = deque()

    def params(self) -> Dict[str, object]:
        return {
            "n_queues": self.n_queues,
            "quantum": self.quantum,
            "target": self.target,
            "interval": self.interval,
        }

    def _bucket(self, flow_id: int) -> _SubQueue:
        return self._queues[((flow_id * 2654435761) & 0xFFFFFFFF) % self.n_queues]

    def _evict_from_fattest(self) -> bool:
        """Drop one packet from the head of the largest backlog; False if none."""
        fattest = None
        for q in self._queues:
            if q.bytes and (fattest is None or q.bytes > fattest.bytes):
                fattest = q
        if fattest is None:
            return False
        victim = fattest.pkts.popleft()
        fattest.bytes -= victim.size
        self.bytes_queued -= victim.size
        self.drops += 1
        return True

    def enqueue(self, pkt: Packet, now: float) -> bool:
        while self.bytes_queued + pkt.size > self.capacity_bytes:
            if not self._evict_from_fattest():
                self.drops += 1
                return False
        q = self._bucket(pkt.flow_id)
        pkt.enqueue_time = now
        q.pkts.append(pkt)
        q.bytes += pkt.size
        self.bytes_queued += pkt.size
        self.enqueues += 1
        if not q.active:
            q.active = True
            q.is_new = True
            q.deficit = self.quantum
            self._new.append(q)
        return True

    # -- per-queue CoDel law -------------------------------------------
    def _q_over_target(self, q: _SubQueue, pkt: Packet, now: float) -> bool:
        sojourn = now - pkt.enqueue_time
        if sojourn < self.target or q.bytes < 2 * MSS_BYTES:
            q.first_above = 0.0
            return False
        if q.first_above == 0.0:
            q.first_above = now + self.interval
            return False
        return now >= q.first_above

    def _signal(self, q: _SubQueue, pkt: Packet) -> Optional[Packet]:
        """Apply one congestion signal: CE-mark ECT packets, drop the rest.

        Returns the (marked) packet when it survives, None when dropped.
        """
        if pkt.ect:
            pkt.ce = True
            self.ecn_marks += 1
            return pkt
        self.drops += 1
        return None

    def _codel_pop(self, q: _SubQueue, now: float) -> Optional[Packet]:
        while q.pkts:
            pkt = q.pkts.popleft()
            q.bytes -= pkt.size
            self.bytes_queued -= pkt.size
            if q.dropping:
                if not self._q_over_target(q, pkt, now):
                    q.dropping = False
                    return pkt
                if now >= q.drop_next:
                    q.count += 1
                    q.drop_next = now + self.interval / math.sqrt(q.count)
                    survivor = self._signal(q, pkt)
                    if survivor is not None:
                        return survivor
                    continue
                return pkt
            if self._q_over_target(q, pkt, now):
                q.dropping = True
                q.count = max(1, q.count // 2)
                q.drop_next = now + self.interval / math.sqrt(q.count)
                survivor = self._signal(q, pkt)
                if survivor is not None:
                    return survivor
                continue
            return pkt
        return None

    def dequeue(self, now: float) -> Optional[Packet]:
        while True:
            if self._new:
                lst = self._new
            elif self._old:
                lst = self._old
            else:
                return None
            q = lst[0]
            if q.deficit <= 0:
                q.deficit += self.quantum
                lst.popleft()
                q.is_new = False
                self._old.append(q)
                continue
            pkt = self._codel_pop(q, now)
            if pkt is None:
                lst.popleft()
                if q.is_new:
                    # An emptied new queue keeps one turn on the old list so
                    # a quick refill doesn't re-earn sparse credit (RFC 8290).
                    q.is_new = False
                    self._old.append(q)
                else:
                    q.active = False
                continue
            q.deficit -= pkt.size
            return pkt

    def __len__(self) -> int:
        return sum(len(q.pkts) for q in self._queues)


class LearnedECN(AQM):
    """Learned ECN-marking queue: a trained predictor decides when to signal.

    At enqueue the discipline evaluates an
    :class:`~repro.netsim.ecn_model.EcnPredictor` over live queue telemetry
    (occupancy fraction, sojourn EWMA, arrival-rate EWMA, drain rate) and
    fires a congestion signal with the predicted probability: ECT packets
    are CE-marked, non-ECT packets are dropped. Randomness comes from the
    same seeded LCG as PIE, so decision streams are reproducible run to run.

    Without a checkpoint the queue falls back to deterministic step marking
    at ``threshold_frac`` of the buffer (a DCTCP-style switch profile), so
    the discipline is usable — and still seed-deterministic — before
    :mod:`repro.aqm_learn` has produced a model.
    """

    name = "learned_ecn"

    def __init__(
        self,
        capacity_bytes: int,
        predictor: Optional[object] = None,
        checkpoint: Optional[str] = None,
        threshold_frac: float = 0.35,
        target: float = 0.005,
        seed: int = 11,
    ) -> None:
        super().__init__(capacity_bytes)
        if not 0.0 < threshold_frac <= 1.0:
            raise ValueError(
                f"threshold_frac must be in (0, 1], got {threshold_frac}"
            )
        self.load_warning: Optional[str] = None
        if checkpoint is not None and predictor is None:
            from repro.netsim.ecn_model import EcnPredictor

            try:
                predictor = EcnPredictor.load(checkpoint)
            except (ValueError, OSError) as exc:
                # graceful degradation: a corrupt/missing model must not
                # take the queue down — fall back to threshold marking
                # and record why, so setup can surface it
                self.load_warning = (
                    f"ECN predictor {checkpoint} unusable ({exc}); "
                    f"falling back to threshold marking"
                )
                warnings.warn(self.load_warning, RuntimeWarning, stacklevel=2)
        self.predictor = predictor
        self.checkpoint = checkpoint
        self.threshold_frac = threshold_frac
        self.target = target
        self._seed = seed
        self._rng_state = (seed * 2654435761) & 0xFFFFFFFF
        self._sojourn_ewma = 0.0
        self._arrival_rate = 0.0
        self._last_arrival = -1.0

    def params(self) -> Dict[str, object]:
        return {
            "mode": "model" if self.predictor is not None else "threshold",
            "checkpoint": self.checkpoint,
            "threshold_frac": self.threshold_frac,
            "target": self.target,
            "seed": self._seed,
        }

    def _rand(self) -> float:
        self._rng_state = (1103515245 * self._rng_state + 12345) & 0x7FFFFFFF
        return self._rng_state / 0x7FFFFFFF

    def features(self) -> tuple:
        """The live telemetry vector the predictor sees (see FEATURES)."""
        return (
            self.bytes_queued / self.capacity_bytes,
            self._sojourn_ewma,
            self._arrival_rate,
            self.current_rate_bps,
        )

    def mark_probability(self) -> float:
        """Signal probability for a packet arriving *now*."""
        occupancy, sojourn, arrival, drain = self.features()
        if self.predictor is None:
            return 1.0 if occupancy >= self.threshold_frac else 0.0
        return self.predictor.predict_one(occupancy, sojourn, arrival, drain)

    def enqueue(self, pkt: Packet, now: float) -> bool:
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            self.drops += 1
            return False
        if self._last_arrival >= 0.0 and now > self._last_arrival:
            inst = pkt.size * 8.0 / (now - self._last_arrival)
            self._arrival_rate += 0.1 * (inst - self._arrival_rate)
        self._last_arrival = now
        p = self.mark_probability()
        if p > 0.0 and self._rand() < p:
            if pkt.ect:
                pkt.ce = True
                self.ecn_marks += 1
            else:
                self.drops += 1
                return False
        self._admit(pkt, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        pkt = super().dequeue(now)
        if pkt is not None:
            self._sojourn_ewma += 0.1 * (
                (now - pkt.enqueue_time) - self._sojourn_ewma
            )
        return pkt


_AQM_REGISTRY = {
    "taildrop": TailDrop,
    "tdrop": TailDrop,
    "headdrop": HeadDrop,
    "hdrop": HeadDrop,
    "codel": CoDel,
    "pie": PIE,
    "bode": BoDe,
    "fq_codel": FQCoDel,
    "fqcodel": FQCoDel,
    "learned_ecn": LearnedECN,
}

#: Disciplines that CE-mark ECT traffic on their own (no external threshold).
ECN_CAPABLE_AQMS = frozenset({"fq_codel", "fqcodel", "learned_ecn"})


def make_aqm(name: str, capacity_bytes: int, **kwargs) -> AQM:
    """Build an AQM by name.

    Names are the registry keys (``taildrop``/``headdrop``/``codel``/``pie``/
    ``bode``/``fq_codel``/``learned_ecn``). ``learned_ecn@/path/to/model.npz``
    loads a trained :class:`~repro.netsim.ecn_model.EcnPredictor` checkpoint —
    the suffix form lets string-only configs (env families, CLI flags) carry
    the model.
    """
    key, _, checkpoint = name.partition("@")
    key = key.lower()
    if checkpoint:
        if key != "learned_ecn":
            raise ValueError(
                f"only learned_ecn accepts an @checkpoint suffix, got {name!r}"
            )
        kwargs.setdefault("checkpoint", checkpoint)
    if key not in _AQM_REGISTRY:
        raise ValueError(f"unknown AQM {name!r}; choose from {sorted(set(_AQM_REGISTRY))}")
    return _AQM_REGISTRY[key](capacity_bytes, **kwargs)


def aqm_names() -> tuple:
    """Canonical registry names (aliases collapsed), for CLI choices."""
    seen = {}
    for key, cls in _AQM_REGISTRY.items():
        seen.setdefault(cls, key)
    return tuple(sorted(seen.values()))
