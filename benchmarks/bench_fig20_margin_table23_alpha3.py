"""Figs. 20/21 and Tables 2/3 — ranking robustness.

Appendix D recomputes the league rankings with a 5% winning margin
(instead of 10%) and with alpha = 3 (instead of 2) in the power score.
Paper shape: the rankings remain largely intact under both changes.
"""

import numpy as np

from conftest import bench_pool_schemes, bench_set1, bench_set2, once

from repro.evalx.leagues import Participant, run_league
from repro.evalx.scores import winning_rates


def _spearman(order_a, order_b):
    common = [n for n in order_a if n in order_b]
    ra = {n: i for i, n in enumerate(order_a)}
    rb = {n: i for i, n in enumerate(order_b)}
    a = np.array([ra[n] for n in common], dtype=float)
    b = np.array([rb[n] for n in common], dtype=float)
    if a.std() == 0 or b.std() == 0:
        return 1.0
    return float(np.corrcoef(a, b)[0, 1])


def test_fig20_margin_and_alpha_sensitivity(benchmark):
    parts = [Participant.from_scheme(s) for s in bench_pool_schemes()]
    set1, set2 = bench_set1(), bench_set2()

    def run():
        base = run_league(parts, set1=set1, set2=set2, margin=0.10, alpha=2.0)
        # 5% margin rescored from the same runs' score entries
        tight1 = winning_rates(base.set1_entries, margin=0.05)
        tight2 = winning_rates(base.set2_entries, margin=0.05)
        alpha3 = run_league(parts, set1=set1, set2=[], margin=0.10, alpha=3.0)
        return base, tight1, tight2, alpha3

    base, tight1, tight2, alpha3 = once(benchmark, run)

    def order(rates):
        return [n for n, _ in sorted(rates.items(), key=lambda kv: -kv[1])]

    print("\n=== Fig. 20/21: 5% margin rankings ===")
    for name, r in sorted(tight1.items(), key=lambda kv: -kv[1]):
        print(f"  Set I  {name:>12} {r * 100:7.2f}%")
    for name, r in sorted(tight2.items(), key=lambda kv: -kv[1]):
        print(f"  Set II {name:>12} {r * 100:7.2f}%")
    print("=== Tables 2/3: alpha=3 Set I rankings ===")
    for name, r in alpha3.ranking("set1"):
        print(f"  {name:>12} {r * 100:7.2f}%")

    rho_margin = _spearman(order(base.set1_rates), order(tight1))
    rho_alpha = _spearman(order(base.set1_rates), order(alpha3.set1_rates))
    print(f"rank correlation: 5%-margin={rho_margin:.2f} alpha3={rho_alpha:.2f}")
    # Appendix D: rankings remain largely intact
    assert rho_margin > 0.5
    assert rho_alpha > 0.5
    # winners under a tighter margin can only shrink
    assert all(tight1[n] <= base.set1_rates[n] + 1e-9 for n in tight1)
