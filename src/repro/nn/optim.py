"""Optimizers: Adam with global-norm gradient clipping."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.autograd import Tensor


def clip_grad_norm(params: List[Tensor], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm <= ``max_norm``.

    Returns the pre-clip norm (useful for training diagnostics).
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad * p.grad).sum())
    norm = total ** 0.5
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Adam:
    """Adam (Kingma & Ba 2015) over a fixed parameter list."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update using the gradients currently on the params."""
        self.t += 1
        b1c = 1.0 - self.beta1 ** self.t
        b2c = 1.0 - self.beta2 ** self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            p.data -= self.lr * (m / b1c) / (np.sqrt(v / b2c) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None
