"""Critic-Regularized Regression (Wang et al. 2020) — Sage's learner.

Two iterated steps over the fixed pool ``D`` (Section 4.2):

**Policy evaluation** (Eq. 5): distributional TD — the critic's categorical
value distribution is regressed onto the projected Bellman target
``r + gamma * Z_target(s', a')`` with ``a' ~ pi_target(.|s')``.

**Policy improvement** (Eq. 6): advantage-filtered regression::

    maximize  E_D [ f(Q, pi, s, a) * log pi(a|s) ],
    f = exp(A(s, a)),   A = Q(s,a) - (1/m) sum_j Q(s, a_j),  a_j ~ pi(.|s)

The exponential filter keeps actions that the critic scores above the
policy's own average — learning *from* the pool without *imitating* it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.collector.gr_unit import normalize_state
from repro.collector.pool import PolicyPool
from repro.core.networks import NetworkConfig, SageCritic, SagePolicy, log_action
from repro.nn.autograd import Tensor, no_grad, stack_rows
from repro.nn.functional import softmax_np
from repro.nn.optim import Adam, clip_grad_norm

#: ``metrics_callback`` signature: ``(steps_done, metrics) -> None``.
MetricsCallback = Callable[[int, Dict[str, float]], None]


@dataclass
class CRRConfig:
    """Learner hyper-parameters."""

    gamma: float = 0.99
    batch_size: int = 16
    seq_len: int = 8
    m_samples: int = 4  # actions sampled for the advantage baseline
    adv_temperature: float = 1.0
    f_max: float = 20.0  # clip on the exponential filter
    #: "exp" is the paper's f = exp(A) (Eq. 6); "binary" is the CRR paper's
    #: indicator variant f = 1[A > 0] — less sample-efficient but immune to
    #: advantage-scale noise on small pools.
    filter_type: str = "exp"
    lr_policy: float = 3e-4
    lr_critic: float = 3e-4
    grad_clip: float = 10.0
    target_tau: float = 0.01  # Polyak rate for target networks
    reward_scale: float = 10.0  # maps per-step rewards onto the atom support
    #: keep at most this many entries per metric in ``trainer.history``
    #: (``None`` = unbounded); multi-hundred-thousand-step runs should bound
    #: it so the metric lists don't grow with the run length.
    history_limit: Optional[int] = 100_000

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        if self.seq_len < 1 or self.batch_size < 1 or self.m_samples < 1:
            raise ValueError("batch/seq/m_samples must be positive")
        if self.filter_type not in ("exp", "binary"):
            raise ValueError(f"filter_type must be exp/binary, got {self.filter_type!r}")
        if self.history_limit is not None and self.history_limit < 1:
            raise ValueError("history_limit must be positive (or None)")


class CRRTrainer:
    """Trains a :class:`SagePolicy` / :class:`SageCritic` pair offline."""

    def __init__(
        self,
        pool: PolicyPool,
        net_config: Optional[NetworkConfig] = None,
        config: Optional[CRRConfig] = None,
        seed: int = 0,
        state_mask: Optional[np.ndarray] = None,
    ) -> None:
        """``state_mask``: optional 0/1 vector over the 69 inputs; zeroed
        entries are removed from the agent's view (the Fig. 12 input
        ablations)."""
        self.pool = pool
        self.cfg = config if config is not None else CRRConfig()
        self.net_cfg = net_config if net_config is not None else NetworkConfig()
        self.state_mask = None if state_mask is None else np.asarray(state_mask, float)
        self.rng = np.random.default_rng(seed)

        self.policy = SagePolicy(self.net_cfg, self.rng)
        self.critic = SageCritic(self.net_cfg, self.rng)
        self.target_policy = SagePolicy(self.net_cfg, self.rng)
        self.target_critic = SageCritic(self.net_cfg, self.rng)
        self.target_policy.copy_from(self.policy)
        self.target_critic.copy_from(self.critic)

        self.opt_policy = Adam(self.policy.parameters(), lr=self.cfg.lr_policy)
        self.opt_critic = Adam(self.critic.parameters(), lr=self.cfg.lr_critic)
        self.steps_done = 0
        self.history: Dict[str, deque] = {
            k: deque(maxlen=self.cfg.history_limit)
            for k in ("critic_loss", "policy_loss", "mean_f")
        }

    # ------------------------------------------------------------------
    def _normalize(self, s: np.ndarray) -> np.ndarray:
        out = normalize_state(s)
        if self.state_mask is not None:
            out = out * self.state_mask
        return out

    def _sample_batch(self) -> Dict[str, np.ndarray]:
        return self.pool.sample_sequences(
            self.cfg.batch_size,
            self.cfg.seq_len,
            self.rng,
            normalize=self._normalize,
        )

    def train_step(self) -> Dict[str, float]:
        """One policy-evaluation + policy-improvement iteration."""
        cfg = self.cfg
        batch = self._sample_batch()
        states = batch["states"]  # (B, L, D), already normalized
        next_states = batch["next_states"]
        actions = batch["actions"]  # (B, L) cwnd ratios
        rewards = batch["rewards"] * cfg.reward_scale
        b, l, _ = states.shape
        log_a = log_action(actions)

        # ---- targets (no gradients) -----------------------------------
        with no_grad():
            tgt_pol_feats = self.target_policy.features_seq(next_states)
            tgt_rec = self.target_critic.recurrent_seq(next_states)
            target_probs = np.empty((b, l, self.critic.head.n_atoms))
            for t in range(l):
                a_next = self.target_policy.sample(tgt_pol_feats[t], self.rng)
                logits = self.target_critic.q_logits(tgt_rec[t], log_action(a_next))
                next_p = softmax_np(logits.data)
                target_probs[:, t, :] = self.critic.head.project_target(
                    rewards[:, t], cfg.gamma, next_p
                )

        # ---- policy evaluation (critic update, Eq. 5) -------------------
        rec = self.critic.recurrent_seq(states)
        critic_losses = []
        for t in range(l):
            feats = self.critic.q_features(rec[t], log_a[:, t])
            critic_losses.append(
                self.critic.head.cross_entropy(feats, target_probs[:, t, :])
            )
        critic_loss = stack_rows(critic_losses).mean()
        self.opt_critic.zero_grad()
        critic_loss.backward()
        clip_grad_norm(self.critic.parameters(), cfg.grad_clip)
        self.opt_critic.step()

        # ---- advantage filter (no gradients) ------------------------------
        # One policy trunk pass serves both the filter (values only; the
        # head's sample() runs under no_grad) and the improvement step below
        # (gradients) — the filter must NOT reuse the critic features from
        # the evaluation step though, because the critic was just updated.
        pol_feats = self.policy.features_seq(states)
        with no_grad():
            rec_ng = self.critic.recurrent_seq(states)
            f = np.empty((b, l))
            for t in range(l):
                q_data = self.critic.q_value(rec_ng[t], log_a[:, t]).data
                q_base = np.zeros(b)
                for _ in range(cfg.m_samples):
                    a_j = self.policy.sample(pol_feats[t], self.rng)
                    q_base += self.critic.q_value(rec_ng[t], log_action(a_j)).data
                adv = q_data - q_base / cfg.m_samples
                if cfg.filter_type == "binary":
                    f[:, t] = (adv > 0).astype(float)
                else:
                    f[:, t] = np.minimum(
                        np.exp(adv / cfg.adv_temperature), cfg.f_max
                    )

        # ---- policy improvement (Eq. 6) ----------------------------------
        pol_losses = []
        for t in range(l):
            logp = self.policy.log_prob(pol_feats[t], log_a[:, t])
            pol_losses.append((Tensor(f[:, t]) * logp * -1.0).mean())
        policy_loss = stack_rows(pol_losses).mean()
        self.opt_policy.zero_grad()
        policy_loss.backward()
        clip_grad_norm(self.policy.parameters(), cfg.grad_clip)
        self.opt_policy.step()

        # ---- target updates --------------------------------------------
        self.target_policy.soft_update(self.policy, cfg.target_tau)
        self.target_critic.soft_update(self.critic, cfg.target_tau)

        self.steps_done += 1
        metrics = {
            "critic_loss": float(critic_loss.data),
            "policy_loss": float(policy_loss.data),
            "mean_f": float(f.mean()),
        }
        for k, v in metrics.items():
            self.history[k].append(v)
        return metrics

    def train(
        self,
        n_steps: int,
        log_every: int = 0,
        metrics_callback: Optional[MetricsCallback] = None,
    ) -> Dict[str, float]:
        """Run ``n_steps`` iterations; returns the final step's metrics.

        ``metrics_callback(steps_done, metrics)`` replaces the default
        ``print`` logging: it fires every ``log_every`` steps, or after
        every step when ``log_every`` is 0.
        """
        metrics: Dict[str, float] = {}
        for i in range(n_steps):
            metrics = self.train_step()
            if metrics_callback is not None:
                if log_every == 0 or (i + 1) % log_every == 0:
                    metrics_callback(self.steps_done, metrics)
            elif log_every and (i + 1) % log_every == 0:
                print(
                    f"step {self.steps_done}: "
                    f"critic={metrics['critic_loss']:.4f} "
                    f"policy={metrics['policy_loss']:.4f} "
                    f"f={metrics['mean_f']:.3f}"
                )
        return metrics
