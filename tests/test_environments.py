"""Tests for environment configs and the Set I / Set II grids."""

import pytest

from repro.collector.environments import (
    EnvConfig,
    build_network,
    set1_environments,
    set2_environments,
    training_environments,
)


class TestEnvConfig:
    def test_bdp_math(self):
        env = EnvConfig(
            env_id="e", kind="flat", bw_mbps=48.0, min_rtt=0.04, buffer_bdp=1.0
        )
        assert env.bdp_bytes == pytest.approx(48e6 * 0.04 / 8)
        assert env.buffer_bytes == int(env.bdp_bytes)

    def test_buffer_floor(self):
        env = EnvConfig(
            env_id="e", kind="flat", bw_mbps=1.0, min_rtt=0.001, buffer_bdp=0.5
        )
        assert env.buffer_bytes >= 3 * 1500

    def test_fair_share(self):
        env = EnvConfig(
            env_id="e", kind="flat", bw_mbps=24.0, min_rtt=0.04, buffer_bdp=2.0,
            n_competing_cubic=1,
        )
        assert env.fair_share_bps(2) == pytest.approx(12e6)
        with pytest.raises(ValueError):
            env.fair_share_bps(0)

    def test_multi_flow_flag(self):
        env = EnvConfig(
            env_id="e", kind="flat", bw_mbps=24.0, min_rtt=0.04, buffer_bdp=2.0,
            n_competing_cubic=2,
        )
        assert env.is_multi_flow

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            EnvConfig(env_id="e", kind="flat", bw_mbps=0, min_rtt=0.04, buffer_bdp=1)
        with pytest.raises(ValueError):
            EnvConfig(env_id="e", kind="warp", bw_mbps=1, min_rtt=0.04, buffer_bdp=1)

    @pytest.mark.parametrize("kind", ["flat", "step", "cellular", "internet"])
    def test_rate_process_positive(self, kind):
        env = EnvConfig(
            env_id="e", kind=kind, bw_mbps=24.0, min_rtt=0.04, buffer_bdp=2.0,
            step_m=2.0, step_at=5.0,
        )
        rp = env.rate_process()
        assert rp.rate_at(0.0) > 0
        assert rp.rate_at(7.5) > 0

    def test_build_network(self):
        env = EnvConfig(
            env_id="e", kind="flat", bw_mbps=24.0, min_rtt=0.04, buffer_bdp=2.0,
            aqm="codel",
        )
        loop, net = build_network(env)
        assert net.link.aqm.name == "codel"
        assert net.link.aqm.capacity_bytes == env.buffer_bytes

    def test_build_network_with_ecn(self):
        env = EnvConfig(
            env_id="e", kind="flat", bw_mbps=24.0, min_rtt=0.04,
            buffer_bdp=4.0, ecn_threshold_bdp=0.25,
        )
        loop, net = build_network(env)
        assert net.link.aqm.ecn_threshold_bytes == int(0.25 * env.bdp_bytes)

    def test_ecn_requires_taildrop(self):
        env = EnvConfig(
            env_id="e", kind="flat", bw_mbps=24.0, min_rtt=0.04,
            buffer_bdp=4.0, aqm="codel", ecn_threshold_bdp=0.25,
        )
        with pytest.raises(ValueError):
            build_network(env)

    def test_dctcp_end_to_end_on_ecn_env(self):
        from repro.collector.rollout import collect_trajectory

        env = EnvConfig(
            env_id="dctcp-e2e", kind="flat", bw_mbps=24.0, min_rtt=0.02,
            buffer_bdp=8.0, ecn_threshold_bdp=0.5, duration=6.0,
        )
        r = collect_trajectory(env, "dctcp")
        assert r.stats.avg_throughput_bps > 0.6 * 24e6
        # ECN keeps the standing queue near the marking threshold, far
        # below the 8-BDP buffer
        assert r.stats.avg_owd < 0.02 / 2 + 0.5 * (8 * 0.02)


class TestGrids:
    def test_set1_has_flat_and_step(self):
        envs = set1_environments()
        kinds = {e.kind for e in envs}
        assert kinds == {"flat", "step"}
        assert all(not e.is_multi_flow for e in envs)

    def test_set1_step_targets_capped(self):
        envs = set1_environments(bws=(96.0,), step_ms=(4.0, 2.0, 0.5))
        for e in envs:
            if e.kind == "step":
                assert e.bw_mbps * e.step_m < 200.0

    def test_set2_all_multi_flow(self):
        envs = set2_environments()
        assert all(e.n_competing_cubic == 1 for e in envs)
        assert all(e.buffer_bdp >= 1.0 for e in envs)  # Appendix C.2

    def test_env_ids_unique(self):
        envs = set1_environments() + set2_environments()
        ids = [e.env_id for e in envs]
        assert len(ids) == len(set(ids))

    @pytest.mark.parametrize("scale", ["mini", "small", "full"])
    def test_training_scales(self, scale):
        envs = training_environments(scale)
        assert len(envs) > 0
        assert any(e.is_multi_flow for e in envs)
        assert any(not e.is_multi_flow for e in envs)

    def test_scales_grow(self):
        assert (
            len(training_environments("mini"))
            < len(training_environments("small"))
            < len(training_environments("full"))
        )

    def test_full_scale_covers_paper_ranges(self):
        envs = training_environments("full")
        bws = {e.bw_mbps for e in envs}
        rtts = {e.min_rtt for e in envs}
        assert min(bws) == 12.0 and max(bws) == 192.0
        assert min(rtts) == 0.010 and max(rtts) == 0.160

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            training_environments("galactic")
