"""Remy-like baseline (Winstein & Balakrishnan — SIGCOMM 2013).

Remy is *computer-generated* CC by offline policy search: given a model of
the design-range networks, an optimizer searches a table mapping a small
discretized congestion state to control actions; the table is then frozen
and deployed. Appendix A recalls its known weakness — performance degrades
sharply when evaluation networks diverge from the design range, because the
table encodes assumptions about the modeled networks.

This implementation keeps all three Remy ingredients:

- a compact engineered state: (rtt ratio, delivery-rate ratio, BDP/cwnd),
  each discretized into a few buckets;
- a rule table mapping each bucket to a cwnd ratio;
- an offline optimizer (stochastic hill climbing) that scores candidate
  tables by their mean reward over the *design* environments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.collector.environments import EnvConfig
from repro.collector.gr_unit import STATE_FIELDS
from repro.collector.rollout import run_policy

_RTT_RATE_IDX = STATE_FIELDS.index("rtt_rate")
_DR_RATIO_IDX = STATE_FIELDS.index("dr_ratio")
_BDP_CWND_IDX = STATE_FIELDS.index("bdp_cwnd")

#: bucket edges per feature (3 buckets each -> 27 rules)
_RTT_EDGES = (0.98, 1.02)  # rtt shrinking / steady / growing
_DR_EDGES = (0.95, 1.05)  # rate falling / steady / rising
_BDP_EDGES = (0.8, 1.2)  # cwnd above BDP / matched / below BDP

#: candidate actions the optimizer may place in a rule
ACTION_CHOICES = (0.7, 0.85, 0.95, 1.0, 1.02, 1.05, 1.15, 1.4)


def _bucket(value: float, edges: Tuple[float, float]) -> int:
    if value < edges[0]:
        return 0
    if value < edges[1]:
        return 1
    return 2


def state_to_rule_index(state: np.ndarray) -> int:
    """Map a raw 69-dim GR state to one of the 27 rule-table cells."""
    r = _bucket(float(state[_RTT_RATE_IDX]), _RTT_EDGES)
    d = _bucket(float(state[_DR_RATIO_IDX]), _DR_EDGES)
    b = _bucket(float(state[_BDP_CWND_IDX]), _BDP_EDGES)
    return (r * 3 + d) * 3 + b


@dataclass
class RemyTable:
    """A frozen rule table: 27 cwnd ratios."""

    actions: np.ndarray = field(
        default_factory=lambda: np.full(27, 1.02)  # mild default probing
    )

    def __post_init__(self) -> None:
        self.actions = np.asarray(self.actions, dtype=float)
        if self.actions.shape != (27,):
            raise ValueError(f"rule table must have 27 entries, got {self.actions.shape}")

    def lookup(self, state: np.ndarray) -> float:
        return float(self.actions[state_to_rule_index(state)])

    def mutated(self, rng: np.random.Generator, n_cells: int = 3) -> "RemyTable":
        """A neighbour table with ``n_cells`` randomly re-assigned rules."""
        new = self.actions.copy()
        for idx in rng.choice(27, size=min(n_cells, 27), replace=False):
            new[idx] = ACTION_CHOICES[int(rng.integers(len(ACTION_CHOICES)))]
        return RemyTable(new)


class RemyAgent:
    """Deployable frozen rule table (PolicyAgent protocol)."""

    def __init__(self, table: RemyTable, name: str = "remy") -> None:
        self.table = table
        self.name = name

    def reset(self) -> None:  # stateless
        pass

    def act(self, state: np.ndarray) -> float:
        return self.table.lookup(state)


class RemyOptimizer:
    """Offline stochastic hill climbing over rule tables.

    The score of a table is the mean per-step reward of deploying it in the
    *design* environments — exactly Remy's objective (here scored in the
    simulator instead of Remy's analytic network model).
    """

    def __init__(
        self,
        design_envs: Sequence[EnvConfig],
        seed: int = 0,
        rollout_tick: float = 0.02,
    ) -> None:
        if not design_envs:
            raise ValueError("need at least one design environment")
        self.design_envs = list(design_envs)
        self.rng = np.random.default_rng(seed)
        self.rollout_tick = rollout_tick
        self.history: List[float] = []

    def score(self, table: RemyTable) -> float:
        rewards = []
        for env in self.design_envs:
            result = run_policy(env, RemyAgent(table), tick=self.rollout_tick)
            rewards.append(float(np.mean(result.rewards)))
        return float(np.mean(rewards))

    def optimize(
        self, n_iterations: int = 10, init: Optional[RemyTable] = None
    ) -> RemyAgent:
        best = init if init is not None else RemyTable()
        best_score = self.score(best)
        self.history.append(best_score)
        for _ in range(n_iterations):
            candidate = best.mutated(self.rng)
            cand_score = self.score(candidate)
            if cand_score > best_score:
                best, best_score = candidate, cand_score
            self.history.append(best_score)
        return RemyAgent(best)
