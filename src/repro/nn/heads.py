"""Output heads: the Gaussian-mixture policy and the C51 critic.

- :class:`GMMHead` parameterizes a mixture-of-Gaussians distribution over
  the (log of the) cwnd ratio, matching Fig. 6's last layer. The mixture
  keeps the offline learner from collapsing onto a single heuristic's action
  mode — the paper's "no GMM" ablation shows why that matters.
- :class:`DistributionalHead` is the categorical (C51-style) value
  distribution used to stabilize the Q update [Bellemare et al. 2017],
  referenced by Eq. 5's "distributional version of the Q update".
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.functional import softmax_np
from repro.nn.layers import Linear, Module

_LOG_2PI = math.log(2.0 * math.pi)

#: Action bounds in log-ratio space: cwnd can at most triple or third per tick.
LOG_ACTION_LO = math.log(1.0 / 3.0)
LOG_ACTION_HI = math.log(3.0)


class GMMHead(Module):
    """Mixture-of-Gaussians policy head over a scalar action.

    The network emits, per mixture component: a logit, a mean, and a log
    standard deviation. ``log_prob`` evaluates actions in *log-ratio* space;
    ``sample``/``mode`` return ratios ready for :meth:`TcpSender.set_cwnd`.
    """

    def __init__(
        self,
        in_dim: int,
        n_components: int,
        rng: np.random.Generator,
        log_std_min: float = -4.0,
        log_std_max: float = 0.0,
    ) -> None:
        if n_components < 1:
            raise ValueError("need at least one mixture component")
        self.n_components = n_components
        self.log_std_min = log_std_min
        self.log_std_max = log_std_max
        self.proj = Linear(in_dim, 3 * n_components, rng)

    def _split(self, h: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        out = self.proj(h)
        k = self.n_components
        logits = out[..., 0:k]
        means = out[..., k : 2 * k].tanh() * (
            (LOG_ACTION_HI - LOG_ACTION_LO) / 2.0
        )  # means live inside the action range, centered on ratio 1.0
        log_std = out[..., 2 * k : 3 * k].clip(self.log_std_min, self.log_std_max)
        return logits, means, log_std

    def log_prob(self, h: Tensor, log_action: np.ndarray) -> Tensor:
        """Log-density of ``log_action`` (shape (B,)) under the mixture."""
        logits, means, log_std = self._split(h)
        a = Tensor(np.asarray(log_action)[..., None])  # (B, 1)
        inv_var = (log_std * -2.0).exp()
        quad = (a - means) * (a - means) * inv_var * -0.5
        comp_logpdf = quad - log_std - 0.5 * _LOG_2PI
        mix = logits.log_softmax(axis=-1)
        return (mix + comp_logpdf).logsumexp(axis=-1)

    def sample(self, h: Tensor, rng: np.random.Generator) -> np.ndarray:
        """Draw action ratios (shape (B,)); no gradients."""
        with no_grad():
            logits, means, log_std = self._split(h)
        p = softmax_np(logits.data)
        b = p.shape[0]
        comps = np.array([rng.choice(self.n_components, p=p[i]) for i in range(b)])
        mu = means.data[np.arange(b), comps]
        sigma = np.exp(log_std.data[np.arange(b), comps])
        u = mu + sigma * rng.standard_normal(b)
        return np.exp(np.clip(u, LOG_ACTION_LO, LOG_ACTION_HI))

    def mode(self, h: Tensor) -> np.ndarray:
        """Deterministic action: the mean of the most likely component."""
        with no_grad():
            logits, means, _ = self._split(h)
        comps = logits.data.argmax(axis=-1)
        mu = means.data[np.arange(means.data.shape[0]), comps]
        return np.exp(np.clip(mu, LOG_ACTION_LO, LOG_ACTION_HI))


class DistributionalHead(Module):
    """Categorical value distribution over fixed atoms (C51).

    ``n_atoms`` support points span ``[v_min, v_max]``; the head outputs
    logits whose softmax is the value distribution. The projected Bellman
    update lives in :meth:`project_target`.
    """

    def __init__(
        self,
        in_dim: int,
        rng: np.random.Generator,
        n_atoms: int = 21,
        v_min: float = 0.0,
        v_max: float = 50.0,
    ) -> None:
        if n_atoms < 2 or v_max <= v_min:
            raise ValueError("need >= 2 atoms and v_max > v_min")
        self.n_atoms = n_atoms
        self.v_min = v_min
        self.v_max = v_max
        self.atoms = np.linspace(v_min, v_max, n_atoms)
        self.delta = (v_max - v_min) / (n_atoms - 1)
        self.proj = Linear(in_dim, n_atoms, rng)

    def logits(self, h: Tensor) -> Tensor:
        return self.proj(h)

    def expected_value(self, h: Tensor) -> Tensor:
        """E[Z] as a Tensor (B,) — the scalar Q value."""
        probs = self.logits(h).softmax(axis=-1)
        return (probs * Tensor(self.atoms)).sum(axis=-1)

    def expected_value_np(self, h: Tensor) -> np.ndarray:
        with no_grad():
            return self.expected_value(h).data

    def project_target(
        self, rewards: np.ndarray, gamma: float, next_probs: np.ndarray
    ) -> np.ndarray:
        """Project ``r + gamma * Z'`` back onto the fixed atom support.

        ``rewards``: (B,), ``next_probs``: (B, n_atoms). Returns (B, n_atoms)
        target probabilities (constants — no gradient flows through them).
        """
        b = rewards.shape[0]
        tz = np.clip(
            rewards[:, None] + gamma * self.atoms[None, :], self.v_min, self.v_max
        )
        pos = (tz - self.v_min) / self.delta
        lower = np.floor(pos).astype(int)
        upper = np.ceil(pos).astype(int)
        target = np.zeros((b, self.n_atoms))
        lower_w = (upper - pos) + (lower == upper)  # mass stays put when equal
        upper_w = pos - lower
        for j in range(self.n_atoms):
            np.add.at(target, (np.arange(b), lower[:, j]), next_probs[:, j] * lower_w[:, j])
            np.add.at(target, (np.arange(b), upper[:, j]), next_probs[:, j] * upper_w[:, j])
        return target

    def cross_entropy(self, h: Tensor, target_probs: np.ndarray) -> Tensor:
        """Mean cross-entropy between target distribution and prediction."""
        logp = self.logits(h).log_softmax(axis=-1)
        return -(Tensor(target_probs) * logp).sum(axis=-1).mean()
