"""H-TCP (Leith & Shorten — PFLDnet 2004).

The increase factor is a function of the *elapsed time since the last
loss* ``Δ``: Reno-like for the first second, then
``α(Δ) = 1 + 10(Δ-1) + ((Δ-1)/2)^2``. The decrease factor adapts to the
ratio of minimum to maximum RTT, bounded to [0.5, 0.8].
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class HTcp(CongestionControl):
    """H-TCP for high-speed, long-distance networks."""

    name = "htcp"

    DELTA_L = 1.0  # seconds of Reno behaviour after a loss
    BETA_MIN = 0.5
    BETA_MAX = 0.8

    def __init__(self) -> None:
        self.last_loss_time = 0.0
        self.rtt_min = float("inf")
        self.rtt_max = 0.0

    def on_init(self, sock) -> None:
        self.last_loss_time = 0.0

    def _alpha(self, now: float) -> float:
        delta = now - self.last_loss_time
        if delta <= self.DELTA_L:
            return 1.0
        d = delta - self.DELTA_L
        return 1.0 + 10.0 * d + 0.25 * d * d

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.rtt_min = min(self.rtt_min, rtt)
            self.rtt_max = max(self.rtt_max, rtt)
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
            return
        sock.cwnd += self._alpha(now) * n_acked / max(sock.cwnd, 1.0)

    def ssthresh(self, sock) -> float:
        if self.rtt_max > 0 and self.rtt_min < float("inf"):
            beta = self.rtt_min / self.rtt_max
        else:
            beta = self.BETA_MIN
        beta = min(max(beta, self.BETA_MIN), self.BETA_MAX)
        self.last_loss_time = 0.0  # re-anchored on the next ack clockstep
        return max(sock.cwnd * beta, self.MIN_CWND)

    def on_loss_event(self, sock, now: float) -> None:
        super().on_loss_event(sock, now)
        self.last_loss_time = now
        # RTT extremes decay so beta tracks the current path
        self.rtt_max *= 0.95
