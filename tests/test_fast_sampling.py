"""Tests for FastPolicy's stochastic deployment path."""

import numpy as np
import pytest

from repro.collector.gr_unit import STATE_DIM
from repro.core.agent import SageAgent
from repro.core.networks import FastPolicy, NetworkConfig, SagePolicy

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=3, n_atoms=7)


@pytest.fixture()
def fast():
    return FastPolicy(SagePolicy(TINY, np.random.default_rng(0)))


class TestSampleStep:
    def test_ratio_bounded(self, fast):
        rng = np.random.default_rng(1)
        h = fast.initial_state()
        for _ in range(50):
            r, h = fast.sample_step(np.zeros(STATE_DIM), h, rng)
            assert 1 / 3 - 1e-9 <= r <= 3 + 1e-9

    def test_stochastic(self, fast):
        rng = np.random.default_rng(2)
        draws = set()
        for _ in range(30):
            r, _ = fast.sample_step(np.zeros(STATE_DIM), fast.initial_state(), rng)
            draws.add(round(r, 8))
        assert len(draws) > 5

    def test_seeded_reproducible(self, fast):
        def seq(seed):
            rng = np.random.default_rng(seed)
            h = fast.initial_state()
            out = []
            for _ in range(10):
                r, h = fast.sample_step(np.zeros(STATE_DIM), h, rng)
                out.append(r)
            return out

        assert seq(5) == seq(5)
        assert seq(5) != seq(6)

    def test_hidden_state_matches_deterministic_path(self, fast):
        # sampling only affects the head; the recurrent update is identical
        rng = np.random.default_rng(3)
        h1 = fast.initial_state()
        h2 = fast.initial_state()
        s = np.random.default_rng(4).standard_normal(STATE_DIM)
        _, h1 = fast.step(s, h1)
        _, h2 = fast.sample_step(s, h2, rng)
        np.testing.assert_allclose(h1, h2)

    def test_samples_center_on_mixture(self, fast):
        # the empirical mean of log-ratios should sit inside the span of
        # the component means
        rng = np.random.default_rng(6)
        s = np.zeros(STATE_DIM)
        logs = []
        for _ in range(300):
            r, _ = fast.sample_step(s, fast.initial_state(), rng)
            logs.append(np.log(r))
        assert -1.1 < np.mean(logs) < 1.1


class TestAgentDeploymentModes:
    def test_stochastic_is_default(self):
        agent = SageAgent(SagePolicy(TINY, np.random.default_rng(7)))
        assert not agent.deterministic

    def test_stochastic_agent_varies(self):
        agent = SageAgent(SagePolicy(TINY, np.random.default_rng(8)))
        agent.reset()
        acts = {round(agent.act(np.zeros(STATE_DIM)), 8) for _ in range(20)}
        assert len(acts) > 1

    def test_deterministic_agent_constant_on_fixed_input_stream(self):
        agent = SageAgent(
            SagePolicy(TINY, np.random.default_rng(9)), deterministic=True
        )
        agent.reset()
        a1 = [agent.act(np.ones(STATE_DIM)) for _ in range(5)]
        agent.reset()
        a2 = [agent.act(np.ones(STATE_DIM)) for _ in range(5)]
        assert a1 == a2
