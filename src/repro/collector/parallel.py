"""Parallel Policy-Collector engine: fan rollouts across worker processes.

Sage's premise is data-scale — the paper rolls 13 kernel heuristics through
>1000 emulated environments to build the offline pool — and every rollout is
embarrassingly parallel: one environment, one flow, no shared state. This
module is the fan-out layer the rest of the repo sits on:

- :func:`run_tasks` — the generic engine. Takes a list of picklable tasks
  and a module-level task function, spreads chunks of tasks over a
  ``ProcessPoolExecutor``, and returns results *in task order* together
  with a :class:`CollectionReport`. ``workers=1`` bypasses the executor
  entirely and runs in-process (exactly the historical serial path).
- :func:`make_rollout_tasks` / :func:`collect_rollouts` /
  :func:`collect_pool_parallel` — the Policy-Collector specialization:
  ``(scheme, env)`` product, deterministic per-task seeds, and a
  :class:`~repro.collector.pool.PolicyPool` assembled in the same order the
  serial nested loop would produce.

Determinism
-----------
Scheme rollouts are pure functions of ``(env, scheme)`` — every source of
randomness (traces, AQMs, jitter) is seeded from the :class:`EnvConfig` —
so a pool collected with ``workers=N`` is bit-identical to ``workers=1``.
Tasks additionally carry a seed derived only from ``(base_seed, index)``
(never from worker identity or scheduling), so stochastic task functions
(e.g. sampling agents) stay deterministic under any worker count.

Crash recovery
--------------
A failed task — whether its function raised, its worker process died, or
the watchdog declared it hung — is re-dispatched in later rounds (fresh
executor each round, exponential backoff between rounds) and then
*reported*, never silently dropped: the result slot stays ``None`` and the
failure (with its error text and kind) is listed in
``CollectionReport.failures`` — the poison-task quarantine. Pool builders
treat any failure as an error by default (``strict=True``).

Hang detection
--------------
``max_task_seconds`` arms a watchdog: each dispatched chunk gets a
deadline, and when every still-running chunk is past its deadline the
round is abandoned — the executor's worker processes are terminated (a
wedged child no longer blocks collection forever) and the overdue tasks
re-dispatched next round. The timeout needs real worker processes;
the in-process ``workers=1`` path cannot preempt a wedged task function.

Determinism under retry
-----------------------
Before running any task that carries a ``seed`` attribute, the chunk
runner reseeds numpy's *global* generator from it. Task functions that
draw global randomness are therefore a pure function of their task, not
of chunk composition or dispatch round — a re-dispatched task reproduces
its first attempt bit-for-bit.

Fault injection
---------------
``chaos`` accepts a :class:`~repro.chaos.inject.FaultInjector`; its
pending ``collector.crash`` / ``collector.hang`` faults are armed for the
first dispatch round only (picklable target sets consulted by the chunk
runner), so every injected fault is recoverable by the retry machinery.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collector.environments import EnvConfig
from repro.collector.gr_unit import WindowConfig
from repro.collector.pool import PolicyPool
from repro.collector.rewards import DEFAULT_REWARDS, RewardConfig
from repro.collector.rollout import TICK, collect_trajectory


def default_workers() -> int:
    """The default worker count: one per CPU."""
    return max(os.cpu_count() or 1, 1)


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic per-task seed from ``(base_seed, index)`` only.

    SplitMix64-style finalizer: adjacent indices map to well-separated
    32-bit seeds, and the mapping is independent of worker count, chunking,
    and completion order.
    """
    z = (base_seed * 0x9E3779B97F4A7C15 + index + 1) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & 0xFFFFFFFF


# --------------------------------------------------------------------------
# Task and report types
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RolloutTask:
    """One ``(scheme, env)`` collection job."""

    index: int
    env: EnvConfig
    scheme: str
    seed: int = 0
    windows: Optional[WindowConfig] = None
    rewards: Optional[RewardConfig] = None  # None -> DEFAULT_REWARDS
    tick: float = TICK

    @property
    def label(self) -> str:
        return f"{self.scheme} on {self.env.env_id}"


@dataclass
class TaskFailure:
    """A task that failed every dispatch round (quarantined as poison)."""

    index: int
    label: str
    error: str
    attempts: int
    #: "error" (task function raised), "crash" (worker process died), or
    #: "timeout" (watchdog declared the task hung)
    kind: str = "error"


@dataclass
class ProgressEvent:
    """Passed to the progress callback after every completed task."""

    done: int
    total: int
    label: str
    elapsed: float  # seconds since the engine started
    throughput: float  # completed tasks per second so far
    retried: bool = False  # True if this task needed a second attempt


@dataclass
class CollectionReport:
    """What a :func:`run_tasks` call did: timing, retries, failures."""

    total: int
    workers: int
    chunksize: int
    elapsed: float = 0.0
    n_retried: int = 0
    #: worker-death events observed (each may cover a whole chunk)
    n_crashes: int = 0
    #: watchdog timeouts observed (each may cover a whole chunk)
    n_timeouts: int = 0
    failures: List[TaskFailure] = field(default_factory=list)
    #: fault/recovery log: ``{"kind", "detail", "action"}`` per event —
    #: what went wrong and what the engine did about it
    events: List[Dict[str, str]] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.total - len(self.failures)

    @property
    def throughput(self) -> float:
        """Completed tasks per second of wall clock."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    def raise_on_failure(self) -> None:
        if self.failures:
            lines = [
                f"{len(self.failures)}/{self.total} collection tasks failed "
                f"after {self.failures[0].attempts} attempts:"
            ]
            lines += [f"  - {f.label}: {f.error}" for f in self.failures]
            raise RuntimeError("\n".join(lines))


class CollectionError(RuntimeError):
    """Raised by strict pool builders when tasks failed permanently."""


class OrderedConsumer:
    """Re-serialize out-of-order task completions into index order.

    Wraps a ``sink(result)`` callable: results may arrive in any completion
    order (and retried tasks arrive late), but the sink only ever sees the
    contiguous prefix, in task order. Used to stream rollouts into a
    :class:`~repro.datastore.writer.ShardWriter` so the shard layout — and
    therefore sampling — is deterministic whatever the worker scheduling
    was. Memory is bounded by the out-of-order slack, not the run size.
    """

    def __init__(self, sink: Callable[[Any], None], start: int = 0) -> None:
        self._sink = sink
        self._next = int(start)
        self._held: dict = {}

    def __call__(self, index: int, result: Any) -> None:
        self._held[index] = result
        while self._next in self._held:
            self._sink(self._held.pop(self._next))
            self._next += 1

    @property
    def held(self) -> int:
        """Results buffered waiting for an earlier index."""
        return len(self._held)

    def finish(self) -> None:
        """Flush past permanently-failed indices (non-strict runs only)."""
        for index in sorted(self._held):
            self._sink(self._held.pop(index))
            self._next = index + 1


# --------------------------------------------------------------------------
# Worker-side functions (must be module-level so they pickle)
# --------------------------------------------------------------------------


def _run_rollout_task(task: RolloutTask):
    """Default task function: record one scheme x environment trajectory."""
    return collect_trajectory(
        task.env,
        task.scheme,
        windows=task.windows,
        rewards=task.rewards if task.rewards is not None else DEFAULT_REWARDS,
        tick=task.tick,
    )


def _reseed_for(task: Any) -> None:
    """Pin numpy's global generator to the task's own seed, if it has one.

    Makes any global-randomness-consuming task function a pure function of
    its task — independent of chunk composition, worker identity, and
    dispatch round — so a re-dispatched task reproduces its first attempt.
    """
    seed = getattr(task, "seed", None)
    if seed is not None:
        np.random.seed(int(seed) & 0xFFFFFFFF)


def _run_chunk(
    fn: Callable,
    chunk: List[Tuple[int, Any]],
    chaos: Optional[Dict] = None,
) -> List[Tuple[int, bool, Any]]:
    """Run a chunk of tasks in one worker; capture per-task exceptions.

    Returns ``(index, ok, payload)`` triples, where ``payload`` is the task
    result on success and the error string on failure — one bad task must
    not take its chunk-mates down with it.

    ``chaos`` (first dispatch round only) is armed fault data from a
    :class:`~repro.chaos.inject.FaultInjector`: tasks in ``chaos["crash"]``
    kill this worker process outright; tasks in ``chaos["hang"]`` stall for
    the scheduled seconds before running (long enough to trip the
    watchdog).
    """
    crash = chaos.get("crash", ()) if chaos else ()
    hang = chaos.get("hang", {}) if chaos else {}
    out: List[Tuple[int, bool, Any]] = []
    for index, task in chunk:
        _reseed_for(task)
        if index in crash:
            os._exit(3)  # injected fault: die like a real worker crash
        if index in hang:
            time.sleep(float(hang[index]))  # injected fault: wedge the task
        try:
            out.append((index, True, fn(task)))
        except BaseException as exc:  # noqa: BLE001 - reported, never dropped
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            out.append((index, False, f"{type(exc).__name__}: {exc}"))
    return out


def _terminate_workers(executor: ProcessPoolExecutor) -> None:
    """Kill a broken/abandoned executor's worker processes.

    Without this a wedged child would survive ``shutdown(wait=False)`` and
    block interpreter exit (concurrent.futures joins workers at exit).
    """
    procs = getattr(executor, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except (OSError, AttributeError):  # already dead / exotic platform
            pass


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


def _auto_chunksize(n_tasks: int, workers: int) -> int:
    """Chunks big enough to amortize IPC, small enough to balance load.

    Targets two chunks per worker (ceiling division), so every task batch
    — even a small one — pays at most ``2 * workers`` submit/pickle round
    trips while retaining one spare chunk per worker for load balancing.
    The floor division this replaces collapsed to chunksize 1 whenever
    ``n_tasks < 8 * workers``, which put a full dispatch round trip on
    every single task and made 2-worker runs *slower* than serial. The
    cap of 8 keeps watchdog deadlines (which scale with chunk length)
    and retry granularity bounded.
    """
    return max(1, min(8, -(-n_tasks // (workers * 2))))


def run_tasks(
    tasks: Sequence[Any],
    fn: Callable = _run_rollout_task,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    consume: Optional[Callable[[int, Any], None]] = None,
    max_task_seconds: Optional[float] = None,
    max_rounds: int = 2,
    retry_backoff_s: float = 0.0,
    chaos=None,
) -> Tuple[List[Any], CollectionReport]:
    """Run ``fn`` over every task, fanning across worker processes.

    Parameters
    ----------
    tasks:
        Picklable task objects; results come back in the same order.
    fn:
        Module-level callable applied to each task in a worker process.
    workers:
        Process count; ``None`` means one per CPU; ``1`` runs everything
        in-process with no executor (the historical serial path).
    chunksize:
        Tasks per worker dispatch; ``None`` picks a balanced default.
    progress:
        Called with a :class:`ProgressEvent` after every completed task.
    consume:
        Streaming hook: called as ``consume(index, result)`` the moment a
        task succeeds, *instead of* retaining the result — ``results[i]``
        stays ``None`` for consumed tasks, so a large run never accumulates
        in driver memory. Completion order is arbitrary; wrap the hook in
        :class:`OrderedConsumer` when the sink needs task order.
    max_task_seconds:
        Watchdog budget per task: a dispatched chunk's deadline is this
        times its task count (scaled for dispatch queueing). When every
        still-running chunk is overdue the round is abandoned, its worker
        processes are terminated, and the overdue tasks are re-dispatched.
        ``None`` disables the watchdog. Needs real worker processes — the
        in-process ``workers=1`` path cannot preempt a wedged function.
    max_rounds:
        Dispatch rounds per task before it is quarantined as poison and
        listed in ``report.failures``. Round 1 uses ``chunksize``; retry
        rounds dispatch one task per chunk in a fresh executor.
    retry_backoff_s:
        Base of the exponential backoff slept before each retry round
        (``retry_backoff_s * 2**(round - 1)`` seconds).
    chaos:
        Optional :class:`~repro.chaos.inject.FaultInjector`; pending
        ``collector.*`` faults are armed for the first dispatch round.

    Returns
    -------
    ``(results, report)`` — ``results[i]`` is ``fn(tasks[i])``, or ``None``
    if the task failed every round (see ``report.failures``) or was handed
    to ``consume``.
    """
    n = len(tasks)
    workers = default_workers() if workers is None else max(int(workers), 1)
    workers = min(workers, n) if n else 1
    chunksize = _auto_chunksize(n, workers) if chunksize is None else max(chunksize, 1)
    max_rounds = max(int(max_rounds), 1)
    report = CollectionReport(total=n, workers=workers, chunksize=chunksize)
    results: List[Any] = [None] * n
    started = time.perf_counter()
    done = 0

    def _emit(index: int, retried: bool) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            elapsed = time.perf_counter() - started
            label = getattr(tasks[index], "label", f"task {index}")
            progress(
                ProgressEvent(
                    done=done,
                    total=n,
                    label=label,
                    elapsed=elapsed,
                    throughput=done / elapsed if elapsed > 0 else 0.0,
                    retried=retried,
                )
            )

    def _label(index: int) -> str:
        return getattr(tasks[index], "label", f"task {index}")

    if n == 0:
        return results, report

    armed = chaos.collector_faults() if chaos is not None else None

    if workers == 1:
        # In-process serial path: identical to the historical nested loop,
        # with the same retry-then-quarantine contract as the pool path.
        # Injected crashes are simulated as raises (killing the driver
        # process would defeat the point); injected hangs are skipped — no
        # watchdog can preempt a wedged in-process function.
        armed_crash = set(armed.get("crash", ())) if armed else set()
        for hi in sorted(armed.get("hang", {})) if armed else ():
            report.events.append(
                {
                    "kind": "hang",
                    "detail": f"injected hang for {_label(hi)} cannot fire "
                              "in-process (workers=1 has no watchdog)",
                    "action": "skipped",
                }
            )
        for i, task in enumerate(tasks):
            attempt_errors: List[str] = []
            for attempt in range(max_rounds):
                if attempt > 0 and retry_backoff_s > 0:
                    time.sleep(retry_backoff_s * (2 ** (attempt - 1)))
                try:
                    _reseed_for(task)
                    if attempt == 0 and i in armed_crash:
                        report.n_crashes += 1
                        report.events.append(
                            {
                                "kind": "crash",
                                "detail": f"injected crash for {_label(i)} "
                                          "(simulated in-process)",
                                "action": "retrying",
                            }
                        )
                        raise RuntimeError("injected worker crash")
                    outcome = fn(task)
                    break
                except BaseException as exc:  # noqa: BLE001
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    attempt_errors.append(f"{type(exc).__name__}: {exc}")
            else:
                report.failures.append(
                    TaskFailure(
                        index=i,
                        label=_label(i),
                        error=attempt_errors[-1],
                        attempts=max_rounds,
                        kind="crash" if i in armed_crash and max_rounds == 1
                        else "error",
                    )
                )
                continue
            # consume errors are driver-side (e.g. disk full) and must not
            # be retried as if the task itself had failed
            if consume is not None:
                consume(i, outcome)
            else:
                results[i] = outcome
            if attempt_errors:
                report.n_retried += 1
            _emit(i, retried=bool(attempt_errors))
        for f in report.failures:
            report.events.append(
                {
                    "kind": f.kind,
                    "detail": f"{f.label}: {f.error}",
                    "action": f"quarantined after {f.attempts} attempt(s)",
                }
            )
        report.elapsed = time.perf_counter() - started
        return results, report

    # Round 1: chunked fan-out, chaos armed. Retry rounds: failed tasks,
    # one per chunk, in a fresh executor (a crashed worker poisons its
    # whole executor) after exponential backoff — and always clean.
    pending: List[Tuple[int, Any]] = list(enumerate(tasks))
    last_error: Dict[int, Tuple[str, str]] = {}  # index -> (kind, message)
    for round_no in range(max_rounds):
        if not pending:
            break
        if round_no > 0 and retry_backoff_s > 0:
            time.sleep(retry_backoff_s * (2 ** (round_no - 1)))
        size = chunksize if round_no == 0 else 1
        chunks = [pending[i : i + size] for i in range(0, len(pending), size)]
        retry_next: List[Tuple[int, Any]] = []
        round_armed = armed if round_no == 0 else None
        n_exec = min(workers, len(chunks))
        executor = ProcessPoolExecutor(max_workers=n_exec)
        round_start = time.perf_counter()
        last_round = round_no + 1 >= max_rounds
        crashed_chunks: List[List[Tuple[int, Any]]] = []
        abandoned = False
        try:
            futures = {}
            deadlines: Dict[Any, float] = {}
            for pos, chunk in enumerate(chunks):
                try:
                    fut = executor.submit(_run_chunk, fn, chunk, round_armed)
                except BaseException as exc:  # pool broke during submission
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    for index, task in chunk:
                        last_error[index] = (
                            "crash",
                            f"worker pool broken ({type(exc).__name__}: {exc})",
                        )
                        retry_next.append((index, task))
                    continue
                futures[fut] = chunk
                if max_task_seconds is not None:
                    # chunks queue behind the first `n_exec` waves, so later
                    # positions get proportionally later deadlines
                    wave = 1 + pos // n_exec
                    deadlines[fut] = (
                        round_start + max_task_seconds * len(chunk) * wave
                    )
            not_done = set(futures)
            while not_done:
                poll = 0.05 if max_task_seconds is not None else None
                finished, not_done = wait(not_done, timeout=poll)
                for fut in finished:
                    chunk = futures[fut]
                    try:
                        triples = fut.result()
                    except BaseException as exc:  # worker process died
                        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                            raise
                        crashed_chunks.append(chunk)
                        for index, task in chunk:
                            last_error[index] = (
                                "crash",
                                "worker process crashed "
                                f"({type(exc).__name__}: {exc})",
                            )
                            retry_next.append((index, task))
                        continue
                    for index, ok, payload in triples:
                        if ok:
                            if consume is not None:
                                consume(index, payload)
                            else:
                                results[index] = payload
                            retried = round_no > 0
                            if retried:
                                report.n_retried += 1
                            _emit(index, retried=retried)
                        else:
                            last_error[index] = ("error", payload)
                            retry_next.append((index, tasks[index]))
                if not not_done or max_task_seconds is None:
                    continue
                now = time.perf_counter()
                overdue = {
                    f for f in not_done
                    if now >= deadlines.get(f, float("inf"))
                }
                if overdue and overdue == not_done:
                    # every still-running chunk is past its deadline: the
                    # pool is wedged — abandon the round and re-dispatch
                    abandoned = True
                    for fut in overdue:
                        chunk = futures[fut]
                        report.n_timeouts += 1
                        labels = ", ".join(_label(i) for i, _ in chunk)
                        report.events.append(
                            {
                                "kind": "timeout",
                                "detail": f"watchdog: [{labels}] exceeded "
                                          f"{max_task_seconds:g}s per task",
                                "action": "quarantined" if last_round
                                else "terminating workers, re-dispatching",
                            }
                        )
                        for index, task in chunk:
                            last_error[index] = (
                                "timeout",
                                "watchdog timeout: task still running after "
                                f"max_task_seconds={max_task_seconds:g}",
                            )
                            retry_next.append((index, task))
                    break
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            if abandoned:
                _terminate_workers(executor)
        if crashed_chunks:
            report.n_crashes += 1
            labels = ", ".join(
                _label(i) for chunk in crashed_chunks for i, _ in chunk
            )
            report.events.append(
                {
                    "kind": "crash",
                    "detail": "worker death broke dispatch round "
                              f"{round_no + 1}; affected: [{labels}]",
                    "action": "quarantined" if last_round
                    else "re-dispatching in a fresh pool",
                }
            )
        # de-duplicate by index (a chunk can be both crashed and resubmitted)
        seen: set = set()
        pending = [
            p for p in sorted(retry_next, key=lambda p: p[0])
            if p[0] not in seen and not seen.add(p[0])
        ]

    for index, task in pending:  # failed every dispatch round
        kind, message = last_error.get(index, ("error", "unknown error"))
        report.failures.append(
            TaskFailure(
                index=index,
                label=_label(index),
                error=message,
                attempts=max_rounds,
                kind=kind,
            )
        )
    report.failures.sort(key=lambda f: f.index)
    for f in report.failures:
        report.events.append(
            {
                "kind": f.kind,
                "detail": f"{f.label}: {f.error}",
                "action": f"quarantined after {f.attempts} round(s)",
            }
        )
    report.elapsed = time.perf_counter() - started
    return results, report


# --------------------------------------------------------------------------
# Policy-Collector specialization
# --------------------------------------------------------------------------


def make_rollout_tasks(
    environments: Sequence[EnvConfig],
    schemes: Sequence[str],
    windows: Optional[WindowConfig] = None,
    rewards: Optional[RewardConfig] = None,
    tick: float = TICK,
    base_seed: int = 0,
) -> List[RolloutTask]:
    """The ``(env, scheme)`` product in the serial nested-loop order."""
    tasks: List[RolloutTask] = []
    for env in environments:
        for scheme in schemes:
            index = len(tasks)
            tasks.append(
                RolloutTask(
                    index=index,
                    env=env,
                    scheme=scheme,
                    seed=derive_seed(base_seed, index),
                    windows=windows,
                    rewards=rewards,
                    tick=tick,
                )
            )
    return tasks


def collect_rollouts(
    tasks: Sequence[RolloutTask],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    strict: bool = True,
    max_task_seconds: Optional[float] = None,
    max_rounds: int = 2,
    retry_backoff_s: float = 0.0,
    chaos=None,
) -> Tuple[List[Any], CollectionReport]:
    """Run rollout tasks; with ``strict`` any permanent failure raises."""
    results, report = run_tasks(
        tasks, fn=_run_rollout_task, workers=workers,
        chunksize=chunksize, progress=progress,
        max_task_seconds=max_task_seconds, max_rounds=max_rounds,
        retry_backoff_s=retry_backoff_s, chaos=chaos,
    )
    if strict and report.failures:
        try:
            report.raise_on_failure()
        except RuntimeError as exc:
            raise CollectionError(str(exc)) from None
    return results, report


def collect_pool_parallel(
    environments: Sequence[EnvConfig],
    schemes: Sequence[str],
    windows: Optional[WindowConfig] = None,
    tick: float = TICK,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    base_seed: int = 0,
    strict: bool = True,
    max_task_seconds: Optional[float] = None,
    max_rounds: int = 2,
    retry_backoff_s: float = 0.0,
    chaos=None,
    report_sink: Optional[Callable[[CollectionReport], None]] = None,
) -> PolicyPool:
    """Build the pool of policies across workers.

    The returned pool is bit-identical to the serial
    ``for env: for scheme: collect_trajectory`` loop for the same inputs,
    whatever ``workers`` is — rollouts are deterministic given their
    :class:`EnvConfig` and results are assembled in task order. That holds
    under injected faults too: crashed/hung tasks are re-dispatched with
    the same seeds and land in the same slots.
    """
    tasks = make_rollout_tasks(
        environments, schemes, windows=windows, tick=tick, base_seed=base_seed
    )
    results, report = collect_rollouts(
        tasks, workers=workers, chunksize=chunksize,
        progress=progress, strict=strict,
        max_task_seconds=max_task_seconds, max_rounds=max_rounds,
        retry_backoff_s=retry_backoff_s, chaos=chaos,
    )
    if report_sink is not None:
        report_sink(report)
    pool = PolicyPool()
    for rollout in results:
        if rollout is not None:
            pool.add_rollout(rollout)
    return pool


def collect_pool_to_store(
    environments: Sequence[EnvConfig],
    schemes: Sequence[str],
    store,
    windows: Optional[WindowConfig] = None,
    tick: float = TICK,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    base_seed: int = 0,
    strict: bool = True,
    shard_bytes: Optional[int] = None,
    max_task_seconds: Optional[float] = None,
    max_rounds: int = 2,
    retry_backoff_s: float = 0.0,
    chaos=None,
    report_sink: Optional[Callable[[CollectionReport], None]] = None,
):
    """Stream the pool of policies straight into a sharded store.

    Unlike :func:`collect_pool_parallel`, rollouts never accumulate in the
    driver: each one is committed to a
    :class:`~repro.datastore.writer.ShardWriter` the moment its turn in
    task order comes up (an :class:`OrderedConsumer` re-serializes worker
    completions), so peak driver memory is bounded by the out-of-order
    slack, not the pool size. The shard layout is deterministic — identical
    for any ``workers`` — and sampling the returned
    :class:`~repro.datastore.reader.ShardedPool` is bit-identical to
    sampling the in-memory pool the serial loop would have built.

    ``store`` is a directory path or an existing ``ShardWriter`` (left
    open for further appends; paths are finalized before returning).
    """
    from repro.datastore.reader import ShardedPool
    from repro.datastore.writer import DEFAULT_SHARD_BYTES, ShardWriter

    tasks = make_rollout_tasks(
        environments, schemes, windows=windows, tick=tick, base_seed=base_seed
    )
    if isinstance(store, ShardWriter):
        writer, owns_writer = store, False
    else:
        writer = ShardWriter(
            store,
            shard_bytes=DEFAULT_SHARD_BYTES if shard_bytes is None else shard_bytes,
            chaos=chaos,
        )
        owns_writer = True
    consumer = OrderedConsumer(writer.add_rollout)
    try:
        _results, report = run_tasks(
            tasks, fn=_run_rollout_task, workers=workers,
            chunksize=chunksize, progress=progress, consume=consumer,
            max_task_seconds=max_task_seconds, max_rounds=max_rounds,
            retry_backoff_s=retry_backoff_s, chaos=chaos,
        )
        if report_sink is not None:
            report_sink(report)
        if strict and report.failures:
            try:
                report.raise_on_failure()
            except RuntimeError as exc:
                raise CollectionError(str(exc)) from None
        consumer.finish()  # skip past permanently-failed slots (non-strict)
    finally:
        if owns_writer:
            writer.close()
        else:
            writer.flush()
    return ShardedPool.open(writer.root)
