"""Tests for the reward functions (Eqs. 1 and 2, Fig. 5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector.rewards import (
    RewardConfig,
    friendliness_reward,
    single_flow_reward,
)


class TestSingleFlowReward:
    def test_full_utilization_low_delay_near_one(self):
        r = single_flow_reward(48e6, 0.0, 0.04, 48e6, 0.04)
        assert r == pytest.approx(1.0)

    def test_more_throughput_is_better(self):
        lo = single_flow_reward(10e6, 0.0, 0.04, 48e6, 0.04)
        hi = single_flow_reward(40e6, 0.0, 0.04, 48e6, 0.04)
        assert hi > lo

    def test_more_delay_is_worse(self):
        fast = single_flow_reward(24e6, 0.0, 0.04, 48e6, 0.04)
        slow = single_flow_reward(24e6, 0.0, 0.40, 48e6, 0.04)
        assert fast > slow

    def test_loss_penalized(self):
        clean = single_flow_reward(24e6, 0.0, 0.04, 48e6, 0.04)
        lossy = single_flow_reward(24e6, 5e6, 0.04, 48e6, 0.04)
        assert clean > lossy

    def test_xi_scales_loss_penalty(self):
        gentle = single_flow_reward(
            24e6, 5e6, 0.04, 48e6, 0.04, RewardConfig(xi=0.1)
        )
        harsh = single_flow_reward(
            24e6, 5e6, 0.04, 48e6, 0.04, RewardConfig(xi=2.0)
        )
        assert gentle > harsh

    def test_never_negative(self):
        assert single_flow_reward(1e6, 50e6, 0.04, 48e6, 0.04) == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            single_flow_reward(1e6, 0.0, 0.04, 0.0, 0.04)
        with pytest.raises(ValueError):
            single_flow_reward(1e6, 0.0, 0.04, 48e6, 0.0)

    @given(
        rate=st.floats(0.0, 96e6),
        delay=st.floats(0.01, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounded(self, rate, delay):
        r = single_flow_reward(rate, 0.0, delay, 48e6, 0.01)
        assert 0.0 <= r <= 2.0


class TestFriendlinessReward:
    def test_peak_at_fair_share(self):
        assert friendliness_reward(24e6, 24e6) == pytest.approx(1.0)

    def test_symmetric_falloff(self):
        below = friendliness_reward(12e6, 24e6)  # x = 0.5
        above = friendliness_reward(36e6, 24e6)  # x = 1.5
        assert below == pytest.approx(above)

    def test_matches_eq2(self):
        x = 0.7
        got = friendliness_reward(x * 24e6, 24e6)
        assert got == pytest.approx(math.exp(-8 * (x - 1) ** 2))

    def test_starving_scores_near_zero(self):
        assert friendliness_reward(0.0, 24e6) < 0.001

    def test_rejects_zero_fair_share(self):
        with pytest.raises(ValueError):
            friendliness_reward(1e6, 0.0)

    @given(x=st.floats(0.0, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_bounded_and_peaked(self, x):
        r = friendliness_reward(x * 24e6, 24e6)
        assert 0.0 <= r <= 1.0
        assert r <= friendliness_reward(24e6, 24e6)

    @given(x=st.floats(0.0, 0.99))
    @settings(max_examples=20, deadline=None)
    def test_monotone_toward_fair_share_from_below(self, x):
        closer = friendliness_reward((x + 0.01) * 24e6, 24e6)
        farther = friendliness_reward(x * 24e6, 24e6)
        assert closer >= farther


class TestRewardConfig:
    def test_rejects_bad_coefficients(self):
        with pytest.raises(ValueError):
            RewardConfig(xi=-1.0)
        with pytest.raises(ValueError):
            RewardConfig(kappa=0.0)
        with pytest.raises(ValueError):
            RewardConfig(friendliness_sharpness=0.0)
