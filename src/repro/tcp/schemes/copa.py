"""Copa (Arun & Balakrishnan — NSDI 2018).

Targets the rate ``λ = 1 / (δ · d_q)`` where ``d_q`` is the measured
queueing delay. The window moves toward the target by ``v/(δ·cwnd)`` per
ACK, with velocity ``v`` doubling while the direction is consistent.
Default mode uses δ = 0.5; a TCP-competitive mode shrinks δ when buffer
filling by loss-based flows is detected (delay oscillations absent).
"""

from __future__ import annotations

from collections import deque

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class Copa(CongestionControl):
    """Practical delay-based CC with velocity and mode switching."""

    name = "copa"

    DELTA_DEFAULT = 0.5

    def __init__(self) -> None:
        self.delta = self.DELTA_DEFAULT
        self.velocity = 1.0
        self.direction_up = True
        self.rtt_min = float("inf")
        self.rtt_standing = float("inf")  # min over srtt/2 window
        # Monotonic deque of (time, rtt) with increasing rtt; front is the min.
        self._standing_window: deque = deque()
        self._last_update = 0.0
        self._prev_cwnd = 0.0
        self.competitive_mode = False
        self._loss_free_rtts = 0.0
        self._nearly_empty_seen = False

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if rtt > 0:
            self.rtt_min = min(self.rtt_min, rtt)
            window = max(sock.srtt_or_min / 2.0, 0.005)
            sw = self._standing_window
            while sw and sw[-1][1] >= rtt:
                sw.pop()
            sw.append((now, rtt))
            while sw and sw[0][0] < now - window:
                sw.popleft()
            self.rtt_standing = sw[0][1] if sw else rtt

        if self.rtt_min == float("inf") or self.rtt_standing == float("inf"):
            sock.cwnd += n_acked  # startup: slow-start-like
            return

        d_q = max(self.rtt_standing - self.rtt_min, 1e-4)
        # Mode detection: if the queue never nearly empties over 5 RTTs,
        # a buffer-filling competitor is present -> competitive mode.
        if d_q < 0.1 * max(self.rtt_min, 1e-3):
            self._nearly_empty_seen = True
        self._loss_free_rtts += n_acked / max(sock.cwnd, 1.0)
        if self._loss_free_rtts >= 5.0:
            self.competitive_mode = not self._nearly_empty_seen
            self._nearly_empty_seen = False
            self._loss_free_rtts = 0.0
        if self.competitive_mode:
            # behave like AIMD: delta = 1/(2 * estimated competing windows)
            self.delta = max(self.delta / 2.0, 0.02)
        else:
            self.delta = self.DELTA_DEFAULT

        target_rate = 1.0 / (self.delta * d_q)  # packets per second
        current_rate = sock.cwnd / max(self.rtt_standing, 1e-4)

        # velocity: doubles if direction unchanged for one RTT
        if now - self._last_update > max(sock.srtt_or_min, 0.01):
            going_up = sock.cwnd > self._prev_cwnd
            if going_up == self.direction_up:
                self.velocity = min(self.velocity * 2.0, 1e4)
            else:
                self.velocity = 1.0
                self.direction_up = going_up
            self._prev_cwnd = sock.cwnd
            self._last_update = now

        step = self.velocity * n_acked / (self.delta * max(sock.cwnd, 1.0))
        if current_rate < target_rate:
            sock.cwnd += step
        else:
            sock.cwnd = max(sock.cwnd - step, self.MIN_CWND)

    def ssthresh(self, sock) -> float:
        # Copa reacts to loss only mildly (it is delay-driven).
        self._nearly_empty_seen = True  # a loss means buffers overflowed
        return max(sock.cwnd / 2.0, self.MIN_CWND)

    def pacing_rate(self, sock):
        # Pace at 2x cwnd/RTT to avoid bursts (as in the Copa paper).
        rtt = sock.srtt_or_min
        if rtt <= 0:
            return None
        from repro.netsim.packet import MSS_BYTES

        return 2.0 * sock.cwnd * MSS_BYTES * 8.0 / rtt
