"""Indigo-like baseline (Yan et al., USENIX ATC 2018): imitate an oracle.

Indigo assumes the optimal congestion controller is *known* for each
training environment (from ground truth the emulator exposes) and trains a
network to imitate it. Here the oracle is exact: it reads the environment's
true capacity and propagation RTT and steers the window toward the BDP
(single-flow) or toward the fair share (the Indigov2 retraining adds the
multi-flow oracle, as the paper does following the authors' suggestion).

The known failure mode reproduced here: an oracle that is correct in the
training environments imitates poorly out of distribution, and mixing the
two oracles degrades the single-flow model (Fig. 9's Indigo vs Indigov2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.collector.environments import EnvConfig, training_environments
from repro.collector.pool import PolicyPool, Trajectory
from repro.collector.rollout import run_policy
from repro.baselines.bc import BCTrainer
from repro.core.agent import SageAgent
from repro.core.networks import NetworkConfig
from repro.netsim.packet import MSS_BYTES


class OracleAgent:
    """Ground-truth controller: steers cwnd to the BDP / fair-share window.

    Used both to *generate* demonstrations and as the "NATCP (Optimal)"
    reference point in the Fig. 8/26-style plots.
    """

    def __init__(self, env: EnvConfig, margin: float = 1.2, name: str = "oracle") -> None:
        self.env = env
        self.margin = margin
        self.name = name
        self._cwnd = 10.0

    def reset(self) -> None:
        self._cwnd = 10.0

    def target_cwnd(self) -> float:
        capacity = self.env.mean_capacity_bps()
        if self.env.is_multi_flow:
            capacity /= self.env.n_competing_cubic + 1
        return max(
            self.margin * capacity * self.env.min_rtt / (8.0 * MSS_BYTES), 2.0
        )

    def act(self, state: np.ndarray) -> float:
        target = self.target_cwnd()
        ratio = np.clip(target / max(self._cwnd, 1.0), 1.0 / 3.0, 3.0)
        # approach the target smoothly (one-RTT-ish convergence)
        ratio = 1.0 + 0.5 * (ratio - 1.0)
        self._cwnd = max(self._cwnd * ratio, 1.0)
        return float(ratio)


def collect_oracle_pool(
    environments: Sequence[EnvConfig], include_multi_flow: bool
) -> PolicyPool:
    """Run the oracle through each env and record its demonstrations."""
    pool = PolicyPool()
    for env in environments:
        if env.is_multi_flow and not include_multi_flow:
            continue
        result = run_policy(env, OracleAgent(env))
        result.scheme = "oracle"
        pool.add_rollout(result)
    return pool


def train_indigo(
    environments: Optional[Sequence[EnvConfig]] = None,
    multi_flow: bool = False,
    n_steps: int = 200,
    net_config: Optional[NetworkConfig] = None,
    seed: int = 0,
) -> SageAgent:
    """Train Indigo (single-flow oracle) or Indigov2 (``multi_flow=True``)."""
    envs = (
        list(environments)
        if environments is not None
        else training_environments("mini")
    )
    pool = collect_oracle_pool(envs, include_multi_flow=multi_flow)
    trainer = BCTrainer(pool, net_config=net_config, seed=seed)
    trainer.train(n_steps)
    return trainer.agent(name="indigov2" if multi_flow else "indigo")
