"""Per-scheme unit tests: each control law's characteristic behaviour,
exercised through the registry and hook interface."""

import math

import pytest

import repro.baselines  # noqa: F401  (registers the Vivace scheme)
from repro.tcp.cc_base import (
    POOL_SCHEMES,
    DELAY_LEAGUE,
    CongestionControl,
    make_scheme,
    register_scheme,
    scheme_names,
)
from repro.tcp.schemes.highspeed import hstcp_a, hstcp_b


class FakeSock:
    """Just enough socket surface for hook-level unit tests."""

    def __init__(self, cwnd=100.0, ssthresh=1e9, srtt=0.05):
        self.cwnd = cwnd
        self.ssthresh = ssthresh
        self.srtt = srtt
        self.min_rtt = srtt
        self.rttvar = 0.001
        self.inflight = int(cwnd)
        self.delivery_rate = 10e6
        self.max_delivery_rate = 12e6
        self.delivered = 1000
        self.lost = 0
        self.sent_packets = 1000

    @property
    def srtt_or_min(self):
        return self.srtt


ALL_SCHEMES = scheme_names()  # the contract below must hold for every scheme


class TestRegistry:
    def test_all_pool_schemes_registered(self):
        names = scheme_names()
        for s in POOL_SCHEMES:
            assert s in names

    def test_all_delay_schemes_registered(self):
        names = scheme_names()
        for s in DELAY_LEAGUE:
            assert s in names

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            make_scheme("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @register_scheme
            class Fake(CongestionControl):
                name = "cubic"

    def test_nameless_registration_rejected(self):
        with pytest.raises(ValueError):
            @register_scheme
            class Fake(CongestionControl):
                name = "base"

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_instances_are_independent(self, name):
        a, b = make_scheme(name), make_scheme(name)
        assert a is not b


@pytest.mark.parametrize("name", ALL_SCHEMES)
class TestCommonContract:
    def test_ack_hook_keeps_cwnd_positive(self, name):
        cc = make_scheme(name)
        sock = FakeSock()
        cc.on_init(sock)
        for i in range(50):
            cc.on_ack(sock, 1, 0.05, 0.02 * (i + 1))
        assert sock.cwnd >= 1.0

    def test_loss_event_reduces_or_holds_window(self, name):
        cc = make_scheme(name)
        sock = FakeSock(cwnd=200.0, ssthresh=100.0)
        cc.on_init(sock)
        cc.on_ack(sock, 1, 0.05, 0.02)
        before = sock.cwnd
        cc.on_loss_event(sock, 1.0)
        assert sock.cwnd <= before + 1e-9
        assert sock.cwnd >= CongestionControl.MIN_CWND - 1e-9

    def test_rto_shrinks_window(self, name):
        cc = make_scheme(name)
        sock = FakeSock(cwnd=200.0, ssthresh=100.0)
        cc.on_init(sock)
        before = sock.cwnd
        cc.on_rto(sock, 1.0)
        # Window-based schemes collapse hard; rate-based ones (vivace, bbr2)
        # may keep a slack window but must not grow it.
        assert sock.cwnd <= before


class TestNewReno:
    def test_slow_start_doubles_per_rtt(self):
        cc = make_scheme("newreno")
        sock = FakeSock(cwnd=10.0, ssthresh=1e9)
        cc.on_ack(sock, 10, 0.05, 0.05)
        assert sock.cwnd == pytest.approx(20.0)

    def test_congestion_avoidance_one_per_rtt(self):
        cc = make_scheme("newreno")
        sock = FakeSock(cwnd=100.0, ssthresh=50.0)
        cc.on_ack(sock, 100, 0.05, 0.05)
        assert sock.cwnd == pytest.approx(101.0)

    def test_halving_on_loss(self):
        cc = make_scheme("newreno")
        sock = FakeSock(cwnd=100.0)
        cc.on_loss_event(sock, 0.0)
        assert sock.cwnd == pytest.approx(50.0)


class TestCubic:
    def test_window_grows_toward_wmax_then_beyond(self):
        cc = make_scheme("cubic")
        sock = FakeSock(cwnd=100.0, ssthresh=50.0)
        cc.on_init(sock)
        cc.on_loss_event(sock, 0.0)  # sets w_max = 100, cwnd = 70
        w_after_loss = sock.cwnd
        for i in range(400):
            cc.on_ack(sock, 1, 0.05, 0.01 * i)
        assert sock.cwnd > w_after_loss
        assert cc.w_max == pytest.approx(100.0)

    def test_beta_decrease(self):
        cc = make_scheme("cubic")
        sock = FakeSock(cwnd=100.0)
        cc.on_loss_event(sock, 1.0)
        assert sock.cwnd == pytest.approx(70.0)

    def test_fast_convergence_lowers_wmax(self):
        cc = make_scheme("cubic")
        sock = FakeSock(cwnd=100.0)
        cc.on_loss_event(sock, 1.0)
        first_wmax = cc.w_max
        sock.cwnd = 80.0  # lost again below w_max
        cc.on_loss_event(sock, 2.0)
        assert cc.w_max < first_wmax


class TestHighSpeed:
    def test_tables_match_rfc_endpoints(self):
        assert hstcp_b(38.0) == pytest.approx(0.5)
        assert hstcp_b(83000.0) == pytest.approx(0.1, abs=1e-6)
        assert hstcp_a(38.0) == 1.0

    def test_increase_grows_with_window(self):
        assert hstcp_a(10_000) > hstcp_a(1_000) > hstcp_a(100)

    def test_decrease_shrinks_with_window(self):
        assert hstcp_b(10_000) < hstcp_b(1_000) < hstcp_b(100)


class TestHTcp:
    def test_alpha_grows_with_time_since_loss(self):
        cc = make_scheme("htcp")
        cc.last_loss_time = 0.0
        assert cc._alpha(0.5) == 1.0
        assert cc._alpha(2.0) > cc._alpha(1.5) > 1.0


class TestHybla:
    def test_rho_scales_with_rtt(self):
        cc = make_scheme("hybla")
        sock = FakeSock(srtt=0.25)  # 10x the 25 ms reference
        cc.on_ack(sock, 1, 0.25, 0.0)
        assert cc.rho == pytest.approx(8.0)  # capped at RHO_MAX

    def test_short_rtt_behaves_like_reno(self):
        cc = make_scheme("hybla")
        sock = FakeSock(cwnd=100.0, ssthresh=50.0, srtt=0.01)
        cc.on_ack(sock, 100, 0.01, 0.0)
        assert sock.cwnd == pytest.approx(101.0)  # rho floors at 1


class TestVegas:
    def test_increases_when_below_alpha(self):
        cc = make_scheme("vegas")
        sock = FakeSock(cwnd=20.0, ssthresh=10.0)
        cc.base_rtt = 0.05
        # a full window of acks at base RTT (no backlog) -> +1
        cc.on_ack(sock, 20, 0.05, 0.0)
        assert sock.cwnd == pytest.approx(21.0)

    def test_decreases_when_above_beta(self):
        cc = make_scheme("vegas")
        sock = FakeSock(cwnd=20.0, ssthresh=10.0)
        cc.base_rtt = 0.05
        cc.on_ack(sock, 20, 0.10, 0.0)  # rtt doubled -> backlog 10 > beta
        assert sock.cwnd == pytest.approx(19.0)

    def test_holds_between_alpha_and_beta(self):
        cc = make_scheme("vegas")
        sock = FakeSock(cwnd=20.0, ssthresh=10.0)
        cc.base_rtt = 0.100
        # backlog = (expected-actual)*base = 20*(1 - 100/117.6) ~ 3 packets
        cc.on_ack(sock, 20, 0.1176, 0.0)
        assert sock.cwnd == pytest.approx(20.0)


class TestVeno:
    def test_random_loss_backoff_is_gentle(self):
        cc = make_scheme("veno")
        sock = FakeSock(cwnd=100.0)
        cc.backlog = 1.0  # below beta: deemed random loss
        assert cc.ssthresh(sock) == pytest.approx(80.0)

    def test_congestive_loss_halves(self):
        cc = make_scheme("veno")
        sock = FakeSock(cwnd=100.0)
        cc.backlog = 10.0
        assert cc.ssthresh(sock) == pytest.approx(50.0)


class TestWestwood:
    def test_ssthresh_tracks_bandwidth_estimate(self):
        cc = make_scheme("westwood")
        sock = FakeSock(cwnd=300.0)
        cc.bwe_bps = 12e6
        cc.rtt_min = 0.05
        # 12 Mbps * 50 ms = 75 KB = 50 packets
        assert cc.ssthresh(sock) == pytest.approx(50.0)

    def test_fallback_before_first_estimate(self):
        cc = make_scheme("westwood")
        sock = FakeSock(cwnd=100.0)
        assert cc.ssthresh(sock) == pytest.approx(50.0)


class TestYeah:
    def test_loss_with_small_backlog_cuts_by_backlog(self):
        cc = make_scheme("yeah")
        sock = FakeSock(cwnd=100.0)
        cc.queue_pkts = 20.0
        assert cc.ssthresh(sock) == pytest.approx(80.0)

    def test_loss_with_big_backlog_halves(self):
        cc = make_scheme("yeah")
        sock = FakeSock(cwnd=100.0)
        cc.queue_pkts = 100.0
        assert cc.ssthresh(sock) == pytest.approx(50.0)


class TestIllinois:
    def test_alpha_max_when_delay_low(self):
        cc = make_scheme("illinois")
        sock = FakeSock(cwnd=100.0, ssthresh=50.0)
        for i in range(60):
            cc.on_ack(sock, 1, 0.050, i * 0.01)  # always at base RTT
        assert cc.alpha == pytest.approx(cc.ALPHA_MAX)

    def test_beta_max_when_delay_high(self):
        cc = make_scheme("illinois")
        sock = FakeSock(cwnd=100.0, ssthresh=50.0)
        cc.on_ack(sock, 1, 0.050, 0.0)  # establish base
        cc.on_ack(sock, 1, 0.150, 0.0)  # establish max
        for i in range(60):
            cc.on_ack(sock, 1, 0.150, i * 0.01)
        assert cc.beta == pytest.approx(cc.BETA_MAX)


class TestLedbat:
    def test_shrinks_when_over_target(self):
        cc = make_scheme("ledbat")
        sock = FakeSock(cwnd=50.0, ssthresh=1.0)
        cc.base_delay = 0.05
        before = sock.cwnd
        cc.on_ack(sock, 10, 0.05 + 2 * cc.TARGET, 0.0)
        assert sock.cwnd < before

    def test_grows_when_under_target(self):
        cc = make_scheme("ledbat")
        sock = FakeSock(cwnd=50.0, ssthresh=1.0)
        cc.base_delay = 0.05
        before = sock.cwnd
        cc.on_ack(sock, 10, 0.05, 0.0)
        assert sock.cwnd > before


class TestBbr2:
    def test_startup_exits_on_bw_plateau(self):
        cc = make_scheme("bbr2")
        sock = FakeSock()
        cc.on_init(sock)
        sock.delivery_rate = 10e6
        for i in range(10):
            cc.on_ack(sock, 1, 0.05, 0.02 * i)
        assert cc.filled_pipe
        assert cc.state != 0  # left STARTUP

    def test_pacing_rate_none_before_first_sample(self):
        cc = make_scheme("bbr2")
        sock = FakeSock()
        assert cc.pacing_rate(sock) is None

    def test_loss_caps_inflight_headroom(self):
        cc = make_scheme("bbr2")
        sock = FakeSock(cwnd=100.0)
        sock.inflight = 100
        cc.on_loss_event(sock, 0.0)
        assert cc.inflight_hi == pytest.approx(70.0)


class TestCopaLike:
    def test_copa_velocity_resets_on_direction_change(self):
        cc = make_scheme("copa")
        assert cc.velocity == 1.0

    def test_c2tcp_cuts_on_target_violation(self):
        cc = make_scheme("c2tcp")
        sock = FakeSock(cwnd=100.0, ssthresh=50.0)
        cc.on_init(sock)
        cc.on_ack(sock, 1, 0.05, 0.0)  # min_rtt = 50 ms, target = 80 ms
        before = sock.cwnd
        cc.on_ack(sock, 1, 0.20, 1.0)  # way over the setpoint
        assert sock.cwnd < before

    def test_sprout_probes_when_queue_empty(self):
        cc = make_scheme("sprout")
        sock = FakeSock(cwnd=10.0, ssthresh=1.0, srtt=0.05)
        cc.on_ack(sock, 10, 0.05, 0.0)
        assert sock.cwnd > 10.0


class TestVivace:
    def test_utility_prefers_more_throughput(self):
        cc = make_scheme("vivace")
        sock = FakeSock()
        cc._snapshot(sock)
        sock.delivered += 1000
        u_fast = cc._utility(sock, 1.0)
        cc._snapshot(sock)
        sock.delivered += 100
        u_slow = cc._utility(sock, 1.0)
        assert u_fast > u_slow

    def test_utility_penalizes_loss(self):
        cc = make_scheme("vivace")
        sock = FakeSock()
        cc._snapshot(sock)
        sock.delivered += 1000
        u_clean = cc._utility(sock, 1.0)
        cc._snapshot(sock)
        sock.delivered += 1000
        sock.lost += 200
        u_lossy = cc._utility(sock, 1.0)
        assert u_clean > u_lossy
