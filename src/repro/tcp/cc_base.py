"""The congestion-control hook interface and the scheme registry.

The interface deliberately mirrors the Linux kernel's ``tcp_congestion_ops``
so that the 13 kernel schemes of the paper's pool translate hook-for-hook:

====================  =============================================
kernel hook           here
====================  =============================================
``init``              :meth:`CongestionControl.on_init`
``cong_avoid``        :meth:`CongestionControl.on_ack`
``ssthresh``          :meth:`CongestionControl.ssthresh`
``pkts_acked``        rtt sample passed into :meth:`on_ack`
``cwnd_event(LOSS)``  :meth:`CongestionControl.on_loss_event`
``set_state(Loss)``   :meth:`CongestionControl.on_rto`
pacing (sk_pacing)    :meth:`CongestionControl.pacing_rate`
====================  =============================================

Schemes register themselves under their kernel name via
:func:`register_scheme`, and anything in the repo builds them through
:func:`make_scheme` — the same way ``sysctl net.ipv4.tcp_congestion_control``
selects a module by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.socket import TcpSender


class CongestionControl:
    """Base class for congestion-control schemes.

    The socket owns ``cwnd`` (in packets, float) and ``ssthresh``; hooks
    mutate them, exactly like kernel modules mutate ``tcp_sock`` fields.
    """

    #: kernel-style module name; subclasses must override.
    name = "base"

    #: floor for cwnd, in packets.
    MIN_CWND = 2.0

    #: set True to negotiate ECN: data packets carry ECT and the scheme
    #: receives :meth:`on_ecn_ack` for every CE-echoing ACK.
    ecn_capable = False

    def on_init(self, sock: "TcpSender") -> None:
        """Called once when the connection starts."""

    def on_ack(self, sock: "TcpSender", n_acked: int, rtt: float, now: float) -> None:
        """Called for every ACK that advances ``snd_una`` (outside recovery).

        ``n_acked`` is the number of newly-acked packets and ``rtt`` the
        fresh RTT sample in seconds (<= 0 when no valid sample, e.g. after
        a retransmission).
        """
        raise NotImplementedError

    def ssthresh(self, sock: "TcpSender") -> float:
        """New slow-start threshold on a loss event (kernel ``ssthresh``)."""
        return max(sock.cwnd / 2.0, self.MIN_CWND)

    def on_loss_event(self, sock: "TcpSender", now: float) -> None:
        """Entering fast recovery: default is the classic halving."""
        sock.ssthresh = self.ssthresh(sock)
        sock.cwnd = max(sock.ssthresh, self.MIN_CWND)

    def on_rto(self, sock: "TcpSender", now: float) -> None:
        """Retransmission timeout: default resets to a unit window."""
        sock.ssthresh = self.ssthresh(sock)
        sock.cwnd = self.MIN_CWND

    def pacing_rate(self, sock: "TcpSender") -> Optional[float]:
        """Pacing rate in bits/second, or None for ack-clocked sending."""
        return None

    def on_ecn_ack(self, sock: "TcpSender", now: float) -> None:
        """Called once per ACK whose ECE bit is set (only if ecn_capable).

        Default: classic RFC 3168 behaviour — react like a loss, at most
        once per RTT.
        """
        last = getattr(self, "_last_ecn_backoff", -1.0)
        if now - last > max(sock.srtt_or_min, 0.01):
            self._last_ecn_backoff = now
            self.on_loss_event(sock, now)

    # -- shared helpers ----------------------------------------------------
    def slow_start(self, sock: "TcpSender", n_acked: int) -> None:
        """Classic slow start: +1 packet per acked packet up to ssthresh."""
        sock.cwnd = min(sock.cwnd + n_acked, sock.ssthresh + n_acked)

    def in_slow_start(self, sock: "TcpSender") -> bool:
        return sock.cwnd < sock.ssthresh

    def reno_increase(self, sock: "TcpSender", n_acked: int) -> None:
        """AIMD congestion avoidance: +1 packet per RTT."""
        sock.cwnd += n_acked / max(sock.cwnd, 1.0)


_REGISTRY: Dict[str, Callable[..., CongestionControl]] = {}


def register_scheme(cls):
    """Class decorator: register a scheme under its kernel-style name."""
    if not getattr(cls, "name", None) or cls.name == "base":
        raise ValueError(f"{cls.__name__} must define a unique 'name'")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate scheme name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def make_scheme(name: str, **kwargs) -> CongestionControl:
    """Instantiate a registered scheme by name."""
    if name not in _REGISTRY:
        raise ValueError(f"unknown CC scheme {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)


def scheme_names() -> List[str]:
    """Sorted names of all registered schemes."""
    return sorted(_REGISTRY)


#: The 13 kernel schemes forming Sage's pool of policies (Section 5).
POOL_SCHEMES = [
    "westwood",
    "cubic",
    "vegas",
    "yeah",
    "bbr2",
    "newreno",
    "illinois",
    "veno",
    "highspeed",
    "cdg",
    "htcp",
    "bic",
    "hybla",
]

#: The delay-based league of Section 6.3.
DELAY_LEAGUE = ["bbr2", "copa", "c2tcp", "ledbat", "vegas", "sprout"]
