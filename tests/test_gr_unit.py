"""Tests for the General Representation unit (Table 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector.gr_unit import (
    GRUnit,
    LOSS_INFLIGHT_INDICES,
    MINMAX_INDICES,
    RTTVAR_RATE_INDICES,
    STATE_DIM,
    STATE_FIELDS,
    WindowConfig,
    normalize_state,
)
from repro.netsim.aqm import TailDrop
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.traces import FlatRate
from repro.tcp.flow import Flow


def make_gr(windows=None, bw=12e6, rtt=0.04):
    loop = EventLoop()
    net = Network(loop, FlatRate(bw), TailDrop(60_000))
    flow = Flow(net, 0, "cubic", min_rtt=rtt)
    flow.start()
    return loop, flow, GRUnit(flow.sender, windows=windows)


class TestTable1Layout:
    def test_exactly_69_fields(self):
        assert STATE_DIM == 69
        assert len(STATE_FIELDS) == 69

    def test_field_order_matches_table1(self):
        assert STATE_FIELDS[0] == "srtt"
        assert STATE_FIELDS[1] == "rttvar"
        assert STATE_FIELDS[2] == "thr"
        assert STATE_FIELDS[3] == "ca_state"
        assert STATE_FIELDS[4] == "rtt_s.avg"
        assert STATE_FIELDS[12] == "rtt_l.max"
        assert STATE_FIELDS[13] == "thr_s.avg"
        assert STATE_FIELDS[58] == "time_delta"
        assert STATE_FIELDS[68] == "pre_act"

    def test_ablation_index_groups(self):
        # min/max stats: 2 of every 3 in each of the six 9-field blocks
        assert len(MINMAX_INDICES) == 36
        # rows 23-40 in the paper's 1-based numbering: 18 fields
        assert len(RTTVAR_RATE_INDICES) == 18
        # rows 41-58: 18 fields
        assert len(LOSS_INFLIGHT_INDICES) == 18

    def test_removing_minmax_leaves_33(self):
        # the paper's "no Min/Max" ablation keeps a 33-element vector
        assert STATE_DIM - len(MINMAX_INDICES) == 33


class TestGRUnitSampling:
    def test_state_shape_and_finiteness(self):
        loop, flow, gr = make_gr()
        loop.run_until(0.5)
        state, action = gr.tick()
        assert state.shape == (STATE_DIM,)
        assert np.all(np.isfinite(state))
        assert 1 / 3 <= action <= 3

    def test_action_reflects_cwnd_ratio(self):
        loop, flow, gr = make_gr()
        loop.run_until(0.1)
        gr.tick()
        before = flow.sender.cwnd
        flow.sender.cwnd = before * 1.5
        _, action = gr.tick()
        assert action == pytest.approx(1.5)

    def test_action_clipped(self):
        loop, flow, gr = make_gr()
        loop.run_until(0.1)
        gr.tick()
        flow.sender.cwnd *= 100.0
        _, action = gr.tick()
        assert action == pytest.approx(3.0)

    def test_pre_act_carried_to_next_state(self):
        loop, flow, gr = make_gr()
        loop.run_until(0.1)
        _, a1 = gr.tick()
        s2, _ = gr.tick()
        assert s2[STATE_FIELDS.index("pre_act")] == pytest.approx(a1)

    def test_time_delta_normalized_to_min_rtt(self):
        loop, flow, gr = make_gr(rtt=0.04)
        loop.run_until(0.5)
        gr.tick()
        loop.run_until(0.52)  # 20 ms later = 0.5 min RTT
        s, _ = gr.tick()
        assert s[STATE_FIELDS.index("time_delta")] == pytest.approx(0.5, rel=0.2)

    def test_window_stats_ordering(self):
        loop, flow, gr = make_gr()
        t = 0.0
        state = None
        for _ in range(50):
            t += 0.02
            loop.run_until(t)
            state, _ = gr.tick()
        for prefix in ("rtt", "thr"):
            for w in ("s", "m", "l"):
                avg = state[STATE_FIELDS.index(f"{prefix}_{w}.avg")]
                mn = state[STATE_FIELDS.index(f"{prefix}_{w}.min")]
                mx = state[STATE_FIELDS.index(f"{prefix}_{w}.max")]
                assert mn <= avg <= mx

    def test_small_window_reacts_faster_than_large(self):
        loop, flow, gr = make_gr(windows=WindowConfig(small=2, medium=10, large=50))
        t = 0.0
        for _ in range(60):
            t += 0.02
            loop.run_until(t)
            state, _ = gr.tick()
        srtt_small = state[STATE_FIELDS.index("rtt_s.avg")]
        srtt_large = state[STATE_FIELDS.index("rtt_l.avg")]
        # cubic fills the buffer: recent RTTs exceed the long-run average
        assert srtt_small >= srtt_large * 0.9


class TestWindowConfig:
    def test_defaults_are_paper_values(self):
        w = WindowConfig()
        assert (w.small, w.medium, w.large) == (10, 200, 1000)

    def test_rejects_bad_ordering(self):
        with pytest.raises(ValueError):
            WindowConfig(small=100, medium=10, large=1000)
        with pytest.raises(ValueError):
            WindowConfig(small=0)


class TestNormalization:
    def test_output_bounded(self):
        raw = np.full(STATE_DIM, 1e9)
        out = normalize_state(raw)
        assert np.all(out <= 10.0)

    def test_typical_values_order_one(self):
        loop, flow, gr = make_gr()
        t = 0.0
        for _ in range(30):
            t += 0.02
            loop.run_until(t)
            state, _ = gr.tick()
        norm = normalize_state(state)
        assert np.abs(norm).max() <= 10.0
        assert np.abs(norm).mean() < 5.0

    @given(
        scale=st.floats(0.1, 100.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_normalize_is_linear(self, scale):
        raw = np.ones(STATE_DIM)
        a = normalize_state(raw)
        b = normalize_state(raw * scale)
        mask = np.abs(b) < 10.0  # away from the clip
        np.testing.assert_allclose(b[mask], a[mask] * scale, rtol=1e-9)

    def test_batch_normalization(self):
        raw = np.ones((5, STATE_DIM))
        out = normalize_state(raw)
        assert out.shape == (5, STATE_DIM)
