"""Leagues: run a set of participants over Set I / Set II and rank them.

A *participant* is either a kernel scheme (by registry name) or a learned
agent (anything satisfying the PolicyAgent protocol). The league runner
plays every participant through every environment, scores each
scenario-interval, and reports winning rates — the machinery behind
Figs. 1, 7, 9, 10, 20/21 and Tables 2/3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.collector.environments import EnvConfig, set1_environments, set2_environments
from repro.collector.parallel import derive_seed, run_tasks
from repro.collector.rollout import RolloutResult, collect_trajectory, run_policy
from repro.evalx.scores import ScoreEntry, interval_scores, winning_rates
from repro.tcp.cc_base import DELAY_LEAGUE, POOL_SCHEMES

#: The heuristic league of Fig. 1 (the 13 pool schemes).
HEURISTIC_LEAGUE = list(POOL_SCHEMES)

#: The delay-based league of Fig. 10.
DELAY_LEAGUE_NAMES = list(DELAY_LEAGUE)


@dataclass
class Participant:
    """One league entrant: a kernel scheme or a learned agent."""

    name: str
    scheme: Optional[str] = None  # registry name, for kernel schemes
    agent: Optional[object] = None  # PolicyAgent, for learned entrants

    def __post_init__(self) -> None:
        if (self.scheme is None) == (self.agent is None):
            raise ValueError("exactly one of scheme/agent must be set")

    @classmethod
    def from_scheme(cls, scheme: str) -> "Participant":
        return cls(name=scheme, scheme=scheme)

    @classmethod
    def from_agent(cls, agent, name: Optional[str] = None) -> "Participant":
        return cls(name=name or getattr(agent, "name", "agent"), agent=agent)

    @classmethod
    def from_served(
        cls, policy, name: Optional[str] = None, **serve_kwargs
    ) -> "Participant":
        """Enter a policy through the serving engine (`repro.serve`).

        The rollout then exercises the production path — batched-capable
        server, deadline/fallback machinery, serving metrics — instead of
        the in-process agent. ``serve_kwargs`` are forwarded to
        :class:`~repro.serve.client.ServedAgent` (e.g. ``deterministic=``,
        ``config=ServeConfig(...)``).
        """
        from repro.serve.client import ServedAgent

        agent = ServedAgent(policy, **serve_kwargs)
        return cls(name=name or agent.name, agent=agent)


@dataclass
class LeagueResult:
    """Winning rates per set, plus raw per-interval scores."""

    set1_rates: Dict[str, float]
    set2_rates: Dict[str, float]
    set1_entries: List[ScoreEntry] = field(default_factory=list)
    set2_entries: List[ScoreEntry] = field(default_factory=list)

    def ranking(self, which: str = "set1") -> List[tuple]:
        rates = self.set1_rates if which == "set1" else self.set2_rates
        return sorted(rates.items(), key=lambda kv: kv[1], reverse=True)

    def format_table(self) -> str:
        lines = [f"{'rank':>4} {'scheme':>12} {'Set I':>8}   |   {'scheme':>12} {'Set II':>8}"]
        r1, r2 = self.ranking("set1"), self.ranking("set2")
        for i in range(max(len(r1), len(r2))):
            left = f"{r1[i][0]:>12} {r1[i][1] * 100:7.2f}%" if i < len(r1) else " " * 21
            right = f"{r2[i][0]:>12} {r2[i][1] * 100:7.2f}%" if i < len(r2) else ""
            lines.append(f"{i + 1:>4} {left}   |   {right}")
        return "\n".join(lines)


def run_participant(participant: Participant, env: EnvConfig, tick: float = 0.02) -> RolloutResult:
    """Play one participant in one environment."""
    if participant.scheme is not None:
        result = collect_trajectory(env, participant.scheme, tick=tick)
    else:
        result = run_policy(env, participant.agent, tick=tick)
    # Label with the participant's league name (agents carry their own).
    result.scheme = participant.name
    return result


@dataclass(frozen=True)
class LeagueTask:
    """One (participant, env) rollout for the parallel engine."""

    index: int
    participant: Participant
    env: EnvConfig
    tick: float
    seed: int

    @property
    def label(self) -> str:
        return f"{self.participant.name} on {self.env.env_id}"


def _run_league_task(task: LeagueTask) -> RolloutResult:
    """Worker-side: reseed stochastic agents from the task seed, then play.

    Reseeding makes agent rollouts a pure function of ``(base_seed, index)``
    so a parallel league is deterministic under any worker count; kernel
    schemes carry no RNG and are bit-identical to the serial runner.
    """
    import numpy as np

    agent = task.participant.agent
    if agent is not None and hasattr(agent, "rng"):
        agent.rng = np.random.default_rng(task.seed)
    return run_participant(task.participant, task.env, tick=task.tick)


def _run_matches(
    participants: Sequence[Participant],
    envs: Sequence[EnvConfig],
    tick: float,
    workers: Optional[int],
    progress,
    base_seed: int = 0,
) -> List[RolloutResult]:
    """Every participant through every env, fanned across workers."""
    tasks = [
        LeagueTask(
            index=i,
            participant=p,
            env=env,
            tick=tick,
            seed=derive_seed(base_seed, i),
        )
        for i, (env, p) in enumerate(
            (env, p) for env in envs for p in participants
        )
    ]
    results, report = run_tasks(
        tasks,
        fn=_run_league_task,
        workers=workers,
        progress=(None if progress is None else (lambda ev: progress(ev.label))),
    )
    report.raise_on_failure()
    return results


def run_league(
    participants: Sequence[Participant],
    set1: Optional[Sequence[EnvConfig]] = None,
    set2: Optional[Sequence[EnvConfig]] = None,
    margin: float = 0.10,
    alpha: float = 2.0,
    n_intervals: int = 4,
    tick: float = 0.02,
    progress=None,
    workers: int = 1,
) -> LeagueResult:
    """Run the full league and compute winning rates for both sets.

    ``workers`` fans the (participant, env) rollouts across processes.
    Kernel-scheme results are bit-identical to the serial runner; agent
    rollouts reseed the agent's RNG per task, so parallel leagues are
    deterministic for any worker count (but stochastic agents draw a
    different — equally valid — action sequence than the serial path).
    """
    if set1 is None:
        set1 = set1_environments(
            bws=(24.0, 48.0), rtts=(0.02, 0.06), buffers=(1.0, 4.0),
            step_ms=(0.5, 2.0), duration=12.0,
        )
    if set2 is None:
        set2 = set2_environments(
            bws=(24.0, 48.0), rtts=(0.02, 0.06), buffers=(2.0, 8.0), duration=16.0,
        )
    set1_entries: List[ScoreEntry] = []
    set2_entries: List[ScoreEntry] = []
    if workers is not None and workers == 1:
        for env_list, sink in ((set1, set1_entries), (set2, set2_entries)):
            for env in env_list:
                for p in participants:
                    result = run_participant(p, env, tick=tick)
                    sink.extend(
                        interval_scores(result, alpha=alpha, n_intervals=n_intervals)
                    )
                    if progress is not None:
                        progress(f"{p.name} on {env.env_id}")
    else:
        for env_list, sink in ((set1, set1_entries), (set2, set2_entries)):
            for result in _run_matches(
                participants, env_list, tick, workers, progress
            ):
                sink.extend(
                    interval_scores(result, alpha=alpha, n_intervals=n_intervals)
                )
    return LeagueResult(
        set1_rates=winning_rates(set1_entries, margin=margin),
        set2_rates=winning_rates(set2_entries, margin=margin),
        set1_entries=set1_entries,
        set2_entries=set2_entries,
    )
