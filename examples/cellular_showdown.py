#!/usr/bin/env python
"""Highly-variable cellular links: who keeps delay low without starving?

The Fig.-8(c) scenario: trace-driven cellular bottlenecks where capacity
swings by an order of magnitude within seconds. Loss-based schemes bloat
the (deep) buffer; conservative forecasters sacrifice throughput; the
interesting region is high utilization at low delay.

Run:  python examples/cellular_showdown.py [--traces 5]
"""

import argparse

from repro.collector.rollout import collect_trajectory
from repro.evalx.internet import cellular_envs

SCHEMES = ["cubic", "vegas", "bbr2", "westwood", "sprout", "c2tcp"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=4)
    parser.add_argument("--duration", type=float, default=12.0)
    args = parser.parse_args()

    envs = cellular_envs(n_traces=args.traces, duration=args.duration)
    print(f"{len(envs)} synthetic cellular traces, "
          f"{args.duration:.0f} s each\n")
    print(f"{'scheme':>10} {'avg thr (Mbps)':>15} {'avg owd (ms)':>13} "
          f"{'p95 owd (ms)':>13}")
    for scheme in SCHEMES:
        thr_sum = owd_sum = p95_sum = 0.0
        for env in envs:
            r = collect_trajectory(env, scheme)
            thr_sum += r.stats.avg_throughput_bps
            owd_sum += r.stats.avg_owd
            p95_sum += r.stats.p95_owd
        n = len(envs)
        print(f"{scheme:>10} {thr_sum / n / 1e6:15.2f} "
              f"{owd_sum / n * 1e3:13.1f} {p95_sum / n * 1e3:13.1f}")


if __name__ == "__main__":
    main()
