"""Fig. 8 — normalized throughput/delay on simulated Internet + cellular.

Three panels: (a) intra-continental GENI paths, (b) inter-continental AWS
paths, (c) highly-variable cellular links. Paper shape: delay-based schemes
shine on cellular but lose utilization inter-continentally; loss-based do
the opposite; Sage stays near the top-right everywhere.
"""

from conftest import SCALE, once

from repro.evalx.internet import (
    cellular_envs,
    evaluate_paths,
    inter_continental_envs,
    intra_continental_envs,
)
from repro.evalx.leagues import Participant

SCHEMES = ["cubic", "vegas", "bbr2", "westwood", "ledbat"]
N_PATHS = {"tiny": 3, "small": 6, "full": None}[SCALE]
N_CELL = {"tiny": 3, "small": 8, "full": 23}[SCALE]


def test_fig08_internet_and_cellular(benchmark, sage_agent):
    parts = [Participant.from_scheme(s) for s in SCHEMES]
    parts.append(Participant.from_agent(sage_agent))

    def run():
        dur = 8.0 if SCALE == "tiny" else 10.0
        return {
            "intra": evaluate_paths(
                parts, intra_continental_envs(duration=dur, n_paths=N_PATHS), "intra"
            ),
            "inter": evaluate_paths(
                parts, inter_continental_envs(duration=dur, n_paths=N_PATHS), "inter"
            ),
            "cellular": evaluate_paths(
                parts, cellular_envs(n_traces=N_CELL, duration=dur), "cellular"
            ),
        }

    reports = once(benchmark, run)
    print("\n=== Fig. 8: normalized throughput & delay ===")
    for tag in ("intra", "inter", "cellular"):
        print(reports[tag].format_table())

    for tag in ("intra", "inter", "cellular"):
        rep = reports[tag]
        # sage must keep competitive utilization everywhere (paper's claim
        # is consistency, not dominance per panel)
        assert rep.norm_throughput["sage"] > 0.3
    # loss-based schemes pay delay on buffered paths vs vegas
    assert (
        reports["inter"].norm_delay["cubic"]
        >= reports["inter"].norm_delay["vegas"] - 0.2
    )
