"""Extra training-pipeline coverage: windows, checkpoints, CLI league path."""

import numpy as np
import pytest

from repro.cli import main
from repro.collector.environments import EnvConfig
from repro.collector.gr_unit import STATE_DIM, WindowConfig
from repro.core.crr import CRRConfig
from repro.core.networks import NetworkConfig
from repro.core.training import collect_pool, train_sage_on_pool

TINY = NetworkConfig(enc_dim=16, gru_dim=16, n_components=2, n_atoms=7)
TINY_CRR = CRRConfig(batch_size=4, seq_len=4)


def env(duration=3.0, env_id="tx"):
    return EnvConfig(env_id=env_id, kind="flat", bw_mbps=12.0, min_rtt=0.04,
                     buffer_bdp=2.0, duration=duration)


class TestWindowedCollection:
    def test_custom_windows_plumbed_through(self):
        pool = collect_pool(
            [env()], schemes=["cubic"],
            windows=WindowConfig(small=2, medium=2, large=2),
        )
        # with a 2-tick window, the long-window stats track recent values:
        # rtt_l.max equals rtt_s.max at every step
        traj = pool.trajectories[0]
        from repro.collector.gr_unit import STATE_FIELDS

        s_max = traj.states[:, STATE_FIELDS.index("rtt_s.max")]
        l_max = traj.states[:, STATE_FIELDS.index("rtt_l.max")]
        np.testing.assert_allclose(s_max, l_max)

    def test_default_windows_differ(self):
        pool = collect_pool([env(duration=6.0)], schemes=["cubic"])
        traj = pool.trajectories[0]
        from repro.collector.gr_unit import STATE_FIELDS

        s_min = traj.states[-1, STATE_FIELDS.index("rtt_s.min")]
        l_min = traj.states[-1, STATE_FIELDS.index("rtt_l.min")]
        assert l_min <= s_min  # the long window has seen lower RTTs


class TestCheckpoints:
    def test_checkpoints_are_distinct_snapshots(self):
        pool = collect_pool([env()], schemes=["cubic", "vegas"])
        run = train_sage_on_pool(
            pool, n_steps=6, n_checkpoints=3, net_config=TINY,
            crr_config=TINY_CRR,
        )
        assert len(run.checkpoints) == 3
        # weights keep moving between checkpoints
        k0, k2 = run.checkpoints[0], run.checkpoints[2]
        assert any(not np.allclose(k0[k], k2[k]) for k in k0)

    def test_agent_at_is_stochastic_by_default(self):
        pool = collect_pool([env()], schemes=["cubic"])
        run = train_sage_on_pool(
            pool, n_steps=2, n_checkpoints=1, net_config=TINY,
            crr_config=TINY_CRR,
        )
        agent = run.agent_at(0)
        assert not agent.deterministic


class TestCliLeague:
    def test_league_subcommand(self, capsys, monkeypatch):
        # shrink the default grids so the CLI path stays unit-test fast
        import repro.evalx.leagues as leagues

        monkeypatch.setattr(
            leagues, "set1_environments",
            lambda **kw: [env(duration=4.0, env_id="cli1")],
        )
        monkeypatch.setattr(
            leagues, "set2_environments",
            lambda **kw: [
                EnvConfig(env_id="cli2", kind="flat", bw_mbps=12.0,
                          min_rtt=0.04, buffer_bdp=2.0, n_competing_cubic=1,
                          duration=5.0)
            ],
        )
        code = main(["league", "--schemes", "cubic,vegas"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cubic" in out and "vegas" in out
