"""Simulated Internet and cellular evaluations (Section 6.1, Appendix G/H).

The paper sends traffic between 15 GENI servers across the US
(intra-continental) and 13 AWS servers around the globe
(inter-continental), with minimum RTTs spanning 7-237 ms, plus 23 recorded
cellular traces. Here each source-destination pair becomes a simulated WAN
path: the Table-4 location lists parameterize per-path propagation RTTs,
and capacity follows a mildly-variable cross-traffic process
(:func:`~repro.netsim.traces.internet_path_rate`); cellular runs use the
synthetic Markov-modulated traces.

Reported metrics match Fig. 8: per-scheme average throughput normalized to
the best scheme on that path, and average delay normalized to the lowest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.collector.environments import EnvConfig
from repro.evalx.leagues import Participant, _run_matches, run_participant

#: Table 4 (left): GENI servers used for intra-continental experiments.
GENI_SERVERS = [
    "Tennessee (UTC)", "Ohio (OSU)", "Maryland (MAX)", "California (UCSD)",
    "Missouri (UMKC)", "Kentucky (UKY)", "Wisconsin (WISC)", "Ohio (CASE)",
    "Washington (UW)", "Colorado (CU)", "Ohio (MetroDC)",
    "Illinois (UChicago)", "Missouri (MU)", "California (UCLA)",
    "Virginia (VT)",
]

#: Table 4 (right): AWS servers used for inter-continental experiments.
AWS_SERVERS = [
    "Asia-East (HongKong)", "Asia-Middle East (Bahrain)",
    "Asia-North East (Osaka)", "Asia-North East (Tokyo)",
    "Asia-South (Mumbai)", "Asia-South East (Jakarta)",
    "Asia-South East (Singapore)", "Europe-Central (Frankfurt)",
    "Europe-South (Milan)", "Europe-West (Ireland)",
    "Europe-West (London)", "Europe-West (Paris)",
    "South America (Sao Paulo)",
]


def _path_envs(
    names: Sequence[str],
    rtt_lo: float,
    rtt_hi: float,
    bw_lo: float,
    bw_hi: float,
    duration: float,
    tag: str,
    n_paths: Optional[int],
    seed: int,
) -> List[EnvConfig]:
    rng = np.random.default_rng(seed)
    names = list(names)
    if n_paths is not None:
        names = names[:n_paths]
    envs = []
    for i, name in enumerate(names):
        # deterministic per-server parameters inside the paper's ranges
        rtt = rtt_lo + (rtt_hi - rtt_lo) * float(rng.uniform())
        bw = bw_lo + (bw_hi - bw_lo) * float(rng.uniform())
        envs.append(
            EnvConfig(
                env_id=f"{tag}-{i}-{name.split(' ')[0].lower()}",
                kind="internet",
                bw_mbps=round(bw, 1),
                min_rtt=round(rtt, 4),
                buffer_bdp=2.0,
                duration=duration,
                trace_seed=seed + i,
            )
        )
    return envs


def intra_continental_envs(
    duration: float = 10.0, n_paths: Optional[int] = None, seed: int = 11
) -> List[EnvConfig]:
    """US GENI paths: short RTTs (7-70 ms), moderate capacity."""
    return _path_envs(
        GENI_SERVERS, 0.007, 0.070, 20.0, 96.0, duration, "intra", n_paths, seed
    )


def inter_continental_envs(
    duration: float = 10.0, n_paths: Optional[int] = None, seed: int = 23
) -> List[EnvConfig]:
    """Global AWS paths: long RTTs (70-237 ms)."""
    return _path_envs(
        AWS_SERVERS, 0.070, 0.237, 15.0, 64.0, duration, "inter", n_paths, seed
    )


def cellular_envs(
    n_traces: int = 23, duration: float = 15.0, seed: int = 37
) -> List[EnvConfig]:
    """Highly-variable cellular links (the 23-trace substitute)."""
    return [
        EnvConfig(
            env_id=f"cell-{i}",
            kind="cellular",
            bw_mbps=6.0 + (i % 5) * 3.0,  # mean rates spanning 6-18 Mbps
            min_rtt=0.030 + 0.01 * (i % 4),
            buffer_bdp=6.0,
            duration=duration,
            trace_seed=seed + i,
        )
        for i in range(n_traces)
    ]


@dataclass
class InternetReport:
    """Fig. 8-style normalized results for one evaluation set."""

    tag: str
    #: per participant: mean over paths of (throughput / best throughput)
    norm_throughput: Dict[str, float] = field(default_factory=dict)
    #: per participant: mean over paths of (avg delay / lowest avg delay)
    norm_delay: Dict[str, float] = field(default_factory=dict)
    #: per participant: mean over paths of (95%tile delay / lowest avg delay)
    norm_delay_p95: Dict[str, float] = field(default_factory=dict)

    def format_table(self) -> str:
        lines = [f"[{self.tag}] {'scheme':>12} {'norm-thr':>9} {'norm-delay':>11} {'norm-p95':>9}"]
        order = sorted(
            self.norm_throughput,
            key=lambda p: self.norm_throughput[p] / max(self.norm_delay[p], 1e-9),
            reverse=True,
        )
        for p in order:
            lines.append(
                f"{'':14}{p:>12} {self.norm_throughput[p]:9.3f} "
                f"{self.norm_delay[p]:11.3f} {self.norm_delay_p95[p]:9.3f}"
            )
        return "\n".join(lines)


def evaluate_paths(
    participants: Sequence[Participant],
    envs: Sequence[EnvConfig],
    tag: str,
    tick: float = 0.02,
    progress=None,
    workers: int = 1,
) -> InternetReport:
    """Run every participant over every path and normalize per path.

    ``workers`` fans the (participant, path) rollouts across processes via
    the parallel collector engine; per-path normalization happens after all
    of a path's participants have finished, so results are independent of
    scheduling.
    """
    thr: Dict[str, List[float]] = {p.name: [] for p in participants}
    dly: Dict[str, List[float]] = {p.name: [] for p in participants}
    p95: Dict[str, List[float]] = {p.name: [] for p in participants}
    if workers is None or workers != 1:
        rollouts = _run_matches(participants, envs, tick, workers, progress)
        rollout_iter = iter(rollouts)
    for env in envs:
        per_path = {}
        for p in participants:
            if workers is None or workers != 1:
                result = next(rollout_iter)
            else:
                result = run_participant(p, env, tick=tick)
                if progress is not None:
                    progress(f"{p.name} on {env.env_id}")
            s = result.stats
            per_path[p.name] = (
                s.avg_throughput_bps,
                max(s.avg_owd, 1e-4),
                max(s.p95_owd, 1e-4),
            )
        best_thr = max(v[0] for v in per_path.values()) or 1.0
        best_dly = min(v[1] for v in per_path.values())
        for name, (t, d, q) in per_path.items():
            thr[name].append(t / best_thr)
            dly[name].append(d / best_dly)
            p95[name].append(q / best_dly)
    return InternetReport(
        tag=tag,
        norm_throughput={k: float(np.mean(v)) for k, v in thr.items()},
        norm_delay={k: float(np.mean(v)) for k, v in dly.items()},
        norm_delay_p95={k: float(np.mean(v)) for k, v in p95.items()},
    )
