"""Unit + property tests for the rate processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.traces import (
    FlatRate,
    StepRate,
    TraceRate,
    cellular_trace,
    internet_path_rate,
)


class TestFlatRate:
    def test_constant(self):
        r = FlatRate(10e6)
        assert r.rate_at(0.0) == 10e6
        assert r.rate_at(100.0) == 10e6

    def test_mean_equals_rate(self):
        assert FlatRate(5e6).mean_rate(30.0) == 5e6

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FlatRate(0.0)
        with pytest.raises(ValueError):
            FlatRate(-1.0)


class TestStepRate:
    def test_switches_at_t(self):
        r = StepRate(10e6, 2.0, t_switch=5.0)
        assert r.rate_at(4.999) == 10e6
        assert r.rate_at(5.0) == 20e6

    def test_downward_step(self):
        r = StepRate(40e6, 0.25, t_switch=1.0)
        assert r.rate_at(2.0) == 10e6

    def test_mean_rate_weights_phases(self):
        r = StepRate(10e6, 3.0, t_switch=5.0)
        assert r.mean_rate(10.0) == pytest.approx(20e6)

    def test_mean_before_switch(self):
        r = StepRate(10e6, 3.0, t_switch=5.0)
        assert r.mean_rate(4.0) == 10e6

    @given(
        rate=st.floats(1e5, 1e8),
        m=st.sampled_from([0.25, 0.5, 2.0, 4.0]),
        t=st.floats(0.0, 100.0),
    )
    def test_rates_always_positive(self, rate, m, t):
        r = StepRate(rate, m, t_switch=10.0)
        assert r.rate_at(t) > 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StepRate(-1.0, 2.0, 0.0)
        with pytest.raises(ValueError):
            StepRate(1e6, 2.0, -1.0)


class TestTraceRate:
    def test_playback(self):
        r = TraceRate([1e6, 2e6, 3e6], slot=1.0)
        assert r.rate_at(0.5) == 1e6
        assert r.rate_at(1.5) == 2e6
        assert r.rate_at(2.5) == 3e6

    def test_wraps_around(self):
        r = TraceRate([1e6, 2e6], slot=1.0)
        assert r.rate_at(2.5) == 1e6
        assert r.rate_at(3.5) == 2e6

    def test_zero_slots_floored(self):
        r = TraceRate([0.0, 1e6], slot=1.0)
        assert r.rate_at(0.5) > 0  # outage slots never stall the link

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            TraceRate([])
        with pytest.raises(ValueError):
            TraceRate([1e6], slot=0.0)
        with pytest.raises(ValueError):
            TraceRate([-1.0])

    def test_mean_rate_short_horizon(self):
        r = TraceRate([1e6, 3e6], slot=1.0)
        assert r.mean_rate(1.0) == pytest.approx(1e6)
        assert r.mean_rate(2.0) == pytest.approx(2e6)


class TestSyntheticTraces:
    def test_cellular_trace_reproducible(self):
        a = cellular_trace(seed=1).samples_bps
        b = cellular_trace(seed=1).samples_bps
        np.testing.assert_array_equal(a, b)

    def test_cellular_trace_seeds_differ(self):
        a = cellular_trace(seed=1).samples_bps
        b = cellular_trace(seed=2).samples_bps
        assert not np.array_equal(a, b)

    def test_cellular_trace_is_variable(self):
        t = cellular_trace(seed=3, duration=60.0)
        samples = t.samples_bps
        assert samples.std() / samples.mean() > 0.3  # genuinely bursty

    def test_cellular_trace_bounded(self):
        t = cellular_trace(seed=4, burst_mbps=24.0)
        assert t.samples_bps.max() <= 24e6 + 1

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_internet_path_rate_stays_near_base(self, seed):
        t = internet_path_rate(seed, base_mbps=50.0)
        assert 0.3 * 50e6 <= t.samples_bps.mean() <= 1.5 * 50e6
