"""The supervised, resumable pipeline (repro.pipeline).

The contract under test:

- the supervisor journals every transition atomically, retries failing
  stages with backoff, and survives ``kill -9`` at any instant — resume
  skips validated ``done`` stages and restarts the interrupted one;
- a chaos-mode run (worker crash + hang, shard bit-flip, NaN training
  batch) exits cleanly with **every artifact bit-identical** to a
  fault-free run's, and ``pipeline status`` reports each fault with its
  recovery action;
- a mid-flush ``kill -9`` leaves the sharded store valid (every shard
  committed before the kill, never a torn manifest).
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.chaos import FaultPlan, FaultSpec
from repro.pipeline import (
    PipelineConfig,
    PipelineError,
    PipelineState,
    StageSpec,
    Supervisor,
    build_supervisor,
)
from repro.pipeline.state import StageState

REPO = Path(__file__).resolve().parent.parent

# small enough for tests, big enough to cross every subsystem
PIPE_KW = dict(
    scale="mini", schemes=("cubic",), workers=1, n_steps=4, eval_duration=1.0
)

ACCEPTANCE_FAULTS = [
    FaultSpec("collector.crash", target=2),
    FaultSpec("collector.hang", target=3, param=30.0),
    FaultSpec("datastore.bitflip", target=0),
    FaultSpec("train.nan", target=3),
]


def _config(workdir, **overrides):
    kw = dict(PIPE_KW)
    kw.update(overrides)
    return PipelineConfig(workdir=str(workdir), **kw)


def _checkpoint_arrays(path):
    with np.load(path, allow_pickle=False) as data:
        return {k: data[k].tobytes() for k in data.files}


def _store_digest(root):
    h = hashlib.sha256()
    for p in sorted(Path(root).rglob("*")):
        if p.is_file():
            h.update(p.name.encode())
            h.update(p.read_bytes())
    return h.hexdigest()


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory):
    """One fault-free pipeline run; the bit-identity reference."""
    cfg = _config(tmp_path_factory.mktemp("pipe_clean"))
    state = build_supervisor(cfg).run(config=cfg.to_json())
    return cfg, state


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    """One run under the acceptance fault plan (crash+hang+bitflip+NaN)."""
    workdir = tmp_path_factory.mktemp("pipe_chaos")
    plan_path = workdir / "plan.json"
    FaultPlan(seed=0, faults=ACCEPTANCE_FAULTS).save(plan_path)
    cfg = _config(workdir, fault_plan=str(plan_path))
    with np.errstate(invalid="ignore"):
        state = build_supervisor(cfg).run(config=cfg.to_json())
    return cfg, state


# ---------------------------------------------------------------------------
# Supervisor mechanics (no simulator involved)
# ---------------------------------------------------------------------------


class TestSupervisor:
    def test_runs_stages_in_order(self, tmp_path):
        order = []
        stages = [
            StageSpec("a", lambda ctx: order.append("a") or {"n": 1}),
            StageSpec("b", lambda ctx: order.append("b") or {}),
        ]
        state = Supervisor(stages, tmp_path / "s.json").run()
        assert order == ["a", "b"]
        assert state.complete
        assert state.stage("a").info == {"n": 1}

    def test_retry_then_succeed(self, tmp_path):
        attempts = []

        def flaky(ctx):
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return {}

        spec = StageSpec("flaky", flaky, retries=2, backoff_s=0.0)
        state = Supervisor([spec], tmp_path / "s.json").run()
        assert len(attempts) == 3
        assert state.stage("flaky").status == "done"
        assert state.stage("flaky").attempts == 3

    def test_exhausted_retries_fail_and_persist(self, tmp_path):
        def doomed(ctx):
            raise RuntimeError("permanent")

        path = tmp_path / "s.json"
        spec = StageSpec("doomed", doomed, retries=1, backoff_s=0.0)
        with pytest.raises(PipelineError, match="doomed"):
            Supervisor([spec], path).run()
        reloaded = PipelineState.load(path)
        assert reloaded.stage("doomed").status == "failed"
        assert "permanent" in reloaded.stage("doomed").error

    def test_resume_skips_validated_done_stages(self, tmp_path):
        runs = []
        stages = [
            StageSpec("a", lambda ctx: runs.append("a") or {},
                      check=lambda ctx: True),
            StageSpec("b", lambda ctx: runs.append("b") or {}),
        ]
        path = tmp_path / "s.json"
        Supervisor(stages, path).run()
        Supervisor(stages, path).run(resume=True)
        # a's check passed, b has no check (journal trusted): both skipped
        assert runs == ["a", "b"]

    def test_resume_reruns_stage_failing_validation(self, tmp_path):
        runs = []
        stages = [
            StageSpec("a", lambda ctx: runs.append("a") or {},
                      check=lambda ctx: False),
        ]
        path = tmp_path / "s.json"
        Supervisor(stages, path).run()
        Supervisor(stages, path).run(resume=True)
        assert runs == ["a", "a"]

    def test_interrupted_running_stage_restarts_on_resume(self, tmp_path):
        path = tmp_path / "s.json"
        state = PipelineState(stages=[StageState(name="a", status="running")])
        state.save(path)
        ran = []
        sup = Supervisor([StageSpec("a", lambda ctx: ran.append(1) or {})], path)
        sup.run(resume=True)
        assert ran == [1]
        assert any("interrupted" in e["message"] for e in
                   PipelineState.load(path).events)

    def test_duplicate_stage_names_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate"):
            Supervisor(
                [StageSpec("x", lambda c: {}), StageSpec("x", lambda c: {})],
                tmp_path / "s.json",
            )

    def test_state_json_roundtrip(self, tmp_path):
        state = PipelineState(
            config={"k": 1},
            stages=[StageState(name="a", status="done", info={"events": []})],
        )
        state.log("test", "hello")
        path = tmp_path / "s.json"
        state.save(path)
        again = PipelineState.load(path)
        assert again.config == {"k": 1}
        assert again.stage("a").status == "done"
        assert again.events[-1]["message"] == "hello"
        assert (path.parent / (path.name + ".tmp")).exists() is False

    def test_corrupt_state_rejected(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text("{ torn")
        with pytest.raises(ValueError, match="corrupt"):
            PipelineState.load(path)


# ---------------------------------------------------------------------------
# The acceptance run: all faults masked, artifacts bit-identical
# ---------------------------------------------------------------------------


class TestChaosPipeline:
    def test_chaos_run_completes(self, chaos_run):
        _, state = chaos_run
        assert state.complete

    def test_every_fault_reported_with_recovery(self, chaos_run):
        _, state = chaos_run
        kinds = [ev["kind"] for ev in state.fault_log()]
        assert "crash" in kinds
        assert "hang" in kinds
        assert "corrupt-shard" in kinds
        assert "store-repair" in kinds
        assert any(k.startswith("train-") for k in kinds)
        for ev in state.fault_log():
            assert ev["action"], ev  # every fault names its recovery

    def test_status_renders_fault_log(self, chaos_run):
        _, state = chaos_run
        text = state.format_status()
        assert "faults caught & recovered" in text
        assert "pipeline complete" in text

    def test_checkpoint_bit_identical_to_fault_free(self, clean_run, chaos_run):
        clean_cfg, _ = clean_run
        chaos_cfg, _ = chaos_run
        a = _checkpoint_arrays(clean_cfg.checkpoint_path)
        b = _checkpoint_arrays(chaos_cfg.checkpoint_path)
        assert set(a) == set(b)
        for key in a:
            assert a[key] == b[key], key

    def test_repaired_store_byte_identical_to_fault_free(
        self, clean_run, chaos_run
    ):
        clean_cfg, _ = clean_run
        chaos_cfg, _ = chaos_run
        assert _store_digest(clean_cfg.store_dir) == _store_digest(
            chaos_cfg.store_dir
        )

    def test_eval_results_identical(self, clean_run, chaos_run):
        clean_cfg, _ = clean_run
        chaos_cfg, _ = chaos_run
        a = json.loads(clean_cfg.eval_path.read_text())
        b = json.loads(chaos_cfg.eval_path.read_text())
        assert a["mean_reward"] == b["mean_reward"]
        assert a["ticks"] == b["ticks"]


# ---------------------------------------------------------------------------
# kill -9 and resume
# ---------------------------------------------------------------------------


class _BoundaryKill(Exception):
    """Stands in for process death exactly at a stage boundary."""


class TestKillResume:
    def test_killed_at_every_stage_boundary_then_resumed(
        self, tmp_path, clean_run
    ):
        # Die at each successive boundary (state persisted, process gone),
        # resuming after every death; the survivors chain must reach the
        # same final checkpoint as an uninterrupted run.
        clean_cfg, _ = clean_run
        cfg = _config(tmp_path / "run")
        boundaries = ["collect", "verify", "train", "eval"]

        def die_at(boundary):
            def hook(name, state):
                if name == boundary:
                    raise _BoundaryKill(boundary)
            return hook

        for i, boundary in enumerate(boundaries):
            sup = build_supervisor(cfg, after_stage=die_at(boundary))
            with pytest.raises(_BoundaryKill):
                sup.run(resume=i > 0, config=cfg.to_json())
        final = build_supervisor(cfg).run(resume=True, config=cfg.to_json())
        assert final.complete
        a = _checkpoint_arrays(clean_cfg.checkpoint_path)
        b = _checkpoint_arrays(cfg.checkpoint_path)
        for key in a:
            assert a[key] == b[key], key

    def test_real_sigkill_at_stage_boundary_then_resume(
        self, tmp_path, clean_run
    ):
        clean_cfg, _ = clean_run
        workdir = tmp_path / "run"
        driver = f"""
import os, signal, sys
sys.path.insert(0, {str(REPO / "src")!r})
from repro.pipeline import PipelineConfig, build_supervisor
cfg = PipelineConfig(workdir={str(workdir)!r}, **{PIPE_KW!r})
def die(name, state):
    if name == "collect":
        os.kill(os.getpid(), signal.SIGKILL)
sup = build_supervisor(cfg, after_stage=die)
sup.run(config=cfg.to_json())
"""
        proc = subprocess.run(
            [sys.executable, "-c", driver], capture_output=True, timeout=300
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        journal = PipelineState.load(workdir / "pipeline_state.json")
        assert journal.stage("collect").status == "done"
        assert not journal.complete

        cfg = _config(workdir)
        state = build_supervisor(cfg).run(resume=True, config=cfg.to_json())
        assert state.complete
        a = _checkpoint_arrays(clean_cfg.checkpoint_path)
        b = _checkpoint_arrays(cfg.checkpoint_path)
        for key in a:
            assert a[key] == b[key], key

    def test_mid_train_checkpoint_resume_bit_identical(
        self, tmp_path, clean_run, monkeypatch
    ):
        # Die mid-train (after the step-2 checkpoint committed); resume
        # must continue from the checkpoint — not restart — and land on
        # the uninterrupted run's exact weights.
        clean_cfg, _ = clean_run
        cfg = _config(tmp_path / "run")
        from repro.train.engine import FastCRRTrainer

        real_train = FastCRRTrainer.train

        def dying_train(self, n_steps, **kw):
            real_train(self, 2, **kw)  # checkpoint_every=1 -> ckpt at 1, 2
            raise _BoundaryKill("mid-train")

        monkeypatch.setattr(FastCRRTrainer, "train", dying_train)
        with pytest.raises(PipelineError):
            build_supervisor(cfg).run(config=cfg.to_json())
        monkeypatch.setattr(FastCRRTrainer, "train", real_train)

        state = build_supervisor(cfg).run(resume=True, config=cfg.to_json())
        assert state.complete
        info = state.stage("train").info
        assert any(e["kind"] == "train-resume" for e in info["events"])
        a = _checkpoint_arrays(clean_cfg.checkpoint_path)
        b = _checkpoint_arrays(cfg.checkpoint_path)
        for key in a:
            assert a[key] == b[key], key


class TestShardWriterKill:
    def test_sigkill_mid_flush_leaves_valid_store(self, tmp_path):
        out = tmp_path / "store"
        driver = f"""
import os, signal, sys
import numpy as np
sys.path.insert(0, {str(REPO / "src")!r})
from repro.collector.pool import Trajectory
from repro.datastore.writer import ShardWriter

def traj(i):
    rng = np.random.default_rng(i)
    return Trajectory(
        scheme="cubic", env_id=f"env-{{i}}", multi_flow=False,
        states=rng.standard_normal((8, 4)),
        actions=rng.uniform(0.5, 2.0, size=8),
        rewards=rng.standard_normal(8),
    )

w = ShardWriter({str(out)!r}, shard_bytes=1)  # one shard per add
w.add(traj(0))  # shard 0 fully committed
real = w._commit_array
def dying(name, arr):
    if name.endswith("rewards.npy"):
        os.kill(os.getpid(), signal.SIGKILL)  # die mid-flush of shard 1
    return real(name, arr)
w._commit_array = dying
w.add(traj(1))
"""
        proc = subprocess.run(
            [sys.executable, "-c", driver], capture_output=True, timeout=120
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        # the manifest references only the shard committed before the kill
        from repro.datastore.manifest import Manifest, verify_store
        from repro.datastore.reader import ShardedPool

        manifest = Manifest.load(out)
        assert len(manifest.shards) == 1
        assert len(manifest.trajectories) == 1
        assert verify_store(out, quarantine=False).clean

        # and the store remains appendable: finish the interrupted ingest
        from repro.collector.pool import Trajectory
        from repro.datastore.writer import ShardWriter

        rng = np.random.default_rng(1)
        with ShardWriter(out, shard_bytes=1, append=True) as w:
            w.add(
                Trajectory(
                    scheme="cubic", env_id="env-1", multi_flow=False,
                    states=rng.standard_normal((8, 4)),
                    actions=rng.uniform(0.5, 2.0, size=8),
                    rewards=rng.standard_normal(8),
                )
            )
        assert verify_store(out, quarantine=False).clean
        pool = ShardedPool.open(out)
        assert len(pool.records) == 2
