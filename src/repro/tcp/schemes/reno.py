"""TCP NewReno (RFC 3782 / RFC 5681).

The base AIMD scheme: slow start doubles the window per RTT, congestion
avoidance adds one packet per RTT, any loss halves the window. The paper
uses NewReno's multi-flow winning rate as the threshold of the
"TCP-friendly region" in Fig. 7, because its pure AIMD logic is the
canonical model of a general TCP flow.
"""

from __future__ import annotations

from repro.tcp.cc_base import CongestionControl, register_scheme


@register_scheme
class NewReno(CongestionControl):
    """Classic AIMD: additive increase 1/RTT, multiplicative decrease 1/2."""

    name = "newreno"

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        if self.in_slow_start(sock):
            self.slow_start(sock, n_acked)
        else:
            self.reno_increase(sock, n_acked)
