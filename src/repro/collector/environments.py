"""Network environments: Set I, Set II, and the env → simulator builder.

Appendix C of the paper defines the two environment sets:

- **Set I** (single-flow): *flat* scenarios with constant capacity drawn
  from [12, 192] Mbps, minRTT from [10, 160] ms, and buffer from
  [0.5, 16] x BDP; plus *step* scenarios where the capacity is multiplied by
  m in (0.25, 0.5, 2, 4) mid-experiment (capped below 200 Mbps).
- **Set II** (TCP-friendliness): the scheme under test shares the bottleneck
  with a TCP Cubic flow that starts first; buffers span [1, 16] x BDP.

The paper covers >1000 environments; the grids here are parameterized so a
laptop-scale reproduction uses a subsampled grid while the full grid remains
one argument away.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.netsim.aqm import ECN_CAPABLE_AQMS, make_aqm
from repro.netsim.engine import EventLoop
from repro.netsim.network import Network
from repro.netsim.topo import (
    TOPOLOGY_CLASSES,
    PathView,
    incast_topology,
    parking_lot_topology,
    proxy_split_topology,
)
from repro.netsim.traces import (
    FlatRate,
    RateProcess,
    StepRate,
    cellular_trace,
    internet_path_rate,
)


@dataclass(frozen=True)
class EnvConfig:
    """One network environment (one cell of the paper's evaluation grids)."""

    env_id: str
    kind: str  # "flat" | "step" | "cellular" | "internet"
    bw_mbps: float  # (initial) bottleneck capacity
    min_rtt: float  # propagation RTT, seconds
    buffer_bdp: float  # bottleneck buffer in multiples of the BDP
    step_m: float = 1.0  # capacity multiplier for step scenarios
    step_at: float = 0.0  # switch time for step scenarios
    n_competing_cubic: int = 0  # Set II: competing Cubic flows
    competitor_head_start: float = 2.0  # seconds Cubic runs alone first
    duration: float = 20.0
    aqm: str = "taildrop"
    trace_seed: int = 0
    #: optional ECN step-marking threshold, as a fraction of the BDP
    #: (taildrop only); enables DCTCP-style experiments.
    ecn_threshold_bdp: float = 0.0
    #: graph shape: "dumbbell" (the historical single bottleneck) or one of
    #: the :data:`~repro.netsim.topo.TOPOLOGY_CLASSES`
    topology: str = "dumbbell"
    #: parking lot: number of chained bottleneck segments
    n_segments: int = 3
    #: parking lot: competing cubic cross flows per segment
    cross_per_segment: int = 1
    #: incast: competing synchronized senders besides the main flow
    n_incast: int = 0

    def __post_init__(self) -> None:
        if self.bw_mbps <= 0 or self.min_rtt <= 0 or self.buffer_bdp <= 0:
            raise ValueError(f"invalid environment parameters: {self}")
        if self.kind not in ("flat", "step", "cellular", "internet"):
            raise ValueError(f"unknown environment kind {self.kind!r}")
        if self.topology not in TOPOLOGY_CLASSES:
            raise ValueError(
                f"unknown topology {self.topology!r}; use {TOPOLOGY_CLASSES}"
            )
        if self.topology != "dumbbell" and self.kind != "flat":
            raise ValueError(
                f"topology {self.topology!r} only supports kind='flat' "
                f"(per-link rate processes are fixed), got {self.kind!r}"
            )
        if self.n_segments < 2:
            raise ValueError("n_segments must be >= 2")
        if self.cross_per_segment < 0 or self.n_incast < 0:
            raise ValueError("competitor counts must be >= 0")

    # ------------------------------------------------------------------
    @property
    def bdp_bytes(self) -> float:
        return self.bw_mbps * 1e6 * self.min_rtt / 8.0

    @property
    def buffer_bytes(self) -> int:
        return max(int(self.buffer_bdp * self.bdp_bytes), 3 * 1500)

    @property
    def n_competitors(self) -> int:
        """How many competing flows the scenario spawns besides the main one."""
        if self.topology == "parking_lot":
            return self.n_segments * self.cross_per_segment
        if self.topology == "incast":
            return self.n_incast
        return self.n_competing_cubic

    @property
    def is_multi_flow(self) -> bool:
        return self.n_competitors > 0

    @property
    def n_sharing(self) -> int:
        """Flows sharing the main flow's tightest bottleneck (incl. itself).

        This is the divisor for fair-share targets: on a parking lot only
        the per-segment cross flows contend with the main flow at any one
        queue; on an incast every sender meets at the fan-in egress.
        """
        if self.topology == "parking_lot":
            return self.cross_per_segment + 1
        if self.topology == "incast":
            return self.n_incast + 1
        return self.n_competing_cubic + 1

    def rate_process(self) -> RateProcess:
        if self.kind == "flat":
            return FlatRate(self.bw_mbps * 1e6)
        if self.kind == "step":
            return StepRate(self.bw_mbps * 1e6, self.step_m, self.step_at)
        if self.kind == "cellular":
            return cellular_trace(
                self.trace_seed, duration=self.duration, mean_mbps=self.bw_mbps
            )
        return internet_path_rate(
            self.trace_seed, self.bw_mbps, duration=self.duration
        )

    def mean_capacity_bps(self) -> float:
        return self.rate_process().mean_rate(self.duration)

    def fair_share_bps(self, n_flows: int) -> float:
        """Ideal per-flow fair share with ``n_flows`` total flows."""
        if n_flows <= 0:
            raise ValueError("need at least one flow")
        return self.mean_capacity_bps() / n_flows


def build_network(env: EnvConfig) -> Tuple[EventLoop, Network]:
    """Instantiate the simulator for one (dumbbell) environment."""
    loop = EventLoop()
    aqm_key = env.aqm.partition("@")[0].lower()
    if env.ecn_threshold_bdp > 0 and aqm_key in ("taildrop", "tdrop"):
        # DCTCP-style step marking is a taildrop knob; natively marking
        # disciplines (fq_codel, learned_ecn) signal on their own schedule.
        threshold = max(int(env.ecn_threshold_bdp * env.bdp_bytes), 1500)
        aqm = make_aqm(env.aqm, env.buffer_bytes, ecn_threshold_bytes=threshold)
    elif env.ecn_threshold_bdp > 0 and aqm_key not in ECN_CAPABLE_AQMS:
        raise ValueError(
            f"AQM {env.aqm!r} cannot honour ecn_threshold_bdp: it neither "
            f"takes a step-marking threshold (taildrop) nor marks natively "
            f"({sorted(ECN_CAPABLE_AQMS)})"
        )
    else:
        aqm = make_aqm(env.aqm, env.buffer_bytes)
    network = Network(loop, env.rate_process(), aqm)
    return loop, network


def build_scenario(env: EnvConfig):
    """Instantiate any environment: ``(loop, main, competitor_views)``.

    ``main`` is what the scheme under test attaches to; the list holds one
    network-duck-typed view per competing flow, in spawn order. For
    ``topology="dumbbell"`` this delegates to :func:`build_network` and
    returns the very same :class:`Network` object for every slot, so the
    constructed world — and every collected pool — is bit-identical to the
    historical single-bottleneck code path.
    """
    if env.topology == "dumbbell":
        loop, network = build_network(env)
        return loop, network, [network] * env.n_competing_cubic

    if env.topology == "parking_lot":
        topo = parking_lot_topology(
            n_segments=env.n_segments,
            bw_mbps=env.bw_mbps,
            min_rtt=env.min_rtt,
            buffer_bytes=env.buffer_bytes,
            aqm=env.aqm,
        )
        chain = tuple(f"r{i}" for i in range(env.n_segments + 1))
        main = topo.view(chain)
        competitors: List[PathView] = []
        for seg in range(env.n_segments):
            for _ in range(env.cross_per_segment):
                competitors.append(topo.view((f"r{seg}", f"r{seg + 1}")))
        return topo.loop, main, competitors

    if env.topology == "incast":
        ecn = 0
        if env.ecn_threshold_bdp > 0:
            ecn = max(int(env.ecn_threshold_bdp * env.bdp_bytes), 1500)
        topo = incast_topology(
            n_senders=env.n_incast + 1,
            bw_mbps=env.bw_mbps,
            min_rtt=env.min_rtt,
            buffer_bytes=env.buffer_bytes,
            aqm=env.aqm,
            ecn_threshold_bytes=ecn,
        )
        main = topo.view(("s0", "sw", "rcv"))
        competitors = [
            topo.view((f"s{i + 1}", "sw", "rcv")) for i in range(env.n_incast)
        ]
        return topo.loop, main, competitors

    # proxy_split: bw_mbps/min_rtt describe the WAN segment; the LAN behind
    # the proxy runs 4x faster with a fifth of the delay.
    topo = proxy_split_topology(
        wan_bw_mbps=env.bw_mbps,
        lan_bw_mbps=env.bw_mbps * 4.0,
        wan_rtt=env.min_rtt * 0.8,
        lan_rtt=env.min_rtt * 0.2,
        wan_buffer_bytes=env.buffer_bytes,
        lan_buffer_bytes=env.buffer_bytes * 2,
        aqm=env.aqm,
    )
    main = topo.view(("snd", "proxy", "rcv"))
    competitors = [main] * env.n_competing_cubic
    return topo.loop, main, competitors


# --------------------------------------------------------------------------
# Environment grids
# --------------------------------------------------------------------------

#: Appendix C parameter ranges (values chosen inside the paper's ranges;
#: rates above ~100 Mbps are omitted from the default grid purely for
#: simulation speed — the ranges themselves are arguments below).
_DEFAULT_BWS = (12.0, 24.0, 48.0, 96.0)
_DEFAULT_RTTS = (0.010, 0.040, 0.160)
_DEFAULT_BUFS_SET1 = (0.5, 2.0, 8.0)
_DEFAULT_BUFS_SET2 = (1.0, 4.0, 16.0)
_STEP_MS = (0.25, 0.5, 2.0, 4.0)


def set1_environments(
    bws: Tuple[float, ...] = _DEFAULT_BWS,
    rtts: Tuple[float, ...] = _DEFAULT_RTTS,
    buffers: Tuple[float, ...] = _DEFAULT_BUFS_SET1,
    step_ms: Tuple[float, ...] = _STEP_MS,
    duration: float = 20.0,
    include_steps: bool = True,
) -> List[EnvConfig]:
    """Set I: single-flow flat + step scenarios (Appendix C.1)."""
    envs: List[EnvConfig] = []
    for bw, rtt, buf in itertools.product(bws, rtts, buffers):
        envs.append(
            EnvConfig(
                env_id=f"set1-flat-bw{bw:g}-rtt{rtt * 1000:g}-q{buf:g}",
                kind="flat",
                bw_mbps=bw,
                min_rtt=rtt,
                buffer_bdp=buf,
                duration=duration,
            )
        )
    if include_steps:
        for bw, rtt, m in itertools.product(bws, rtts, step_ms):
            if bw * m >= 200.0:  # the paper keeps step targets under 200 Mbps
                continue
            envs.append(
                EnvConfig(
                    env_id=f"set1-step-bw{bw:g}-m{m:g}-rtt{rtt * 1000:g}",
                    kind="step",
                    bw_mbps=bw,
                    min_rtt=rtt,
                    buffer_bdp=2.0,
                    step_m=m,
                    step_at=duration / 2.0,
                    duration=duration,
                )
            )
    return envs


def set2_environments(
    bws: Tuple[float, ...] = _DEFAULT_BWS,
    rtts: Tuple[float, ...] = _DEFAULT_RTTS,
    buffers: Tuple[float, ...] = _DEFAULT_BUFS_SET2,
    duration: float = 30.0,
) -> List[EnvConfig]:
    """Set II: the scheme under test vs a head-start TCP Cubic flow."""
    envs: List[EnvConfig] = []
    for bw, rtt, buf in itertools.product(bws, rtts, buffers):
        envs.append(
            EnvConfig(
                env_id=f"set2-bw{bw:g}-rtt{rtt * 1000:g}-q{buf:g}",
                kind="flat",
                bw_mbps=bw,
                min_rtt=rtt,
                buffer_bdp=buf,
                n_competing_cubic=1,
                duration=duration,
            )
        )
    return envs


def training_environments(scale: str = "mini") -> List[EnvConfig]:
    """The pool-collection grid at three sizes.

    ``mini``  — a handful of envs, for tests (seconds).
    ``small`` — the default bench grid (minutes).
    ``full``  — the paper-faithful dense grid (hours on one core).
    """
    if scale == "mini":
        return (
            set1_environments(
                bws=(24.0,), rtts=(0.04,), buffers=(2.0,),
                step_ms=(0.5, 2.0), duration=10.0,
            )
            + set2_environments(
                bws=(24.0,), rtts=(0.04,), buffers=(2.0,), duration=12.0
            )
        )
    if scale == "small":
        return (
            set1_environments(
                bws=(12.0, 24.0, 48.0), rtts=(0.02, 0.06), buffers=(1.0, 4.0),
                step_ms=(0.5, 2.0), duration=15.0,
            )
            + set2_environments(
                bws=(12.0, 24.0, 48.0), rtts=(0.02, 0.06), buffers=(2.0, 8.0),
                duration=20.0,
            )
        )
    if scale == "full":
        bws = (12.0, 24.0, 48.0, 96.0, 192.0)
        rtts = (0.010, 0.020, 0.040, 0.080, 0.160)
        return (
            set1_environments(
                bws=bws, rtts=rtts, buffers=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
                duration=30.0,
            )
            + set2_environments(
                bws=bws, rtts=rtts, buffers=(1.0, 2.0, 4.0, 8.0, 16.0),
                duration=60.0,
            )
        )
    raise ValueError(f"unknown scale {scale!r}; use mini/small/full")


# --------------------------------------------------------------------------
# Topology environment families (beyond the dumbbell)
# --------------------------------------------------------------------------

def parking_lot_environments(
    bws: Tuple[float, ...] = (24.0, 48.0),
    rtts: Tuple[float, ...] = (0.04,),
    segments: Tuple[int, ...] = (3,),
    cross: Tuple[int, ...] = (1,),
    buffer_bdp: float = 2.0,
    duration: float = 20.0,
) -> List[EnvConfig]:
    """Multi-bottleneck chains with cubic cross traffic on every segment."""
    envs: List[EnvConfig] = []
    for bw, rtt, n_seg, n_cross in itertools.product(bws, rtts, segments, cross):
        envs.append(
            EnvConfig(
                env_id=f"plot-bw{bw:g}-rtt{rtt * 1000:g}-s{n_seg}-x{n_cross}",
                kind="flat",
                bw_mbps=bw,
                min_rtt=rtt,
                buffer_bdp=buffer_bdp,
                duration=duration,
                topology="parking_lot",
                n_segments=n_seg,
                cross_per_segment=n_cross,
            )
        )
    return envs


def incast_environments(
    bws: Tuple[float, ...] = (48.0, 96.0),
    rtts: Tuple[float, ...] = (0.010,),
    fan_in: Tuple[int, ...] = (7, 15),
    buffers: Tuple[float, ...] = (0.5,),
    duration: float = 10.0,
) -> List[EnvConfig]:
    """Datacenter fan-in: N+1 synchronized senders, one shallow egress."""
    envs: List[EnvConfig] = []
    for bw, rtt, n, buf in itertools.product(bws, rtts, fan_in, buffers):
        envs.append(
            EnvConfig(
                env_id=f"incast-bw{bw:g}-rtt{rtt * 1000:g}-n{n + 1}-q{buf:g}",
                kind="flat",
                bw_mbps=bw,
                min_rtt=rtt,
                buffer_bdp=buf,
                duration=duration,
                topology="incast",
                n_incast=n,
            )
        )
    return envs


def proxy_split_environments(
    bws: Tuple[float, ...] = (24.0,),
    rtts: Tuple[float, ...] = (0.080, 0.160),
    buffers: Tuple[float, ...] = (2.0,),
    n_competing: Tuple[int, ...] = (0, 1),
    duration: float = 20.0,
) -> List[EnvConfig]:
    """Heterogeneous WAN+LAN segments through a proxy (split-connection)."""
    envs: List[EnvConfig] = []
    for bw, rtt, buf, n in itertools.product(bws, rtts, buffers, n_competing):
        envs.append(
            EnvConfig(
                env_id=f"proxy-bw{bw:g}-rtt{rtt * 1000:g}-q{buf:g}-c{n}",
                kind="flat",
                bw_mbps=bw,
                min_rtt=rtt,
                buffer_bdp=buf,
                n_competing_cubic=n,
                duration=duration,
                topology="proxy_split",
            )
        )
    return envs


def aqm_environments(
    aqm: str,
    bws: Tuple[float, ...] = (24.0, 96.0),
    rtts: Tuple[float, ...] = (0.04,),
    buffers: Tuple[float, ...] = (2.0,),
    duration: float = 12.0,
    ecn_threshold_bdp: float = 0.0,
) -> List[EnvConfig]:
    """A representative dumbbell env set under one queue discipline.

    The (scheme x AQM) co-evolution league evaluates every participant over
    these: a flat single-flow slice plus one cubic-friendliness env, all
    with the bottleneck buffer managed by ``aqm``. ``ecn_threshold_bdp``
    arms DCTCP-style step marking where the discipline supports a threshold
    (taildrop); natively marking AQMs (``fq_codel``, ``learned_ecn``) signal
    on their own schedule and ignore it.
    """
    key = aqm.partition("@")[0].lower()
    threshold = ecn_threshold_bdp if key in ("taildrop", "tdrop") else 0.0
    tag = key.replace("_", "")
    envs: List[EnvConfig] = []
    for bw, rtt, buf in itertools.product(bws, rtts, buffers):
        envs.append(
            EnvConfig(
                env_id=f"aqm-{tag}-bw{bw:g}-rtt{rtt * 1000:g}-q{buf:g}",
                kind="flat",
                bw_mbps=bw,
                min_rtt=rtt,
                buffer_bdp=buf,
                duration=duration,
                aqm=aqm,
                ecn_threshold_bdp=threshold,
            )
        )
    envs.append(
        EnvConfig(
            env_id=f"aqm-{tag}-bw{bws[0]:g}-rtt{rtts[0] * 1000:g}-vs-cubic",
            kind="flat",
            bw_mbps=bws[0],
            min_rtt=rtts[0],
            buffer_bdp=max(buffers),
            n_competing_cubic=1,
            duration=duration,
            aqm=aqm,
            ecn_threshold_bdp=threshold,
        )
    )
    return envs


def topology_class_environments(
    topo_class: str, duration: float = 12.0
) -> List[EnvConfig]:
    """A small representative env set for one topology class.

    The league winning-rate matrix (scheme x topology class) evaluates each
    participant over these; ``dumbbell`` reuses a slice of Set I + Set II.
    """
    name = topo_class.replace("-", "_")
    if name == "dumbbell":
        return (
            set1_environments(
                bws=(24.0, 96.0), rtts=(0.04,), buffers=(2.0,),
                include_steps=False, duration=duration,
            )
            + set2_environments(
                bws=(24.0,), rtts=(0.04,), buffers=(4.0,), duration=duration
            )
        )
    if name == "parking_lot":
        return parking_lot_environments(
            bws=(24.0, 48.0), segments=(3,), cross=(1,), duration=duration
        )
    if name == "incast":
        return incast_environments(
            bws=(48.0,), fan_in=(7, 15), duration=min(duration, 10.0)
        )
    if name == "proxy_split":
        return proxy_split_environments(
            bws=(24.0,), rtts=(0.080,), n_competing=(0, 1), duration=duration
        )
    raise ValueError(
        f"unknown topology class {topo_class!r}; use {TOPOLOGY_CLASSES}"
    )
