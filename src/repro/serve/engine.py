"""The policy-serving engine: N flows, one shared policy, tiered inference.

The paper's Execution block deploys the frozen policy per flow; serving
"heavy traffic" means many concurrent flows must share one policy without
N separate forward passes per control tick. :class:`PolicyServer` is that
tier, organized as a **three-tier router** per control tick:

- **tier 0 — symbolic fast path**: when a distilled controller
  (:class:`~repro.distill.DistilledPolicy`) is mounted, every pending flow
  is first routed through the CART tree (one vectorized walk for the whole
  batch, microseconds). Flows whose leaf confidence clears the calibrated
  gate — and whose hidden state is not overdue for a refresh — are
  answered right there and never reach the NN.
- **tier 1 — batched NN**: the uncertain remainder is gathered into a
  single ``(M, 69)`` batched forward (`FastPolicy.step_batch`, bitwise
  row-consistent for any batch composition). With no distilled controller
  this is every flow — the engine then behaves exactly (bitwise) like the
  pre-tiering batched server.
- **tier 2 — heuristic fallback**: ratio-space CUBIC/AIMD answers flows
  whose NN output was non-finite or that degraded after ``max_misses``
  consecutive deadline misses, exactly as before.

Per-flow serving state (previous ratio, cwnd estimate, miss streak,
degradation flag, ticks since the last NN forward) lives in **row-indexed
column arrays** parallel to the hidden-state table, so the common-case
bookkeeping — the whole symbolic tier — is a handful of vectorized ops
rather than N python attribute updates. Rows are recycled through a free
list exactly like the hidden table; :meth:`connect` / :meth:`close`
allocate and free one row of everything.

The deadline machinery applies to the NN tier only: tier-0 answers are
effectively instantaneous and keep their flows fresh through an inference
brown-out. A batch of one takes the legacy 1-D ``FastPolicy`` fast path
(BLAS gemv), which keeps single-flow serving bit-identical to the
historical ``SageAgent`` — the pretrained-checkpoint gates depend on that.
"""

from __future__ import annotations

import copy
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.collector.gr_unit import STATE_DIM, normalize_state
from repro.core.networks import FastPolicy, SagePolicy
from repro.resources import MemoryGuard
from repro.serve.fallback import RatioFallback, make_fallback
from repro.serve.metrics import ServingMetrics
from repro.serve.state import load_snapshot, save_snapshot


@dataclass(frozen=True)
class ServeConfig:
    """Serving-engine knobs.

    ``tick_budget`` is the inference deadline in seconds (``None`` disables
    the deadline machinery entirely — e.g. offline evaluation);
    ``max_misses`` is K, the consecutive-miss count after which a flow
    degrades to ``fallback``. ``tick_interval`` is the control period the
    fallback heuristics integrate over.

    ``confidence_threshold`` and ``refresh_every`` govern the symbolic
    tier when a distilled controller is mounted: ``None`` defers to the
    thresholds calibrated into the controller at fit time. A flow is
    answered symbolically only while its leaf confidence clears the
    threshold *and* it has had a real NN forward within the last
    ``refresh_every`` ticks (the staleness bound on its hidden state).
    """

    deterministic: bool = False
    tick_budget: Optional[float] = 0.020
    max_misses: int = 3
    fallback: str = "cubic"
    tick_interval: float = 0.02
    seed: int = 0
    state_mask: Optional[np.ndarray] = None
    initial_capacity: int = 16
    confidence_threshold: Optional[float] = None
    refresh_every: Optional[int] = None
    #: soft RSS watermark in MB; crossing it shrinks the metrics sample
    #: lists instead of letting a long soak grow without bound (None = off)
    rss_soft_limit_mb: Optional[float] = None
    rss_check_every: int = 256

    def __post_init__(self) -> None:
        if self.max_misses < 1:
            raise ValueError("max_misses must be >= 1")
        if self.tick_budget is not None and self.tick_budget < 0:
            raise ValueError("tick_budget must be >= 0 or None")
        if self.initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        if self.refresh_every is not None and self.refresh_every < 2:
            raise ValueError("refresh_every must be >= 2 (or None)")
        if self.rss_soft_limit_mb is not None and self.rss_soft_limit_mb <= 0:
            raise ValueError("rss_soft_limit_mb must be > 0 or None")
        if self.rss_check_every < 1:
            raise ValueError("rss_check_every must be >= 1")


@dataclass
class ServeDecision:
    """One served control decision for one flow."""

    flow_id: int
    ratio: float
    #: "symbolic" (distilled-tree fast path), "policy" (fresh NN inference),
    #: "stale" (deadline missed, previous ratio reused), or "heuristic"
    #: (degraded to the built-in fallback)
    source: str
    latency_s: float
    batch_size: int


class _FlowSession:
    """Per-connection objects that cannot live in the column arrays."""

    __slots__ = ("row", "rng", "fallback")

    def __init__(self, row: int, rng: np.random.Generator) -> None:
        self.row = row
        self.rng = rng
        self.fallback: Optional[RatioFallback] = None


class PolicyServer:
    """Serves one frozen policy to many concurrent flows.

    Parameters
    ----------
    policy:
        The trained :class:`SagePolicy` to freeze and serve.
    config:
        Engine knobs; defaults to :class:`ServeConfig()`.
    fast:
        Pre-built :class:`FastPolicy` (tests inject slow subclasses here to
        exercise the deadline path; also lets a caller share one snapshot).
    clock:
        Monotonic time source used for deadline accounting; injectable for
        deterministic tests.
    chaos:
        Optional :class:`~repro.chaos.inject.FaultInjector`; pending
        ``serve.*`` faults (NaN outputs, slow forwards) hit the matching
        tick inside the deadline-timed region.
    distilled:
        Optional :class:`~repro.distill.DistilledPolicy`; mounts the
        symbolic tier. ``None`` (the default) leaves the engine bitwise
        identical to the pre-tiering batched server.
    """

    def __init__(
        self,
        policy: SagePolicy,
        config: Optional[ServeConfig] = None,
        fast: Optional[FastPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,
        chaos=None,
        distilled=None,
    ) -> None:
        self.policy = policy
        self.config = config if config is not None else ServeConfig()
        self.fast = fast if fast is not None else FastPolicy(policy)
        self.clock = clock
        self.metrics = ServingMetrics()
        self.distilled = distilled
        self._chaos = chaos
        self._tick_index = 0  # NN forwards served, for chaos targeting
        #: serving-setup degradations (e.g. a corrupt distilled checkpoint)
        self.warnings: List[str] = []
        #: one report dict per reload_policy() call, accepted or not
        self.reload_events: List[Dict] = []
        self.memory_guard: Optional[MemoryGuard] = None
        if self.config.rss_soft_limit_mb is not None:
            self.memory_guard = MemoryGuard(
                int(self.config.rss_soft_limit_mb * 1e6),
                check_every=self.config.rss_check_every,
            )
            # bind late: self.metrics is swapped wholesale by restore()
            self.memory_guard.add_valve(
                "metrics.shrink", lambda: self.metrics.shrink()
            )

        h0 = self.fast.initial_state()
        self._hdim = 0 if h0 is None else len(h0)
        cap = self.config.initial_capacity
        self._table = np.zeros((cap, self._hdim))
        # session-table columns, parallel to the hidden table (row-indexed)
        self._last_ratio = np.ones(cap)
        self._cwnd_est = np.full(cap, 10.0)  # packets; resynced by submit()
        self._miss_streak = np.zeros(cap, dtype=np.int64)
        self._degraded = np.zeros(cap, dtype=bool)
        self._nn_age = np.zeros(cap, dtype=np.int64)  # ticks since NN forward
        self._free: List[int] = list(range(cap - 1, -1, -1))
        self._sessions: Dict[int, _FlowSession] = {}
        #: flow_id -> (raw state, optional cwnd hint), insertion-ordered
        self._pending: Dict[int, Tuple[np.ndarray, Optional[float]]] = {}

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    @property
    def n_flows(self) -> int:
        return len(self._sessions)

    @property
    def capacity(self) -> int:
        """Current hidden-state table capacity (rows)."""
        return len(self._table)

    def connect(
        self, flow_id: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        """Open a serving session: allocate and zero one row of state."""
        if flow_id in self._sessions:
            raise ValueError(f"flow {flow_id} already connected")
        if not self._free:
            self._grow()
        row = self._free.pop()
        self._table[row] = 0.0
        self._last_ratio[row] = 1.0
        self._cwnd_est[row] = 10.0
        self._miss_streak[row] = 0
        self._degraded[row] = False
        self._nn_age[row] = 0
        if rng is None:
            rng = np.random.default_rng((self.config.seed, flow_id))
        self._sessions[flow_id] = _FlowSession(row, rng)

    def close(self, flow_id: int) -> None:
        """End a session: recycle its state row."""
        sess = self._sessions.pop(flow_id, None)
        if sess is None:
            raise KeyError(f"flow {flow_id} not connected")
        self._pending.pop(flow_id, None)
        self._free.append(sess.row)

    def _grow(self) -> None:
        old_cap = len(self._table)
        new_cap = 2 * old_cap

        def _double(col: np.ndarray, fill) -> np.ndarray:
            out = np.full(new_cap, fill, dtype=col.dtype)
            out[:old_cap] = col
            return out

        table = np.zeros((new_cap, self._hdim))
        table[:old_cap] = self._table
        self._table = table
        self._last_ratio = _double(self._last_ratio, 1.0)
        self._cwnd_est = _double(self._cwnd_est, 10.0)
        self._miss_streak = _double(self._miss_streak, 0)
        self._degraded = _double(self._degraded, False)
        self._nn_age = _double(self._nn_age, 0)
        self._free.extend(range(new_cap - 1, old_cap - 1, -1))

    # ------------------------------------------------------------------
    # the tick scheduler
    # ------------------------------------------------------------------
    def submit(
        self, flow_id: int, state: np.ndarray, cwnd: Optional[float] = None
    ) -> None:
        """Queue one flow's raw GR state for the next batched tick.

        ``cwnd`` optionally resyncs the server's window estimate with the
        sender's actual cwnd (the fallback heuristics integrate on it).
        """
        if flow_id not in self._sessions:
            raise KeyError(f"flow {flow_id} not connected")
        self._pending[flow_id] = (np.asarray(state, dtype=np.float64), cwnd)

    def tick(self) -> Dict[int, ServeDecision]:
        """Run one control interval: route all pending flows, decide all.

        Tier 0 (symbolic) answers every confident flow in one vectorized
        tree walk; the remainder shares one batched NN forward and
        therefore one deadline verdict. Per-flow miss streaks and
        degradation remain individual (flows join and leave batches at
        different times).
        """
        if self.memory_guard is not None:
            self.memory_guard.maybe_check()
        if not self._pending:
            return {}
        pending, self._pending = self._pending, {}
        flow_ids = list(pending)
        sessions = [self._sessions[f] for f in flow_ids]
        rows = np.fromiter((s.row for s in sessions), dtype=np.int64,
                           count=len(sessions))
        raw = np.stack([pending[f][0] for f in flow_ids])

        x = normalize_state(raw)
        if self.config.state_mask is not None:
            x = x * self.config.state_mask

        # resync window estimates from the senders' cwnd hints
        hints = np.array(
            [np.nan if pending[f][1] is None else float(pending[f][1])
             for f in flow_ids]
        )
        hinted = ~np.isnan(hints)
        if hinted.any():
            self._cwnd_est[rows[hinted]] = hints[hinted]

        decisions: Dict[int, ServeDecision] = {}

        # -- tier 0: the distilled symbolic fast path ---------------------
        if self.distilled is not None:
            t0 = self.clock()
            h_rows = self._table[rows] if self._hdim else None
            sym_ratios, confs = self.distilled.predict(x, h_rows)
            cfg = self.config
            thr = (cfg.confidence_threshold
                   if cfg.confidence_threshold is not None
                   else self.distilled.conf_threshold)
            refresh = (cfg.refresh_every if cfg.refresh_every is not None
                       else self.distilled.refresh_every)
            sym_mask = (
                (confs >= thr)
                & (self._nn_age[rows] + 1 < refresh)
                & np.isfinite(sym_ratios)
                & (sym_ratios > 0)
            )
            sym_elapsed = self.clock() - t0
            n_sym = int(np.count_nonzero(sym_mask))
            if n_sym:
                srows = rows[sym_mask]
                ratios_s = sym_ratios[sym_mask]
                # a symbolic answer is fresh: it clears deadline debt
                self._miss_streak[srows] = 0
                self._degraded[srows] = False
                self._nn_age[srows] += 1
                self._last_ratio[srows] = ratios_s
                self._cwnd_est[srows] = np.clip(
                    self._cwnd_est[srows] * ratios_s, 1.0, 4096.0
                )
                self.metrics.record_tier_latency("symbolic", sym_elapsed)
                self.metrics.record_decisions("symbolic", n_sym)
                for i in np.nonzero(sym_mask)[0]:
                    fid = flow_ids[i]
                    sessions[i].fallback = None
                    decisions[fid] = ServeDecision(
                        flow_id=fid,
                        ratio=float(sym_ratios[i]),
                        source="symbolic",
                        latency_s=sym_elapsed,
                        batch_size=n_sym,
                    )
            nn_idx = np.nonzero(~sym_mask)[0]
            if len(nn_idx) == 0:
                return decisions
        else:
            nn_idx = np.arange(len(flow_ids))

        # -- tier 1: the batched NN forward -------------------------------
        nn_sessions = [sessions[i] for i in nn_idx]
        x_nn = x[nn_idx] if len(nn_idx) < len(flow_ids) else x
        t0 = self.clock()
        ratios, h_next = self._forward(x_nn, nn_sessions)
        if self._chaos is not None:
            # inside the timed region: a serve.slow fault shows up as real
            # inference latency, a serve.nan fault as poisoned outputs
            ratios, h_next = self._chaos.mutate_serve(
                self._tick_index, ratios, h_next
            )
        elapsed = self.clock() - t0
        self._tick_index += 1
        self._commit_hidden(nn_sessions, h_next)
        self._nn_age[rows[nn_idx]] = 0

        budget = self.config.tick_budget
        missed = budget is not None and elapsed > budget
        self.metrics.record_tick(len(nn_idx), elapsed, missed)

        # -- tier 1/2 per-flow commit (NN, stale, or heuristic) -----------
        n_batch = len(nn_idx)
        for j, i in enumerate(nn_idx):
            fid = flow_ids[i]
            sess = sessions[i]
            row = sess.row
            if not missed:
                value = float(ratios[j])
                if np.isfinite(value):
                    self._miss_streak[row] = 0
                    self._degraded[row] = False
                    sess.fallback = None
                    ratio, source = value, "policy"
                else:
                    # a non-finite ratio must never reach a sender's cwnd:
                    # route this decision through the heuristic instead
                    self.metrics.invalid_actions += 1
                    ratio, source = self._heuristic_ratio(sess, raw[i]), "heuristic"
            else:
                self._miss_streak[row] += 1
                if self._miss_streak[row] >= self.config.max_misses:
                    self._degraded[row] = True
                    ratio, source = self._heuristic_ratio(sess, raw[i]), "heuristic"
                else:
                    # late result discarded: hold the previous cwnd ratio
                    ratio, source = float(self._last_ratio[row]), "stale"
            self._last_ratio[row] = ratio
            self._cwnd_est[row] = min(max(self._cwnd_est[row] * ratio, 1.0), 4096.0)
            self.metrics.record_decision(source)
            decisions[fid] = ServeDecision(
                flow_id=fid,
                ratio=ratio,
                source=source,
                latency_s=elapsed,
                batch_size=n_batch,
            )
        return decisions

    def serve_one(
        self, flow_id: int, state: np.ndarray, cwnd: Optional[float] = None
    ) -> ServeDecision:
        """Submit + tick for a single flow (the thin-client entry point)."""
        self.submit(flow_id, state, cwnd=cwnd)
        return self.tick()[flow_id]

    # ------------------------------------------------------------------
    def _heuristic_ratio(self, sess: _FlowSession, raw_state: np.ndarray) -> float:
        """One tier-2 decision: lazily build and time the flow's fallback."""
        if sess.fallback is None:
            sess.fallback = make_fallback(self.config.fallback)
        t0 = self.clock()
        ratio = float(
            sess.fallback.ratio(
                raw_state, self._cwnd_est[sess.row], self.config.tick_interval
            )
        )
        self.metrics.record_tier_latency("heuristic", self.clock() - t0)
        return ratio

    def _forward(
        self, x: np.ndarray, sessions: List[_FlowSession]
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """One forward pass; batch=1 takes the legacy bit-exact 1-D path."""
        if len(sessions) == 1:
            sess = sessions[0]
            h = self._table[sess.row] if self._hdim else None
            if self.config.deterministic:
                ratio, h = self.fast.step(x[0], h)
            else:
                ratio, h = self.fast.sample_step(x[0], h, sess.rng)
            h_next = None if h is None else h[None, :]
            return np.array([ratio]), h_next
        rows = [s.row for s in sessions]
        h = self._table[rows] if self._hdim else None
        if self.config.deterministic:
            return self.fast.step_batch(x, h)
        return self.fast.sample_step_batch(x, h, [s.rng for s in sessions])

    def _commit_hidden(
        self, sessions: List[_FlowSession], h_next: Optional[np.ndarray]
    ) -> None:
        # Hidden state advances even on a deadline miss: the forward did
        # complete (just late), and keeping recurrent continuity makes
        # post-brown-out recovery seamless. Non-finite rows are the one
        # exception — a poisoned forward must not contaminate recurrent
        # state, so those flows keep their previous hidden state.
        if h_next is None or not self._hdim:
            return
        for i, sess in enumerate(sessions):
            row = h_next[i]
            if np.all(np.isfinite(row)):
                self._table[sess.row] = row

    # ------------------------------------------------------------------
    # crash tolerance: snapshot / restore, hot reload, tier-0 mounting
    # ------------------------------------------------------------------
    def snapshot(self, path) -> None:
        """Persist the complete per-flow serving state (see serve.state).

        Atomic (tmp-then-replace) with a CRC32 sidecar; a server restored
        from the file continues the decision stream bit-identically.
        """
        save_snapshot(self, path)

    def restore(self, path) -> None:
        """Load a :meth:`snapshot` file into this server, in place.

        The server must hold the same policy checkpoint the snapshot was
        taken with; sessions, column state, pending submissions, and
        metrics are replaced wholesale. Raises ``ValueError`` on a corrupt
        or mismatched snapshot.
        """
        load_snapshot(self, path)

    def mount_distilled(self, source) -> Optional[str]:
        """Mount (or replace) the tier-0 symbolic controller.

        ``source`` is a :class:`~repro.distill.DistilledPolicy`, a
        checkpoint path, or ``None`` (unmount). A corrupt or unreadable
        checkpoint does **not** raise: serving setup proceeds on the NN
        tier, and the warning is recorded in ``self.warnings`` and
        returned.
        """
        from repro.distill.model import DistilledPolicy

        if source is None or isinstance(source, DistilledPolicy):
            self.distilled = source
            return None
        try:
            self.distilled = DistilledPolicy.load(source)
        except (ValueError, OSError) as exc:
            warning = (
                f"distilled controller {source} unusable ({exc}); "
                f"serving stays on the NN tier"
            )
            self.warnings.append(warning)
            return warning
        return None

    def _read_policy_params(self, path) -> Dict[str, np.ndarray]:
        """Read a policy state dict from an agent- or trainer-format npz."""
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                keys = list(data.files)
                if any(k.startswith("policy/") for k in keys):
                    return {
                        k[len("policy/"):]: data[k]
                        for k in keys if k.startswith("policy/")
                    }
                return {k: data[k] for k in keys}
        except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
            raise ValueError(
                f"checkpoint {path} is not a valid .npz archive: {exc}"
            ) from exc

    def reload_policy(
        self,
        path,
        probe_batch: int = 32,
        max_log_ratio_shift: Optional[float] = None,
    ) -> Dict:
        """Hot-swap the served policy from a checkpoint, shadow-validated.

        The candidate net is built next to the serving one and forwarded
        on a deterministic probe batch first; it is only swapped in if
        every probe output (ratios and hidden states) is finite — and,
        when ``max_log_ratio_shift`` is set, if its actions stay within
        that log-ratio distance of the serving policy's on the probe. On
        rejection the old weights keep serving, untouched. Accepts both
        agent-format checkpoints (``SageAgent.save``) and trainer
        checkpoints (``policy/``-prefixed keys). Per-flow hidden state is
        preserved across an accepted swap.

        Returns (and appends to ``self.reload_events``) a report dict:
        ``{"path", "accepted", "reason"}``.
        """
        report: Dict = {"path": str(path), "accepted": False, "reason": ""}
        try:
            state = self._read_policy_params(path)
            candidate = copy.deepcopy(self.policy)
            candidate.load_state_dict(state)
            fast = FastPolicy(candidate)
        except (ValueError, OSError) as exc:
            report["reason"] = f"unusable checkpoint: {exc}"
            self.reload_events.append(report)
            return report

        rng = np.random.default_rng((self.config.seed, 0x5EED))
        x = rng.standard_normal((int(probe_batch), STATE_DIM))
        h = np.zeros((int(probe_batch), self._hdim)) if self._hdim else None
        with np.errstate(all="ignore"):
            ratios, h_next = fast.step_batch(x, h)
        finite = np.all(np.isfinite(ratios)) and (
            h_next is None or bool(np.all(np.isfinite(h_next)))
        )
        if not finite:
            report["reason"] = (
                "shadow validation failed: non-finite outputs on the "
                "probe batch"
            )
            self.reload_events.append(report)
            return report
        if max_log_ratio_shift is not None:
            old_ratios, _ = self.fast.step_batch(x, h)
            shift = float(
                np.max(np.abs(np.log(ratios) - np.log(old_ratios)))
            )
            if shift > max_log_ratio_shift:
                report["reason"] = (
                    f"shadow validation failed: max |d log ratio| "
                    f"{shift:.4g} exceeds {max_log_ratio_shift:g} on the "
                    f"probe batch"
                )
                self.reload_events.append(report)
                return report

        self.policy = candidate
        self.fast = fast
        report["accepted"] = True
        report["reason"] = "shadow validation passed"
        self.reload_events.append(report)
        return report
