"""Fig. 6 — Sage's neural network.

Times a forward+backward pass through the full architecture (encoder ->
GRU -> LayerNorm -> encoder -> FC -> residual x2 -> GMM) and one real-time
inference step through the frozen fast path, asserting the inference
budget the Execution block needs (well under the 20 ms control tick).
"""

import time

import numpy as np

from conftest import BENCH_NET
from repro.collector.gr_unit import STATE_DIM
from repro.core.networks import FastPolicy, SagePolicy
from repro.nn.autograd import stack_rows


def test_fig06_training_pass(benchmark):
    rng = np.random.default_rng(0)
    policy = SagePolicy(BENCH_NET, rng)
    states = rng.standard_normal((8, 6, STATE_DIM))
    actions = rng.uniform(-0.5, 0.5, size=(8, 6))

    def fwd_bwd():
        feats = policy.features_seq(states)
        losses = [(-1.0 * policy.log_prob(feats[t], actions[:, t])).mean() for t in range(6)]
        loss = stack_rows(losses).mean()
        policy.zero_grad()
        loss.backward()
        return float(loss.data)

    loss = benchmark(fwd_bwd)
    assert np.isfinite(loss)

    # Real-time inference budget: the Execution block runs every 20 ms and
    # the frozen fast path must fit comfortably inside that tick.
    rng2 = np.random.default_rng(1)
    fast = FastPolicy(policy)
    h = fast.initial_state()
    t0 = time.perf_counter()
    n = 500
    for _ in range(n):
        _, h = fast.sample_step(rng2.standard_normal(STATE_DIM), h, rng2)
    per_step = (time.perf_counter() - t0) / n
    print(f"\n=== Fig. 6: inference {per_step * 1e3:.3f} ms/step ===")
    assert per_step < 0.020
