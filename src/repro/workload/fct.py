"""Flow-completion-time records and summary statistics.

FCT is the workload-level complement to the collector's per-flow
throughput/delay series: for short flows, what matters is how long the
*transfer* took, normalized by how long it could ideally have taken
(**slowdown** — 1.0 means the flow moved at full bottleneck rate plus one
propagation RTT). Summaries report percentiles overall and per size bucket
(mice / medium / elephants), the standard datacenter-workload breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["FctRecord", "FctSummary", "SIZE_BUCKETS"]

#: size-bucket edges in bytes: mice < 100 KB <= medium < 1 MB <= elephants
SIZE_BUCKETS = (("mice", 0, 100_000), ("medium", 100_000, 1_000_000),
                ("elephant", 1_000_000, None))


@dataclass(frozen=True)
class FctRecord:
    """One finished (or abandoned) transfer."""

    flow_id: int
    arrival_index: int
    size_bytes: int
    start: float
    #: completion time, or None if still unfinished at the horizon
    finish: Optional[float]

    @property
    def completed(self) -> bool:
        return self.finish is not None

    @property
    def fct(self) -> Optional[float]:
        return None if self.finish is None else self.finish - self.start

    def slowdown(self, base_rtt: float, bottleneck_bps: float) -> Optional[float]:
        """FCT over the ideal store-and-forward time for this size."""
        if self.finish is None:
            return None
        ideal = base_rtt + self.size_bytes * 8.0 / max(bottleneck_bps, 1e3)
        return max(self.fct / max(ideal, 1e-9), 0.0)


@dataclass(frozen=True)
class FctSummary:
    """Aggregate FCT statistics over one workload run."""

    n_flows: int
    n_completed: int
    total_bytes: int
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    mean_slowdown: float
    p99_slowdown: float
    buckets: Dict[str, dict]
    #: queue-level congestion signals summed over the topology's links
    #: (observability: how the AQMs treated this workload's packets)
    drops: int = 0
    ecn_marks: int = 0

    @property
    def completion_rate(self) -> float:
        return self.n_completed / self.n_flows if self.n_flows else 0.0

    @classmethod
    def from_records(
        cls,
        records: List[FctRecord],
        base_rtt: float,
        bottleneck_bps: float,
        drops: int = 0,
        ecn_marks: int = 0,
    ) -> "FctSummary":
        done = [r for r in records if r.completed]
        fcts = np.asarray([r.fct for r in done], dtype=np.float64)
        slows = np.asarray(
            [r.slowdown(base_rtt, bottleneck_bps) for r in done], dtype=np.float64
        )
        buckets: Dict[str, dict] = {}
        for name, lo, hi in SIZE_BUCKETS:
            sel = [
                r for r in done
                if r.size_bytes >= lo and (hi is None or r.size_bytes < hi)
            ]
            bfcts = np.asarray([r.fct for r in sel], dtype=np.float64)
            buckets[name] = {
                "n": len(sel),
                "p50_s": float(np.percentile(bfcts, 50)) if len(sel) else 0.0,
                "p99_s": float(np.percentile(bfcts, 99)) if len(sel) else 0.0,
            }
        return cls(
            n_flows=len(records),
            n_completed=len(done),
            total_bytes=sum(r.size_bytes for r in done),
            p50_s=float(np.percentile(fcts, 50)) if len(done) else 0.0,
            p95_s=float(np.percentile(fcts, 95)) if len(done) else 0.0,
            p99_s=float(np.percentile(fcts, 99)) if len(done) else 0.0,
            mean_s=float(np.mean(fcts)) if len(done) else 0.0,
            mean_slowdown=float(np.mean(slows)) if len(done) else 0.0,
            p99_slowdown=float(np.percentile(slows, 99)) if len(done) else 0.0,
            buckets=buckets,
            drops=drops,
            ecn_marks=ecn_marks,
        )

    def to_json(self) -> dict:
        return {
            "n_flows": self.n_flows,
            "n_completed": self.n_completed,
            "completion_rate": round(self.completion_rate, 6),
            "total_bytes": self.total_bytes,
            "fct_p50_ms": round(self.p50_s * 1e3, 4),
            "fct_p95_ms": round(self.p95_s * 1e3, 4),
            "fct_p99_ms": round(self.p99_s * 1e3, 4),
            "fct_mean_ms": round(self.mean_s * 1e3, 4),
            "mean_slowdown": round(self.mean_slowdown, 4),
            "p99_slowdown": round(self.p99_slowdown, 4),
            "drops": self.drops,
            "ecn_marks": self.ecn_marks,
            "buckets": self.buckets,
        }
