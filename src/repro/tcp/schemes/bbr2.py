"""BBRv2 (Cardwell et al. — Google v2alpha release, 2019).

A model-based scheme: estimates the path's bottleneck bandwidth (windowed
max of delivery-rate samples) and propagation RTT (windowed min), then paces
at ``pacing_gain × BtlBw`` with inflight capped near the BDP. The v2
additions modeled here: loss caps the ``inflight_hi`` headroom, and the
PROBE_BW cycle uses the v2 up/down/cruise structure.

State machine: STARTUP → DRAIN → PROBE_BW (cycling), with periodic
PROBE_RTT dips to refresh the min-RTT estimate.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.packet import MSS_BYTES
from repro.tcp.cc_base import CongestionControl, register_scheme

STARTUP = 0
DRAIN = 1
PROBE_BW = 2
PROBE_RTT = 3

#: PROBE_BW pacing-gain cycle (v2: one up, one down, then cruise).
_CYCLE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


@register_scheme
class Bbr2(CongestionControl):
    """Bottleneck Bandwidth and RTT, version 2 (simplified)."""

    name = "bbr2"

    STARTUP_GAIN = 2.77  # 2/ln(2)
    DRAIN_GAIN = 1.0 / 2.77
    CWND_GAIN = 2.0
    BW_WINDOW_RTTS = 10
    MIN_RTT_WINDOW = 10.0  # seconds
    PROBE_RTT_DURATION = 0.2  # seconds
    BETA = 0.7  # v2 inflight_hi reduction on loss

    def __init__(self) -> None:
        self.state = STARTUP
        # Monotonic deque for the windowed-max bandwidth filter: entries are
        # (time, bps) with strictly decreasing bps; the front is the max.
        self.bw_samples: deque = deque()
        self.max_bw = 0.0
        self.min_rtt = float("inf")
        self.min_rtt_stamp = 0.0
        self.full_bw = 0.0
        self.full_bw_count = 0
        self.filled_pipe = False
        self.cycle_index = 0
        self.cycle_stamp = 0.0
        self.probe_rtt_done_stamp = -1.0
        self.inflight_hi = float("inf")
        self.pacing_gain = self.STARTUP_GAIN

    # ------------------------------------------------------------------
    def on_init(self, sock) -> None:
        sock.cwnd = 10.0

    def _update_model(self, sock, rtt: float, now: float) -> None:
        if sock.delivery_rate > 0:
            bw = sock.delivery_rate
            samples = self.bw_samples
            while samples and samples[-1][1] <= bw:
                samples.pop()
            samples.append((now, bw))
            window = self.BW_WINDOW_RTTS * max(self.min_rtt, 0.01)
            cutoff = now - max(window, 0.1)
            while samples and samples[0][0] < cutoff:
                samples.popleft()
            self.max_bw = samples[0][1] if samples else bw
        if rtt > 0 and (
            rtt <= self.min_rtt or now - self.min_rtt_stamp > self.MIN_RTT_WINDOW
        ):
            self.min_rtt = rtt
            self.min_rtt_stamp = now

    def _bdp_pkts(self) -> float:
        if self.max_bw <= 0 or self.min_rtt == float("inf"):
            return 10.0
        return self.max_bw * self.min_rtt / (8.0 * MSS_BYTES)

    def _check_full_pipe(self) -> None:
        if self.filled_pipe:
            return
        if self.max_bw >= self.full_bw * 1.25:
            self.full_bw = self.max_bw
            self.full_bw_count = 0
            return
        self.full_bw_count += 1
        if self.full_bw_count >= 3:
            self.filled_pipe = True

    def _advance_cycle(self, now: float) -> None:
        if now - self.cycle_stamp > max(self.min_rtt, 0.01):
            self.cycle_index = (self.cycle_index + 1) % len(_CYCLE_GAINS)
            self.cycle_stamp = now

    def on_ack(self, sock, n_acked: int, rtt: float, now: float) -> None:
        self._update_model(sock, rtt, now)

        if self.state == STARTUP:
            self.pacing_gain = self.STARTUP_GAIN
            self._check_full_pipe()
            if self.filled_pipe:
                self.state = DRAIN
        if self.state == DRAIN:
            self.pacing_gain = self.DRAIN_GAIN
            if sock.inflight <= self._bdp_pkts():
                self.state = PROBE_BW
                self.cycle_stamp = now
        if self.state == PROBE_BW:
            self._advance_cycle(now)
            self.pacing_gain = _CYCLE_GAINS[self.cycle_index]
            # Periodic PROBE_RTT: if min_rtt is stale, dip inflight.
            if now - self.min_rtt_stamp > self.MIN_RTT_WINDOW:
                self.state = PROBE_RTT
                self.probe_rtt_done_stamp = now + self.PROBE_RTT_DURATION
        if self.state == PROBE_RTT:
            self.pacing_gain = 1.0
            sock.cwnd = max(4.0, self.MIN_CWND)
            if now >= self.probe_rtt_done_stamp:
                self.min_rtt_stamp = now
                self.state = PROBE_BW if self.filled_pipe else STARTUP
            return

        bdp = self._bdp_pkts()
        if self.state == STARTUP:
            target = self.CWND_GAIN * self.STARTUP_GAIN * bdp
            sock.cwnd = max(sock.cwnd, min(sock.cwnd + n_acked, target))
            if sock.cwnd < 2 * bdp:
                sock.cwnd += n_acked
        else:
            target = self.CWND_GAIN * bdp
            target = min(target, self.inflight_hi)
            sock.cwnd = max(min(target, sock.cwnd + n_acked), 4.0)

    def pacing_rate(self, sock):
        if self.max_bw <= 0:
            return None  # ack-clocked until the first bandwidth sample
        return max(self.pacing_gain * self.max_bw, 1e4)

    # -- loss handling (v2) ---------------------------------------------
    def on_loss_event(self, sock, now: float) -> None:
        # v2: reduce the inflight headroom rather than collapsing the window.
        self.inflight_hi = max(sock.inflight * self.BETA, 4.0)
        sock.cwnd = max(sock.cwnd * self.BETA, 4.0)
        sock.ssthresh = sock.cwnd

    def on_rto(self, sock, now: float) -> None:
        self.inflight_hi = max(self._bdp_pkts(), 4.0)
        sock.cwnd = 4.0
